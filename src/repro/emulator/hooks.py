"""Hook registry: fan-out dispatch of emulator events.

Sanitizer runtimes, fuzzer coverage collectors and the Prober's dry-run
recorder all subscribe here.  Dispatch is synchronous and ordered by
registration so a recorder attached before a sanitizer sees the event
stream the sanitizer acted on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict

from repro.emulator.events import EventKind

Handler = Callable[[object], None]


class HookRegistry:
    """Register and dispatch handlers per :class:`EventKind`."""

    def __init__(self):
        self._handlers: Dict[EventKind, tuple] = defaultdict(tuple)
        self.dispatch_count = 0

    def add(self, kind: EventKind, handler: Handler) -> Handler:
        """Subscribe ``handler`` to ``kind``; returns it for chaining."""
        self._handlers[kind] = self._handlers[kind] + (handler,)
        return handler

    def remove(self, kind: EventKind, handler: Handler) -> None:
        """Unsubscribe a handler; missing handlers are ignored."""
        self._handlers[kind] = tuple(
            h for h in self._handlers[kind] if h is not handler
        )

    def clear(self, kind: EventKind = None) -> None:
        """Drop all handlers for ``kind``, or every handler when None."""
        if kind is None:
            self._handlers.clear()
        else:
            self._handlers[kind] = ()

    def has_handlers(self, kind: EventKind) -> bool:
        """True when at least one handler is subscribed to ``kind``."""
        return bool(self._handlers.get(kind))

    def emit(self, kind: EventKind, payload: object = None) -> None:
        """Dispatch ``payload`` to every handler subscribed to ``kind``."""
        handlers = self._handlers.get(kind)
        if not handlers:
            return
        self.dispatch_count += 1
        for handler in handlers:
            handler(payload)

    def handler_counts(self) -> Dict[str, int]:
        """Diagnostic summary: event name -> live handler count."""
        return {
            kind.value: len(handlers)
            for kind, handlers in self._handlers.items()
            if handlers
        }
