"""Machine snapshots: save and restore full guest state.

Fuzzers reset the target to a clean post-boot state between inputs;
the Prober's multi-pass dry runs rewind the firmware between passes.
A snapshot captures every RAM region and each engine's architectural
state.  Device and host-side state (UART capture, hooks, counters) is
deliberately *not* captured: observers persist across restores.  Restore
does flush each engine's translation-block cache, since rewriting RAM
behind the bus may change the code image cached blocks were built from.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

from repro.emulator.machine import Machine
from repro.mem.regions import MmioRegion


class _EngineState(NamedTuple):
    regs: Tuple[int, ...]
    pc: int
    halted: bool
    task: int


class Snapshot:
    """An immutable capture of one machine's guest-visible state."""

    def __init__(self, machine: Machine):
        self._regions: Dict[str, bytes] = {}
        for region in machine.bus.regions:
            if isinstance(region, MmioRegion):
                continue
            self._regions[region.name] = bytes(region.data)
        self._engines: List[_EngineState] = [
            _EngineState(
                tuple(engine.state.regs),
                engine.state.pc,
                engine.state.halted,
                engine.state.task,
            )
            for engine in machine.engines
        ]
        self._ready = machine.ready
        self._task = machine.current_task

    def restore(self, machine: Machine) -> None:
        """Write the captured state back into ``machine``."""
        for region in machine.bus.regions:
            if isinstance(region, MmioRegion):
                continue
            saved = self._regions.get(region.name)
            if saved is not None and len(saved) == region.size:
                region.data[:] = saved
        for engine, saved in zip(machine.engines, self._engines):
            # In place: specialized TCG thunks bind the register-file list
            # by identity at translate time, so the list must never be
            # reassigned or cached blocks would keep the orphaned one.
            engine.state.regs[:] = saved.regs
            engine.state.pc = saved.pc
            engine.state.halted = saved.halted
            engine.state.task = saved.task
            # Region restores above bypassed the bus, so cached translation
            # blocks (and their chained links) may hold a stale code image.
            flush = getattr(engine, "flush_tbs", None)
            if flush is not None:
                flush()
        machine.ready = self._ready
        machine.panicked = None
        machine.current_task = self._task

    def ram_bytes(self) -> int:
        """Total bytes captured (diagnostic)."""
        return sum(len(data) for data in self._regions.values())


def take(machine: Machine) -> Snapshot:
    """Capture a snapshot of ``machine``."""
    return Snapshot(machine)
