"""Machine snapshots, lightweight checkpoints, and the fork server.

Three restore strategies over one dirty-set abstraction
(:mod:`repro.mem.dirty`), ordered by how much they copy:

* :class:`Snapshot` — full capture / full restore.  Copies every RAM
  region both ways; cost is O(machine size).  Used by the Prober's
  multi-pass dry runs, where restores are rare and simplicity wins.
  When a :class:`~repro.mem.dirty.DirtySet` is attached to the bus, a
  full restore conservatively marks everything it rewrote dirty so a
  later delta restore stays sound.
* :class:`Checkpoint` — journal-backed rollback point.  Arms the bus
  write journal and rewinds only the bytes an input actually wrote;
  cost is O(bytes written).  The journal's pre-image log *is* its dirty
  record, byte-exact, so rollback re-dirties nothing new.  Used for
  per-input crash isolation in the journaled execution mode.
* :class:`ForkServer` — golden snapshot + dirty-page delta restore.
  Captures the ready-to-run state once (guest memory, engine and
  machine state, device models, provider state, and the host-side
  Python object graph of the rehosted kernel), then restores between
  programs by copying back only the pages the session dirtied,
  invalidating only translations built from dirty code pages, and
  reloading only state providers whose epoch actually moved.  Cost is
  O(pages touched) — the AFL fork-server idea applied to a rehosted
  machine.

Device and host-side observer state (hooks, tracers, metric registries)
is deliberately *not* captured by any strategy: observers persist
across restores.  The fork server additionally leaves each engine's
translation cache and translation counters alone — surviving
translations across resets is the point of the exercise — so TB
statistics intentionally diverge from a rebuild-per-refresh run.
"""

from __future__ import annotations

import enum
import time
import types
from collections import deque
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.emulator.machine import Machine
from repro.errors import SnapshotError
from repro.mem.dirty import PAGE_SHIFT, PAGE_SIZE, DirtySet
from repro.mem.regions import MmioRegion


class _EngineState(NamedTuple):
    regs: Tuple[int, ...]
    pc: int
    halted: bool
    task: int


def _capture_engine(engine) -> _EngineState:
    return _EngineState(
        tuple(engine.state.regs),
        engine.state.pc,
        engine.state.halted,
        engine.state.task,
    )


def _restore_engine(engine, saved: _EngineState) -> None:
    # In place: specialized TCG thunks bind the register-file list by
    # identity at translate time, so the list must never be reassigned
    # or cached blocks would keep the orphaned one.
    engine.state.regs[:] = saved.regs
    engine.state.pc = saved.pc
    engine.state.halted = saved.halted
    engine.state.task = saved.task


class Snapshot:
    """An immutable capture of one machine's guest-visible state."""

    def __init__(self, machine: Machine):
        self._regions: Dict[str, bytes] = {}
        for region in machine.bus.regions:
            if isinstance(region, MmioRegion):
                continue
            self._regions[region.name] = bytes(region.data)
        self._engines: List[_EngineState] = [
            _capture_engine(engine) for engine in machine.engines
        ]
        self._ready = machine.ready
        self._task = machine.current_task
        # host-side runtime state (shadow memory, allocator maps, ...)
        # captured via the provider protocol: save_state() -> opaque blob
        self._provider_states = [
            (provider, provider.save_state())
            for provider in machine.state_providers
        ]

    def restore(self, machine: Machine) -> None:
        """Write the captured state back into ``machine``.

        Raises :class:`~repro.errors.SnapshotError` when a mapped region
        cannot be restored faithfully — missing from the capture or
        resized since — instead of silently leaving stale bytes behind.
        """
        dirty = machine.bus.dirty
        for region in machine.bus.regions:
            if isinstance(region, MmioRegion):
                continue
            saved = self._regions.get(region.name)
            if saved is None:
                raise SnapshotError(
                    "mapped after the snapshot was taken; restore would "
                    "leave its contents stale",
                    region=region.name,
                )
            if len(saved) != region.size:
                raise SnapshotError(
                    f"snapshot holds {len(saved)} bytes but the region "
                    f"is now {region.size} bytes",
                    region=region.name,
                )
            region.data[:] = saved
            if dirty is not None:
                # full rewrite bypassed the bus: keep delta accounting sound
                dirty.mark_all(region.name, region.size)
        for engine, saved in zip(machine.engines, self._engines):
            _restore_engine(engine, saved)
            # Region restores above bypassed the bus, so cached translation
            # blocks (and their chained links) may hold a stale code image.
            flush = getattr(engine, "flush_tbs", None)
            if flush is not None:
                flush()
        machine.ready = self._ready
        machine.panicked = None
        machine.current_task = self._task
        # providers restore *after* guest memory so a provider that peeks
        # at the bus (shadow reconstruction) sees the restored image
        for provider, saved in self._provider_states:
            provider.load_state(saved)

    def ram_bytes(self) -> int:
        """Total bytes captured (diagnostic)."""
        return sum(len(data) for data in self._regions.values())


def take(machine: Machine) -> Snapshot:
    """Capture a snapshot of ``machine``."""
    return Snapshot(machine)


class Checkpoint:
    """A journal-backed rollback point for per-input crash isolation.

    Arms the machine's bus write journal at construction and captures
    engine registers plus machine flags.  Exactly one of
    :meth:`commit` (keep all writes) or :meth:`rollback` (rewind them,
    LIFO) must be called; both disarm the journal.  Cost scales with
    bytes *written* after the checkpoint, not with RAM size, so a fuzzer
    can afford one per executed program.
    """

    def __init__(self, machine: Machine):
        self.machine = machine
        self._engines: List[_EngineState] = [
            _capture_engine(engine) for engine in machine.engines
        ]
        self._ready = machine.ready
        self._panicked = machine.panicked
        self._task = machine.current_task
        machine.bus.journal_begin()
        self.active = True

    def commit(self) -> int:
        """Keep everything written since the checkpoint."""
        if not self.active:
            return 0
        self.active = False
        return self.machine.bus.journal_commit()

    def rollback(self) -> int:
        """Rewind guest memory, engine state and machine flags.

        Translation caches are invalidated only over the journalled
        write span: a rollback that touched no translated code — the
        overwhelmingly common case, since fuzz inputs write data, not
        instructions — keeps every cached block and its chain links.
        """
        if not self.active:
            return 0
        self.active = False
        machine = self.machine
        # read before rollback: rollback consumes the journal
        bounds = machine.bus.journal_write_bounds()
        undone = machine.bus.journal_rollback()
        for engine, saved in zip(machine.engines, self._engines):
            _restore_engine(engine, saved)
            if bounds is None:
                continue
            invalidate = getattr(engine, "invalidate_range", None)
            if invalidate is not None:
                invalidate(bounds[0], bounds[1])
            else:
                flush = getattr(engine, "flush_tbs", None)
                if flush is not None:
                    flush()
        machine.ready = self._ready
        machine.panicked = self._panicked
        machine.current_task = self._task
        return undone


# ----------------------------------------------------------------------
# fork server: golden snapshot + dirty-page delta restore
# ----------------------------------------------------------------------
class RestoreStats(NamedTuple):
    """What one delta restore cost."""

    pages: int  #: dirty pages copied back
    us: float  #: wall-clock microseconds for the whole restore
    tb_dropped: int  #: translation blocks invalidated
    providers_reloaded: int  #: state providers whose epoch had moved


class ForkServer:
    """Golden snapshot of a ready-to-run machine, restored by delta.

    Capture once at the point the fuzz target is ready to accept
    programs; :meth:`restore` then rewinds the machine to that exact
    state in time proportional to the pages the session dirtied, not to
    RAM size.  The restored state is byte-identical to what a fresh
    rebuild-and-boot produces (boot is deterministic), which is the
    contract the census byte-identity tests enforce.

    ``host_roots`` seeds the host-side object walk: the rehosted kernel
    and its guest context.  Every plain-data attribute reachable from
    them through ``repro.os``/``repro.guest`` objects is captured and
    restored; opaque values (machine references, callables, mmap
    handles) pass through untouched by identity.
    """

    def __init__(self, machine: Machine, host_roots: Tuple = ()):
        self.machine = machine
        self.dirty = DirtySet()
        self.restores = 0
        bus = machine.bus
        self._ram: Dict[str, bytes] = {}
        self._device_ram: Dict[str, bytes] = {}
        for region in bus.regions:
            golden = bytes(region.data)
            if isinstance(region, MmioRegion) or region.kind == "device":
                # device apertures are tiny and their backing store must
                # stay coherent with restored device-model attributes, so
                # they restore in full every time
                self._device_ram[region.name] = golden
            else:
                self._ram[region.name] = golden
        self._engines = [
            (
                _capture_engine(engine),
                {
                    name: getattr(engine, name)
                    for name in ("cycles", "insn_count", "host_ops")
                    if hasattr(engine, name)
                },
            )
            for engine in machine.engines
        ]
        self._ready = machine.ready
        self._panicked = machine.panicked
        self._task = machine.current_task
        self._charged = machine._charged_guest_cycles
        self._overhead = machine.overhead_cycles
        self._irqs_delivered = machine.irqs_delivered
        self._pending_irqs = [list(entry) for entry in machine._pending_irqs]
        self._engine_listeners = list(machine.engine_listeners)
        uart = machine.uart
        self._uart_output = bytes(uart.output) if uart is not None else None
        timer = machine.timer
        self._timer = (timer.ticks, timer.enabled) if timer is not None else None
        dma = machine.dma
        self._dma = (
            (dma.src, dma.dst, dma.length, dma.transfers)
            if dma is not None
            else None
        )
        watchdog = machine.watchdog
        self._watchdog = (
            (watchdog.insns, watchdog.cycles, watchdog.trips,
             tuple(watchdog._ring))
            if watchdog is not None
            else None
        )
        self._providers = []
        for provider in machine.state_providers:
            epoch_fn = getattr(provider, "state_epoch", None)
            telemetry_fn = getattr(provider, "save_telemetry", None)
            self._providers.append(
                (
                    provider,
                    provider.save_state(),
                    epoch_fn() if epoch_fn is not None else None,
                    telemetry_fn() if telemetry_fn is not None else None,
                )
            )
        self._host_state = _capture_host_state(host_roots)
        # from here on, every bus write marks pages for the next restore
        bus.attach_dirty(self.dirty)

    # ------------------------------------------------------------------
    def restore(self) -> RestoreStats:
        """Rewind the machine to the golden state; cost is O(dirty pages)."""
        start = time.perf_counter()
        machine = self.machine
        dirty = self.dirty
        pages = 0
        code_spans: List[Tuple[int, int]] = []
        for region in machine.bus.regions:
            name = region.name
            if isinstance(region, MmioRegion) or region.kind == "device":
                golden = self._device_ram.get(name)
                if golden is not None and len(golden) == region.size:
                    region.data[:] = golden
                continue
            golden = self._ram.get(name)
            if golden is None:
                raise SnapshotError(
                    "mapped after the golden capture; delta restore "
                    "cannot reconstruct it",
                    region=name,
                )
            if len(golden) != region.size:
                raise SnapshotError(
                    f"golden image holds {len(golden)} bytes but the "
                    f"region is now {region.size} bytes",
                    region=name,
                )
            for lo, hi in dirty.spans(name):
                if lo >= region.size:
                    continue
                hi = min(hi, region.size)
                region.data[lo:hi] = golden[lo:hi]
                pages += (hi - lo + PAGE_SIZE - 1) >> PAGE_SHIFT
                code_spans.append((region.base + lo, region.base + hi))
        tb_dropped = 0
        for engine, (saved, counters) in zip(machine.engines, self._engines):
            _restore_engine(engine, saved)
            for counter, value in counters.items():
                setattr(engine, counter, value)
            invalidate = getattr(engine, "invalidate_range", None)
            if invalidate is not None:
                for lo, hi in code_spans:
                    tb_dropped += invalidate(lo, hi)
            elif code_spans:
                flush = getattr(engine, "flush_tbs", None)
                if flush is not None:
                    flush()
        machine.ready = self._ready
        machine.panicked = self._panicked
        machine.current_task = self._task
        machine._charged_guest_cycles = self._charged
        machine.overhead_cycles = self._overhead
        machine.irqs_delivered = self._irqs_delivered
        machine._pending_irqs = [list(entry) for entry in self._pending_irqs]
        machine.engine_listeners[:] = self._engine_listeners
        if self._uart_output is not None and machine.uart is not None:
            machine.uart.output[:] = self._uart_output
        if self._timer is not None and machine.timer is not None:
            machine.timer.ticks, machine.timer.enabled = self._timer
        if self._dma is not None and machine.dma is not None:
            dma = machine.dma
            dma.src, dma.dst, dma.length, dma.transfers = self._dma
        if self._watchdog is not None and machine.watchdog is not None:
            watchdog = machine.watchdog
            insns, cycles, trips, ring = self._watchdog
            watchdog.insns = insns
            watchdog.cycles = cycles
            watchdog.trips = trips
            watchdog._ring.clear()
            watchdog._ring.extend(ring)
        _restore_host_state(self._host_state)
        # providers restore after guest memory (see Snapshot.restore);
        # the epoch gate skips the semantic reload entirely when nothing
        # the provider tracks actually changed, and telemetry (counters,
        # report sink) rewinds unconditionally — it moves on every check
        reloaded = 0
        for provider, saved, epoch, telemetry in self._providers:
            epoch_fn = getattr(provider, "state_epoch", None)
            if epoch_fn is None or epoch is None or epoch_fn() != epoch:
                load_delta = getattr(provider, "load_state_delta", None)
                if load_delta is not None:
                    load_delta(saved)
                else:
                    provider.load_state(saved)
                reloaded += 1
            if telemetry is not None:
                provider.load_telemetry(telemetry)
        dirty.clear()
        self.restores += 1
        us = (time.perf_counter() - start) * 1e6
        return RestoreStats(pages, us, tb_dropped, reloaded)

    def detach(self) -> None:
        """Stop tracking dirty pages (the fork server is being dropped)."""
        if self.machine.bus.dirty is self.dirty:
            self.machine.bus.detach_dirty()

    def ram_bytes(self) -> int:
        """Total golden bytes captured (diagnostic)."""
        return sum(len(data) for data in self._ram.values()) + sum(
            len(data) for data in self._device_ram.values()
        )


# ----------------------------------------------------------------------
# host-side Python state capture
# ----------------------------------------------------------------------
#: instances of classes from these packages form the walkable graph
_WALK_PREFIXES = ("repro.os", "repro.guest")

#: attribute-level marker: leave the attribute untouched on restore
_OPAQUE = object()


class _FrozenList(NamedTuple):
    items: list


class _FrozenTuple(NamedTuple):
    items: tuple


class _FrozenSet(NamedTuple):
    items: list


class _FrozenDict(NamedTuple):
    items: list


class _FrozenDeque(NamedTuple):
    items: list
    maxlen: Optional[int]


class _FrozenBytearray(NamedTuple):
    data: bytes


def _walkable(value) -> bool:
    module = getattr(type(value), "__module__", None) or ""
    if not module.startswith(_WALK_PREFIXES):
        return False
    if isinstance(value, type):
        return False
    # __slots__ objects (guest functions, frames) are opaque references
    return hasattr(value, "__dict__")


def _freeze(value, queue: list):
    """Deep-copy plain data; pass objects through by reference.

    Walkable objects are queued so their own attributes get captured;
    everything else (machine references, callables, mmap handles) stays
    an identity reference inside containers.
    """
    if value is None or isinstance(
        value, (int, float, bool, str, bytes, frozenset, enum.Enum)
    ):
        return value
    if isinstance(value, bytearray):
        return _FrozenBytearray(bytes(value))
    if isinstance(value, list):
        return _FrozenList([_freeze(item, queue) for item in value])
    if isinstance(value, tuple):
        return _FrozenTuple(tuple(_freeze(item, queue) for item in value))
    if isinstance(value, set):
        return _FrozenSet([_freeze(item, queue) for item in value])
    if isinstance(value, dict):
        return _FrozenDict(
            [(_freeze(k, queue), _freeze(v, queue)) for k, v in value.items()]
        )
    if isinstance(value, deque):
        return _FrozenDeque([_freeze(item, queue) for item in value], value.maxlen)
    if _walkable(value):
        queue.append(value)
    return value


def _thaw(frozen):
    if isinstance(frozen, _FrozenList):
        return [_thaw(item) for item in frozen.items]
    if isinstance(frozen, _FrozenTuple):
        return tuple(_thaw(item) for item in frozen.items)
    if isinstance(frozen, _FrozenSet):
        return {_thaw(item) for item in frozen.items}
    if isinstance(frozen, _FrozenDict):
        return {_thaw(k): _thaw(v) for k, v in frozen.items}
    if isinstance(frozen, _FrozenDeque):
        return deque((_thaw(item) for item in frozen.items), frozen.maxlen)
    if isinstance(frozen, _FrozenBytearray):
        return bytearray(frozen.data)
    return frozen


_MISSING = object()


def _capture_host_state(roots) -> List[Tuple[object, dict, dict]]:
    """Capture the plain-data attributes of every reachable host object.

    Each entry carries, besides the frozen attribute values, a thawed
    *prototype* per container attribute: restore compares the live value
    against it (a C-level ``==``, allocation-free) and only rebuilds
    attributes that actually changed — with no custom ``__eq__`` in the
    walked modules, element equality for object references is identity,
    so an equal container is exactly one that needs no restore.
    """
    saved: List[Tuple[object, dict, dict]] = []
    visited = set()
    queue = [root for root in roots if root is not None]
    while queue:
        obj = queue.pop()
        if id(obj) in visited or not _walkable(obj):
            continue
        visited.add(id(obj))
        attrs: Dict[str, object] = {}
        protos: Dict[str, object] = {}
        for name, value in list(obj.__dict__.items()):
            if isinstance(value, types.GeneratorType):
                # a half-advanced coroutine cannot be re-entered after a
                # memory rewind; a finished one is equivalent to never
                # having started (step() lazily recreates it)
                if getattr(obj, "done", False):
                    attrs[name] = None
                    continue
                raise SnapshotError(
                    f"golden capture found a live coroutine in "
                    f"{type(obj).__name__}.{name}; the ready-to-run point "
                    f"must be quiescent"
                )
            frozen = _freeze(value, queue)
            if frozen is value and not isinstance(
                value, (int, float, bool, str, bytes, frozenset, enum.Enum)
            ) and value is not None and not _walkable(value):
                # opaque at attribute level: do not touch it on restore
                attrs[name] = _OPAQUE
            else:
                attrs[name] = frozen
                if frozen is not value:
                    protos[name] = _thaw(frozen)
        saved.append((obj, attrs, protos))
    return saved


def _restore_host_state(saved: List[Tuple[object, dict, dict]]) -> None:
    """Write captured attributes back; drop attributes added since."""
    for obj, attrs, protos in saved:
        live = obj.__dict__
        for name in [n for n in live if n not in attrs]:
            delattr(obj, name)
        for name, frozen in attrs.items():
            if frozen is _OPAQUE:
                continue
            current = live.get(name, _MISSING)
            if current is frozen:
                continue  # unchanged scalar or by-reference object
            proto = protos.get(name, _MISSING)
            if proto is not _MISSING and type(current) is type(proto) \
                    and current == proto:
                continue  # container holds exactly the golden content
            setattr(obj, name, _thaw(frozen))
