"""Machine snapshots and lightweight checkpoints.

Fuzzers reset the target to a clean post-boot state between inputs;
the Prober's multi-pass dry runs rewind the firmware between passes.
A :class:`Snapshot` captures every RAM region, each engine's
architectural state, and the state of every registered
``machine.state_providers`` entry (the sanitizer runtime registers
itself there so shadow memory and allocator maps stay coherent with
guest memory across restores).  Device and host-side observer state
(UART capture, hooks, counters) is deliberately *not* captured:
observers persist across restores.  Restore does flush each engine's
translation-block cache, since rewriting RAM behind the bus may change
the code image cached blocks were built from.

A :class:`Checkpoint` is the cheap sibling used for per-input crash
isolation: instead of copying all of RAM up front (tens of MiB per
machine), it arms the bus write journal and rewinds only the bytes the
input actually wrote.  It restores engine registers and machine flags
but *not* state-provider or host-side Python state — callers that roll
back a checkpoint after a host-level crash rebuild the target anyway.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

from repro.emulator.machine import Machine
from repro.mem.regions import MmioRegion


class _EngineState(NamedTuple):
    regs: Tuple[int, ...]
    pc: int
    halted: bool
    task: int


class Snapshot:
    """An immutable capture of one machine's guest-visible state."""

    def __init__(self, machine: Machine):
        self._regions: Dict[str, bytes] = {}
        for region in machine.bus.regions:
            if isinstance(region, MmioRegion):
                continue
            self._regions[region.name] = bytes(region.data)
        self._engines: List[_EngineState] = [
            _EngineState(
                tuple(engine.state.regs),
                engine.state.pc,
                engine.state.halted,
                engine.state.task,
            )
            for engine in machine.engines
        ]
        self._ready = machine.ready
        self._task = machine.current_task
        # host-side runtime state (shadow memory, allocator maps, ...)
        # captured via the provider protocol: save_state() -> opaque blob
        self._provider_states = [
            (provider, provider.save_state())
            for provider in machine.state_providers
        ]

    def restore(self, machine: Machine) -> None:
        """Write the captured state back into ``machine``."""
        for region in machine.bus.regions:
            if isinstance(region, MmioRegion):
                continue
            saved = self._regions.get(region.name)
            if saved is not None and len(saved) == region.size:
                region.data[:] = saved
        for engine, saved in zip(machine.engines, self._engines):
            # In place: specialized TCG thunks bind the register-file list
            # by identity at translate time, so the list must never be
            # reassigned or cached blocks would keep the orphaned one.
            engine.state.regs[:] = saved.regs
            engine.state.pc = saved.pc
            engine.state.halted = saved.halted
            engine.state.task = saved.task
            # Region restores above bypassed the bus, so cached translation
            # blocks (and their chained links) may hold a stale code image.
            flush = getattr(engine, "flush_tbs", None)
            if flush is not None:
                flush()
        machine.ready = self._ready
        machine.panicked = None
        machine.current_task = self._task
        # providers restore *after* guest memory so a provider that peeks
        # at the bus (shadow reconstruction) sees the restored image
        for provider, saved in self._provider_states:
            provider.load_state(saved)

    def ram_bytes(self) -> int:
        """Total bytes captured (diagnostic)."""
        return sum(len(data) for data in self._regions.values())


def take(machine: Machine) -> Snapshot:
    """Capture a snapshot of ``machine``."""
    return Snapshot(machine)


class Checkpoint:
    """A journal-backed rollback point for per-input crash isolation.

    Arms the machine's bus write journal at construction and captures
    engine registers plus machine flags.  Exactly one of
    :meth:`commit` (keep all writes) or :meth:`rollback` (rewind them,
    LIFO) must be called; both disarm the journal.  Cost scales with
    bytes *written* after the checkpoint, not with RAM size, so a fuzzer
    can afford one per executed program.
    """

    def __init__(self, machine: Machine):
        self.machine = machine
        self._engines: List[_EngineState] = [
            _EngineState(
                tuple(engine.state.regs),
                engine.state.pc,
                engine.state.halted,
                engine.state.task,
            )
            for engine in machine.engines
        ]
        self._ready = machine.ready
        self._panicked = machine.panicked
        self._task = machine.current_task
        machine.bus.journal_begin()
        self.active = True

    def commit(self) -> int:
        """Keep everything written since the checkpoint."""
        if not self.active:
            return 0
        self.active = False
        return self.machine.bus.journal_commit()

    def rollback(self) -> int:
        """Rewind guest memory, engine state and machine flags."""
        if not self.active:
            return 0
        self.active = False
        machine = self.machine
        undone = machine.bus.journal_rollback()
        for engine, saved in zip(machine.engines, self._engines):
            # in place: specialized TCG thunks bind the register list by
            # identity (see Snapshot.restore)
            engine.state.regs[:] = saved.regs
            engine.state.pc = saved.pc
            engine.state.halted = saved.halted
            engine.state.task = saved.task
            flush = getattr(engine, "flush_tbs", None)
            if flush is not None:
                flush()
        machine.ready = self._ready
        machine.panicked = self._panicked
        machine.current_task = self._task
        return undone
