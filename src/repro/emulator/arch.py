"""Platform architecture descriptors.

The paper evaluates firmware on x86, ARM and MIPS.  All our guests share
the EVM32 instruction encoding, but each architecture keeps its own
memory map, trap idiom name and platform quirks.  The Prober does **not**
get these maps for free: it reconstructs them from dry-run observations,
and its output is validated against the descriptors in tests.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Tuple


class RegionSpec(NamedTuple):
    """A named address range in an architecture's physical memory map."""

    name: str
    base: int
    size: int
    kind: str  # "flash" | "sram" | "dram" | "device"


class Arch(NamedTuple):
    """Static facts about one platform architecture."""

    name: str
    word_size: int
    #: the trapping instruction used by the dummy sanitizer library (§3.2):
    #: ``vmcall`` on x86, ``hvc`` on ARM, a reserved ``syscall`` on MIPS.
    trap_insn: str
    memory_map: Tuple[RegionSpec, ...]

    def region(self, name: str) -> RegionSpec:
        """Look up one memory-map entry by name."""
        for spec in self.memory_map:
            if spec.name == name:
                return spec
        raise KeyError(f"arch {self.name!r} has no region {name!r}")


_MiB = 1024 * 1024

ARM = Arch(
    name="arm",
    word_size=4,
    trap_insn="hvc",
    memory_map=(
        RegionSpec("flash", 0x0800_0000, 4 * _MiB, "flash"),
        RegionSpec("sram", 0x2000_0000, 16 * _MiB, "sram"),
        RegionSpec("dram", 0x4000_0000, 64 * _MiB, "dram"),
        RegionSpec("uart", 0x4800_0000, 0x1000, "device"),
        RegionSpec("timer", 0x4800_1000, 0x1000, "device"),
        RegionSpec("dma", 0x4800_2000, 0x1000, "device"),
    ),
)

MIPS = Arch(
    name="mips",
    word_size=4,
    trap_insn="syscall",
    memory_map=(
        RegionSpec("flash", 0x1FC0_0000, 4 * _MiB, "flash"),
        RegionSpec("dram", 0x8000_0000, 64 * _MiB, "dram"),
        RegionSpec("sram", 0xA000_0000, 8 * _MiB, "sram"),
        RegionSpec("uart", 0xB800_0000, 0x1000, "device"),
        RegionSpec("timer", 0xB800_1000, 0x1000, "device"),
        RegionSpec("dma", 0xB800_2000, 0x1000, "device"),
    ),
)

X86 = Arch(
    name="x86",
    word_size=4,
    trap_insn="vmcall",
    memory_map=(
        RegionSpec("flash", 0x000F_0000, 1 * _MiB, "flash"),
        RegionSpec("dram", 0x0100_0000, 128 * _MiB, "dram"),
        RegionSpec("sram", 0x0900_0000, 8 * _MiB, "sram"),
        RegionSpec("uart", 0x0A00_0000, 0x1000, "device"),
        RegionSpec("timer", 0x0A00_1000, 0x1000, "device"),
        RegionSpec("dma", 0x0A00_2000, 0x1000, "device"),
    ),
)

#: All supported architectures, keyed by name.
ARCHS: Dict[str, Arch] = {arch.name: arch for arch in (ARM, MIPS, X86)}


def arch_by_name(name: str) -> Arch:
    """Return the architecture descriptor for ``name`` (arm/mips/x86)."""
    try:
        return ARCHS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown architecture {name!r}; supported: {sorted(ARCHS)}"
        ) from None
