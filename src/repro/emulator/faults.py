"""Deterministic, seed-driven fault injection for hostile-guest testing.

Real embedded firmware misbehaves: allocators run dry, flaky buses flip
bits, interrupt lines glitch.  A :class:`FaultPlan` models those hazards
deterministically so tests can *prove* the sanitizer runtime and the
campaign loop survive hostile guests instead of hoping they do.  All
randomness comes from one ``random.Random`` seeded at construction, so
a plan replays identically given the same query sequence.

Injection points (wired via :meth:`Machine.set_fault_plan`):

``fail_alloc``
    Consulted by the rehosted allocators (``kmalloc``, ``pvPortMalloc``,
    ``LOS_MemAlloc``, ``memPartAlloc``) before carving an object; an
    injected failure makes the allocator return NULL exactly as an
    exhausted heap would, exercising every caller's error path.

``mutate_load``
    Consulted by the bus on scalar guest loads; flips one random bit of
    the value when the address falls inside a designated flip region.
    Host-side untraced reads are never mutated.

``irq_action``
    Consulted by ``Machine.raise_irq``; an interrupt may be delivered,
    dropped on the floor, or delayed a few ticks of guest time.

A compact text DSL (:meth:`FaultPlan.parse`) exposes plans on the CLI::

    alloc:every=10                fail every 10th allocation
    alloc:p=0.05                  fail 5% of allocations
    bitflip:0x40000000-0x40001000:p=0.01
                                  flip a bit in 1% of loads in the range
    irq:drop=0.5                  drop half the interrupts
    irq:delay=3,p=0.25            delay a quarter of them by 3 ticks
    irq-storm:line=9,count=8,p=0.01
                                  at 1% of hypercall points, burst-raise
                                  IRQ line 9 eight times back-to-back
    seed=7                        reseed the plan's RNG

Clauses are ``;``-separated: ``alloc:every=10;irq:drop=0.5;seed=7``.
"""

from __future__ import annotations

import random
from typing import List, NamedTuple, Optional, Tuple

from repro.errors import ReproError


class FaultPlanError(ReproError):
    """A fault-plan DSL string failed to parse."""


class FlipRegion(NamedTuple):
    """A guest address range whose scalar loads may be bit-flipped."""

    lo: int
    hi: int  #: exclusive
    rate: float


class FaultPlan:
    """A deterministic schedule of injected faults.

    One plan may outlive many target rebuilds inside a campaign — its
    RNG stream continues across rebuilds, which keeps the injected-fault
    sequence a pure function of the (seed, query-order) pair.  The RNG
    state is therefore part of campaign checkpoints.
    """

    def __init__(
        self,
        seed: int = 0,
        alloc_fail_every: int = 0,
        alloc_fail_rate: float = 0.0,
        flip_regions: Tuple[FlipRegion, ...] = (),
        irq_drop_rate: float = 0.0,
        irq_delay: int = 0,
        irq_delay_rate: float = 0.0,
        irq_storm_line: int = 0,
        irq_storm_count: int = 0,
        irq_storm_rate: float = 0.0,
    ):
        self.seed = seed
        self.rng = random.Random(seed)
        self.alloc_fail_every = alloc_fail_every
        self.alloc_fail_rate = alloc_fail_rate
        self.flip_regions: Tuple[FlipRegion, ...] = tuple(flip_regions)
        self.irq_drop_rate = irq_drop_rate
        self.irq_delay = irq_delay
        self.irq_delay_rate = irq_delay_rate
        self.irq_storm_line = irq_storm_line
        self.irq_storm_count = irq_storm_count
        self.irq_storm_rate = irq_storm_rate
        # counters (diagnostics; never consulted for decisions)
        self.allocs_seen = 0
        self.alloc_failures = 0
        self.bit_flips = 0
        self.irqs_dropped = 0
        self.irqs_delayed = 0
        self.irq_storms = 0

    # ------------------------------------------------------------------
    # injection points
    # ------------------------------------------------------------------
    def fail_alloc(self, size: int, pc: int = 0) -> bool:
        """Decide whether the next allocation of ``size`` bytes fails."""
        self.allocs_seen += 1
        fail = False
        if self.alloc_fail_every and self.allocs_seen % self.alloc_fail_every == 0:
            fail = True
        elif self.alloc_fail_rate and self.rng.random() < self.alloc_fail_rate:
            fail = True
        if fail:
            self.alloc_failures += 1
        return fail

    def mutate_load(self, addr: int, size: int, value: int) -> int:
        """Possibly flip one bit of a scalar load result."""
        for region in self.flip_regions:
            if region.lo <= addr < region.hi:
                if self.rng.random() < region.rate:
                    bit = self.rng.randrange(size * 8)
                    self.bit_flips += 1
                    return value ^ (1 << bit)
                break
        return value

    def irq_action(self, irq: int) -> Tuple[str, int]:
        """Decide the fate of an interrupt: deliver, drop, or (delay, n)."""
        if self.irq_drop_rate and self.rng.random() < self.irq_drop_rate:
            self.irqs_dropped += 1
            return "drop", 0
        if (
            self.irq_delay
            and self.irq_delay_rate
            and self.rng.random() < self.irq_delay_rate
        ):
            self.irqs_delayed += 1
            return "delay", self.irq_delay
        return "deliver", 0

    def irq_storm(self) -> Optional[Tuple[int, int]]:
        """Decide whether to burst-raise an IRQ line at this point.

        Consulted by ``Machine.vmcall`` after delayed interrupts drain;
        returns ``(line, count)`` to storm or None.  Like every other
        injection point, the RNG is consumed only when the fault kind
        is configured, so plans without a storm clause leave the stream
        untouched (byte-identity for existing seeded plans).
        """
        if not (self.irq_storm_count and self.irq_storm_rate):
            return None
        if self.rng.random() < self.irq_storm_rate:
            self.irq_storms += 1
            return self.irq_storm_line, self.irq_storm_count
        return None

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when the plan can inject at least one fault kind."""
        return bool(
            self.alloc_fail_every
            or self.alloc_fail_rate
            or self.flip_regions
            or self.irq_drop_rate
            or (self.irq_delay and self.irq_delay_rate)
            or (self.irq_storm_count and self.irq_storm_rate)
        )

    def stats(self) -> dict:
        """Injection counters for diagnostics records."""
        return {
            "allocs_seen": self.allocs_seen,
            "alloc_failures": self.alloc_failures,
            "bit_flips": self.bit_flips,
            "irqs_dropped": self.irqs_dropped,
            "irqs_delayed": self.irqs_delayed,
            "irq_storms": self.irq_storms,
        }

    def save_rng_state(self):
        """RNG state for checkpoints (JSON-encodable via list round-trip)."""
        return self.rng.getstate()

    def load_rng_state(self, state) -> None:
        """Restore a checkpointed RNG state."""
        version, internal, gauss = state
        self.rng.setstate((version, tuple(internal), gauss))

    # ------------------------------------------------------------------
    # DSL
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from the ``;``-separated clause DSL (see module doc)."""
        kwargs = {
            "seed": seed,
            "alloc_fail_every": 0,
            "alloc_fail_rate": 0.0,
            "irq_drop_rate": 0.0,
            "irq_delay": 0,
            "irq_delay_rate": 0.0,
            "irq_storm_line": 0,
            "irq_storm_count": 0,
            "irq_storm_rate": 0.0,
        }
        regions: List[FlipRegion] = []
        for raw in spec.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            head, _, rest = clause.partition(":")
            head = head.strip().lower()
            try:
                if head == "seed" or head.startswith("seed="):
                    kwargs["seed"] = int(clause.partition("=")[2], 0)
                elif head == "alloc":
                    for key, val in _parse_kv(rest):
                        if key == "every":
                            kwargs["alloc_fail_every"] = int(val, 0)
                        elif key == "p":
                            kwargs["alloc_fail_rate"] = float(val)
                        else:
                            raise FaultPlanError(
                                f"unknown alloc option {key!r} in {clause!r}"
                            )
                elif head == "bitflip":
                    span, _, tail = rest.partition(":")
                    lo_s, _, hi_s = span.partition("-")
                    lo, hi = int(lo_s, 0), int(hi_s, 0)
                    if hi <= lo:
                        raise FaultPlanError(f"empty bitflip range in {clause!r}")
                    rate = 1.0
                    for key, val in _parse_kv(tail):
                        if key == "p":
                            rate = float(val)
                        else:
                            raise FaultPlanError(
                                f"unknown bitflip option {key!r} in {clause!r}"
                            )
                    regions.append(FlipRegion(lo, hi, rate))
                elif head == "irq-storm":
                    for key, val in _parse_kv(rest):
                        if key == "line":
                            kwargs["irq_storm_line"] = int(val, 0)
                        elif key == "count":
                            kwargs["irq_storm_count"] = int(val, 0)
                        elif key == "p":
                            kwargs["irq_storm_rate"] = float(val)
                        else:
                            raise FaultPlanError(
                                f"unknown irq-storm option {key!r} in {clause!r}"
                            )
                elif head == "irq":
                    for key, val in _parse_kv(rest):
                        if key == "drop":
                            kwargs["irq_drop_rate"] = float(val)
                        elif key == "delay":
                            kwargs["irq_delay"] = int(val, 0)
                        elif key == "p":
                            kwargs["irq_delay_rate"] = float(val)
                        else:
                            raise FaultPlanError(
                                f"unknown irq option {key!r} in {clause!r}"
                            )
                else:
                    raise FaultPlanError(f"unknown fault clause {clause!r}")
            except ValueError as exc:
                raise FaultPlanError(f"bad value in clause {clause!r}: {exc}")
        # delay without an explicit probability means "always delay"
        if kwargs["irq_delay"] and not kwargs["irq_delay_rate"]:
            kwargs["irq_delay_rate"] = 1.0
        # same convention for storms: a count without p storms always
        if kwargs["irq_storm_count"] and not kwargs["irq_storm_rate"]:
            kwargs["irq_storm_rate"] = 1.0
        return cls(flip_regions=tuple(regions), **kwargs)

    def describe(self) -> str:
        """Canonical DSL form of the plan: ``parse(describe())`` round-trips.

        Doubles as the CLI one-liner, so what gets logged is exactly
        what to pass back via ``--faults`` to re-run the plan.
        """
        parts = []
        if self.alloc_fail_every:
            parts.append(f"alloc:every={self.alloc_fail_every}")
        if self.alloc_fail_rate:
            parts.append(f"alloc:p={self.alloc_fail_rate:g}")
        for region in self.flip_regions:
            parts.append(
                f"bitflip:{region.lo:#x}-{region.hi:#x}:p={region.rate:g}"
            )
        irq_opts = []
        if self.irq_drop_rate:
            irq_opts.append(f"drop={self.irq_drop_rate:g}")
        if self.irq_delay and self.irq_delay_rate:
            irq_opts.append(f"delay={self.irq_delay}")
            irq_opts.append(f"p={self.irq_delay_rate:g}")
        if irq_opts:
            parts.append("irq:" + ",".join(irq_opts))
        if self.irq_storm_count and self.irq_storm_rate:
            parts.append(
                f"irq-storm:line={self.irq_storm_line},"
                f"count={self.irq_storm_count},p={self.irq_storm_rate:g}"
            )
        parts.append(f"seed={self.seed}")
        return ";".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, {self.describe()})"


def _parse_kv(text: str):
    """Yield (key, value) pairs from ``k=v,k=v`` clause tails."""
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        key, sep, val = chunk.partition("=")
        if not sep:
            raise FaultPlanError(f"expected key=value, got {chunk!r}")
        yield key.strip().lower(), val.strip()


def plan_for(
    spec: Optional[str], seed: int = 0
) -> Optional[FaultPlan]:
    """CLI helper: None/empty spec means no fault injection."""
    if not spec:
        return None
    return FaultPlan.parse(spec, seed=seed)
