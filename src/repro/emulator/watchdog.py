"""Instruction/cycle-budget watchdog for guest run loops.

Rehosted firmware routinely wedges: a driver spins on a status bit that
never flips, a boot loop keeps re-entering the same handler, an EVM32
replay suite branches back on itself.  Without a guard the campaign loop
inherits the hang.  A :class:`Watchdog` sits beside the execution
engines and the rehosted-code cycle accountant and converts a blown
budget into a structured :class:`~repro.errors.GuestHang` carrying the
trip PC and a short backtrace of recently executed block PCs.

The watchdog meters two independent budgets:

``insn_budget``
    ISA instructions retired since the last :meth:`reset`.  Consumed by
    ``TcgEngine.run`` once per executed translation block (both the
    specialized and interp modes share that loop) and by ``Cpu.run`` per
    instruction, so a trip overshoots by at most one block.

``cycle_budget``
    Guest cycles charged since the last :meth:`reset`.  Consumed by
    ``Machine.charge_guest``, which is how rehosted Python kernels
    account their work — a kernel spinning in a scheduler loop trips
    this budget even though no ISA engine is running.

Watchdog bookkeeping is sanitizer-style overhead, not guest work: each
check charges :data:`CHECK_COST` overhead cycles to the machine so the
Figure-2 cost split stays honest (see ``docs/cost_model.md``).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import GuestHang

#: overhead cycles charged per watchdog consume() call (one compare + add)
CHECK_COST = 1

#: default number of recent block PCs retained for hang backtraces
BACKTRACE_DEPTH = 16


class Watchdog:
    """A per-machine guard that bounds how long a guest may run unobserved.

    Budgets are measured from the most recent :meth:`reset`; fuzz targets
    reset the watchdog before every program so the budget is per-input,
    not per-campaign.  A ``None``/0 budget disables that dimension.
    """

    def __init__(
        self,
        insn_budget: Optional[int] = None,
        cycle_budget: Optional[float] = None,
        machine=None,
        backtrace_depth: int = BACKTRACE_DEPTH,
    ):
        self.insn_budget = insn_budget or None
        self.cycle_budget = cycle_budget or None
        self.machine = machine
        self.insns = 0
        self.cycles = 0.0
        self.trips = 0
        self._ring: deque = deque(maxlen=backtrace_depth)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Re-arm both budgets (start of a new input or measured window)."""
        self.insns = 0
        self.cycles = 0.0
        self._ring.clear()

    def backtrace(self) -> tuple:
        """Recently executed block PCs, oldest first."""
        return tuple(self._ring)

    # ------------------------------------------------------------------
    def consume(self, insns: int, pc: int = 0, task: int = 0) -> None:
        """Account ``insns`` retired instructions ending at ``pc``.

        Raises :class:`GuestHang` once the instruction budget is blown.
        """
        self.insns += insns
        self._ring.append(pc)
        machine = self.machine
        if machine is not None:
            machine.charge_overhead(CHECK_COST)
        budget = self.insn_budget
        if budget is not None and self.insns > budget:
            self._trip("insn", pc, task)

    def consume_cycles(self, cycles: float, pc: int = 0, task: int = 0) -> None:
        """Account ``cycles`` of charged guest work (rehosted kernels)."""
        self.cycles += cycles
        budget = self.cycle_budget
        if budget is not None and self.cycles > budget:
            machine = self.machine
            if machine is not None:
                machine.charge_overhead(CHECK_COST)
            self._trip("cycle", pc, task)

    # ------------------------------------------------------------------
    def _trip(self, kind: str, pc: int, task: int) -> None:
        self.trips += 1
        budget = self.insn_budget if kind == "insn" else self.cycle_budget
        raise GuestHang(
            f"guest hang: {kind} budget {budget} exhausted at pc {pc:#x} "
            f"(task {task}, {self.insns} insns, {self.cycles:g} cycles)",
            pc=pc,
            insns=self.insns,
            cycles=self.cycles,
            backtrace=self.backtrace(),
            kind=kind,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Watchdog(insn_budget={self.insn_budget}, "
            f"cycle_budget={self.cycle_budget}, insns={self.insns}, "
            f"cycles={self.cycles:g}, trips={self.trips})"
        )
