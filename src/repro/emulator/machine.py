"""The Machine: bus + engines + devices + hook dispatch + cycle accounting.

One :class:`Machine` hosts one firmware instance.  It is deliberately
similar in role to a QEMU board model: the firmware (rehosted Python
kernel and/or EVM32 binaries) runs *inside* it, while sanitizers,
fuzzers and the Prober observe it from *outside* through the hook
registry — never by patching the guest.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.emulator.arch import Arch
from repro.emulator.devices import DMA_IRQ, DmaEngine, Timer, Uart
from repro.emulator.events import (
    CallEvent,
    ConsoleEvent,
    EventKind,
    InterruptEvent,
    RetEvent,
    TaskSwitchEvent,
    VmcallEvent,
)
from repro.emulator.hooks import HookRegistry
from repro.emulator.hypercalls import Hypercall
from repro.errors import GuestFault
from repro.isa.cpu import Cpu
from repro.isa.tcg import TcgEngine
from repro.mem.bus import MemoryBus
from repro.mem.regions import MemoryRegion, Perm


class GuestPanic(GuestFault):
    """The guest invoked its panic path (``Hypercall.PANIC``)."""


class Machine:
    """An emulated embedded platform instance."""

    def __init__(self, arch: Arch, name: str = "machine"):
        self.arch = arch
        self.name = name
        self.bus = MemoryBus()
        self.hooks = HookRegistry()
        self.engines: List[object] = []
        #: callbacks fired when an execution engine is attached; the
        #: Common Sanitizer Runtime uses this to inject TCG probes into
        #: engines created after it attached (e.g. at guest boot)
        self.engine_listeners: List[object] = []
        self.symbols: Dict[str, int] = {}

        self.ready = False
        self.panicked: Optional[int] = None
        self.current_task = 0

        # cycle accounting: guest work vs sanitizer-added overhead
        self._charged_guest_cycles = 0
        self.overhead_cycles = 0

        #: engine kind used when ``add_cpu`` is called without an explicit
        #: ``engine`` (OS boot paths go through this, so campaigns can
        #: select the jit tier before ``image.boot()`` attaches CPUs)
        self.isa_engine = "tcg"
        #: hotness threshold handed to jit-tier engines; None keeps
        #: :attr:`TcgEngine.DEFAULT_JIT_THRESHOLD`
        self.jit_threshold: Optional[int] = None

        #: optional hang guard shared by every engine and charge_guest
        self.watchdog = None
        #: optional deterministic fault-injection plan (see emulator/faults.py)
        self.fault_plan = None
        #: delayed interrupts: [remaining_ticks, irq, device] triples, FIFO
        self._pending_irqs: List[list] = []
        self.irqs_delivered = 0
        #: objects with save_state()/load_state() captured by Snapshot so
        #: host-side runtime state (shadow memory, allocator maps) stays
        #: coherent with guest memory across restores
        self.state_providers: List[object] = []
        #: modeled peripherals (repro.periph.DeviceModel) attached via
        #: :meth:`attach_periph`; harvested as the periph.* counters
        self.periphs: List[object] = []

        self._build_board()

    # ------------------------------------------------------------------
    # board construction
    # ------------------------------------------------------------------
    def _build_board(self) -> None:
        self.uart: Optional[Uart] = None
        self.timer: Optional[Timer] = None
        self.dma: Optional[DmaEngine] = None
        for spec in self.arch.memory_map:
            if spec.kind == "device":
                if spec.name == "uart":
                    self.uart = Uart(spec.base, on_byte=self._on_console_byte)
                    self.bus.map(self.uart.region)
                elif spec.name == "timer":
                    self.timer = Timer(spec.base)
                    self.bus.map(self.timer.region)
                elif spec.name == "dma":
                    self.dma = DmaEngine(
                        spec.base, self.bus, on_complete=self._on_dma_complete
                    )
                    self.bus.map(self.dma.region)
            else:
                perm = Perm.RWX if spec.kind == "flash" else Perm.RW
                self.bus.map(
                    MemoryRegion(spec.name, spec.base, spec.size, perm, spec.kind)
                )
        # route every bus access into the hook registry
        self.bus.add_observer(self._on_bus_access)

    def attach_periph(self, device):
        """Map a modeled peripheral (:mod:`repro.periph`) onto the bus.

        The device picks up three integrations for free: its MMIO
        region joins the address space, its functional state joins the
        snapshot/fork-server provider list (register files, ring
        indices and pending work restore coherently), and it is listed
        for ``periph.*`` observability harvesting.  The default board
        never calls this, so device-less firmware is untouched.
        """
        self.bus.map(device.region)
        self.periphs.append(device)
        self.state_providers.append(device)
        return device

    def free_mmio_base(self) -> int:
        """The lowest address above every mapped region (periph homes)."""
        return max(region.end for region in self.bus.regions)

    def _on_bus_access(self, access) -> None:
        self.hooks.emit(EventKind.MEM_ACCESS, access)

    def _scalar_unobserved(self) -> bool:
        """True while skipping scalar-access notification is unobservable.

        The jit tier inlines region reads/writes when the bus's only
        observer is this machine's hook fan-out and nothing subscribes to
        MEM_ACCESS — then the skipped ``Access`` would have been
        constructed only to be dropped.
        """
        return (self.bus._observers == (self._on_bus_access,)
                and not self.hooks._handlers.get(EventKind.MEM_ACCESS))

    def _on_console_byte(self, byte: int) -> None:
        self.hooks.emit(EventKind.CONSOLE, ConsoleEvent(byte))

    def _on_dma_complete(self) -> None:
        self.raise_irq(DMA_IRQ, device="dma")

    # ------------------------------------------------------------------
    # hardening: watchdog + fault injection + interrupts
    # ------------------------------------------------------------------
    def set_watchdog(
        self,
        insn_budget: Optional[int] = None,
        cycle_budget: Optional[float] = None,
    ):
        """Arm a :class:`~repro.emulator.watchdog.Watchdog` on this machine.

        The watchdog is shared by every attached engine (present and
        future) and by :meth:`charge_guest`, so both EVM32 code and
        rehosted Python kernels are guarded.  Passing no budgets disarms.
        """
        from repro.emulator.watchdog import Watchdog

        if insn_budget is None and cycle_budget is None:
            self.clear_watchdog()
            return None
        self.watchdog = Watchdog(
            insn_budget=insn_budget, cycle_budget=cycle_budget, machine=self
        )
        for engine in self.engines:
            engine.watchdog = self.watchdog
        return self.watchdog

    def clear_watchdog(self) -> None:
        """Disarm the watchdog on the machine and every engine."""
        self.watchdog = None
        for engine in self.engines:
            engine.watchdog = None

    def set_fault_plan(self, plan):
        """Install a :class:`~repro.emulator.faults.FaultPlan` (or None).

        The plan is consulted by the bus (read bit-flips), the rehosted
        allocators (injected allocation failures) and :meth:`raise_irq`
        (dropped/delayed interrupts).
        """
        self.fault_plan = plan
        self.bus.fault_plan = plan
        return plan

    def raise_irq(self, irq: int, device: str = "board") -> bool:
        """Deliver a device interrupt, subject to the fault plan.

        Returns True when the interrupt was delivered immediately; a
        dropped interrupt returns False and a delayed one is queued until
        enough :meth:`tick_irqs` steps elapse.
        """
        plan = self.fault_plan
        if plan is not None:
            action, delay = plan.irq_action(irq)
            if action == "drop":
                return False
            if action == "delay":
                self._pending_irqs.append([delay, irq, device])
                return False
        self._deliver_irq(irq, device)
        return True

    def _deliver_irq(self, irq: int, device: str = "board") -> None:
        self.irqs_delivered += 1
        self.hooks.emit(EventKind.INTERRUPT, InterruptEvent(irq, device))

    def tick_irqs(self) -> None:
        """Advance delayed-interrupt countdowns by one step.

        Called from the hypercall path so delayed interrupts drain at
        deterministic points in the guest's own timeline rather than on a
        host clock.
        """
        if not self._pending_irqs:
            return
        still: List[list] = []
        for entry in self._pending_irqs:
            entry[0] -= 1
            if entry[0] <= 0:
                self._deliver_irq(entry[1], entry[2])
            else:
                still.append(entry)
        self._pending_irqs = still

    # ------------------------------------------------------------------
    # execution engines
    # ------------------------------------------------------------------
    def add_cpu(self, pc: int = 0, sp: int = 0,
                engine: Optional[str] = None):
        """Attach an execution engine for EVM32 code.

        ``engine`` selects the implementation: ``"tcg"`` (translation
        blocks, specialized closures — the default), ``"jit"`` (the tcg
        engine with the hot-trace compiled tier enabled), ``"tcg-interp"``
        (translation blocks, per-opcode re-dispatch; the pre-specialization
        behaviour kept for A/B benchmarking) or ``"interp"`` (the
        reference single-step interpreter).  ``None`` falls back to the
        machine-wide :attr:`isa_engine` default.
        """
        if engine is None:
            engine = self.isa_engine
        if engine == "tcg":
            core = TcgEngine(self.bus, pc=pc, sp=sp, hypercall=self._hypercall)
        elif engine == "jit":
            core = TcgEngine(self.bus, pc=pc, sp=sp, hypercall=self._hypercall,
                             jit=True, jit_threshold=self.jit_threshold)
        elif engine == "tcg-interp":
            core = TcgEngine(self.bus, pc=pc, sp=sp, hypercall=self._hypercall,
                             specialize=False)
        elif engine == "interp":
            core = Cpu(self.bus, pc=pc, sp=sp, hypercall=self._hypercall)
        else:
            raise ValueError(f"unknown engine kind {engine!r}")
        if isinstance(core, TcgEngine):
            core.mem_fast_check = self._scalar_unobserved
        core.call_probes.append(self._on_isa_call)
        core.ret_probes.append(self._on_isa_ret)
        core.watchdog = self.watchdog
        self.engines.append(core)
        for listener in self.engine_listeners:
            listener(core)
        return core

    def _on_isa_call(self, pc: int, target: int, args: List[int], lr: int) -> None:
        name = self.symbol_at(target)
        self.hooks.emit(
            EventKind.CALL, CallEvent(pc, target, args, self.current_task, name)
        )

    def _on_isa_ret(self, pc: int, retval: int) -> None:
        self.hooks.emit(EventKind.RET, RetEvent(pc, retval, self.current_task))

    # ------------------------------------------------------------------
    # hypercalls
    # ------------------------------------------------------------------
    def _hypercall(self, engine, number: int) -> Optional[int]:
        args = [engine.state.read(i) for i in range(1, 5)]
        return self.vmcall(number, args, pc=engine.state.pc)

    def vmcall(
        self, number: int, args: List[int], pc: int = 0, task: Optional[int] = None
    ) -> Optional[int]:
        """Dispatch a hypercall (from ISA trap or rehosted guest code)."""
        if task is None:
            task = self.current_task
        self.hooks.emit(EventKind.VMCALL, VmcallEvent(number, list(args), pc, task))
        self.tick_irqs()
        plan = self.fault_plan
        if plan is not None:
            storm = plan.irq_storm()
            if storm is not None:
                irq, count = storm
                for _ in range(count):
                    self._deliver_irq(irq, device="irq-storm")
        if number == Hypercall.READY:
            self.mark_ready()
        elif number == Hypercall.PANIC:
            self.panicked = args[0] if args else 0
            raise GuestPanic(f"guest panic code {self.panicked:#x} at pc {pc:#x}")
        elif number == Hypercall.PUTC and self.uart is not None:
            with self.bus.untraced():
                self.uart.region.write(self.uart.base, bytes([args[0] & 0xFF]))
                self.uart.output.append(args[0] & 0xFF)
        return None

    def mark_ready(self) -> None:
        """Record the ready-to-run state and notify observers once."""
        if not self.ready:
            self.ready = True
            self.hooks.emit(EventKind.READY, None)

    # ------------------------------------------------------------------
    # rehosted-guest integration
    # ------------------------------------------------------------------
    def emit_call(
        self, pc: int, target: int, args: List[int], name: Optional[str]
    ) -> None:
        """Report a rehosted guest function call to observers."""
        self.hooks.emit(
            EventKind.CALL, CallEvent(pc, target, args, self.current_task, name)
        )

    def emit_ret(self, target: int, retval: int, name: Optional[str]) -> None:
        """Report a rehosted guest function return to observers."""
        self.hooks.emit(
            EventKind.RET, RetEvent(target, retval, self.current_task, name)
        )

    def switch_task(self, task: int) -> None:
        """Record a guest scheduler context switch."""
        prev = self.current_task
        if prev == task:
            return
        self.current_task = task
        for engine in self.engines:
            engine.state.task = task
        self.hooks.emit(EventKind.TASK_SWITCH, TaskSwitchEvent(prev, task))

    # ------------------------------------------------------------------
    # symbols
    # ------------------------------------------------------------------
    def add_symbols(self, symbols: Dict[str, int]) -> None:
        """Register symbol-name -> address mappings (empty when stripped)."""
        self.symbols.update(symbols)
        self._addr_to_name = {addr: name for name, addr in self.symbols.items()}

    def symbol_at(self, addr: int) -> Optional[str]:
        """Reverse-resolve an address to a symbol name, if known."""
        table = getattr(self, "_addr_to_name", None)
        if table is None:
            return None
        return table.get(addr)

    def resolve(self, name: str) -> int:
        """Resolve a symbol name to its address."""
        return self.symbols[name]

    # ------------------------------------------------------------------
    # cycle accounting
    # ------------------------------------------------------------------
    def charge_guest(self, cycles: int) -> None:
        """Account guest work not tied to an ISA engine (rehosted code).

        When a watchdog is armed this is also its metering point for
        rehosted kernels: a kernel wedged in a Python-side loop still
        charges cycles here and trips the cycle budget with a
        :class:`~repro.errors.GuestHang`.
        """
        self._charged_guest_cycles += cycles
        watchdog = self.watchdog
        if watchdog is not None:
            watchdog.consume_cycles(cycles, task=self.current_task)

    def charge_overhead(self, cycles: int) -> None:
        """Account sanitizer-added work (host checks or translated routines)."""
        self.overhead_cycles += cycles

    @property
    def guest_cycles(self) -> int:
        """Guest work: ISA engine cycles plus charged rehosted cycles."""
        return self._charged_guest_cycles + sum(
            engine.cycles for engine in self.engines
        )

    @property
    def total_cycles(self) -> int:
        """Guest work plus sanitizer overhead; Figure 2 divides these."""
        return self.guest_cycles + self.overhead_cycles

    def reset_counters(self) -> None:
        """Zero all cycle counters (start of a measured workload)."""
        self._charged_guest_cycles = 0
        self.overhead_cycles = 0
        for engine in self.engines:
            engine.cycles = 0
            engine.insn_count = 0

    # ------------------------------------------------------------------
    def console_text(self) -> str:
        """Everything the guest printed so far."""
        return self.uart.text() if self.uart is not None else ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine({self.name!r}, arch={self.arch.name!r}, ready={self.ready})"
