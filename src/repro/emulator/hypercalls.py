"""Hypercall numbering shared between guest firmware and the host.

EMBSAN-C firmware is linked against a *dummy sanitizer library* whose
every API is a single platform trap instruction (§3.2).  On EVM32 the
trap is ``VMCALL n`` with arguments in ``r1``–``r4``; these are the ``n``
values.  The Common Sanitizer Runtime's hypercall fast path (§3.3)
dispatches them straight to the sanitizer interfaces.
"""

from __future__ import annotations

import enum


class Hypercall(enum.IntEnum):
    """Well-known hypercall numbers."""

    # -- firmware lifecycle -------------------------------------------
    READY = 0x01  #: firmware reached its ready-to-run state
    PANIC = 0x02  #: guest panic; args: code

    # -- dummy sanitizer library (compile-time instrumentation) -------
    SAN_LOAD = 0x10  #: args: addr, size
    SAN_STORE = 0x11  #: args: addr, size
    SAN_ALLOC = 0x12  #: args: addr, size, cache_id
    SAN_FREE = 0x13  #: args: addr
    SAN_GLOBAL_REG = 0x14  #: args: addr, size, redzone — register a global
    SAN_STACK_ENTER = 0x15  #: args: frame_base, frame_size
    SAN_STACK_LEAVE = 0x16  #: args: frame_base, frame_size
    SAN_RANGE_READ = 0x17  #: args: addr, size (memcpy-family interceptor)
    SAN_RANGE_WRITE = 0x18  #: args: addr, size
    SAN_STACK_VAR = 0x19  #: args: addr, size — unpoisoned slot in a frame
    SAN_SLAB_PAGE = 0x1A  #: args: addr, size — fresh page handed to a slab
    SAN_MARK_INIT = 0x1B  #: args: addr, size — span initialized (__GFP_ZERO,
    #: copy_from_user); consumed by uninit-tracking functionality

    # -- coverage (kcov-like) ------------------------------------------
    COV_TRACE_PC = 0x20  #: args: pc

    # -- console fallback for ISA guests without a UART mapping --------
    PUTC = 0x30  #: args: byte


#: Hypercalls belonging to the dummy sanitizer library; the Prober's
#: category-1 dry run records exactly these before READY fires.
DUMMY_SANITIZER_CALLS = frozenset(
    {
        Hypercall.SAN_LOAD,
        Hypercall.SAN_STORE,
        Hypercall.SAN_ALLOC,
        Hypercall.SAN_FREE,
        Hypercall.SAN_GLOBAL_REG,
        Hypercall.SAN_STACK_ENTER,
        Hypercall.SAN_STACK_LEAVE,
        Hypercall.SAN_STACK_VAR,
        Hypercall.SAN_SLAB_PAGE,
        Hypercall.SAN_MARK_INIT,
        Hypercall.SAN_RANGE_READ,
        Hypercall.SAN_RANGE_WRITE,
    }
)
