"""The emulation layer: machines, hooks, hypercalls and device models.

A :class:`~repro.emulator.machine.Machine` bundles a guest memory bus,
one or more execution engines, device models and a hook registry.  The
hook registry is the integration surface for the Common Sanitizer
Runtime: every sanitizer-sensitive event (memory access, function call
and return, hypercall, task switch, boot-ready) is dispatched through it.
"""

from repro.emulator.arch import Arch, ARCHS, arch_by_name
from repro.emulator.events import EventKind
from repro.emulator.hooks import HookRegistry
from repro.emulator.hypercalls import Hypercall
from repro.emulator.machine import Machine

__all__ = [
    "ARCHS",
    "Arch",
    "EventKind",
    "HookRegistry",
    "Hypercall",
    "Machine",
    "arch_by_name",
]
