"""Platform device models: UART console, timer, and a DMA engine.

The devices matter for two reasons.  First, the Prober's category-3 mode
plants probes "within the emulator's devices" (§3.2) — the UART boot
banner is the behavioural signal it uses to find the ready-to-run point
of firmware it cannot instrument.  Second, the DMA engine produces
memory traffic that does not originate from any CPU instruction, which
sanitizers must still validate (KASAN checks DMA'd buffers).

All three are built on the declarative peripheral layer
(:mod:`repro.periph`): each device is a :class:`RegisterMap` compiled by
:class:`DeviceModel` into the same :class:`~repro.mem.regions.MmioRegion`
handlers the hand-rolled versions installed.  Default behaviour —
offsets, read values, side effects, even reads of unmapped offsets
returning 0 — is byte-identical to the original models; the fork-server
keeps capturing the same attribute names (``output``, ``ticks``,
``enabled``, ``src``/``dst``/``length``/``transfers``).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.mem.access import AccessKind
from repro.mem.bus import MemoryBus
from repro.periph.device import DeviceModel
from repro.periph.regmap import Reg, RegisterMap
from repro.periph.ring import (
    check_dma_overlap,
    check_dma_window,
)

# UART register offsets
UART_DATA = 0x00
UART_STATUS = 0x04
# Timer register offsets
TIMER_COUNT = 0x00
TIMER_CTRL = 0x04
# DMA register offsets
DMA_SRC = 0x00
DMA_DST = 0x04
DMA_LEN = 0x08
DMA_CTRL = 0x0C
# interrupt lines
DMA_IRQ = 1


def _uart_data_write(dev, reg, value, old):
    byte = value & 0xFF
    dev.output.append(byte)
    if dev.on_byte is not None:
        dev.on_byte(byte)


class Uart(DeviceModel):
    """A write-only console UART capturing guest output on the host."""

    NAME = "uart"
    REGISTERS = RegisterMap(
        Reg("data", UART_DATA, mode="wo", on_write=_uart_data_write),
        # always ready to transmit
        Reg("status", UART_STATUS, mode="ro", reset=0x1),
    )

    def __init__(self, base: int, on_byte: Optional[Callable[[int], None]] = None):
        self.output = bytearray()
        self.on_byte = on_byte
        super().__init__(base)

    def text(self) -> str:
        """Console output decoded as best-effort UTF-8."""
        return self.output.decode("utf-8", errors="replace")

    def lines(self) -> List[str]:
        """Console output split into lines."""
        return self.text().splitlines()

    def extra_state(self):
        return bytes(self.output)

    def load_extra_state(self, extra) -> None:
        self.output[:] = extra


def _timer_count_read(dev, reg, value):
    if dev.enabled:
        dev.ticks += 1
        dev.touch()
    return dev.ticks & 0xFFFFFFFF


def _timer_count_write(dev, reg, value, old):
    dev.ticks = value
    dev.touch()


def _timer_ctrl_read(dev, reg, value):
    return 1 if dev.enabled else 0


def _timer_ctrl_write(dev, reg, value, old):
    dev.enabled = bool(value & 1)
    dev.touch()


class Timer(DeviceModel):
    """A free-running timer the guest can read for timestamps."""

    NAME = "timer"
    REGISTERS = RegisterMap(
        Reg("count", TIMER_COUNT,
            on_read=_timer_count_read, on_write=_timer_count_write),
        Reg("ctrl", TIMER_CTRL,
            on_read=_timer_ctrl_read, on_write=_timer_ctrl_write),
    )

    def __init__(self, base: int):
        self.ticks = 0
        self.enabled = True
        super().__init__(base)

    def extra_state(self):
        return (self.ticks, self.enabled)

    def load_extra_state(self, extra) -> None:
        self.ticks, self.enabled = extra


def _dma_src_read(dev, reg, value):
    return dev.src


def _dma_dst_read(dev, reg, value):
    return dev.dst


def _dma_len_read(dev, reg, value):
    return dev.length


def _dma_src_write(dev, reg, value, old):
    dev.src = value
    dev.touch()


def _dma_dst_write(dev, reg, value, old):
    dev.dst = value
    dev.touch()


def _dma_len_write(dev, reg, value, old):
    dev.length = value
    dev.touch()


def _dma_ctrl_write(dev, reg, value, old):
    if value:
        dev._kick()


class DmaEngine(DeviceModel):
    """A one-channel DMA engine.

    Writing a nonzero value to ``DMA_CTRL`` copies ``DMA_LEN`` bytes from
    ``DMA_SRC`` to ``DMA_DST``.  The copy is issued on the system bus with
    :class:`~repro.mem.access.AccessKind.DMA`, so sanitizers observe it
    even though no CPU instruction performed it.

    Hostile programming — a window into MMIO space, a length crossing
    the end of a region, or overlapping src/dst — raises a structured
    :class:`~repro.errors.DmaFault` before any byte moves, so the
    guest's control-register store aborts instead of the host throwing.
    """

    NAME = "dma"
    REGISTERS = RegisterMap(
        Reg("src", DMA_SRC, on_read=_dma_src_read, on_write=_dma_src_write),
        Reg("dst", DMA_DST, on_read=_dma_dst_read, on_write=_dma_dst_write),
        Reg("len", DMA_LEN, on_read=_dma_len_read, on_write=_dma_len_write),
        Reg("ctrl", DMA_CTRL, mode="wo", on_write=_dma_ctrl_write),
    )

    def __init__(
        self,
        base: int,
        bus: MemoryBus,
        on_complete: Optional[Callable[[], None]] = None,
    ):
        self.bus = bus
        self.on_complete = on_complete
        self.src = 0
        self.dst = 0
        self.length = 0
        self.transfers = 0
        super().__init__(base)

    def _kick(self) -> None:
        if self.length == 0:
            return
        check_dma_window(self.bus, self.src, self.length, writing=False,
                         device=self.name)
        check_dma_window(self.bus, self.dst, self.length, writing=True,
                         device=self.name)
        check_dma_overlap(self.src, self.dst, self.length, device=self.name)
        payload = self.bus.read_bytes(self.src, self.length, kind=AccessKind.DMA)
        self.bus.write_bytes(self.dst, payload, kind=AccessKind.DMA)
        self.transfers += 1
        self.touch()
        # completion interrupt: routed through Machine.raise_irq so the
        # fault plan can drop or delay it like real flaky hardware
        if self.on_complete is not None:
            self.on_complete()

    def extra_state(self):
        return (self.src, self.dst, self.length, self.transfers)

    def load_extra_state(self, extra) -> None:
        self.src, self.dst, self.length, self.transfers = extra
