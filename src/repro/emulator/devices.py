"""Platform device models: UART console, timer, and a DMA engine.

The devices matter for two reasons.  First, the Prober's category-3 mode
plants probes "within the emulator's devices" (§3.2) — the UART boot
banner is the behavioural signal it uses to find the ready-to-run point
of firmware it cannot instrument.  Second, the DMA engine produces
memory traffic that does not originate from any CPU instruction, which
sanitizers must still validate (KASAN checks DMA'd buffers).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.mem.access import AccessKind
from repro.mem.bus import MemoryBus
from repro.mem.regions import MmioRegion

# UART register offsets
UART_DATA = 0x00
UART_STATUS = 0x04
# Timer register offsets
TIMER_COUNT = 0x00
TIMER_CTRL = 0x04
# DMA register offsets
DMA_SRC = 0x00
DMA_DST = 0x04
DMA_LEN = 0x08
DMA_CTRL = 0x0C
# interrupt lines
DMA_IRQ = 1


class Uart:
    """A write-only console UART capturing guest output on the host."""

    def __init__(self, base: int, on_byte: Optional[Callable[[int], None]] = None):
        self.base = base
        self.output = bytearray()
        self.on_byte = on_byte
        self.region = MmioRegion(
            "uart", base, 0x1000, on_read=self._read, on_write=self._write
        )

    def _read(self, offset: int, size: int) -> int:
        if offset == UART_STATUS:
            return 0x1  # always ready to transmit
        return 0

    def _write(self, offset: int, size: int, value: int) -> None:
        if offset == UART_DATA:
            byte = value & 0xFF
            self.output.append(byte)
            if self.on_byte is not None:
                self.on_byte(byte)

    def text(self) -> str:
        """Console output decoded as best-effort UTF-8."""
        return self.output.decode("utf-8", errors="replace")

    def lines(self) -> List[str]:
        """Console output split into lines."""
        return self.text().splitlines()


class Timer:
    """A free-running timer the guest can read for timestamps."""

    def __init__(self, base: int):
        self.base = base
        self.ticks = 0
        self.enabled = True
        self.region = MmioRegion(
            "timer", base, 0x1000, on_read=self._read, on_write=self._write
        )

    def _read(self, offset: int, size: int) -> int:
        if offset == TIMER_COUNT:
            if self.enabled:
                self.ticks += 1
            return self.ticks & 0xFFFFFFFF
        if offset == TIMER_CTRL:
            return 1 if self.enabled else 0
        return 0

    def _write(self, offset: int, size: int, value: int) -> None:
        if offset == TIMER_CTRL:
            self.enabled = bool(value & 1)
        elif offset == TIMER_COUNT:
            self.ticks = value


class DmaEngine:
    """A one-channel DMA engine.

    Writing a nonzero value to ``DMA_CTRL`` copies ``DMA_LEN`` bytes from
    ``DMA_SRC`` to ``DMA_DST``.  The copy is issued on the system bus with
    :class:`~repro.mem.access.AccessKind.DMA`, so sanitizers observe it
    even though no CPU instruction performed it.
    """

    def __init__(
        self,
        base: int,
        bus: MemoryBus,
        on_complete: Optional[Callable[[], None]] = None,
    ):
        self.base = base
        self.bus = bus
        self.on_complete = on_complete
        self.src = 0
        self.dst = 0
        self.length = 0
        self.transfers = 0
        self.region = MmioRegion(
            "dma", base, 0x1000, on_read=self._read, on_write=self._write
        )

    def _read(self, offset: int, size: int) -> int:
        return {DMA_SRC: self.src, DMA_DST: self.dst, DMA_LEN: self.length}.get(
            offset, 0
        )

    def _write(self, offset: int, size: int, value: int) -> None:
        if offset == DMA_SRC:
            self.src = value
        elif offset == DMA_DST:
            self.dst = value
        elif offset == DMA_LEN:
            self.length = value
        elif offset == DMA_CTRL and value:
            self._kick()

    def _kick(self) -> None:
        if self.length == 0:
            return
        payload = self.bus.read_bytes(self.src, self.length, kind=AccessKind.DMA)
        self.bus.write_bytes(self.dst, payload, kind=AccessKind.DMA)
        self.transfers += 1
        # completion interrupt: routed through Machine.raise_irq so the
        # fault plan can drop or delay it like real flaky hardware
        if self.on_complete is not None:
            self.on_complete()
