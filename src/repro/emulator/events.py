"""Event kinds dispatched through a machine's hook registry."""

from __future__ import annotations

import enum
from typing import List, NamedTuple, Optional


class EventKind(enum.Enum):
    """Every sanitizer-sensitive event class the emulator exposes."""

    #: payload: :class:`repro.mem.access.Access`
    MEM_ACCESS = "mem_access"
    #: payload: :class:`CallEvent`
    CALL = "call"
    #: payload: :class:`RetEvent`
    RET = "ret"
    #: payload: :class:`VmcallEvent`
    VMCALL = "vmcall"
    #: payload: :class:`TaskSwitchEvent`
    TASK_SWITCH = "task_switch"
    #: payload: None — the firmware reached its ready-to-run state
    READY = "ready"
    #: payload: :class:`InterruptEvent`
    INTERRUPT = "interrupt"
    #: payload: :class:`ConsoleEvent` — a byte reached the UART
    CONSOLE = "console"


class CallEvent(NamedTuple):
    """A guest function call, as reconstructed at the emulator level."""

    pc: int  #: call-site program counter (0 when unknown)
    target: int  #: callee entry address
    args: List[int]  #: up to four ABI argument registers
    task: int  #: running task id
    name: Optional[str] = None  #: symbol, when the binary is not stripped


class RetEvent(NamedTuple):
    """A guest function return."""

    target: int  #: entry address of the returning function
    retval: int
    task: int
    name: Optional[str] = None


class VmcallEvent(NamedTuple):
    """A guest hypercall (trap instruction) with its argument registers."""

    number: int
    args: List[int]
    pc: int
    task: int


class TaskSwitchEvent(NamedTuple):
    """The guest scheduler switched tasks."""

    prev: int
    next: int


class InterruptEvent(NamedTuple):
    """A device raised an interrupt line."""

    irq: int
    device: str


class ConsoleEvent(NamedTuple):
    """One byte written to the UART data register."""

    byte: int
