"""Scaffolding shared by every rehosted kernel.

Provides the kernel base class (boot sequencing, console output, task
management, bug switchboard) and the cooperative scheduler used to
interleave kernel tasks deterministically — which is what makes the
seeded data races observable by KCSAN-style detection.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.emulator.devices import UART_DATA
from repro.emulator.hypercalls import Hypercall
from repro.emulator.machine import Machine
from repro.errors import GuestFault
from repro.guest.context import GuestContext
from repro.guest.module import GuestModule


class BugSwitchboard:
    """Controls which seeded defects are live in a build.

    A kernel build enables the defects matching its firmware/version;
    modules query :meth:`enabled` at the seeded site.  ``triggered``
    records ground truth — which defects actually executed — so tests
    can distinguish "sanitizer missed it" from "path never ran".
    """

    def __init__(self, enabled: Optional[set] = None):
        self._enabled = set(enabled or ())
        self.triggered: List[str] = []

    def enable(self, bug_id: str) -> None:
        """Arm one defect."""
        self._enabled.add(bug_id)

    def enabled(self, bug_id: str) -> bool:
        """True when the defect is armed; records the trigger."""
        if bug_id in self._enabled:
            self.triggered.append(bug_id)
            return True
        return False

    def armed(self) -> set:
        """The set of armed defect ids."""
        return set(self._enabled)


class KernelTask:
    """One kernel task driven by the cooperative scheduler.

    ``body`` is a generator function ``(ctx) -> Iterator[None]``; each
    ``yield`` is a preemption point.  ``fn_addr`` is the task entry's
    guest text address so the task's accesses symbolize correctly.
    """

    def __init__(
        self,
        tid: int,
        name: str,
        body: Callable[[GuestContext], Iterator],
        fn_addr: int = 0,
    ):
        self.tid = tid
        self.name = name
        self.body = body
        self.fn_addr = fn_addr
        self._gen: Optional[Iterator] = None
        self.done = False

    def step(self, ctx: GuestContext) -> bool:
        """Advance the task one slice; returns False when finished."""
        if self.done:
            return False
        if self._gen is None:
            self._gen = self.body(ctx)
        try:
            with ctx.kthread_frame(self.fn_addr):
                next(self._gen)
            return True
        except StopIteration:
            self.done = True
            return False


class Scheduler:
    """Deterministic round-robin over kernel tasks."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.tasks: List[KernelTask] = []
        self._next_tid = 2  # tid 0 = boot, tid 1 = the syscall issuer
        self.switches = 0

    def spawn(
        self,
        name: str,
        body: Callable[[GuestContext], Iterator],
        fn_addr: int = 0,
    ) -> KernelTask:
        """Create a task; it runs on subsequent :meth:`tick` calls."""
        task = KernelTask(self._next_tid, name, body, fn_addr=fn_addr)
        self._next_tid += 1
        self.tasks.append(task)
        return task

    def tick(self, ctx: GuestContext, slices: int = 1) -> int:
        """Give every live task ``slices`` time slices; returns steps run."""
        steps = 0
        for _ in range(slices):
            for task in list(self.tasks):
                if task.done:
                    continue
                self.machine.switch_task(task.tid)
                self.switches += 1
                if task.step(ctx):
                    steps += 1
                else:
                    self.tasks.remove(task)
        self.machine.switch_task(1)
        return steps

    def run_all(self, ctx: GuestContext, max_ticks: int = 10_000) -> None:
        """Tick until every task finishes (bounded)."""
        for _ in range(max_ticks):
            if not self.tasks:
                return
            self.tick(ctx)


class KernelBase(GuestModule):
    """Common behaviour for all rehosted kernels.

    Subclasses set :attr:`os_name` and :attr:`banner`, implement
    :meth:`do_boot`, and may expose a syscall table for fuzzing.
    """

    os_name = "generic"
    #: printed on the console when boot completes; the Prober's
    #: category-2/3 dry run locks onto this as the ready-to-run signal.
    banner = "generic kernel ready."

    def __init__(
        self,
        machine: Machine,
        bugs: Optional[BugSwitchboard] = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name or self.os_name)
        self.machine = machine
        self.bugs = bugs if bugs is not None else BugSwitchboard()
        self.sched = Scheduler(machine)
        self.modules: List[GuestModule] = []
        self.booted = False
        #: the build decides whether READY is signalled by hypercall
        #: (instrumented builds) or only by the console banner.
        self.ready_hypercall = True
        #: the ``driver`` fuzz surface: op number -> handler(ctx, a0, a1, a2),
        #: populated by driver modules at install time (empty on default
        #: builds, so the syscall surface and census are untouched)
        self.driver_ops: dict = {}
        #: op number -> (name, arg choice hints) used by the interface
        #: spec builder; parallel to :attr:`driver_ops`
        self.driver_templates: dict = {}

    # ------------------------------------------------------------------
    def add_module(self, module: GuestModule) -> GuestModule:
        """Attach (and, post-install, wire up) a kernel module."""
        self.modules.append(module)
        return module

    def module_named(self, name: str) -> GuestModule:
        """Look up an attached module."""
        for module in self.modules:
            if module.name == name:
                return module
        raise KeyError(f"kernel has no module {name!r}")

    # ------------------------------------------------------------------
    def boot(self, ctx: GuestContext) -> None:
        """Install the kernel + modules, run subclass boot, signal ready."""
        if self.booted:
            raise GuestFault("kernel booted twice")
        self.install(ctx)
        for module in self.modules:
            module.install(ctx)
        self.machine.switch_task(1)
        self.do_boot(ctx)
        self.printk(ctx, self.banner + "\n")
        if self.ready_hypercall:
            self.machine.vmcall(Hypercall.READY, [])
        self.booted = True

    def do_boot(self, ctx: GuestContext) -> None:
        """Subclass hook: initialize allocators and subsystems."""

    # ------------------------------------------------------------------
    def register_driver_op(self, nr: int, handler, name: str,
                           arg_hints=()) -> None:
        """Expose one driver entry point on the ``driver`` fuzz surface.

        ``handler(ctx, a0, a1, a2) -> int`` is typically a bound
        guest function, so calls emit CALL/RET events and symbolize.
        ``arg_hints`` is a per-argument tuple of interesting concrete
        choices the interface spec turns into generators.
        """
        if nr in self.driver_ops:
            raise GuestFault(f"driver op {nr} registered twice")
        self.driver_ops[nr] = handler
        self.driver_templates[nr] = (name, tuple(arg_hints))

    def driver_invoke(self, ctx: GuestContext, nr: int,
                      a0: int = 0, a1: int = 0, a2: int = 0) -> int:
        """Dispatch one ``driver``-surface call (ioctl-style)."""
        handler = self.driver_ops.get(nr)
        ctx.machine.charge_guest(4)
        if handler is None:
            return -1
        return handler(ctx, a0, a1, a2)

    def probe_workload(self, ctx: GuestContext) -> None:
        """Benign post-boot self-test exercising the allocators.

        The Prober's category-2/3 dry runs watch this activity to
        identify allocator entry points behaviourally; firmware whose
        boot path allocates little would otherwise be unprobeable
        without manual hints (§3.2).
        """

    # ------------------------------------------------------------------
    def printk(self, ctx: GuestContext, text: str) -> None:
        """Write to the console UART through the bus, byte by byte."""
        uart = self.machine.uart
        if uart is None:
            for byte in text.encode():
                self.machine.vmcall(Hypercall.PUTC, [byte])
            return
        data_reg = uart.base + UART_DATA
        for byte in text.encode():
            ctx.machine.charge_guest(2)
            with ctx.bus.untraced():
                # device stores are uncached/uninstrumented in real kernels
                ctx.bus.store(data_reg, 1, byte)

    def panic(self, ctx: GuestContext, code: int) -> None:
        """Guest panic: raises :class:`repro.emulator.machine.GuestPanic`."""
        self.machine.vmcall(Hypercall.PANIC, [code])
