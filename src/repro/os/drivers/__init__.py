"""Guest-side device drivers for modeled peripherals (repro.periph).

These modules are installed only on ``driver``-surface builds
(``build_firmware(..., driver=True)``): installing a module allocates
guest text addresses, so adding one to the default build would shift
every later address and break default-census byte identity.
"""
