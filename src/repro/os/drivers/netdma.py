"""drivers/net/netdma: the guest driver for the ring-DMA peripheral.

The driver half of the ``driver`` fuzz surface: it owns a descriptor
ring in heap memory, a pool of rx buffers, and an ISR subscribed to the
device's interrupt line through the machine hook registry.  Fuzz
programs are sequences of its ops (init / raw register poke / submit /
spurious IRQ / teardown), so campaigns exercise exactly the paths
syscall fuzzing never reaches: ISR completion handling, ring refill,
and MMIO register programming.

Seeded defects (armed per firmware through the driver bug catalog):

* ``*_ring_oob`` — the ISR trusts the device's free-running completion
  count as a slot index without masking it by the ring size, so the
  fifth completion ever reads one descriptor past the ring allocation.
* ``*_desc_uaf`` — the ISR reads back a completed buffer's header
  *after* handing it to ``kfree`` (touch-after-free on the rx path).
* ``*_status_uninit`` — a spurious interrupt makes the ISR read the
  never-written ``seqno`` field of the status block instead of the
  initialized ``magic`` word (KMSAN-only; needs an EMBSAN-C build).

All three live behind ``bugs.enabled``, are reachable only through the
driver surface, and are detected via normal CPU loads in ISR context —
the DMA traffic itself is clean.
"""

from __future__ import annotations

from repro.emulator.events import EventKind
from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.periph.netdma import (
    NETDMA_CTRL,
    NETDMA_DOORBELL,
    NETDMA_IRQ_COMPLETE,
    NETDMA_IRQ_FORCE,
    NETDMA_IRQ_STATUS,
    NETDMA_RING_BASE,
    NETDMA_RING_COUNT,
    NETDMA_RING_HEAD,
    NETDMA_STATUS,
)
from repro.periph.ring import DESC_BYTES, DESC_OWNED

# driver-surface op numbers
OP_INIT = 1
OP_REG_WRITE = 2
OP_SUBMIT = 3
OP_FIRE_IRQ = 4
OP_TEARDOWN = 5

#: OP_REG_WRITE's selector -> register offset table (the raw-poke op
#: fuzzes the device's register state machine directly)
REG_SELECTORS = (
    NETDMA_RING_BASE,
    NETDMA_RING_COUNT,
    NETDMA_RING_HEAD,
    NETDMA_CTRL,
    NETDMA_STATUS,
    NETDMA_IRQ_STATUS,
    NETDMA_DOORBELL,
    NETDMA_IRQ_FORCE,
)

RING_SLOTS = 4
BUF_BYTES = 64
STATUS_BYTES = 16
#: status-block fields: word 0 is written at init, word 2 never is
STATUS_MAGIC_OFF = 0
STATUS_SEQNO_OFF = 8

ENOMEM = -12
EINVAL = -22


class NetDmaDriver(GuestModule):
    """Ring refill + ISR for :class:`repro.periph.netdma.NetDmaModel`."""

    def __init__(self, kernel, dev, bug_ids=None):
        super().__init__(name="netdma")
        self.location = "drivers/net/netdma"
        self.kernel = kernel
        self.dev = dev
        bug_ids = bug_ids or {}
        self.bug_oob = bug_ids.get("oob", "")
        self.bug_uaf = bug_ids.get("uaf", "")
        self.bug_uninit = bug_ids.get("uninit", "")
        # driver state (host attrs; the fork-server's repro.os walk
        # captures and restores them with the rest of the kernel)
        self.ring = 0
        self.scratch = 0
        self.status_blk = 0
        self.bufs = []
        self.head = 0
        self.completed = 0
        self.in_isr = False

    def on_install(self, ctx: GuestContext) -> None:
        reg = self.kernel.register_driver_op
        reg(OP_INIT, self.op_init, "netdma_init", ((0,), (0,), (0,)))
        reg(OP_REG_WRITE, self.op_reg_write, "netdma_reg_write",
            (tuple(range(len(REG_SELECTORS))), (), (0,)))
        reg(OP_SUBMIT, self.op_submit, "netdma_submit",
            ((0, 1, 2, 3), (0, 8, 60, 255), (0,)))
        reg(OP_FIRE_IRQ, self.op_fire_irq, "netdma_fire_irq",
            ((0,), (0,), (0,)))
        reg(OP_TEARDOWN, self.op_teardown, "netdma_teardown",
            ((0,), (0,), (0,)))
        ctx.machine.hooks.add(EventKind.INTERRUPT, self._on_irq)

    # ------------------------------------------------------------------
    # MMIO + buffer helpers
    # ------------------------------------------------------------------
    def _poke(self, ctx: GuestContext, offset: int, value: int) -> None:
        ctx.st32(self.dev.base + offset, value)

    def _peek(self, ctx: GuestContext, offset: int) -> int:
        return ctx.ld32(self.dev.base + offset)

    def _fill_buf(self, ctx: GuestContext, buf: int, tag: int) -> None:
        # fully initialize the rx buffer: the device DMA-reads all of
        # it, and KMSAN now watches DMA, so a partial fill would report
        for word in range(BUF_BYTES // 4):
            ctx.st32(buf + word * 4, (tag << 8) | word)

    # ------------------------------------------------------------------
    # driver ops (the fuzz surface)
    # ------------------------------------------------------------------
    @guestfn(name="netdma_init")
    def op_init(self, ctx: GuestContext, a0: int, a1: int, a2: int) -> int:
        """Allocate ring + buffers + status block, program the device."""
        if self.ring:
            self.op_teardown(ctx, 0, 0, 0)
        mm = self.kernel.mm
        ctx.cov(1)
        ring = mm.kmalloc(ctx, RING_SLOTS * DESC_BYTES)
        scratch = mm.kmalloc(ctx, RING_SLOTS * BUF_BYTES)
        status_blk = mm.kmalloc(ctx, STATUS_BYTES)
        if not (ring and scratch and status_blk):
            for addr in (ring, scratch, status_blk):
                if addr:
                    mm.kfree(ctx, addr)
            return ENOMEM
        ctx.memset(ring, 0, RING_SLOTS * DESC_BYTES)
        ctx.memset(scratch, 0, RING_SLOTS * BUF_BYTES)
        # only the magic word: the seqno field stays uninitialized,
        # which is exactly what the seeded spurious-IRQ bug reads
        ctx.st32(status_blk + STATUS_MAGIC_OFF, 0x4E444D41)
        bufs = []
        for slot in range(RING_SLOTS):
            buf = mm.kmalloc(ctx, BUF_BYTES)
            if not buf:
                for other in bufs:
                    mm.kfree(ctx, other)
                for addr in (ring, scratch, status_blk):
                    mm.kfree(ctx, addr)
                return ENOMEM
            self._fill_buf(ctx, buf, slot)
            bufs.append(buf)
        self.ring = ring
        self.scratch = scratch
        self.status_blk = status_blk
        self.bufs = bufs
        self.head = 0
        self.completed = 0
        self._poke(ctx, NETDMA_RING_BASE, ring)
        self._poke(ctx, NETDMA_RING_COUNT, RING_SLOTS)
        self._poke(ctx, NETDMA_RING_HEAD, 0)
        self._poke(ctx, NETDMA_CTRL, 1)
        return 0

    @guestfn(name="netdma_reg_write")
    def op_reg_write(self, ctx: GuestContext, sel: int, value: int,
                     a2: int) -> int:
        """Raw register poke: fuzz the device's register state machine."""
        offset = REG_SELECTORS[sel % len(REG_SELECTORS)]
        ctx.cov(2)
        self._poke(ctx, offset, value & 0xFFFFFFFF)
        return 0

    @guestfn(name="netdma_submit")
    def op_submit(self, ctx: GuestContext, n: int, length: int,
                  a2: int) -> int:
        """Fill descriptors, bump HEAD, ring the doorbell."""
        if not self.ring:
            return EINVAL
        n = 1 + (n % RING_SLOTS)
        length = 4 + (length % (BUF_BYTES - 3))
        ctx.cov(3)
        for _ in range(n):
            slot = self.head % RING_SLOTS
            desc = self.ring + slot * DESC_BYTES
            ctx.st32(desc + 0, self.bufs[slot])
            ctx.st32(desc + 4, self.scratch + slot * BUF_BYTES)
            ctx.st32(desc + 8, length)
            ctx.st32(desc + 12, DESC_OWNED)
            self.head += 1
        self._poke(ctx, NETDMA_RING_HEAD, self.head & 0xFFFFFFFF)
        # the doorbell store re-enters the ISR synchronously when the
        # completion interrupt is delivered un-dropped and un-delayed
        self._poke(ctx, NETDMA_DOORBELL, 1)
        return n

    @guestfn(name="netdma_fire_irq")
    def op_fire_irq(self, ctx: GuestContext, a0: int, a1: int,
                    a2: int) -> int:
        """Force a spurious interrupt (no completion behind it)."""
        if not self.ring:
            return EINVAL
        ctx.cov(4)
        self._poke(ctx, NETDMA_IRQ_FORCE, 1)
        return 0

    @guestfn(name="netdma_teardown")
    def op_teardown(self, ctx: GuestContext, a0: int, a1: int,
                    a2: int) -> int:
        """Quiesce the device and release every driver allocation."""
        if not self.ring:
            return EINVAL
        ctx.cov(5)
        self._poke(ctx, NETDMA_CTRL, 0)
        mm = self.kernel.mm
        for buf in self.bufs:
            if buf:
                mm.kfree(ctx, buf)
        mm.kfree(ctx, self.ring)
        mm.kfree(ctx, self.scratch)
        mm.kfree(ctx, self.status_blk)
        self.ring = self.scratch = self.status_blk = 0
        self.bufs = []
        self.head = 0
        self.completed = 0
        return 0

    # ------------------------------------------------------------------
    # interrupt path
    # ------------------------------------------------------------------
    def _on_irq(self, event) -> None:
        if event.irq != self.dev.irq.irq:
            return
        if self.ctx is None or not self.ring or self.in_isr:
            return
        self.in_isr = True
        try:
            self.isr(self.ctx)
        finally:
            self.in_isr = False

    @guestfn(name="netdma_isr")
    def isr(self, ctx: GuestContext) -> int:
        """Completion handler: ack, retire descriptors, refill buffers."""
        irq_status = self._peek(ctx, NETDMA_IRQ_STATUS)
        if not irq_status & NETDMA_IRQ_COMPLETE:
            ctx.cov(6)
            # spurious interrupt: sanity-check the status block — the
            # seeded bug reads the seqno field no path ever wrote
            if self.kernel.bugs.enabled(self.bug_uninit):
                offset = STATUS_SEQNO_OFF
            else:
                offset = STATUS_MAGIC_OFF
            ctx.ld32(self.status_blk + offset)
            return 0
        self._poke(ctx, NETDMA_IRQ_STATUS, NETDMA_IRQ_COMPLETE)
        count = self._peek(ctx, NETDMA_STATUS)
        ctx.cov(7)
        retired = 0
        mm = self.kernel.mm
        for _ in range(count):
            raw = self.completed
            if self.kernel.bugs.enabled(self.bug_oob):
                # trusts the device's free-running completion count as
                # a slot index: the fifth completion walks off the ring
                slot = raw
            else:
                slot = raw % RING_SLOTS
            ctx.ld32(self.ring + slot * DESC_BYTES + 12)
            slot = raw % RING_SLOTS
            old = self.bufs[slot]
            replacement = mm.kmalloc(ctx, BUF_BYTES)
            if replacement:
                mm.kfree(ctx, old)
                if self.kernel.bugs.enabled(self.bug_uaf):
                    # reads the retired buffer's header after kfree
                    ctx.ld32(old)
                self._fill_buf(ctx, replacement, slot)
                self.bufs[slot] = replacement
            self.completed = raw + 1
            retired += 1
        return retired
