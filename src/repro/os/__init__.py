"""Rehosted embedded operating system models.

Four OS families, matching the paper's evaluation targets:

* :mod:`repro.os.embedded_linux` — slab/buddy allocators, syscall table,
  VFS, networking and driver modules (OpenWRT/OpenHarmony firmware).
* :mod:`repro.os.freertos` — heap_4 allocator, tasks and queues
  (InfiniTime firmware).
* :mod:`repro.os.liteos` — LOS memory pools and a small VFS/FAT stack
  (OpenHarmony STM32 firmware).
* :mod:`repro.os.vxworks` — memPartLib plus closed-source network
  service binaries executed on the EVM32 ISA (TP-Link WDR-7660).
"""
