"""Rehosted Huawei LiteOS.

LOS memory pools (best-fit with guest-resident node headers), a small
VFS and FAT layer, and the task-API surface Tardis drives on the
OpenHarmony STM32 firmware.
"""

from repro.os.liteos.mempool import LosMemPool
from repro.os.liteos.kernel import LiteOsKernel, LiteOsOp

__all__ = ["LiteOsKernel", "LiteOsOp", "LosMemPool"]
