"""LiteOS fs/vfs: path resolution.

Table-4 defects (one per OpenHarmony STM32 firmware):

* ``t4_stm32mp1_vfs_oob`` / ``t4_stm32f407_vfs_oob`` — the path
  normalizer copies each path component into a fixed name buffer
  without bounding the component length.
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn

E_INVAL = -22
E_NOMEM = -12

_NAME_BUF_BYTES = 32


class LiteOsVfs(GuestModule):
    """A miniature LiteOS VFS."""

    location = "fs/vfs"

    def __init__(self, kernel, bug_id: str):
        super().__init__(name="liteos_vfs")
        self.kernel = kernel
        self.bug_id = bug_id
        self.lookups = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_app(1, self.handle)

    def handle(self, ctx: GuestContext, op: int, arg: int) -> int:
        if op == 1:
            return self.vfs_normalize_path(ctx, arg)
        return E_INVAL

    # ------------------------------------------------------------------
    @guestfn(name="vfs_normalize_path")
    def vfs_normalize_path(self, ctx: GuestContext, component_len: int) -> int:
        """Normalize a path with one ``component_len``-byte component."""
        component_len &= 0x7F
        if component_len == 0:
            return E_INVAL
        ctx.cov(1)
        name_buf = self.kernel.heap.los_mem_alloc(ctx, _NAME_BUF_BYTES)
        if name_buf == 0:
            return E_NOMEM
        limit = component_len if self.kernel.bugs.enabled(
            self.bug_id
        ) else min(component_len, _NAME_BUF_BYTES)
        for idx in range(limit):
            # the buggy normalizer never checks the component against
            # the fixed name buffer
            ctx.st8(name_buf + idx, 0x61 + (idx % 26))
        self.kernel.heap.los_mem_free(ctx, name_buf)
        self.lookups += 1
        return limit
