"""LiteOS fs/fat: FAT directory entries.

Table-4 defect: ``t4_stm32f407_fat_oob`` — the long-file-name assembler
reads LFN slots past the directory sector for names spanning the sector
boundary.
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn

E_INVAL = -22
E_NOMEM = -12

_SECTOR_BYTES = 128
_LFN_SLOT_BYTES = 32


class LiteOsFat(GuestModule):
    """A miniature FAT driver."""

    location = "fs/fat"

    def __init__(self, kernel):
        super().__init__(name="liteos_fat")
        self.kernel = kernel
        self.sector = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_app(2, self.handle)

    def handle(self, ctx: GuestContext, op: int, arg: int) -> int:
        if op == 1:
            return self.fat_mount(ctx)
        if op == 2:
            return self.fat_read_lfn(ctx, arg)
        return E_INVAL

    # ------------------------------------------------------------------
    @guestfn(name="fat_mount")
    def fat_mount(self, ctx: GuestContext) -> int:
        """Mount: cache one directory sector."""
        if self.sector:
            return E_INVAL
        sector = self.kernel.heap.los_mem_alloc(ctx, _SECTOR_BYTES)
        if sector == 0:
            return E_NOMEM
        ctx.memset(sector, 0x41, _SECTOR_BYTES)
        self.sector = sector
        ctx.cov(1)
        return 0

    @guestfn(name="fat_read_lfn")
    def fat_read_lfn(self, ctx: GuestContext, slots: int) -> int:
        """Assemble a long file name spanning ``slots`` LFN entries."""
        if self.sector == 0:
            return E_INVAL
        slots = max(1, slots & 0xF)
        ctx.cov(2)
        max_slots = _SECTOR_BYTES // _LFN_SLOT_BYTES
        count = slots if self.kernel.bugs.enabled(
            "t4_stm32f407_fat_oob"
        ) else min(slots, max_slots)
        checksum = 0
        for slot in range(count):
            # names spanning the sector boundary read past the cache
            checksum ^= ctx.ld32(self.sector + slot * _LFN_SLOT_BYTES)
        return checksum & 0x7FFFFFFF
