"""LOS memory pools: best-fit allocation with guest-resident headers.

Models LiteOS's ``LOS_MemAlloc``/``LOS_MemFree`` over one system pool:
each node carries a size-and-flag header word inside guest memory, a
free node additionally stores its next-free link, and frees coalesce
with the following node like the real implementation.
"""

from __future__ import annotations

from typing import List

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn

_HEADER_BYTES = 8
_USED_FLAG = 0x8000_0000
_ALIGN = 8


class LosMemPool(GuestModule):
    """The LiteOS system memory pool."""

    location = "kernel/base/mem"

    def __init__(self, base: int, size: int):
        super().__init__(name="los_mem")
        self.base = _align_up(base)
        self.size = size - (self.base - base)
        self.alloc_count = 0
        self.free_count = 0
        #: free node addresses, kept sorted (host index over guest nodes)
        self._free_nodes: List[int] = []

    def on_install(self, ctx: GuestContext) -> None:
        first = self.base
        ctx.raw_st32(first, self.size)  # node size, free
        ctx.raw_st32(first + 4, 0)
        self._free_nodes = [first]

    # ------------------------------------------------------------------
    @guestfn(name="LOS_MemAlloc", allocator="alloc")
    def los_mem_alloc(self, ctx: GuestContext, size: int) -> int:
        """Best-fit allocate ``size`` bytes from the pool."""
        if size <= 0:
            return 0
        if ctx.alloc_fault(size):
            return 0
        need = _align_up(size + _HEADER_BYTES)
        best = None
        best_size = 1 << 62
        for node in self._free_nodes:
            node_size = ctx.raw_ld32(node)
            if need <= node_size < best_size:
                best, best_size = node, node_size
        if best is None:
            return 0
        ctx.work(6)
        self._free_nodes.remove(best)
        if best_size - need >= _HEADER_BYTES * 2:
            tail = best + need
            ctx.raw_st32(tail, best_size - need)
            ctx.raw_st32(tail + 4, 0)
            self._free_nodes.append(tail)
            self._free_nodes.sort()
            ctx.raw_st32(best, need | _USED_FLAG)
        else:
            ctx.raw_st32(best, best_size | _USED_FLAG)
        self.alloc_count += 1
        addr = best + _HEADER_BYTES
        ctx.notify_alloc(addr, size, 0)
        return addr

    @guestfn(name="LOS_MemFree", allocator="free")
    def los_mem_free(self, ctx: GuestContext, addr: int) -> int:
        """Return a node to the pool, coalescing with the next node."""
        if addr == 0:
            return -1
        ctx.notify_free(addr)
        node = addr - _HEADER_BYTES
        word = ctx.raw_ld32(node)
        if not word & _USED_FLAG:
            self.free_count += 1
            return -1  # double free: the pool header is already clear
        size = word & ~_USED_FLAG
        ctx.raw_st32(node, size)
        self.free_count += 1
        ctx.work(6)
        # coalesce with the immediately following free node
        nxt = node + size
        if nxt in self._free_nodes:
            nxt_size = ctx.raw_ld32(nxt)
            ctx.raw_st32(node, size + nxt_size)
            self._free_nodes.remove(nxt)
        self._free_nodes.append(node)
        self._free_nodes.sort()
        return 0

    # ------------------------------------------------------------------
    def free_bytes(self, ctx: GuestContext) -> int:
        """Total free pool bytes (diagnostic)."""
        return sum(ctx.raw_ld32(node) for node in self._free_nodes)

    def check_invariants(self, ctx: GuestContext) -> None:
        """Free nodes must be sorted, in range, non-overlapping."""
        last_end = self.base
        for node in self._free_nodes:
            size = ctx.raw_ld32(node)
            assert node >= last_end - 0, "free nodes overlap"
            assert not size & _USED_FLAG, "free node flagged used"
            assert self.base <= node < self.base + self.size
            last_end = node + size


def _align_up(value: int) -> int:
    return (value + _ALIGN - 1) // _ALIGN * _ALIGN
