"""The rehosted LiteOS kernel."""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional

from repro.emulator.machine import Machine
from repro.guest.context import GuestContext
from repro.os.common import BugSwitchboard, KernelBase
from repro.os.liteos.mempool import LosMemPool

E_INVAL = -22
E_NOMEM = -12


class LiteOsOp(enum.IntEnum):
    """Executor-visible operations (the Tardis interface spec)."""

    MEM_ALLOC = 1
    MEM_FREE = 2
    TASK_CREATE = 3
    APP_OP = 4  #: a0 = app id, a1/a2 -> module


class LiteOsKernel(KernelBase):
    """LiteOS with the OpenHarmony STM32 application stack."""

    os_name = "liteos"

    def __init__(
        self,
        machine: Machine,
        version: str = "5.0",
        bugs: Optional[BugSwitchboard] = None,
    ):
        super().__init__(machine, bugs=bugs)
        self.version = version
        self.banner = f"Huawei LiteOS {version} (repro) entering scheduler."
        sram = machine.arch.region("dram")
        self.heap = LosMemPool(sram.base, min(sram.size, 1 << 21))
        self.add_module(self.heap)
        self.apps: Dict[int, Callable] = {}
        self._exec_allocs: Dict[int, int] = {}
        self.op_count = 0

    @property
    def mm(self):
        """Allocator alias shared across OS kernels."""
        return self.heap

    def register_app(self, app_id: int, handler: Callable) -> None:
        """Register an application module's operation handler."""
        self.apps[app_id] = handler

    def probe_workload(self, ctx: GuestContext) -> None:
        """Boot-time self-test: exercise the LOS memory pool."""
        objs = []
        for size in (24, 96, 200, 64):
            addr = self.heap.los_mem_alloc(ctx, size)
            if addr:
                ctx.st32(addr, size)
                ctx.st32(addr + 4, 0)
                objs.append(addr)
        for addr in objs:
            self.heap.los_mem_free(ctx, addr)

    # ------------------------------------------------------------------
    def invoke(self, ctx: GuestContext, op: int, a0: int = 0, a1: int = 0,
               a2: int = 0) -> int:
        """The executor entry point (Tardis's interface)."""
        self.op_count += 1
        # task-API trap entry/exit: uninstrumented guest boilerplate
        ctx.work(10)
        try:
            result = self._dispatch(ctx, op, a0, a1, a2)
        finally:
            self.sched.tick(ctx)
        return result

    def _dispatch(self, ctx: GuestContext, op: int, a0: int, a1: int,
                  a2: int) -> int:
        if op == LiteOsOp.MEM_ALLOC:
            addr = self.heap.los_mem_alloc(ctx, a0 & 0x3FF)
            if addr == 0:
                return E_NOMEM
            self._exec_allocs[len(self._exec_allocs) + 1] = addr
            return len(self._exec_allocs)
        if op == LiteOsOp.MEM_FREE:
            addr = self._exec_allocs.pop(a0, 0)
            if addr == 0:
                return E_INVAL
            return self.heap.los_mem_free(ctx, addr)
        if op == LiteOsOp.TASK_CREATE:
            tcb = self.heap.los_mem_alloc(ctx, 48)
            if tcb == 0:
                return E_NOMEM
            ctx.st32(tcb, a0 & 0xF)
            self._exec_allocs[len(self._exec_allocs) + 1] = tcb
            return len(self._exec_allocs)
        if op == LiteOsOp.APP_OP:
            handler = self.apps.get(a0)
            if handler is None:
                return E_INVAL
            return handler(ctx, a1, a2)
        return E_INVAL
