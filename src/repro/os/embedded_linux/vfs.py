"""Virtual filesystem layer: fd table, device nodes, struct file objects.

``struct file`` objects live in guest slab memory and are touched through
the bus, so lifetime bugs on them (the Table-2 ``filp_close`` and
``dev_uevent`` use-after-frees) produce genuine bad accesses a sanitizer
can catch.

Layout of the 64-byte guest ``struct file``::

    +0  dev_id     +4  refcount   +8  flags      +12 pos
    +16 private    +20 mode       +24..63 reserved
"""

from __future__ import annotations

from typing import Dict

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EBADF, EINVAL, ENODEV, ENOMEM

FILE_SIZE = 64
F_DEV = 0
F_REFCOUNT = 4
F_FLAGS = 8
F_POS = 12
F_PRIVATE = 16
F_MODE = 20


class DeviceNode:
    """Protocol driver modules implement to back a device file.

    All hooks are optional; defaults behave like a null device.
    """

    def dev_open(self, ctx: GuestContext, file: int) -> int:
        """Called with the new guest ``struct file``; nonzero fails open."""
        return 0

    def dev_release(self, ctx: GuestContext, file: int) -> None:
        """Called when the last reference drops."""

    def dev_read(self, ctx: GuestContext, file: int, size: int, off: int) -> int:
        """Returns bytes read or negative errno."""
        return 0

    def dev_write(self, ctx: GuestContext, file: int, size: int, seed: int) -> int:
        """Returns bytes written or negative errno."""
        return size

    def dev_ioctl(
        self, ctx: GuestContext, file: int, cmd: int, a2: int, a3: int
    ) -> int:
        """Returns result or negative errno."""
        return EINVAL


class NullConsoleDevice(GuestModule, DeviceNode):
    """``/dev/console``-style character device every build ships.

    Writes buffer into a kernel line buffer; reads drain it.  This is
    the uniform I/O path core workloads exercise on every firmware.
    """

    location = "drivers/char"

    _BUF_BYTES = 48

    def __init__(self, kernel):
        super().__init__(name="chardev")
        self.kernel = kernel
        self.buf = 0

    def late_init(self, ctx: GuestContext) -> None:
        self.buf = self.kernel.mm.kzalloc(ctx, self._BUF_BYTES)

    def dev_write(self, ctx: GuestContext, file: int, size: int, seed: int) -> int:
        if self.buf == 0:
            return EINVAL
        span = min(size, self._BUF_BYTES)
        user = self.kernel.user_payload(ctx, seed, span)
        for offset in range(0, span, 4):
            ctx.st32(self.buf + offset, ctx.ld32(user + offset))
        ctx.st32(file + F_POS, ctx.ld32(file + F_POS) + span)
        return span

    def dev_read(self, ctx: GuestContext, file: int, size: int, off: int) -> int:
        if self.buf == 0:
            return EINVAL
        span = min(size, self._BUF_BYTES)
        checksum = 0
        for offset in range(0, span, 4):
            checksum = (checksum + ctx.ld32(self.buf + offset)) & 0xFFFFFFFF
        return checksum & 0x7FFFFFFF


class Vfs(GuestModule):
    """File descriptor table and device registry."""

    location = "fs/vfs"

    def __init__(self, kernel):
        super().__init__(name="vfs")
        self.kernel = kernel
        self.devices: Dict[int, DeviceNode] = {}
        #: fd -> guest address of struct file
        self.fd_table: Dict[int, int] = {}
        self._next_fd = 3
        self.open_count = 0
        self.close_count = 0

    # ------------------------------------------------------------------
    def register_device(self, dev_id: int, node: DeviceNode) -> None:
        """Attach a driver's device node at ``dev_id``."""
        self.devices[dev_id] = node

    def file_of(self, fd: int) -> int:
        """Guest struct-file address for ``fd``, or 0."""
        return self.fd_table.get(fd, 0)

    # ------------------------------------------------------------------
    @guestfn(name="do_open")
    def do_open(self, ctx: GuestContext, dev_id: int) -> int:
        """Open a device node; returns fd or negative errno."""
        node = self.devices.get(dev_id)
        if node is None:
            return ENODEV
        file = self.kernel.mm.kmalloc(ctx, FILE_SIZE)
        if file == 0:
            return ENOMEM
        ctx.memset(file, 0, FILE_SIZE)
        ctx.st32(file + F_DEV, dev_id)
        ctx.st32(file + F_REFCOUNT, 1)
        rc = node.dev_open(ctx, file)
        if rc != 0:
            self.kernel.mm.kfree(ctx, file)
            return rc
        fd = self._next_fd
        self._next_fd += 1
        self.fd_table[fd] = file
        self.open_count += 1
        ctx.cov(1)
        return fd

    @guestfn(name="filp_close")
    def filp_close(self, ctx: GuestContext, fd: int) -> int:
        """Close an fd, dropping the struct-file reference."""
        file = self.fd_table.pop(fd, 0)
        if file == 0:
            return EBADF
        self.close_count += 1
        refs = ctx.ld32(file + F_REFCOUNT) - 1
        ctx.st32(file + F_REFCOUNT, refs)
        if refs <= 0:
            dev_id = ctx.ld32(file + F_DEV)
            node = self.devices.get(dev_id)
            if node is not None:
                node.dev_release(ctx, file)
            self.kernel.mm.kfree(ctx, file)
            if self.kernel.bugs.enabled("t2_16_filp_close"):
                # CVE-shaped 5.18 bug: flags read after the final fput
                ctx.ld32(file + F_FLAGS)
        ctx.cov(2)
        return 0

    @guestfn(name="vfs_read")
    def vfs_read(self, ctx: GuestContext, fd: int, size: int, off: int) -> int:
        """Dispatch a read to the backing device node."""
        file = self.fd_table.get(fd, 0)
        if file == 0:
            return EBADF
        node = self.devices.get(ctx.ld32(file + F_DEV))
        if node is None:
            return ENODEV
        ctx.cov(3)
        return node.dev_read(ctx, file, size & 0xFFFF, off)

    @guestfn(name="vfs_write")
    def vfs_write(self, ctx: GuestContext, fd: int, size: int, seed: int) -> int:
        """Dispatch a write to the backing device node."""
        file = self.fd_table.get(fd, 0)
        if file == 0:
            return EBADF
        node = self.devices.get(ctx.ld32(file + F_DEV))
        if node is None:
            return ENODEV
        ctx.st32(file + F_POS, ctx.ld32(file + F_POS) + (size & 0xFFFF))
        ctx.cov(4)
        return node.dev_write(ctx, file, size & 0xFFFF, seed)

    @guestfn(name="do_ioctl")
    def do_ioctl(self, ctx: GuestContext, fd: int, cmd: int, a2: int, a3: int) -> int:
        """Dispatch an ioctl to the backing device node."""
        file = self.fd_table.get(fd, 0)
        if file == 0:
            return EBADF
        node = self.devices.get(ctx.ld32(file + F_DEV))
        if node is None:
            return ENODEV
        ctx.cov(5)
        return node.dev_ioctl(ctx, file, cmd, a2, a3)

    # ------------------------------------------------------------------
    def close_all(self, ctx: GuestContext) -> None:
        """Release every open fd (end-of-program cleanup)."""
        for fd in sorted(self.fd_table):
            self.filp_close(ctx, fd)

    def open_fds(self):
        """Currently open fds (diagnostic)."""
        return sorted(self.fd_table)
