"""drivers/net/wireless/ath/ath9k: the HIF USB receive path.

Seeded defect: ``t2_21_ath9k_hif_usb_rx_cb`` — 5.19 UAF: the URB
completion callback touches the receive buffer after a disconnect freed
the device state.
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM
from repro.os.embedded_linux.vfs import DeviceNode

ATH9K_DEV_ID = 0x13
IOC_PLUG = 1
IOC_UNPLUG = 2
IOC_RX = 3

_HIF_STATE_BYTES = 88


class Ath9kUsbModule(GuestModule, DeviceNode):
    """A miniature ath9k_htc USB front end."""

    location = "drivers/net/wireless/ath/ath9k"

    def __init__(self, kernel):
        super().__init__(name="ath9k_usb")
        self.kernel = kernel
        self.hif_state = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.vfs.register_device(ATH9K_DEV_ID, self)

    def dev_ioctl(self, ctx: GuestContext, file: int, cmd: int,
                  a2: int, a3: int) -> int:
        if cmd == IOC_PLUG:
            return self.ath9k_hif_usb_probe(ctx)
        if cmd == IOC_UNPLUG:
            return self.ath9k_hif_usb_disconnect(ctx)
        if cmd == IOC_RX:
            return self.ath9k_hif_usb_rx_cb(ctx, a2)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="ath9k_hif_usb_probe")
    def ath9k_hif_usb_probe(self, ctx: GuestContext) -> int:
        """Device plugged in: allocate HIF state."""
        if self.hif_state:
            return EINVAL
        state = self.kernel.mm.kzalloc(ctx, _HIF_STATE_BYTES)
        if state == 0:
            return ENOMEM
        ctx.st32(state, 0x9171)  # device id
        self.hif_state = state
        ctx.cov(1)
        return 0

    @guestfn(name="ath9k_hif_usb_disconnect")
    def ath9k_hif_usb_disconnect(self, ctx: GuestContext) -> int:
        """Device unplugged: free HIF state (URBs may still complete)."""
        if self.hif_state == 0:
            return EINVAL
        self.kernel.mm.kfree(ctx, self.hif_state)
        if not self.kernel.bugs.enabled("t2_21_ath9k_hif_usb_rx_cb"):
            self.hif_state = 0
        # 5.19: in-flight URB callbacks keep the stale pointer
        ctx.cov(2)
        return 0

    @guestfn(name="ath9k_hif_usb_rx_cb")
    def ath9k_hif_usb_rx_cb(self, ctx: GuestContext, length: int) -> int:
        """URB completion: account the received frame."""
        if self.hif_state == 0:
            return EINVAL
        ctx.cov(3)
        # UAF read/write after disconnect (t2_21)
        frames = ctx.ld32(self.hif_state + 4) + 1
        ctx.st32(self.hif_state + 4, frames)
        ctx.st32(self.hif_state + 8, length & 0xFFFF)
        return frames
