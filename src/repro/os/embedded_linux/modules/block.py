"""block: bios, polling and the mq scheduler's request pools.

Seeded defects:

* ``t2_13_bio_poll`` — 5.18-rc6 UAF: polling touches a bio the
  completion path already freed.
* ``t2_14_blk_mq_sched_free_rqs`` — 5.18 UAF: the scheduler teardown
  walks a request array after the pool was released.
"""

from __future__ import annotations

from typing import Dict

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM
from repro.os.embedded_linux.vfs import DeviceNode

BLK_DEV_ID = 0x12
IOC_SUBMIT = 1
IOC_POLL = 2
IOC_COMPLETE = 3
IOC_SCHED_TEARDOWN = 4

_BIO_BYTES = 48
_RQ_POOL_ENTRIES = 8
_RQ_BYTES = 32


class BlockModule(GuestModule, DeviceNode):
    """A miniature block layer with an mq scheduler pool."""

    location = "block"

    def __init__(self, kernel):
        super().__init__(name="block")
        self.kernel = kernel
        #: bio cookie -> guest bio object
        self.bios: Dict[int, int] = {}
        self._next_cookie = 1
        self.rq_pool = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.vfs.register_device(BLK_DEV_ID, self)

    def late_init(self, ctx: GuestContext) -> None:
        """Allocate the scheduler request pool at boot."""
        self.rq_pool = self.kernel.mm.kzalloc(
            ctx, _RQ_POOL_ENTRIES * _RQ_BYTES
        )

    # ------------------------------------------------------------------
    def dev_ioctl(self, ctx: GuestContext, file: int, cmd: int,
                  a2: int, a3: int) -> int:
        if cmd == IOC_SUBMIT:
            return self.submit_bio(ctx, a2)
        if cmd == IOC_POLL:
            return self.bio_poll(ctx, a2)
        if cmd == IOC_COMPLETE:
            return self.bio_complete(ctx, a2)
        if cmd == IOC_SCHED_TEARDOWN:
            return self.blk_mq_sched_free_rqs(ctx)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="submit_bio")
    def submit_bio(self, ctx: GuestContext, sector: int) -> int:
        """Queue a bio; returns its poll cookie."""
        bio = self.kernel.mm.kzalloc(ctx, _BIO_BYTES)
        if bio == 0:
            return ENOMEM
        ctx.st32(bio, sector)
        ctx.st32(bio + 4, 0)  # not completed
        cookie = self._next_cookie
        self._next_cookie += 1
        self.bios[cookie] = bio
        ctx.cov(1)
        return cookie

    @guestfn(name="bio_complete")
    def bio_complete(self, ctx: GuestContext, cookie: int) -> int:
        """Complete a bio (frees it, like the irq completion path)."""
        bio = self.bios.get(cookie)
        if bio is None:
            return EINVAL
        ctx.st32(bio + 4, 1)
        self.kernel.mm.kfree(ctx, bio)
        if not self.kernel.bugs.enabled("t2_13_bio_poll"):
            del self.bios[cookie]
        # buggy kernels leave the cookie pointing at the dead bio
        ctx.cov(2)
        return 0

    @guestfn(name="bio_poll")
    def bio_poll(self, ctx: GuestContext, cookie: int) -> int:
        """Poll a bio for completion."""
        bio = self.bios.get(cookie)
        if bio is None:
            return EINVAL
        ctx.cov(3)
        return ctx.ld32(bio + 4)  # UAF read after completion (t2_13)

    @guestfn(name="blk_mq_sched_free_rqs")
    def blk_mq_sched_free_rqs(self, ctx: GuestContext) -> int:
        """Tear the scheduler request pool down."""
        if self.rq_pool == 0:
            return EINVAL
        pool = self.rq_pool
        self.kernel.mm.kfree(ctx, pool)
        self.rq_pool = 0
        if self.kernel.bugs.enabled("t2_14_blk_mq_sched_free_rqs"):
            # 5.18: the teardown walks the freed request array to drain
            # per-request flags
            ctx.cov(4)
            drained = 0
            for idx in range(_RQ_POOL_ENTRIES):
                drained += 1 if ctx.ld32(pool + idx * _RQ_BYTES) == 0 else 0
            return drained
        return _RQ_POOL_ENTRIES
