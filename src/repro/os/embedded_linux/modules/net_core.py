"""net/core: generic sockets and skb lifetime.

Table-4 defect: ``t4_mt7629_net_core_double_free`` — a send error path
consumes the skb that the caller also releases.
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM
from repro.os.embedded_linux.vfs import DeviceNode, F_PRIVATE

_SKB_BYTES = 64
_SOCK_BUF_BYTES = 128


class NetCoreModule(GuestModule, DeviceNode):
    """Generic socket family 1 (a loopback datagram socket)."""

    location = "net/core"

    def __init__(self, kernel):
        super().__init__(name="net_core")
        self.kernel = kernel
        self.tx_bytes = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_socket_family(1, self)

    # ------------------------------------------------------------------
    def dev_open(self, ctx: GuestContext, file: int) -> int:
        buf = self.kernel.mm.kzalloc(ctx, _SOCK_BUF_BYTES)
        if buf == 0:
            return ENOMEM
        ctx.st32(file + F_PRIVATE, buf)
        ctx.cov(1)
        return 0

    def dev_release(self, ctx: GuestContext, file: int) -> None:
        buf = ctx.ld32(file + F_PRIVATE)
        if buf:
            self.kernel.mm.kfree(ctx, buf)

    def dev_write(self, ctx: GuestContext, file: int, size: int, seed: int) -> int:
        return self.sock_sendmsg(ctx, file, size, seed)

    def dev_read(self, ctx: GuestContext, file: int, size: int, off: int) -> int:
        buf = ctx.ld32(file + F_PRIVATE)
        if buf == 0:
            return EINVAL
        size = min(size & 0x7F, _SOCK_BUF_BYTES)
        total = 0
        for offset in range(0, size, 4):
            total = (total + ctx.ld32(buf + offset)) & 0xFFFFFFFF
        ctx.cov(2)
        return total & 0x7FFFFFFF

    # ------------------------------------------------------------------
    @guestfn(name="sock_sendmsg")
    def sock_sendmsg(self, ctx: GuestContext, file: int, size: int,
                     seed: int) -> int:
        """Send a datagram: build an skb, loop it back, release it."""
        size = max(1, size & 0x7F)
        skb = self.kernel.mm.kmalloc(ctx, _SKB_BYTES)
        if skb == 0:
            return ENOMEM
        user = self.kernel.user_payload(ctx, seed, min(size, _SKB_BYTES))
        ctx.memcpy(skb, user, min(size, _SKB_BYTES))
        ctx.cov(3)
        undeliverable = bool(seed & 0x10)
        if undeliverable:
            # the device rejects the frame and consumes the skb ...
            self.kernel.mm.kfree(ctx, skb)
            if self.kernel.bugs.enabled("t4_mt7629_net_core_double_free"):
                # ... and the buggy error path frees it again
                ctx.cov(4)
                self.kernel.mm.kfree(ctx, skb)
            return EINVAL
        buf = ctx.ld32(file + F_PRIVATE)
        if buf:
            ctx.memcpy(buf, skb, min(size, _SOCK_BUF_BYTES))
        self.kernel.mm.kfree(ctx, skb)
        self.tx_bytes += size
        return size
