"""fs/fuse: request queue management.

Table-4 defect: ``t4_ipq807x_fuse_double_free`` — an interrupted request
is freed by both the abort path and the normal completion path.
"""

from __future__ import annotations

from typing import Dict

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM

OP_REQUEST = 1
OP_ABORT = 2
OP_COMPLETE = 3

_REQ_BYTES = 56


class FuseModule(GuestModule):
    """A miniature FUSE connection."""

    location = "fs/fuse"

    def __init__(self, kernel):
        super().__init__(name="fuse")
        self.kernel = kernel
        self.mounted = False
        #: request id -> guest request object
        self.requests: Dict[int, int] = {}
        self._next_req = 1

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_filesystem(5, self)

    def fs_mount(self, ctx: GuestContext, flags: int) -> int:
        self.mounted = True
        ctx.cov(1)
        return 0

    def fs_umount(self, ctx: GuestContext) -> int:
        self.mounted = False
        return 0

    def fs_op(self, ctx: GuestContext, op: int, a2: int, a3: int) -> int:
        if op == OP_REQUEST:
            return self.fuse_request(ctx, a2)
        if op == OP_ABORT:
            return self.fuse_abort(ctx, a2)
        if op == OP_COMPLETE:
            return self.fuse_complete(ctx, a2)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="fuse_request_alloc")
    def fuse_request(self, ctx: GuestContext, opcode: int) -> int:
        """Queue a request to the (simulated) userspace daemon."""
        if not self.mounted:
            return EINVAL
        req = self.kernel.mm.kzalloc(ctx, _REQ_BYTES)
        if req == 0:
            return ENOMEM
        ctx.st32(req, opcode & 0xFF)
        rid = self._next_req
        self._next_req += 1
        self.requests[rid] = req
        ctx.cov(2)
        return rid

    @guestfn(name="fuse_abort_conn")
    def fuse_abort(self, ctx: GuestContext, rid: int) -> int:
        """Abort an in-flight request."""
        req = self.requests.get(rid)
        if req is None:
            return EINVAL
        ctx.cov(3)
        ctx.st32(req + 4, 0xAB)  # aborted flag
        self.kernel.mm.kfree(ctx, req)
        if not self.kernel.bugs.enabled("t4_ipq807x_fuse_double_free"):
            del self.requests[rid]
        # buggy kernels leave the request on the processing list
        return 0

    @guestfn(name="fuse_request_end")
    def fuse_complete(self, ctx: GuestContext, rid: int) -> int:
        """Normal completion of a request."""
        req = self.requests.pop(rid, None)
        if req is None:
            return EINVAL
        ctx.cov(4)
        self.kernel.mm.kfree(ctx, req)  # double free after abort
        return 0
