"""drivers/bluetooth: HCI transport drivers.

Table-4 defects:

* ``t4_bcm63xx_bluetooth_oob`` — the HCI event demuxer indexes the
  handler table with the raw event code.
* ``t4_realtek_bt_uaf`` — the Realtek coredump worker touches the HCI
  device data after the driver detached.
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM
from repro.os.embedded_linux.vfs import DeviceNode

BT_DEV_ID = 0x40
BT_RTK_DEV_ID = 0x41

IOC_EVENT = 1
IOC_ATTACH = 2
IOC_DETACH = 3
IOC_COREDUMP = 4

_HANDLER_TABLE_ENTRIES = 16
_HCI_DATA_BYTES = 72


class BluetoothModule(GuestModule, DeviceNode):
    """A miniature HCI core plus the Realtek vendor hooks."""

    location = "drivers/bluetooth"

    def __init__(self, kernel, realtek: bool = False):
        super().__init__(name="bluetooth_rtk" if realtek else "bluetooth")
        self.kernel = kernel
        self.realtek = realtek
        self.handler_table = 0
        self.hci_data = 0

    def on_install(self, ctx: GuestContext) -> None:
        dev = BT_RTK_DEV_ID if self.realtek else BT_DEV_ID
        self.kernel.vfs.register_device(dev, self)

    def late_init(self, ctx: GuestContext) -> None:
        """Allocate the event handler table at boot."""
        self.handler_table = self.kernel.mm.kzalloc(
            ctx, _HANDLER_TABLE_ENTRIES * 4
        )

    # ------------------------------------------------------------------
    def dev_write(self, ctx: GuestContext, file: int, size: int, seed: int) -> int:
        """HCI command stream: dispatch one event per 4 payload bytes."""
        events = max(1, min(size, 32) // 4)
        for idx in range(events):
            self.hci_event(ctx, (seed + idx) % 8)
        return size

    def dev_ioctl(self, ctx: GuestContext, file: int, cmd: int,
                  a2: int, a3: int) -> int:
        if cmd == IOC_EVENT:
            return self.hci_event(ctx, a2)
        if cmd == IOC_ATTACH:
            return self.rtk_attach(ctx)
        if cmd == IOC_DETACH:
            return self.rtk_detach(ctx)
        if cmd == IOC_COREDUMP:
            return self.rtk_coredump(ctx)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="hci_event")
    def hci_event(self, ctx: GuestContext, code: int) -> int:
        """Dispatch an HCI event through the handler table."""
        if self.handler_table == 0:
            return EINVAL
        ctx.cov(1)
        if self.kernel.bugs.enabled("t4_bcm63xx_bluetooth_oob"):
            index = code & 0x1F  # raw event code: up to 31
        else:
            index = code % _HANDLER_TABLE_ENTRIES
        # OOB read of the handler slot when index >= table entries
        handler = ctx.ld32(self.handler_table + index * 4)
        ctx.st32(self.handler_table + (index % _HANDLER_TABLE_ENTRIES) * 4,
                 handler + 1)
        return handler & 0x7FFFFFFF

    @guestfn(name="rtk_attach")
    def rtk_attach(self, ctx: GuestContext) -> int:
        """Attach the Realtek vendor driver."""
        if not self.realtek or self.hci_data:
            return EINVAL
        data = self.kernel.mm.kzalloc(ctx, _HCI_DATA_BYTES)
        if data == 0:
            return ENOMEM
        self.hci_data = data
        ctx.cov(2)
        return 0

    @guestfn(name="rtk_detach")
    def rtk_detach(self, ctx: GuestContext) -> int:
        """Detach the vendor driver, freeing its device data."""
        if self.hci_data == 0:
            return EINVAL
        self.kernel.mm.kfree(ctx, self.hci_data)
        if not self.kernel.bugs.enabled("t4_realtek_bt_uaf"):
            self.hci_data = 0
        # the buggy driver leaves the coredump worker armed
        ctx.cov(3)
        return 0

    @guestfn(name="rtk_coredump")
    def rtk_coredump(self, ctx: GuestContext) -> int:
        """The deferred coredump worker runs."""
        if self.hci_data == 0:
            return EINVAL
        ctx.cov(4)
        state = ctx.ld32(self.hci_data)  # UAF after detach
        ctx.st32(self.hci_data + 4, state + 1)
        return state
