"""drivers/video/fbdev + fbcon: framebuffer blitting and console fonts.

Seeded defects:

* ``t2_10_imageblit`` — 5.19 slab OOB: the software blitter writes one
  extra scanline when the image height is not a multiple of the pattern
  height.
* ``t2_24_fbcon_get_font`` — 5.7-rc5 **global** OOB: the font copy reads
  past the built-in font table for oversized font heights.  Only
  redzone-carrying builds (EMBSAN-C, native KASAN) can catch this; it is
  one of the two Table-2 rows EMBSAN-D misses.
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM
from repro.os.embedded_linux.vfs import DeviceNode

FB_DEV_ID = 0x10
FONT_GET = 1
FONT_SET = 2

_FB_WIDTH = 64
_FB_STRIDE = _FB_WIDTH // 8  #: 1bpp scanline bytes
_FONT_BYTES = 128  #: the built-in 8x16 font: 8 glyphs


class FbdevModule(GuestModule, DeviceNode):
    """A miniature framebuffer + console-font path."""

    location = "drivers/video/fbdev"

    def __init__(self, kernel):
        super().__init__(name="fbdev")
        self.kernel = kernel
        self.font_addr = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.vfs.register_device(FB_DEV_ID, self)
        self.kernel.register_handler("font", self.handle_font)
        self.font_addr = self.declare_global(ctx, "fbcon_builtin_font", _FONT_BYTES)
        ctx.raw_write(
            self.font_addr, bytes((i * 37) & 0xFF for i in range(_FONT_BYTES))
        )

    # ------------------------------------------------------------------
    # framebuffer device
    # ------------------------------------------------------------------
    def dev_ioctl(self, ctx: GuestContext, file: int, cmd: int,
                  a2: int, a3: int) -> int:
        if cmd == 1:
            return self.sys_imageblit(ctx, a2, a3)
        return EINVAL

    @guestfn(name="sys_imageblit")
    def sys_imageblit(self, ctx: GuestContext, height: int, pattern: int) -> int:
        """Blit a 1bpp image of ``height`` scanlines into a scratch fb."""
        height &= 0x3F
        if height == 0:
            return EINVAL
        ctx.cov(1)
        fb = self.kernel.mm.kmalloc(ctx, height * _FB_STRIDE)
        if fb == 0:
            return ENOMEM
        lines = height
        if (height % 4) and self.kernel.bugs.enabled("t2_10_imageblit"):
            # 5.19: pattern-height rounding writes one extra scanline
            ctx.cov(2)
            lines = height + 1
        for line in range(lines):
            for byte in range(0, _FB_STRIDE, 4):
                ctx.st32(fb + line * _FB_STRIDE + byte, pattern)
        self.kernel.mm.kfree(ctx, fb)
        return lines

    # ------------------------------------------------------------------
    # console font path
    # ------------------------------------------------------------------
    def handle_font(self, ctx: GuestContext, op: int, a1: int, a2: int) -> int:
        if op == FONT_GET:
            return self.fbcon_get_font(ctx, a1)
        if op == FONT_SET:
            return EINVAL  # read-only built-in font
        return EINVAL

    @guestfn(name="fbcon_get_font")
    def fbcon_get_font(self, ctx: GuestContext, height: int) -> int:
        """Copy the built-in console font for a ``height``-pixel face."""
        height &= 0x3F
        if height == 0:
            return EINVAL
        ctx.cov(3)
        glyphs = 8
        span = glyphs * height  # bytes to copy from the font table
        if not self.kernel.bugs.enabled("t2_24_fbcon_get_font"):
            span = min(span, _FONT_BYTES)
        out = self.kernel.mm.kmalloc(ctx, max(span, 1))
        if out == 0:
            return ENOMEM
        checksum = 0
        for offset in range(0, span, 4):
            # 5.7-rc5: heights > 16 read past the global font table —
            # only a global redzone makes this visible
            word = ctx.ld32(self.font_addr + offset)
            ctx.st32(out + offset, word)
            checksum ^= word
        self.kernel.mm.kfree(ctx, out)
        return checksum & 0x7FFFFFFF
