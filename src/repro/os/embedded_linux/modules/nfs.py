"""fs/nfs and fs/nfs_common: RPC reply parsing and ACL translation.

Table-4 defects, armed per firmware:

* ``t4_nfs_common_oob`` — the ACL translator in nfs_common writes one
  entry past the converted array for ACLs with a default-entry tail
  (seen on OpenWRT-armvirt and OpenHarmony-rk3566).
* ``t4_nfs_oob`` — the readdir reply parser trusts the server's entry
  length and reads past the reply page (seen on OpenWRT-mt7629 and
  OpenHarmony-rk3566).
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM

OP_READDIR = 1
OP_SETACL = 2

_REPLY_BYTES = 128
_ACL_ENTRY_BYTES = 12


class NfsModule(GuestModule):
    """A miniature NFS client (fs/nfs + fs/nfs_common)."""

    location = "fs/nfs"

    def __init__(self, kernel):
        super().__init__(name="nfs")
        self.kernel = kernel
        self.mounted = False

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_filesystem(4, self)

    def fs_mount(self, ctx: GuestContext, flags: int) -> int:
        self.mounted = True
        ctx.cov(1)
        return 0

    def fs_umount(self, ctx: GuestContext) -> int:
        self.mounted = False
        return 0

    def fs_op(self, ctx: GuestContext, op: int, a2: int, a3: int) -> int:
        if op == OP_READDIR:
            return self.nfs_readdir(ctx, a2)
        if op == OP_SETACL:
            return self.nfsacl_encode(ctx, a2)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="nfs_readdir")
    def nfs_readdir(self, ctx: GuestContext, entry_len: int) -> int:
        """Parse a READDIR reply page."""
        if not self.mounted:
            return EINVAL
        ctx.cov(2)
        reply = self.kernel.mm.kmalloc(ctx, _REPLY_BYTES)
        if reply == 0:
            return ENOMEM
        ctx.memset(reply, 0x2F, _REPLY_BYTES)
        declared = entry_len & 0xFF
        limit = declared if self.kernel.bugs.enabled(
            "t4_nfs_oob"
        ) else min(declared, _REPLY_BYTES)
        names = 0
        for offset in range(0, limit, 8):
            # the buggy parser walks the server-declared entry length
            if ctx.ld32(reply + offset) != 0:
                names += 1
        self.kernel.mm.kfree(ctx, reply)
        return names

    @guestfn(name="nfsacl_encode")
    def nfsacl_encode(self, ctx: GuestContext, nr_entries: int) -> int:
        """Translate a POSIX ACL into the NFS wire format."""
        if not self.mounted:
            return EINVAL
        nr_entries &= 0xF
        if nr_entries == 0:
            return EINVAL
        ctx.cov(3)
        out = self.kernel.mm.kmalloc(ctx, nr_entries * _ACL_ENTRY_BYTES)
        if out == 0:
            return ENOMEM
        entries = nr_entries
        if self.kernel.bugs.enabled("t4_nfs_common_oob"):
            # nfs_common appends the default-entry terminator without
            # having counted it in the allocation
            ctx.cov(4)
            entries = nr_entries + 1
        for idx in range(entries):
            base = out + idx * _ACL_ENTRY_BYTES
            ctx.st32(base, idx)
            ctx.st32(base + 4, 0o644)
            ctx.st32(base + 8, 1000 + idx)
        self.kernel.mm.kfree(ctx, out)
        return entries
