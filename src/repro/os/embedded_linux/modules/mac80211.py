"""net/wireless + net/mac80211: wiphy registration and scanning.

Seeded defects:

* ``t2_02_ieee80211_scan_rx`` — 5.19 UAF: a scan result lands after the
  scan request was aborted and freed.
* ``t4_armvirt_net_wireless_oob`` — new bug (OpenWRT-armvirt): the BSS
  information-element parser trusts the element length field and reads
  past the received frame buffer.
"""

from __future__ import annotations

from typing import Dict

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM

_SCAN_REQ_BYTES = 96
_FRAME_BYTES = 64


class Mac80211Module(GuestModule):
    """A miniature cfg80211/mac80211 scan path."""

    location = "net/wireless"

    def __init__(self, kernel):
        super().__init__(name="mac80211")
        self.kernel = kernel
        #: wiphy id -> in-flight scan request buffer (0 = none)
        self.scan_reqs: Dict[int, int] = {}
        self.results = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_handler("scan", self.handle)

    # ------------------------------------------------------------------
    def handle(self, ctx: GuestContext, op: int, a1: int, a2: int) -> int:
        if op == 1:
            return self.ieee80211_request_scan(ctx, a1)
        if op == 2:
            return self.ieee80211_scan_rx(ctx, a1, a2)
        if op == 3:
            return self.ieee80211_scan_abort(ctx, a1)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="ieee80211_request_scan")
    def ieee80211_request_scan(self, ctx: GuestContext, wiphy: int) -> int:
        """Start a scan on a wiphy; allocates the request object."""
        wiphy &= 0x7
        if self.scan_reqs.get(wiphy):
            return EINVAL
        req = self.kernel.mm.kzalloc(ctx, _SCAN_REQ_BYTES)
        if req == 0:
            return ENOMEM
        ctx.st32(req, wiphy)
        ctx.st32(req + 4, 1)  # state = scanning
        self.scan_reqs[wiphy] = req
        ctx.cov(1)
        return 0

    @guestfn(name="ieee80211_scan_abort")
    def ieee80211_scan_abort(self, ctx: GuestContext, wiphy: int) -> int:
        """Abort an in-flight scan, freeing the request."""
        wiphy &= 0x7
        req = self.scan_reqs.get(wiphy)
        if not req:
            return EINVAL
        self.kernel.mm.kfree(ctx, req)
        if self.kernel.bugs.enabled("t2_02_ieee80211_scan_rx"):
            # 5.19: the abort path forgets to clear local->scan_req
            pass
        else:
            self.scan_reqs[wiphy] = 0
        ctx.cov(2)
        return 0

    @guestfn(name="ieee80211_scan_rx")
    def ieee80211_scan_rx(self, ctx: GuestContext, wiphy: int, ie_len: int) -> int:
        """Deliver a probe-response frame to the scan machinery."""
        wiphy &= 0x7
        req = self.scan_reqs.get(wiphy)
        if not req:
            return EINVAL
        ctx.cov(3)
        # UAF when the request was freed by a racing abort (t2_02)
        state = ctx.ld32(req + 4)
        ctx.st32(req + 8, ctx.ld32(req + 8) + 1)
        frame = self.kernel.mm.kmalloc(ctx, _FRAME_BYTES)
        if frame == 0:
            return ENOMEM
        ctx.memset(frame, 0xAA, _FRAME_BYTES)
        declared = ie_len & 0x7F
        limit = declared if self.kernel.bugs.enabled(
            "t4_armvirt_net_wireless_oob"
        ) else min(declared, _FRAME_BYTES)
        checksum = 0
        for offset in range(0, limit, 4):
            # new-bug OOB read: the IE walk trusts the declared length
            checksum ^= ctx.ld32(frame + offset)
        self.kernel.mm.kfree(ctx, frame)
        self.results += 1
        return checksum & 0x7FFFFFFF if state else 0
