"""fs/btrfs: device scanning, extent records and the transaction kthread.

Seeded defects:

* ``t2_04_btrfs_scan_one_device`` — 5.17 UAF: device scan reads the
  superblock buffer after an error path freed it.
* ``t4_bcm63xx_btrfs_uaf`` — new bug: an extent record freed on error is
  still linked on the dirty list and touched at commit.
* ``t4_x86_64_btrfs_race1`` / ``t4_x86_64_btrfs_race2`` — new bugs: the
  transaction kthread and the syscall path update ``fs_info`` counters
  without marking, racing on the generation and dirty-bytes words.
"""

from __future__ import annotations

from typing import List

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM

_SUPERBLOCK_BYTES = 256
_EXTENT_BYTES = 48

OP_SCAN = 1
OP_ALLOC_EXTENT = 2
OP_COMMIT = 3
OP_SYNC = 4


class BtrfsModule(GuestModule):
    """A miniature btrfs with a background transaction kthread."""

    location = "fs/btrfs"

    def __init__(self, kernel):
        super().__init__(name="btrfs")
        self.kernel = kernel
        self.fs_info = 0  #: guest address of the fs_info counters block
        self.extents: List[int] = []
        self.mounted = False
        self._kthread_started = False

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_filesystem(1, self)
        # fs_info: +0 generation, +4 dirty bytes, +8 commit count
        self.fs_info = self.declare_global(ctx, "btrfs_fs_info", 32)

    # ------------------------------------------------------------------
    def fs_mount(self, ctx: GuestContext, flags: int) -> int:
        self.mounted = True
        if not self._kthread_started:
            # exactly one transaction kthread, parked across umounts —
            # respawning on remount would race a stale instance
            self._kthread_started = True
            self.kernel.spawn_kthread("btrfs-transaction", self._transaction_kthread)
        ctx.cov(1)
        return 0

    def fs_umount(self, ctx: GuestContext) -> int:
        self.mounted = False
        return 0

    def fs_op(self, ctx: GuestContext, op: int, a2: int, a3: int) -> int:
        if op == OP_SCAN:
            return self.btrfs_scan_one_device(ctx, a2)
        if op == OP_ALLOC_EXTENT:
            return self.btrfs_alloc_extent(ctx, a2)
        if op == OP_COMMIT:
            return self.btrfs_commit(ctx)
        if op == OP_SYNC:
            return self.btrfs_sync(ctx)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="btrfs_scan_one_device")
    def btrfs_scan_one_device(self, ctx: GuestContext, flags: int) -> int:
        """Probe a candidate device's superblock."""
        sb = self.kernel.mm.kmalloc(ctx, _SUPERBLOCK_BYTES)
        if sb == 0:
            return ENOMEM
        ctx.memset(sb, 0, 64)
        ctx.st32(sb, 0x4D5F53FB)  # btrfs magic
        bad_magic = bool(flags & 0x4)
        if bad_magic:
            self.kernel.mm.kfree(ctx, sb)
            if self.kernel.bugs.enabled("t2_04_btrfs_scan_one_device"):
                # 5.17: the error path re-reads the freed superblock to
                # log the mismatched magic
                ctx.cov(2)
                return ctx.ld32(sb) & 0x7FFFFFFF
            return EINVAL
        magic = ctx.ld32(sb)
        self.kernel.mm.kfree(ctx, sb)
        ctx.cov(3)
        return 0 if magic == 0x4D5F53FB else EINVAL

    @guestfn(name="btrfs_alloc_extent")
    def btrfs_alloc_extent(self, ctx: GuestContext, length: int) -> int:
        """Record a new extent and account its dirty bytes."""
        if not self.mounted:
            return EINVAL
        extent = self.kernel.mm.kzalloc(ctx, _EXTENT_BYTES)
        if extent == 0:
            return ENOMEM
        length &= 0xFFFF
        ctx.st32(extent, length)
        over_quota = length > 0xF000
        if over_quota:
            self.kernel.mm.kfree(ctx, extent)
            if not self.kernel.bugs.enabled("t4_bcm63xx_btrfs_uaf"):
                return EINVAL
            # new bug: the freed extent stays on the dirty list
        self.extents.append(extent)
        # dirty-bytes accounting: racy plain store in the buggy builds
        if self.kernel.bugs.enabled("t4_x86_64_btrfs_race2"):
            ctx.cov(4)
            dirty = ctx.ld32(self.fs_info + 4)
            ctx.st32(self.fs_info + 4, (dirty + length) & 0xFFFFFFFF)
        else:
            ctx.atomic_add32(self.fs_info + 4, length)
        return len(self.extents)

    @guestfn(name="btrfs_commit")
    def btrfs_commit(self, ctx: GuestContext) -> int:
        """Commit dirty extents (touches every record: UAF amplifier)."""
        committed = 0
        for extent in self.extents:
            ctx.cov(5)
            size = ctx.ld32(extent)  # UAF read when t4 bug armed
            ctx.st32(extent + 4, 1)
            committed += 1 if size else 0
        self.extents.clear()
        ctx.atomic_st32(self.fs_info + 4, 0)
        return committed

    @guestfn(name="btrfs_sync")
    def btrfs_sync(self, ctx: GuestContext) -> int:
        """Bump the generation from the syscall side."""
        if self.kernel.bugs.enabled("t4_x86_64_btrfs_race1"):
            ctx.cov(6)
            gen = ctx.ld32(self.fs_info)  # plain access: races with kthread
            ctx.st32(self.fs_info, (gen + 1) & 0xFFFFFFFF)
            return gen
        return ctx.atomic_add32(self.fs_info, 1)

    # ------------------------------------------------------------------
    def _transaction_kthread(self, ctx: GuestContext):
        """Background commit loop (generator body for the scheduler)."""
        while True:
            if not self.mounted:
                yield
                continue
            if self.kernel.bugs.enabled("t4_x86_64_btrfs_race1"):
                gen = ctx.ld32(self.fs_info)
                ctx.st32(self.fs_info, (gen + 1) & 0xFFFFFFFF)
            else:
                ctx.atomic_add32(self.fs_info, 1)
            if self.kernel.bugs.enabled("t4_x86_64_btrfs_race2"):
                ctx.st32(self.fs_info + 4, 0)
            else:
                ctx.atomic_st32(self.fs_info + 4, 0)
            ctx.st32(self.fs_info + 8, ctx.ld32(self.fs_info + 8) + 1)
            yield
