"""fs/nilfs2: metadata files.

Seeded defect: ``t2_23_nilfs_mdt_destroy`` — 6.0-rc7 UAF: destroying a
metadata file races with a shadow-map that still points at the mdt info
structure.
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM

OP_MDT_CREATE = 1
OP_MDT_DESTROY = 2
OP_MDT_WRITE = 3

_MDT_BYTES = 64


class NilfsModule(GuestModule):
    """A miniature nilfs2 metadata-file layer."""

    location = "fs/nilfs2"

    def __init__(self, kernel):
        super().__init__(name="nilfs2")
        self.kernel = kernel
        self.mdt = 0
        self.mounted = False

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_filesystem(3, self)

    def fs_mount(self, ctx: GuestContext, flags: int) -> int:
        self.mounted = True
        ctx.cov(1)
        return 0

    def fs_umount(self, ctx: GuestContext) -> int:
        self.mounted = False
        return 0

    def fs_op(self, ctx: GuestContext, op: int, a2: int, a3: int) -> int:
        if op == OP_MDT_CREATE:
            return self.nilfs_mdt_create(ctx)
        if op == OP_MDT_DESTROY:
            return self.nilfs_mdt_destroy(ctx)
        if op == OP_MDT_WRITE:
            return self.nilfs_mdt_write(ctx, a2)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="nilfs_mdt_create")
    def nilfs_mdt_create(self, ctx: GuestContext) -> int:
        """Allocate the metadata-file info structure."""
        if not self.mounted or self.mdt:
            return EINVAL
        mdt = self.kernel.mm.kzalloc(ctx, _MDT_BYTES)
        if mdt == 0:
            return ENOMEM
        ctx.st32(mdt, 0x4E494C46)  # "NILF"
        self.mdt = mdt
        ctx.cov(2)
        return 0

    @guestfn(name="nilfs_mdt_destroy")
    def nilfs_mdt_destroy(self, ctx: GuestContext) -> int:
        """Destroy the metadata file."""
        if self.mdt == 0:
            return EINVAL
        mdt = self.mdt
        self.kernel.mm.kfree(ctx, mdt)
        if self.kernel.bugs.enabled("t2_23_nilfs_mdt_destroy"):
            # 6.0-rc7: the destroy path flushes the shadow map through
            # the just-freed mdt_info
            ctx.cov(3)
            ctx.st32(mdt + 4, 0)
            ctx.ld32(mdt)
        self.mdt = 0
        return 0

    @guestfn(name="nilfs_mdt_write")
    def nilfs_mdt_write(self, ctx: GuestContext, value: int) -> int:
        """Update the metadata file's dirty state."""
        if self.mdt == 0:
            return EINVAL
        ctx.st32(self.mdt + 8, value)
        ctx.cov(4)
        return 0
