"""drivers/net/ethernet/<vendor>: ring-buffer NIC drivers.

One parameterized driver class models the vendor NICs of Table 4; each
firmware instantiates the vendors it ships, arming that firmware's
seeded defects:

* ``*_oob`` — transmit path writes a padded frame into a ring slot
  sized for the unpadded length.
* ``*_oob2`` — receive path copies ``len + FCS`` bytes out of the ring.
* ``*_double_free`` — an error path frees the tx buffer that the
  completion path frees again.
"""

from __future__ import annotations

from typing import Dict

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM
from repro.os.embedded_linux.vfs import DeviceNode

#: vendor -> device id the firmware exposes for it
ETH_DEV_IDS: Dict[str, int] = {
    "marvell": 0x20,
    "realtek": 0x21,
    "atheros": 0x22,
    "broadcom": 0x23,
    "mediatek": 0x24,
    "stmicro": 0x25,
}

IOC_TX = 1
IOC_RX = 2
IOC_TX_ERR = 3
IOC_COMPLETE = 4

_PAD = 16  #: min-frame padding the buggy tx path forgets to allocate
_FCS = 4


class EthernetDriver(GuestModule, DeviceNode):
    """A vendor NIC with tx/rx rings carved from the slab."""

    def __init__(self, kernel, vendor: str):
        if vendor not in ETH_DEV_IDS:
            raise ValueError(f"unknown ethernet vendor {vendor!r}")
        super().__init__(name=f"eth_{vendor}")
        self.location = f"drivers/net/ethernet/{vendor}"
        self.kernel = kernel
        self.vendor = vendor
        self.dev_id = ETH_DEV_IDS[vendor]
        self.pending_tx = 0
        self.tx_count = 0
        self.rx_count = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.vfs.register_device(self.dev_id, self)

    def _bug(self, suffix: str) -> bool:
        return self.kernel.bugs.enabled(f"t4_{self.vendor}_eth_{suffix}")

    # ------------------------------------------------------------------
    def dev_ioctl(self, ctx: GuestContext, file: int, cmd: int,
                  a2: int, a3: int) -> int:
        if cmd == IOC_TX:
            return self.xmit(ctx, a2, a3)
        if cmd == IOC_RX:
            return self.rx_poll(ctx, a2)
        if cmd == IOC_TX_ERR:
            return self.xmit_error(ctx, a2)
        if cmd == IOC_COMPLETE:
            return self.tx_complete(ctx)
        return EINVAL

    def dev_write(self, ctx: GuestContext, file: int, size: int, seed: int) -> int:
        return self.xmit(ctx, size, seed)

    # ------------------------------------------------------------------
    @guestfn(name="eth_xmit")
    def xmit(self, ctx: GuestContext, length: int, seed: int) -> int:
        """Transmit one frame through a ring slot."""
        length = max(1, length & 0xFF)
        ctx.cov(1)
        slot = self.kernel.mm.kmalloc(ctx, length)
        if slot == 0:
            return ENOMEM
        user = self.kernel.user_payload(ctx, seed, length)
        ctx.memcpy(slot, user, length)
        if length < 60 and self._bug("oob"):
            # short frames are padded to the 60-byte minimum — but the
            # slot was sized for the raw length
            ctx.cov(2)
            for offset in range(length, length + _PAD):
                ctx.st8(slot + offset, 0)
        self.kernel.mm.kfree(ctx, slot)
        self.tx_count += 1
        return length

    @guestfn(name="eth_rx_poll")
    def rx_poll(self, ctx: GuestContext, length: int) -> int:
        """Receive one frame from the ring into a fresh skb."""
        length = max(4, length & 0xFF)
        ctx.cov(3)
        ring = self.kernel.mm.kmalloc(ctx, length)
        if ring == 0:
            return ENOMEM
        ctx.memset(ring, 0x5A, length)
        span = length + (_FCS if self._bug("oob2") else 0)
        checksum = 0
        # word-wise walk stays inside the frame; only the armed FCS
        # mistake reaches past the allocation
        for offset in range(0, span - 3, 4):
            checksum ^= ctx.ld32(ring + offset)
        self.kernel.mm.kfree(ctx, ring)
        self.rx_count += 1
        return checksum & 0x7FFFFFFF

    @guestfn(name="eth_xmit_error")
    def xmit_error(self, ctx: GuestContext, length: int) -> int:
        """A transmit that fails at the DMA-map stage."""
        length = max(1, length & 0xFF)
        ctx.cov(4)
        slot = self.kernel.mm.kmalloc(ctx, length)
        if slot == 0:
            return ENOMEM
        # DMA mapping "fails": the error path frees the buffer ...
        self.kernel.mm.kfree(ctx, slot)
        if self._bug("double_free"):
            # ... but leaves it queued for the completion handler
            self.pending_tx = slot
        return EINVAL

    @guestfn(name="eth_tx_complete")
    def tx_complete(self, ctx: GuestContext) -> int:
        """Completion interrupt: release the queued tx buffer."""
        if self.pending_tx == 0:
            return 0
        ctx.cov(5)
        slot, self.pending_tx = self.pending_tx, 0
        self.kernel.mm.kfree(ctx, slot)  # second free of the same slot
        return 1
