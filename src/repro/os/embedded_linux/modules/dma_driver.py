"""drivers/dma/<vendor>: DMA engine drivers.

Table-4 defects:

* ``t4_bcm2835_dma_oob`` — the control-block chain builder writes one
  descriptor past the allocated chain for transfers that end exactly on
  a burst boundary.
* ``t4_mediatek_dma_double_free`` — terminating a channel frees the
  in-flight descriptor that the completion path frees again.
"""

from __future__ import annotations

from typing import Dict

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM
from repro.os.embedded_linux.vfs import DeviceNode

DMA_DEV_IDS: Dict[str, int] = {"bcm2835": 0x51, "mediatek": 0x52}

IOC_ISSUE = 1
IOC_TERMINATE = 2
IOC_COMPLETE = 3

_CB_BYTES = 16
_BURST = 64


class DmaDriver(GuestModule, DeviceNode):
    """A vendor DMA engine with descriptor chains."""

    def __init__(self, kernel, vendor: str):
        if vendor not in DMA_DEV_IDS:
            raise ValueError(f"unknown dma vendor {vendor!r}")
        super().__init__(name=f"dma_{vendor}")
        self.location = f"drivers/dma/{vendor}"
        self.kernel = kernel
        self.vendor = vendor
        self.dev_id = DMA_DEV_IDS[vendor]
        self.inflight = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.vfs.register_device(self.dev_id, self)

    # ------------------------------------------------------------------
    def dev_ioctl(self, ctx: GuestContext, file: int, cmd: int,
                  a2: int, a3: int) -> int:
        if cmd == IOC_ISSUE:
            return self.issue(ctx, a2)
        if cmd == IOC_TERMINATE:
            return self.terminate(ctx)
        if cmd == IOC_COMPLETE:
            return self.complete(ctx)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="dma_issue")
    def issue(self, ctx: GuestContext, length: int) -> int:
        """Build and issue a control-block chain for ``length`` bytes."""
        length = max(1, length & 0xFFF)
        blocks = (length + _BURST - 1) // _BURST
        ctx.cov(1)
        chain = self.kernel.mm.kmalloc(ctx, blocks * _CB_BYTES)
        if chain == 0:
            return ENOMEM
        writes = blocks
        if length % _BURST == 0 and self.vendor == "bcm2835" and \
                self.kernel.bugs.enabled("t4_bcm2835_dma_oob"):
            # exact-burst transfers emit a spurious terminator block
            ctx.cov(2)
            writes = blocks + 1
        for idx in range(writes):
            ctx.st32(chain + idx * _CB_BYTES, min(length, _BURST))
            ctx.st32(chain + idx * _CB_BYTES + 4, idx)
            length = max(0, length - _BURST)
        if self.inflight:
            self.kernel.mm.kfree(ctx, self.inflight)
        self.inflight = chain
        return writes

    @guestfn(name="dma_terminate")
    def terminate(self, ctx: GuestContext) -> int:
        """Terminate the channel, dropping the in-flight descriptor."""
        if self.inflight == 0:
            return EINVAL
        ctx.cov(3)
        self.kernel.mm.kfree(ctx, self.inflight)
        if self.vendor == "mediatek" and \
                self.kernel.bugs.enabled("t4_mediatek_dma_double_free"):
            # the buggy terminate leaves the descriptor on the issued list
            return 0
        self.inflight = 0
        return 0

    @guestfn(name="dma_complete")
    def complete(self, ctx: GuestContext) -> int:
        """Completion interrupt: retire the in-flight descriptor."""
        if self.inflight == 0:
            return 0
        ctx.cov(4)
        chain, self.inflight = self.inflight, 0
        self.kernel.mm.kfree(ctx, chain)  # double free after terminate
        return 1
