"""drivers/net/wireless/<vendor>: vendor WLAN drivers.

Table-4 defects, armed per firmware:

* ``t4_<vendor>_wifi_uaf`` — the firmware-event handler touches the
  scan state freed by interface-down.
* ``t4_<vendor>_wifi_oob`` — the beacon parser trusts a length field
  and reads past the received management frame.
"""

from __future__ import annotations

from typing import Dict

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM
from repro.os.embedded_linux.vfs import DeviceNode

WIFI_DEV_IDS: Dict[str, int] = {
    "broadcom": 0x30,
    "ath": 0x31,
    "iwlwifi": 0x32,
    "b43": 0x33,
}

IOC_UP = 1
IOC_DOWN = 2
IOC_FW_EVENT = 3
IOC_BEACON = 4

_SCAN_STATE_BYTES = 80
_MGMT_FRAME_BYTES = 96


class WifiDriver(GuestModule, DeviceNode):
    """A vendor WLAN driver with scan state and a beacon parser."""

    def __init__(self, kernel, vendor: str):
        if vendor not in WIFI_DEV_IDS:
            raise ValueError(f"unknown wifi vendor {vendor!r}")
        super().__init__(name=f"wifi_{vendor}")
        self.location = f"drivers/net/wireless/{vendor}"
        self.kernel = kernel
        self.vendor = vendor
        self.dev_id = WIFI_DEV_IDS[vendor]
        self.scan_state = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.vfs.register_device(self.dev_id, self)

    def _bug(self, suffix: str) -> bool:
        return self.kernel.bugs.enabled(f"t4_{self.vendor}_wifi_{suffix}")

    # ------------------------------------------------------------------
    def dev_write(self, ctx: GuestContext, file: int, size: int, seed: int) -> int:
        """Transmit path: queue a management frame (benign lengths)."""
        return self.parse_beacon(ctx, min(size, _MGMT_FRAME_BYTES - 8))

    def dev_read(self, ctx: GuestContext, file: int, size: int, off: int) -> int:
        """Receive path: parse the next queued beacon."""
        return self.parse_beacon(ctx, min(size, 64))

    def dev_ioctl(self, ctx: GuestContext, file: int, cmd: int,
                  a2: int, a3: int) -> int:
        if cmd == IOC_UP:
            return self.ifup(ctx)
        if cmd == IOC_DOWN:
            return self.ifdown(ctx)
        if cmd == IOC_FW_EVENT:
            return self.fw_event(ctx, a2)
        if cmd == IOC_BEACON:
            return self.parse_beacon(ctx, a2)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="wifi_ifup")
    def ifup(self, ctx: GuestContext) -> int:
        """Bring the interface up, allocating scan state."""
        if self.scan_state:
            return EINVAL
        state = self.kernel.mm.kzalloc(ctx, _SCAN_STATE_BYTES)
        if state == 0:
            return ENOMEM
        ctx.st32(state, 1)  # if-up
        self.scan_state = state
        ctx.cov(1)
        return 0

    @guestfn(name="wifi_ifdown")
    def ifdown(self, ctx: GuestContext) -> int:
        """Bring the interface down, freeing scan state."""
        if self.scan_state == 0:
            return EINVAL
        self.kernel.mm.kfree(ctx, self.scan_state)
        if not self._bug("uaf"):
            self.scan_state = 0
        # the buggy drivers leave the event handler's pointer live
        ctx.cov(2)
        return 0

    @guestfn(name="wifi_fw_event")
    def fw_event(self, ctx: GuestContext, code: int) -> int:
        """Handle an asynchronous firmware event."""
        if self.scan_state == 0:
            return EINVAL
        ctx.cov(3)
        events = ctx.ld32(self.scan_state + 4) + 1  # UAF after ifdown
        ctx.st32(self.scan_state + 4, events)
        ctx.st32(self.scan_state + 8, code & 0xFFFF)
        return events

    @guestfn(name="wifi_parse_beacon")
    def parse_beacon(self, ctx: GuestContext, ie_len: int) -> int:
        """Parse a received beacon's information elements."""
        ctx.cov(4)
        frame = self.kernel.mm.kmalloc(ctx, _MGMT_FRAME_BYTES)
        if frame == 0:
            return ENOMEM
        ctx.memset(frame, 0xBE, _MGMT_FRAME_BYTES)
        declared = ie_len & 0xFF
        limit = declared if self._bug("oob") else min(declared, _MGMT_FRAME_BYTES)
        total = 0
        for offset in range(0, limit, 4):
            # buggy parsers honour the declared IE length
            total = (total + ctx.ld32(frame + offset)) & 0xFFFFFFFF
        self.kernel.mm.kfree(ctx, frame)
        return total & 0x7FFFFFFF
