"""kernel/bpf: ringbuf maps, XDP test runs and the JIT.

Carries three Table-2 defects:

* ``t2_01_ringbuf_map_alloc`` — 5.17-rc2 slab OOB: the ringbuf header
  write runs past the map allocation when the requested size has the
  page-count field in the high bits.
* ``t2_03_bpf_prog_test_run_xdp`` — 5.17-rc1 slab OOB: test-run copies
  ``size + headroom`` bytes into a buffer sized without headroom.
* ``t2_11_bpf_jit_free`` — 5.19-rc4 OOB: freeing a JIT image touches a
  tail descriptor computed from the *rounded* image size.
"""

from __future__ import annotations

from typing import Dict

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM

#: bpf(2) command numbers used by this module
BPF_RINGBUF_CREATE = 1
BPF_PROG_TEST_RUN_XDP = 2
BPF_PROG_LOAD = 3
BPF_PROG_UNLOAD = 4
BPF_MAP_LOOKUP = 5

_RINGBUF_HDR = 16
_XDP_HEADROOM = 32


class BpfModule(GuestModule):
    """A miniature BPF subsystem."""

    location = "kernel/bpf"

    def __init__(self, kernel):
        super().__init__(name="bpf")
        self.kernel = kernel
        #: map id -> (addr, data_size)
        self.maps: Dict[int, tuple] = {}
        #: prog id -> jit image addr
        self.progs: Dict[int, int] = {}
        self._next_id = 1

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_handler("bpf", self.handle)

    # ------------------------------------------------------------------
    def handle(self, ctx: GuestContext, cmd: int, a1: int, a2: int) -> int:
        if cmd == BPF_RINGBUF_CREATE:
            return self.ringbuf_map_alloc(ctx, a1)
        if cmd == BPF_PROG_TEST_RUN_XDP:
            return self.bpf_prog_test_run_xdp(ctx, a1, a2)
        if cmd == BPF_PROG_LOAD:
            return self.bpf_prog_load(ctx, a1)
        if cmd == BPF_PROG_UNLOAD:
            return self.bpf_jit_free(ctx, a1)
        if cmd == BPF_MAP_LOOKUP:
            return self.map_lookup(ctx, a1, a2)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="ringbuf_map_alloc")
    def ringbuf_map_alloc(self, ctx: GuestContext, size: int) -> int:
        """Create a ringbuf map; returns map id or -errno."""
        data_size = size & 0xFFF
        if data_size < 8:
            return EINVAL
        ctx.cov(1)
        total = _RINGBUF_HDR + data_size
        addr = self.kernel.mm.kmalloc(ctx, total)
        if addr == 0:
            return ENOMEM
        # header: producer/consumer positions + mask
        ctx.st32(addr, 0)
        ctx.st32(addr + 4, 0)
        ctx.st32(addr + 8, data_size - 1)
        if (size >> 12) and self.kernel.bugs.enabled("t2_01_ringbuf_map_alloc"):
            # 5.17-rc2: the page-aligned header write lands past the
            # allocation when the high size bits request extra pages
            ctx.cov(2)
            ctx.st32(addr + total, 0xDEAD)
        map_id = self._next_id
        self._next_id += 1
        self.maps[map_id] = (addr, data_size)
        return map_id

    @guestfn(name="bpf_prog_test_run_xdp")
    def bpf_prog_test_run_xdp(self, ctx: GuestContext, size: int, seed: int) -> int:
        """Run an XDP test frame of ``size`` bytes through a scratch buffer."""
        size &= 0x7FF
        if size == 0:
            return EINVAL
        ctx.cov(3)
        buf = self.kernel.mm.kmalloc(ctx, size)
        if buf == 0:
            return ENOMEM
        user = self.kernel.user_payload(ctx, seed, size)
        ctx.memcpy(buf, user, size)
        if self.kernel.bugs.enabled("t2_03_bpf_prog_test_run_xdp"):
            # 5.17-rc1: headroom added to the copy length but not to the
            # allocation; the tail of the copy crosses the redzone
            ctx.cov(4)
            ctx.memcpy(buf, user, size + _XDP_HEADROOM)
        checksum = 0
        for offset in range(0, min(size - 3, 64), 4):
            checksum ^= ctx.ld32(buf + offset)
        self.kernel.mm.kfree(ctx, buf)
        return checksum & 0x7FFFFFFF

    @guestfn(name="bpf_prog_load")
    def bpf_prog_load(self, ctx: GuestContext, insn_count: int) -> int:
        """JIT a program of ``insn_count`` instructions; returns prog id."""
        insn_count = max(1, insn_count & 0xFF)
        ctx.cov(5)
        image = self.kernel.mm.kmalloc(ctx, insn_count * 8)
        if image == 0:
            return ENOMEM
        for idx in range(insn_count):
            ctx.st32(image + idx * 8, 0x90 + idx)
        prog_id = self._next_id
        self._next_id += 1
        self.progs[prog_id] = (image, insn_count)
        return prog_id

    @guestfn(name="bpf_jit_free")
    def bpf_jit_free(self, ctx: GuestContext, prog_id: int) -> int:
        """Unload a program, releasing its JIT image."""
        entry = self.progs.pop(prog_id, None)
        if entry is None:
            return EINVAL
        image, insn_count = entry
        ctx.cov(6)
        if self.kernel.bugs.enabled("t2_11_bpf_jit_free"):
            # 5.19-rc4: the tail descriptor offset is computed from the
            # size rounded up to the next 64-byte line
            rounded = (insn_count * 8 + 63) & ~63
            ctx.ld32(image + rounded)
        self.kernel.mm.kfree(ctx, image)
        return 0

    @guestfn(name="bpf_map_lookup")
    def map_lookup(self, ctx: GuestContext, map_id: int, index: int) -> int:
        """Read one slot from a ringbuf map's data area."""
        entry = self.maps.get(map_id)
        if entry is None:
            return EINVAL
        addr, data_size = entry
        slot = (index % max(1, data_size // 4)) * 4
        ctx.cov(7)
        return ctx.ld32(addr + _RINGBUF_HDR + slot)
