"""drivers/block/floppy: raw command submission.

Seeded defect: ``t2_17_setup_rw_floppy`` — 5.17-rc4 UAF: a raw command
structure is freed on timeout while the interrupt handler still writes
its reply bytes into it.
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM

FD_RAW_CMD = 1
FD_RAW_REPLY = 2

_RAW_CMD_BYTES = 56


class FloppyModule(GuestModule):
    """A miniature floppy raw-command path."""

    location = "drivers/block/floppy"

    def __init__(self, kernel):
        super().__init__(name="floppy")
        self.kernel = kernel
        self.raw_cmd = 0
        self.timed_out = False

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_handler("floppy", self.handle)

    def handle(self, ctx: GuestContext, cmd: int, arg: int, _a2: int) -> int:
        if cmd == FD_RAW_CMD:
            return self.setup_rw_floppy(ctx, arg)
        if cmd == FD_RAW_REPLY:
            return self.floppy_interrupt(ctx, arg)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="setup_rw_floppy")
    def setup_rw_floppy(self, ctx: GuestContext, flags: int) -> int:
        """Submit a raw floppy command."""
        if self.raw_cmd:
            self.kernel.mm.kfree(ctx, self.raw_cmd)
            self.raw_cmd = 0
        cmd = self.kernel.mm.kzalloc(ctx, _RAW_CMD_BYTES)
        if cmd == 0:
            return ENOMEM
        ctx.st32(cmd, flags)
        self.raw_cmd = cmd
        self.timed_out = False
        ctx.cov(1)
        if flags & 0x8:
            # the drive "times out": 5.17-rc4 frees the command here but
            # leaves the interrupt handler armed
            self.timed_out = True
            self.kernel.mm.kfree(ctx, cmd)
            if not self.kernel.bugs.enabled("t2_17_setup_rw_floppy"):
                self.raw_cmd = 0
            ctx.cov(2)
            return EINVAL
        return 0

    @guestfn(name="floppy_interrupt")
    def floppy_interrupt(self, ctx: GuestContext, reply: int) -> int:
        """The controller raised its interrupt: store the reply bytes."""
        if self.raw_cmd == 0:
            return EINVAL
        ctx.cov(3)
        # UAF write when the timeout path freed raw_cmd (t2_17)
        ctx.st32(self.raw_cmd + 8, reply)
        ctx.st32(self.raw_cmd + 12, 0x80)
        return 0
