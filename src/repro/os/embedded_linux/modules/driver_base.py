"""drivers/base: driver registration and uevent emission.

Seeded defects:

* ``t2_18_driver_register`` — 5.18-next UAF: re-registering a driver
  whose earlier registration failed reuses the freed private node.
* ``t2_19_dev_uevent`` — 5.17-rc4 UAF: a uevent walks the device's
  driver structure while an unbind frees it.
"""

from __future__ import annotations

from typing import Dict

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM

SYSFS_REGISTER = 1
SYSFS_UNREGISTER = 2
SYSFS_UEVENT = 3
SYSFS_REREGISTER = 4

_DRIVER_PRIV_BYTES = 72


class DriverBaseModule(GuestModule):
    """A miniature driver core."""

    location = "drivers/base"

    def __init__(self, kernel):
        super().__init__(name="driver_base")
        self.kernel = kernel
        #: driver id -> private node address
        self.drivers: Dict[int, int] = {}
        self.failed_priv = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_handler("sysfs", self.handle)

    def handle(self, ctx: GuestContext, op: int, a1: int, a2: int) -> int:
        if op == SYSFS_REGISTER:
            return self.driver_register(ctx, a1, a2)
        if op == SYSFS_UNREGISTER:
            return self.driver_unregister(ctx, a1)
        if op == SYSFS_UEVENT:
            return self.dev_uevent(ctx, a1)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="driver_register")
    def driver_register(self, ctx: GuestContext, drv_id: int, fail: int) -> int:
        """Register a driver; ``fail`` nonzero simulates a probe failure."""
        drv_id &= 0xF
        ctx.cov(1)
        if self.failed_priv and self.kernel.bugs.enabled("t2_18_driver_register"):
            # 5.18-next: the retry path reuses the node freed by the
            # earlier failed registration
            ctx.cov(2)
            ctx.st32(self.failed_priv, drv_id)
            self.drivers[drv_id] = self.failed_priv
            self.failed_priv = 0
            return 0
        priv = self.kernel.mm.kzalloc(ctx, _DRIVER_PRIV_BYTES)
        if priv == 0:
            return ENOMEM
        ctx.st32(priv, drv_id)
        ctx.st32(priv + 4, 1)  # bound
        if fail:
            self.kernel.mm.kfree(ctx, priv)
            self.failed_priv = priv  # dangling retry pointer
            return EINVAL
        self.drivers[drv_id] = priv
        return 0

    @guestfn(name="driver_unregister")
    def driver_unregister(self, ctx: GuestContext, drv_id: int) -> int:
        """Unbind and release a driver."""
        drv_id &= 0xF
        priv = self.drivers.get(drv_id)
        if priv is None:
            return EINVAL
        self.kernel.mm.kfree(ctx, priv)
        if not self.kernel.bugs.enabled("t2_19_dev_uevent"):
            del self.drivers[drv_id]
        # buggy kernels leave the kobject's driver pointer dangling
        ctx.cov(3)
        return 0

    @guestfn(name="dev_uevent")
    def dev_uevent(self, ctx: GuestContext, drv_id: int) -> int:
        """Emit a uevent describing the device's driver."""
        drv_id &= 0xF
        priv = self.drivers.get(drv_id)
        if priv is None:
            return EINVAL
        ctx.cov(4)
        bound = ctx.ld32(priv + 4)  # UAF read after unbind (t2_19)
        ctx.st32(priv + 8, ctx.ld32(priv + 8) + 1)
        return bound
