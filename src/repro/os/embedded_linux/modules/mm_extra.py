"""mm: VMAs, readahead and the fault path.

Seeded defects:

* ``t2_15_do_sync_mmap_readahead`` — 5.18-rc7 UAF: readahead touches a
  file-backed page after the racing truncate freed it.
* ``t2_22_vma_adjust`` — 5.19-rc1 UAF: adjusting a VMA merges with a
  neighbour that was already freed.
"""

from __future__ import annotations

from typing import List

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM

PR_VMA_NEW = 1
PR_VMA_UNMAP = 2
PR_VMA_ADJUST = 3
PR_FAULT = 4
PR_TRUNCATE = 5

_VMA_BYTES = 40


class MmExtraModule(GuestModule):
    """VMA management and the sync-readahead path."""

    location = "mm"

    def __init__(self, kernel):
        super().__init__(name="mm_extra")
        self.kernel = kernel
        #: vma index -> guest vma object
        self.vmas: List[int] = []
        self.readahead_page = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_handler("prctl", self.handle)

    # ------------------------------------------------------------------
    def handle(self, ctx: GuestContext, op: int, a1: int, a2: int) -> int:
        if op == PR_VMA_NEW:
            return self.vma_new(ctx, a1)
        if op == PR_VMA_UNMAP:
            return self.vma_unmap(ctx, a1)
        if op == PR_VMA_ADJUST:
            return self.vma_adjust(ctx, a1, a2)
        if op == PR_FAULT:
            return self.do_sync_mmap_readahead(ctx, a1)
        if op == PR_TRUNCATE:
            return self.truncate(ctx)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="vma_new")
    def vma_new(self, ctx: GuestContext, length: int) -> int:
        """Create a VMA record; returns its index."""
        vma = self.kernel.mm.kzalloc(ctx, _VMA_BYTES)
        if vma == 0:
            return ENOMEM
        start = 0x1000_0000 + len(self.vmas) * 0x10000
        ctx.st32(vma, start)
        ctx.st32(vma + 4, start + (length & 0xFFFF or 0x1000))
        self.vmas.append(vma)
        ctx.cov(1)
        return len(self.vmas) - 1

    @guestfn(name="vma_unmap")
    def vma_unmap(self, ctx: GuestContext, index: int) -> int:
        """Unmap a VMA, freeing its record."""
        if index >= len(self.vmas) or self.vmas[index] == 0:
            return EINVAL
        self.kernel.mm.kfree(ctx, self.vmas[index])
        if not self.kernel.bugs.enabled("t2_22_vma_adjust"):
            self.vmas[index] = 0
        # buggy kernels leave the dangling neighbour pointer in the tree
        ctx.cov(2)
        return 0

    @guestfn(name="vma_adjust")
    def vma_adjust(self, ctx: GuestContext, index: int, delta: int) -> int:
        """Grow a VMA, merging with its successor when they now abut."""
        if index >= len(self.vmas) or self.vmas[index] == 0:
            return EINVAL
        vma = self.vmas[index]
        end = ctx.ld32(vma + 4) + (delta & 0xFFF)
        ctx.st32(vma + 4, end)
        if index + 1 < len(self.vmas):
            ctx.cov(3)
            nxt = self.vmas[index + 1]
            if nxt:
                # UAF read when the successor was freed under us (t2_22)
                nxt_start = ctx.ld32(nxt)
                if nxt_start <= end:
                    ctx.st32(vma + 4, ctx.ld32(nxt + 4))
        return end & 0x7FFFFFFF

    # ------------------------------------------------------------------
    @guestfn(name="do_sync_mmap_readahead")
    def do_sync_mmap_readahead(self, ctx: GuestContext, offset: int) -> int:
        """Fault path: read ahead into the cached file page."""
        if self.readahead_page == 0:
            self.readahead_page = self.kernel.buddy.alloc_pages(ctx, 0)
            if self.readahead_page == 0:
                return ENOMEM
        ctx.cov(4)
        slot = (offset & 0x3F) * 8
        ctx.st32(self.readahead_page + slot, offset)  # UAF after truncate
        return ctx.ld32(self.readahead_page + slot) & 0x7FFFFFFF

    @guestfn(name="truncate_pagecache")
    def truncate(self, ctx: GuestContext) -> int:
        """Truncate: drops the cached page."""
        if self.readahead_page == 0:
            return EINVAL
        self.kernel.buddy.free_pages(ctx, self.readahead_page)
        if not self.kernel.bugs.enabled("t2_15_do_sync_mmap_readahead"):
            self.readahead_page = 0
        # buggy kernels keep the stale page pointer in the mapping
        ctx.cov(5)
        return 0
