"""net/netfilter: rule table evaluation.

Table-4 defect: ``t4_armvirt_netfilter_oob`` — the rule-blob validator
accepts a jump target equal to the rule count, and evaluation then
reads one rule past the table.
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM

NL_TABLE_LOAD = 1
NL_EVALUATE = 2

_RULE_BYTES = 16


class NetfilterModule(GuestModule):
    """A miniature nf_tables rule engine."""

    location = "net/netfilter"

    def __init__(self, kernel):
        super().__init__(name="netfilter")
        self.kernel = kernel
        self.table = 0
        self.rule_count = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_netlink(2, self.netlink)

    def netlink(self, ctx: GuestContext, cmd: int, arg: int) -> int:
        if cmd == NL_TABLE_LOAD:
            return self.nft_table_load(ctx, arg)
        if cmd == NL_EVALUATE:
            return self.nft_do_chain(ctx, arg)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="nft_table_load")
    def nft_table_load(self, ctx: GuestContext, rules: int) -> int:
        """Load a rule table of ``rules`` entries."""
        rules &= 0xF
        if rules == 0:
            return EINVAL
        if self.table:
            self.kernel.mm.kfree(ctx, self.table)
        table = self.kernel.mm.kzalloc(ctx, rules * _RULE_BYTES)
        if table == 0:
            return ENOMEM
        for idx in range(rules):
            ctx.st32(table + idx * _RULE_BYTES, 0x10 + idx)  # verdict
            # jump target: the last rule "jumps" to rule_count (one past)
            ctx.st32(table + idx * _RULE_BYTES + 4, idx + 1)
        self.table = table
        self.rule_count = rules
        ctx.cov(1)
        return rules

    @guestfn(name="nft_do_chain")
    def nft_do_chain(self, ctx: GuestContext, start: int) -> int:
        """Evaluate the chain starting at rule ``start``."""
        if self.table == 0:
            return EINVAL
        ctx.cov(2)
        index = start % max(1, self.rule_count)
        verdict = 0
        for _hop in range(self.rule_count + 1):
            if index >= self.rule_count and not self.kernel.bugs.enabled(
                "t4_armvirt_netfilter_oob"
            ):
                break
            if index > self.rule_count:
                break
            # with the bug armed, index == rule_count reads one past
            verdict = ctx.ld32(self.table + index * _RULE_BYTES)
            index = ctx.ld32(self.table + index * _RULE_BYTES + 4)
        return verdict & 0x7FFFFFFF
