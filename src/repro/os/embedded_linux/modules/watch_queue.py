"""kernel/watch_queue: watch queues and their notification posts.

Carries three Table-2 defects around queue lifetime and filters:

* ``t2_05_post_one_notification`` — 5.19-rc1 UAF: a notification posts
  into a queue buffer freed by a concurrent clear.
* ``t2_06_post_watch_notification`` — 5.19-rc1 UAF: the broadcast path
  walks a watch whose queue died.
* ``t2_07_watch_queue_set_filter`` — 5.17-rc6 slab OOB: the filter copy
  sizes the allocation from ``nr_filters`` but copies whole filter
  records.
"""

from __future__ import annotations

from typing import Dict

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM

WQ_CREATE = 1
WQ_POST = 2
WQ_POST_ALL = 3
WQ_SET_FILTER = 4
WQ_CLEAR = 5

_QUEUE_BYTES = 128
_FILTER_RECORD = 12  #: type(4) + subtype(4) + action(4)


class WatchQueueModule(GuestModule):
    """A miniature watch_queue subsystem."""

    location = "kernel/watch_queue"

    def __init__(self, kernel):
        super().__init__(name="watch_queue")
        self.kernel = kernel
        #: queue id -> buffer address (0 when cleared)
        self.queues: Dict[int, int] = {}
        #: queue id -> filter buffer address
        self.filters: Dict[int, int] = {}
        self._next_id = 1

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_handler("watchq", self.handle)

    # ------------------------------------------------------------------
    def handle(self, ctx: GuestContext, cmd: int, a1: int, a2: int) -> int:
        if cmd == WQ_CREATE:
            return self.watch_queue_create(ctx)
        if cmd == WQ_POST:
            return self.post_one_notification(ctx, a1, a2)
        if cmd == WQ_POST_ALL:
            return self.post_watch_notification(ctx, a1)
        if cmd == WQ_SET_FILTER:
            return self.watch_queue_set_filter(ctx, a1, a2)
        if cmd == WQ_CLEAR:
            return self.watch_queue_clear(ctx, a1)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="watch_queue_create")
    def watch_queue_create(self, ctx: GuestContext) -> int:
        """Allocate a queue buffer; returns queue id."""
        buf = self.kernel.mm.kzalloc(ctx, _QUEUE_BYTES)
        if buf == 0:
            return ENOMEM
        qid = self._next_id
        self._next_id += 1
        self.queues[qid] = buf
        ctx.cov(1)
        return qid

    @guestfn(name="watch_queue_clear")
    def watch_queue_clear(self, ctx: GuestContext, qid: int) -> int:
        """Tear a queue down, freeing its buffer."""
        buf = self.queues.get(qid)
        if buf is None:
            return EINVAL
        ctx.cov(2)
        self.kernel.mm.kfree(ctx, buf)
        if self.kernel.bugs.enabled("t2_05_post_one_notification") or \
                self.kernel.bugs.enabled("t2_06_post_watch_notification"):
            # the buggy kernels leave the dangling pointer registered
            self.queues[qid] = buf
        else:
            del self.queues[qid]
        fbuf = self.filters.pop(qid, None)
        if fbuf:
            self.kernel.mm.kfree(ctx, fbuf)
        return 0

    @guestfn(name="post_one_notification")
    def post_one_notification(self, ctx: GuestContext, qid: int, payload: int) -> int:
        """Append one notification record to a queue."""
        buf = self.queues.get(qid)
        if buf is None:
            return EINVAL
        ctx.cov(3)
        # 5.19-rc1 UAF fires here when the queue was cleared underneath us
        slot = (payload % (_QUEUE_BYTES // 8)) * 8
        ctx.st32(buf + slot, payload)
        ctx.st32(buf + slot + 4, qid)
        return 0

    @guestfn(name="post_watch_notification")
    def post_watch_notification(self, ctx: GuestContext, payload: int) -> int:
        """Broadcast a notification to every registered queue."""
        posted = 0
        for qid, buf in sorted(self.queues.items()):
            ctx.cov(4)
            # 5.19-rc1 UAF: the walk reads the queue header even when the
            # queue buffer already died
            head = ctx.ld32(buf)
            ctx.st32(buf, (head + 1) & 0xFFFFFFFF)
            ctx.st32(buf + 8 + (payload % 8) * 4, payload)
            posted += 1
        return posted

    @guestfn(name="watch_queue_set_filter")
    def watch_queue_set_filter(self, ctx: GuestContext, qid: int,
                               nr_filters: int) -> int:
        """Install a notification filter of ``nr_filters`` records."""
        if qid not in self.queues:
            return EINVAL
        nr_filters &= 0x3F
        if nr_filters == 0:
            return EINVAL
        ctx.cov(5)
        if self.kernel.bugs.enabled("t2_07_watch_queue_set_filter"):
            # 5.17-rc6: allocation sized by 8-byte entries, copies 12-byte
            # filter records — the last records run off the end
            alloc_size = nr_filters * 8
        else:
            alloc_size = nr_filters * _FILTER_RECORD
        buf = self.kernel.mm.kmalloc(ctx, alloc_size)
        if buf == 0:
            return ENOMEM
        for idx in range(nr_filters):
            base = buf + idx * _FILTER_RECORD
            ctx.st32(base, idx)
            ctx.st32(base + 4, 0xFFFF)
            ctx.st32(base + 8, 1)
        old = self.filters.get(qid)
        if old:
            self.kernel.mm.kfree(ctx, old)
        self.filters[qid] = buf
        return nr_filters
