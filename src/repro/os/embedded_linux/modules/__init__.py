"""Embedded Linux subsystem and driver modules.

Each module is a small, Linux-shaped slice of the subsystem it models —
enough structure that its seeded defects (from the paper's Tables 2 and
4) arise from genuine allocator misuse, not from synthetic "crash here"
stubs.  Bug sites consult the kernel's
:class:`~repro.os.common.BugSwitchboard`, so a given firmware build only
contains the defects the paper attributes to it.
"""
