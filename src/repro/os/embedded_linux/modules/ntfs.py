"""fs/ntfs3: run-list unpacking.

Seeded defect: ``t2_20_run_unpack`` — 6.0 slab OOB: the run-list decoder
trusts the on-disk size nibbles and writes mapping pairs past the
allocated run array.
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM

OP_UNPACK = 1

_RUN_BYTES = 8


class NtfsModule(GuestModule):
    """A miniature NTFS3 run-list decoder."""

    location = "fs/ntfs3"

    def __init__(self, kernel):
        super().__init__(name="ntfs3")
        self.kernel = kernel
        self.mounted = False

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_filesystem(2, self)

    def fs_mount(self, ctx: GuestContext, flags: int) -> int:
        self.mounted = True
        ctx.cov(1)
        return 0

    def fs_umount(self, ctx: GuestContext) -> int:
        self.mounted = False
        return 0

    def fs_op(self, ctx: GuestContext, op: int, a2: int, a3: int) -> int:
        if op == OP_UNPACK:
            return self.run_unpack(ctx, a2, a3)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="run_unpack")
    def run_unpack(self, ctx: GuestContext, declared_runs: int, seed: int) -> int:
        """Decode a mapping-pairs array of ``declared_runs`` entries."""
        if not self.mounted:
            return EINVAL
        declared_runs &= 0x1F
        if declared_runs == 0:
            return EINVAL
        ctx.cov(2)
        # the header's count nibble caps the allocation at 8 runs ...
        capacity = min(declared_runs, 8)
        runs = self.kernel.mm.kmalloc(ctx, capacity * _RUN_BYTES)
        if runs == 0:
            return ENOMEM
        count = declared_runs if self.kernel.bugs.enabled(
            "t2_20_run_unpack"
        ) else capacity
        lcn = seed & 0xFFFF
        for idx in range(count):
            # 6.0: decode loop honours the declared count, not the
            # allocated capacity — runs 8.. land past the array
            ctx.st32(runs + idx * _RUN_BYTES, lcn + idx)
            ctx.st32(runs + idx * _RUN_BYTES + 4, 1 + (idx & 3))
        self.kernel.mm.kfree(ctx, runs)
        return count
