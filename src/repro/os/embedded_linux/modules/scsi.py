"""drivers/scsi/aic7xxx: SCB queue management.

Table-4 defect: ``t4_aic7xxx_scsi_oob`` — the sequencer patch loader
copies a vendor-sized patch into the fixed SCB array.
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL
from repro.os.embedded_linux.vfs import DeviceNode

SCSI_DEV_ID = 0x53
IOC_LOAD_SEQ = 1
IOC_QUEUE_SCB = 2

_SCB_ARRAY_BYTES = 64


class ScsiAic7xxxModule(GuestModule, DeviceNode):
    """A miniature aic7xxx host adapter."""

    location = "drivers/scsi/aic7xxx"

    def __init__(self, kernel):
        super().__init__(name="scsi_aic7xxx")
        self.kernel = kernel
        self.scbs = 0
        self.queued = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.vfs.register_device(SCSI_DEV_ID, self)

    def late_init(self, ctx: GuestContext) -> None:
        """Allocate the SCB array at boot."""
        self.scbs = self.kernel.mm.kzalloc(ctx, _SCB_ARRAY_BYTES)

    # ------------------------------------------------------------------
    def dev_ioctl(self, ctx: GuestContext, file: int, cmd: int,
                  a2: int, a3: int) -> int:
        if cmd == IOC_LOAD_SEQ:
            return self.load_seq(ctx, a2)
        if cmd == IOC_QUEUE_SCB:
            return self.queue_scb(ctx, a2)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="ahc_loadseq")
    def load_seq(self, ctx: GuestContext, patch_len: int) -> int:
        """Load a sequencer patch over the SCB scratch area."""
        if self.scbs == 0:
            return EINVAL
        ctx.cov(1)
        declared = patch_len & 0x7F
        if declared == 0:
            return EINVAL
        limit = declared if self.kernel.bugs.enabled(
            "t4_aic7xxx_scsi_oob"
        ) else min(declared, _SCB_ARRAY_BYTES)
        for offset in range(0, limit, 4):
            # buggy loader trusts the vendor patch header's length
            ctx.st32(self.scbs + offset, 0xA1C0 + offset)
        return limit

    @guestfn(name="ahc_queue_scb")
    def queue_scb(self, ctx: GuestContext, tag: int) -> int:
        """Queue one SCB."""
        if self.scbs == 0:
            return EINVAL
        slot = (tag % (_SCB_ARRAY_BYTES // 4)) * 4
        ctx.st32(self.scbs + slot, tag)
        self.queued += 1
        ctx.cov(2)
        return self.queued
