"""net/sched: qdisc configuration over netlink.

Table-4 defects:

* ``t4_ipq807x_net_sched_oob`` — the stats dump writes per-band counters
  for the *configured* band count into an array sized for the default.
* ``t4_rk3566_net_sched_uaf`` — a filter change touches the qdisc
  private area freed by a concurrent qdisc replace.
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM

NL_QDISC_ADD = 1
NL_QDISC_DEL = 2
NL_QDISC_STATS = 3
NL_FILTER_CHANGE = 4

_DEFAULT_BANDS = 3
_BAND_BYTES = 8


class NetSchedModule(GuestModule):
    """A miniature prio qdisc."""

    location = "net/sched"

    def __init__(self, kernel):
        super().__init__(name="net_sched")
        self.kernel = kernel
        self.qdisc = 0
        self.bands = _DEFAULT_BANDS

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_netlink(3, self.netlink)

    # ------------------------------------------------------------------
    def netlink(self, ctx: GuestContext, cmd: int, arg: int) -> int:
        if cmd == NL_QDISC_ADD:
            return self.qdisc_add(ctx, arg)
        if cmd == NL_QDISC_DEL:
            return self.qdisc_del(ctx)
        if cmd == NL_QDISC_STATS:
            return self.qdisc_stats(ctx)
        if cmd == NL_FILTER_CHANGE:
            return self.filter_change(ctx, arg)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="prio_init")
    def qdisc_add(self, ctx: GuestContext, bands: int) -> int:
        """Create the prio qdisc with ``bands`` bands."""
        if self.qdisc:
            return EINVAL
        self.bands = max(_DEFAULT_BANDS, bands & 0xF)
        # the private area is sized for the default band count
        priv = self.kernel.mm.kzalloc(ctx, _DEFAULT_BANDS * _BAND_BYTES + 8)
        if priv == 0:
            return ENOMEM
        self.qdisc = priv
        ctx.cov(1)
        return self.bands

    @guestfn(name="prio_destroy")
    def qdisc_del(self, ctx: GuestContext) -> int:
        """Destroy the qdisc."""
        if self.qdisc == 0:
            return EINVAL
        self.kernel.mm.kfree(ctx, self.qdisc)
        if not self.kernel.bugs.enabled("t4_rk3566_net_sched_uaf"):
            self.qdisc = 0
        # the buggy kernel leaves the filter chain's qdisc pointer live
        ctx.cov(2)
        return 0

    @guestfn(name="prio_dump_stats")
    def qdisc_stats(self, ctx: GuestContext) -> int:
        """Dump per-band statistics into the private area."""
        if self.qdisc == 0:
            return EINVAL
        ctx.cov(3)
        bands = self.bands if self.kernel.bugs.enabled(
            "t4_ipq807x_net_sched_oob"
        ) else _DEFAULT_BANDS
        for band in range(bands):
            # bands beyond the default overrun the private area
            ctx.st32(self.qdisc + 8 + band * _BAND_BYTES, band)
            ctx.st32(self.qdisc + 12 + band * _BAND_BYTES, band * 2)
        return bands

    @guestfn(name="tcf_filter_change")
    def filter_change(self, ctx: GuestContext, prio: int) -> int:
        """Update the classifier bound to the qdisc."""
        if self.qdisc == 0:
            return EINVAL
        ctx.cov(4)
        refs = ctx.ld32(self.qdisc)  # UAF read after qdisc_del (rk3566)
        ctx.st32(self.qdisc, refs + 1)
        ctx.st32(self.qdisc + 4, prio & 0xFFFF)
        return refs
