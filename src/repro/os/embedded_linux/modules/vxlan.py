"""drivers/net/vxlan: VNI filter dump over netlink.

Seeded defect: ``t2_09_vxlan_vnifilter_dump_dev`` — 5.17 slab OOB: the
dump loop writes one netlink attribute per VNI but sizes the skb tail
from the *filter count at allocation time*, overrunning when entries
were added in between.
"""

from __future__ import annotations

from typing import List

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM

NL_VNI_ADD = 1
NL_VNI_DUMP = 2

_ATTR_BYTES = 8


class VxlanModule(GuestModule):
    """A miniature VXLAN VNI-filter table."""

    location = "drivers/net/vxlan"

    def __init__(self, kernel):
        super().__init__(name="vxlan")
        self.kernel = kernel
        self.vnis: List[int] = []

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_netlink(1, self.netlink)

    # ------------------------------------------------------------------
    def netlink(self, ctx: GuestContext, cmd: int, arg: int) -> int:
        if cmd == NL_VNI_ADD:
            return self.vxlan_vni_add(ctx, arg)
        if cmd == NL_VNI_DUMP:
            return self.vxlan_vnifilter_dump_dev(ctx, arg)
        return EINVAL

    @guestfn(name="vxlan_vni_add")
    def vxlan_vni_add(self, ctx: GuestContext, vni: int) -> int:
        """Register a VNI in the filter table."""
        if len(self.vnis) >= 32:
            return EINVAL
        self.vnis.append(vni & 0xFFFFFF)
        ctx.cov(1)
        return len(self.vnis)

    @guestfn(name="vxlan_vnifilter_dump_dev")
    def vxlan_vnifilter_dump_dev(self, ctx: GuestContext, extra: int) -> int:
        """Dump the filter table into a freshly sized skb."""
        count = len(self.vnis)
        if count == 0:
            return 0
        ctx.cov(2)
        skb = self.kernel.mm.kmalloc(ctx, count * _ATTR_BYTES)
        if skb == 0:
            return ENOMEM
        entries = list(self.vnis)
        if extra and self.kernel.bugs.enabled("t2_09_vxlan_vnifilter_dump_dev"):
            # 5.17: entries added between sizing and filling the skb
            ctx.cov(3)
            entries += [(extra + i) & 0xFFFFFF for i in range(1 + (extra & 3))]
        for idx, vni in enumerate(entries):
            ctx.st32(skb + idx * _ATTR_BYTES, vni)
            ctx.st32(skb + idx * _ATTR_BYTES + 4, 0x0A)
        self.kernel.mm.kfree(ctx, skb)
        return len(entries)
