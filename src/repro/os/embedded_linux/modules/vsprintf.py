"""lib/vsprintf: the kernel's string formatter.

Seeded defect: ``t2_25_string`` — 4.17-rc1 **global** OOB: formatting
``%s`` with a field precision larger than the source string scans past
the global version-string object.  Like ``fbcon_get_font``, only builds
with global redzones (EMBSAN-C, native KASAN) catch it — the second
Table-2 row EMBSAN-D misses.
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM
from repro.os.embedded_linux.vfs import DeviceNode

PROC_DEV_ID = 0x14

_VERSION = b"Linux version 5.x (repro)\x00"


class VsprintfModule(GuestModule, DeviceNode):
    """A miniature /proc/version formatter."""

    location = "lib/vsprintf"

    def __init__(self, kernel):
        super().__init__(name="vsprintf")
        self.kernel = kernel
        self.version_addr = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.vfs.register_device(PROC_DEV_ID, self)
        self.version_addr = self.declare_global(
            ctx, "linux_banner", len(_VERSION), init=_VERSION
        )

    # ------------------------------------------------------------------
    def dev_read(self, ctx: GuestContext, file: int, size: int, off: int) -> int:
        return self.string(ctx, size)

    def dev_write(self, ctx: GuestContext, file: int, size: int, seed: int) -> int:
        return self.vsnprintf_stack(ctx, size)

    @guestfn(name="vsnprintf_stack")
    def vsnprintf_stack(self, ctx: GuestContext, length: int) -> int:
        """Format into an on-stack scratch buffer (32 bytes).

        With ``demo_stack_oob`` armed, the length check is missing and
        long messages run past the stack buffer — detectable only by
        builds with compile-time stack redzones (EMBSAN-C / native),
        the same asymmetry as the Table-2 global-OOB rows.
        """
        length &= 0x3F
        if length == 0:
            return EINVAL
        buf = ctx.frame.var(32, "scratch")
        span = length if self.kernel.bugs.enabled("demo_stack_oob") \
            else min(length, 32)
        for idx in range(span):
            ctx.st8(buf + idx, 0x30 + (idx % 10))
        total = 0
        for idx in range(0, min(span, 32), 4):
            total = (total + ctx.ld32(buf + idx)) & 0xFFFFFFFF
        return total & 0x7FFFFFFF

    @guestfn(name="string")
    def string(self, ctx: GuestContext, precision: int) -> int:
        """Format the version banner with an explicit %.Ns precision."""
        precision &= 0xFF
        if precision == 0:
            return EINVAL
        ctx.cov(1)
        out = self.kernel.mm.kmalloc(ctx, precision)
        if out == 0:
            return ENOMEM
        copied = 0
        for idx in range(precision):
            # 4.17-rc1: the precision-bounded scan does not stop at the
            # terminating NUL, walking past the global banner object
            byte = ctx.ld8(self.version_addr + idx)
            if byte == 0 and not self.kernel.bugs.enabled("t2_25_string"):
                break
            ctx.st8(out + copied, byte)
            copied += 1
        self.kernel.mm.kfree(ctx, out)
        return copied
