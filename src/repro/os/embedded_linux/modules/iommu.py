"""drivers/iommu: domain mapping tables.

Table-4 defect: ``t4_x86_64_iommu_oob`` — the unmap path clears page
table entries past the domain's table for ranges ending at the table
boundary.
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM
from repro.os.embedded_linux.vfs import DeviceNode

IOMMU_DEV_ID = 0x54
IOC_DOMAIN_ALLOC = 1
IOC_MAP = 2
IOC_UNMAP = 3

_PTE_COUNT = 16
_PTE_BYTES = 4


class IommuModule(GuestModule, DeviceNode):
    """A miniature IOMMU domain."""

    location = "drivers/iommu"

    def __init__(self, kernel):
        super().__init__(name="iommu")
        self.kernel = kernel
        self.domain = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.vfs.register_device(IOMMU_DEV_ID, self)

    def dev_ioctl(self, ctx: GuestContext, file: int, cmd: int,
                  a2: int, a3: int) -> int:
        if cmd == IOC_DOMAIN_ALLOC:
            return self.domain_alloc(ctx)
        if cmd == IOC_MAP:
            return self.iommu_map(ctx, a2, a3)
        if cmd == IOC_UNMAP:
            return self.iommu_unmap(ctx, a2, a3)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="iommu_domain_alloc")
    def domain_alloc(self, ctx: GuestContext) -> int:
        """Allocate the domain's page table."""
        if self.domain:
            return EINVAL
        table = self.kernel.mm.kzalloc(ctx, _PTE_COUNT * _PTE_BYTES)
        if table == 0:
            return ENOMEM
        self.domain = table
        ctx.cov(1)
        return 0

    @guestfn(name="iommu_map")
    def iommu_map(self, ctx: GuestContext, iova: int, paddr: int) -> int:
        """Install one PTE."""
        if self.domain == 0:
            return EINVAL
        slot = (iova >> 12) % _PTE_COUNT
        ctx.st32(self.domain + slot * _PTE_BYTES, paddr | 1)
        ctx.cov(2)
        return 0

    @guestfn(name="iommu_unmap")
    def iommu_unmap(self, ctx: GuestContext, iova: int, count: int) -> int:
        """Clear ``count`` PTEs starting at ``iova``."""
        if self.domain == 0:
            return EINVAL
        ctx.cov(3)
        start = (iova >> 12) % _PTE_COUNT
        count &= 0x1F
        end = start + count
        if not self.kernel.bugs.enabled("t4_x86_64_iommu_oob"):
            end = min(end, _PTE_COUNT)
        cleared = 0
        for slot in range(start, end):
            # the buggy range loop does not clamp at the table end
            ctx.st32(self.domain + slot * _PTE_BYTES, 0)
            cleared += 1
        return cleared
