"""fs/netrom (as the paper lists it): NET/ROM node tables.

Table-4 defect: ``t4_rtl839x_netrom_double_free`` — removing a node that
is also the route's neighbour frees the record on both paths.
"""

from __future__ import annotations

from typing import Dict

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM

OP_NODE_ADD = 1
OP_NODE_DEL = 2
OP_ROUTE_FLUSH = 3

_NODE_BYTES = 40


class NetromModule(GuestModule):
    """A miniature NET/ROM routing table."""

    location = "fs/netrom"

    def __init__(self, kernel):
        super().__init__(name="netrom")
        self.kernel = kernel
        self.mounted = False
        self.nodes: Dict[int, int] = {}
        self.neighbour = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_filesystem(6, self)

    def fs_mount(self, ctx: GuestContext, flags: int) -> int:
        self.mounted = True
        ctx.cov(1)
        return 0

    def fs_umount(self, ctx: GuestContext) -> int:
        self.mounted = False
        return 0

    def fs_op(self, ctx: GuestContext, op: int, a2: int, a3: int) -> int:
        if op == OP_NODE_ADD:
            return self.nr_node_add(ctx, a2)
        if op == OP_NODE_DEL:
            return self.nr_node_del(ctx, a2)
        if op == OP_ROUTE_FLUSH:
            return self.nr_route_flush(ctx)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="nr_node_add")
    def nr_node_add(self, ctx: GuestContext, callsign: int) -> int:
        """Add a node record; the first node becomes the neighbour."""
        if not self.mounted:
            return EINVAL
        callsign &= 0xFF
        if callsign in self.nodes:
            return EINVAL
        node = self.kernel.mm.kzalloc(ctx, _NODE_BYTES)
        if node == 0:
            return ENOMEM
        ctx.st32(node, callsign)
        self.nodes[callsign] = node
        if self.neighbour == 0:
            self.neighbour = node
        ctx.cov(2)
        return callsign

    @guestfn(name="nr_node_del")
    def nr_node_del(self, ctx: GuestContext, callsign: int) -> int:
        """Remove a node record."""
        node = self.nodes.pop(callsign & 0xFF, None)
        if node is None:
            return EINVAL
        ctx.cov(3)
        self.kernel.mm.kfree(ctx, node)
        if node == self.neighbour and not self.kernel.bugs.enabled(
            "t4_rtl839x_netrom_double_free"
        ):
            self.neighbour = 0
        # the buggy kernel keeps the freed node as the route neighbour
        return 0

    @guestfn(name="nr_route_flush")
    def nr_route_flush(self, ctx: GuestContext) -> int:
        """Flush the route, releasing the neighbour reference."""
        if self.neighbour == 0:
            return 0
        ctx.cov(4)
        node, self.neighbour = self.neighbour, 0
        self.kernel.mm.kfree(ctx, node)  # double free after node_del
        return 1
