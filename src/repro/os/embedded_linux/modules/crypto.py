"""crypto: skcipher transforms over the null cipher.

Seeded defect: ``t2_12_null_skcipher_crypt`` — 5.17-rc6 UAF: a crypt
request keeps a borrowed reference to the transform after
``crypto_free_skcipher`` released it.
"""

from __future__ import annotations

from typing import Dict

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.syscalls import EINVAL, ENOMEM
from repro.os.embedded_linux.vfs import DeviceNode

CRYPTO_DEV_ID = 0x11
IOC_ALLOC_TFM = 1
IOC_FREE_TFM = 2
IOC_CRYPT = 3

_TFM_BYTES = 64


class CryptoModule(GuestModule, DeviceNode):
    """A miniature crypto user API over the null skcipher."""

    location = "crypto"

    def __init__(self, kernel):
        super().__init__(name="crypto")
        self.kernel = kernel
        #: tfm handle -> guest transform object
        self.tfms: Dict[int, int] = {}
        self._next_handle = 1

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.vfs.register_device(CRYPTO_DEV_ID, self)

    # ------------------------------------------------------------------
    def dev_ioctl(self, ctx: GuestContext, file: int, cmd: int,
                  a2: int, a3: int) -> int:
        if cmd == IOC_ALLOC_TFM:
            return self.crypto_alloc_skcipher(ctx)
        if cmd == IOC_FREE_TFM:
            return self.crypto_free_skcipher(ctx, a2)
        if cmd == IOC_CRYPT:
            return self.null_skcipher_crypt(ctx, a2, a3)
        return EINVAL

    # ------------------------------------------------------------------
    @guestfn(name="crypto_alloc_skcipher")
    def crypto_alloc_skcipher(self, ctx: GuestContext) -> int:
        """Allocate a null-skcipher transform; returns its handle."""
        tfm = self.kernel.mm.kzalloc(ctx, _TFM_BYTES)
        if tfm == 0:
            return ENOMEM
        ctx.st32(tfm, 0x6E756C6C)  # "null"
        ctx.st32(tfm + 4, 16)  # block size
        handle = self._next_handle
        self._next_handle += 1
        self.tfms[handle] = tfm
        ctx.cov(1)
        return handle

    @guestfn(name="crypto_free_skcipher")
    def crypto_free_skcipher(self, ctx: GuestContext, handle: int) -> int:
        """Release a transform."""
        tfm = self.tfms.get(handle)
        if tfm is None:
            return EINVAL
        self.kernel.mm.kfree(ctx, tfm)
        if not self.kernel.bugs.enabled("t2_12_null_skcipher_crypt"):
            del self.tfms[handle]
        # buggy kernels keep the stale handle -> tfm mapping alive
        ctx.cov(2)
        return 0

    @guestfn(name="null_skcipher_crypt")
    def null_skcipher_crypt(self, ctx: GuestContext, handle: int, size: int) -> int:
        """Run the null cipher: copy input to output via the transform."""
        tfm = self.tfms.get(handle)
        if tfm is None:
            return EINVAL
        ctx.cov(3)
        block = ctx.ld32(tfm + 4)  # UAF read once the tfm died (t2_12)
        if block == 0:
            return EINVAL
        size = min(size & 0xFF, 64) or block
        buf = self.kernel.mm.kmalloc(ctx, size)
        if buf == 0:
            return ENOMEM
        user = self.kernel.user_payload(ctx, handle, size)
        ctx.memcpy(buf, user, size)
        ctx.st32(tfm + 8, ctx.ld32(tfm + 8) + 1)  # request counter
        self.kernel.mm.kfree(ctx, buf)
        return size
