"""Binary-buddy page allocator.

Manages the firmware's DRAM span in power-of-two page blocks with
split-on-alloc and coalesce-on-free, like Linux's zone allocator.
Allocation bookkeeping (free lists, order map) is kernel-internal
metadata kept host-side; the *objects* — the pages — are real guest
memory, and every alloc/free is reported to the sanitizer hook chain
exactly like Linux's ``kasan_alloc_pages``/``kasan_free_pages`` hooks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn

#: Guest page size.
PAGE_SIZE = 4096
#: Largest block order (2**MAX_ORDER pages).
MAX_ORDER = 10

#: cache id reported for whole-page allocations
PAGE_CACHE_ID = 0xFFFF


class BuddyAllocator(GuestModule):
    """The page-level allocator backing the slab and large allocations."""

    location = "mm/page_alloc"

    def __init__(self, base: int, size: int):
        super().__init__(name="page_alloc")
        if base % PAGE_SIZE:
            raise ValueError("heap base must be page aligned")
        self.base = base
        self.num_pages = size // PAGE_SIZE
        # free_lists[order] -> list of first-page indexes
        self.free_lists: Dict[int, List[int]] = {o: [] for o in range(MAX_ORDER + 1)}
        # page index -> order, for blocks currently allocated
        self.allocated: Dict[int, int] = {}
        # page index -> order, for blocks currently free (block heads only)
        self._free_heads: Dict[int, int] = {}
        self.alloc_count = 0
        self.free_count = 0
        self._seed_free_lists()

    def _seed_free_lists(self) -> None:
        index = 0
        remaining = self.num_pages
        while remaining > 0:
            order = min(MAX_ORDER, remaining.bit_length() - 1)
            while (1 << order) > remaining or index % (1 << order):
                order -= 1
            self.free_lists[order].append(index)
            self._free_heads[index] = order
            index += 1 << order
            remaining -= 1 << order

    # ------------------------------------------------------------------
    def page_addr(self, index: int) -> int:
        """Guest address of page ``index``."""
        return self.base + index * PAGE_SIZE

    def page_index(self, addr: int) -> int:
        """Page index containing guest address ``addr``."""
        return (addr - self.base) // PAGE_SIZE

    def contains(self, addr: int) -> bool:
        """True when ``addr`` lies in the managed span."""
        return self.base <= addr < self.base + self.num_pages * PAGE_SIZE

    # ------------------------------------------------------------------
    @guestfn(name="alloc_pages", allocator="alloc", size_kind="page_order")
    def alloc_pages(self, ctx: GuestContext, order: int) -> int:
        """Allocate a 2**order-page block; returns its address or 0."""
        if order > MAX_ORDER:
            return 0
        found = None
        for search in range(order, MAX_ORDER + 1):
            if self.free_lists[search]:
                found = search
                break
        if found is None:
            return 0
        index = self.free_lists[found].pop()
        del self._free_heads[index]
        # split down to the requested order, buddy halves go back free
        while found > order:
            found -= 1
            buddy = index + (1 << found)
            self.free_lists[found].append(buddy)
            self._free_heads[buddy] = found
        self.allocated[index] = order
        self.alloc_count += 1
        addr = self.page_addr(index)
        ctx.work(8)
        ctx.notify_alloc(addr, PAGE_SIZE << order, PAGE_CACHE_ID)
        return addr

    @guestfn(name="free_pages", allocator="free")
    def free_pages(self, ctx: GuestContext, addr: int) -> int:
        """Release a block previously returned by ``alloc_pages``."""
        index = self.page_index(addr)
        order = self.allocated.pop(index, None)
        if order is None:
            # double free or bogus pointer: real kernels corrupt state;
            # we report to hooks (sanitizers catch it) and bail out.
            ctx.notify_free(addr)
            return -1
        ctx.notify_free(addr)
        self.free_count += 1
        ctx.work(8)
        # coalesce with the buddy while possible
        while order < MAX_ORDER:
            buddy = index ^ (1 << order)
            if self._free_heads.get(buddy) != order:
                break
            self.free_lists[order].remove(buddy)
            del self._free_heads[buddy]
            index = min(index, buddy)
            order += 1
        self.free_lists[order].append(index)
        self._free_heads[index] = order
        return 0

    # ------------------------------------------------------------------
    def free_page_count(self) -> int:
        """Total pages currently free (diagnostic / test invariant)."""
        return sum(
            len(lst) << order for order, lst in self.free_lists.items()
        )

    def check_invariants(self) -> None:
        """Assert allocator bookkeeping is self-consistent."""
        free = self.free_page_count()
        used = sum(1 << order for order in self.allocated.values())
        assert free + used == self.num_pages, (
            f"page leak: {free} free + {used} used != {self.num_pages}"
        )
        heads = set(self._free_heads)
        listed = {i for lst in self.free_lists.values() for i in lst}
        assert heads == listed, "free-list/head map mismatch"
