"""Rehosted Embedded Linux kernel.

A deliberately Linux-shaped kernel: buddy page allocator, SLUB-style
slab caches behind ``kmalloc``/``kfree``, a syscall table, cooperative
kernel tasks, a VFS and a set of subsystem/driver modules.  The driver
and filesystem modules carry the seeded defects of the paper's Table 2
(known syzbot bugs) and Table 4 (new bugs found by EMBSAN).
"""

from repro.os.embedded_linux.buddy import PAGE_SIZE, BuddyAllocator
from repro.os.embedded_linux.slab import SlabAllocator, KMALLOC_CLASSES
from repro.os.embedded_linux.kernel import EmbeddedLinuxKernel
from repro.os.embedded_linux.syscalls import Syscall

__all__ = [
    "BuddyAllocator",
    "EmbeddedLinuxKernel",
    "KMALLOC_CLASSES",
    "PAGE_SIZE",
    "SlabAllocator",
    "Syscall",
]
