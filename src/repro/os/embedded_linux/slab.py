"""SLUB-style slab caches behind ``kmalloc``/``kfree``.

Each cache serves one size class from pages obtained from the buddy
allocator.  Slots are ``class size + SLAB_PAD`` bytes so every object is
followed by pad space — the gap KASAN-style redzoning poisons.  Freed
objects keep a freelist pointer *inside the object itself* (written
untraced, like uninstrumented allocator metadata), which is exactly the
layout that makes use-after-free writes corrupt the freelist in real
kernels.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn
from repro.os.embedded_linux.buddy import BuddyAllocator, PAGE_SIZE

#: kmalloc size classes, like kmalloc-32 ... kmalloc-4096.
KMALLOC_CLASSES = (32, 64, 96, 128, 192, 256, 512, 1024, 2048, 4096)

#: pad after each slot; the sanitizer's heap redzone lives here.
SLAB_PAD = 16

#: freelist terminator stored in free objects.
_FREELIST_END = 0


class KmemCache:
    """One slab cache: a size class and its partial/full pages."""

    def __init__(self, cache_id: int, object_size: int):
        self.cache_id = cache_id
        self.object_size = object_size
        self.slot_size = _align(object_size + SLAB_PAD, 8)
        self.freelist_head = _FREELIST_END
        #: slab base addresses owned by this cache
        self.pages: List[int] = []
        #: buddy order per slab: large classes (kmalloc-4096's padded
        #: slot exceeds one page) take order-1 slabs, like SLUB
        self.slab_order = 0
        while (PAGE_SIZE << self.slab_order) < self.slot_size:
            self.slab_order += 1
        self.objects_per_page = (PAGE_SIZE << self.slab_order) // self.slot_size
        self.live = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"KmemCache(kmalloc-{self.object_size}, slot={self.slot_size}, "
            f"live={self.live})"
        )


class SlabAllocator(GuestModule):
    """The kernel object allocator (``kmalloc`` family)."""

    location = "mm/slub"

    def __init__(self, buddy: BuddyAllocator):
        super().__init__(name="slub")
        self.buddy = buddy
        self.caches: List[KmemCache] = [
            KmemCache(idx, size) for idx, size in enumerate(KMALLOC_CLASSES)
        ]
        #: live object addr -> (cache_id, requested_size)
        self.live_objects: Dict[int, tuple] = {}
        #: addresses currently sitting on some freelist
        self._free_objects: Dict[int, int] = {}
        #: KASAN-style quarantine: freed objects whose reuse is deferred.
        #: 0 disables it (uninstrumented builds); instrumented builds set
        #: a depth, exactly like Linux's slab quarantine is only present
        #: when KASAN is compiled in.
        self.quarantine_depth = 0
        self._quarantine: List[tuple] = []
        self.alloc_count = 0
        self.free_count = 0
        self.double_free_count = 0

    # ------------------------------------------------------------------
    def cache_for(self, size: int) -> Optional[KmemCache]:
        """Pick the smallest cache whose class fits ``size``."""
        for cache in self.caches:
            if size <= cache.object_size:
                return cache
        return None

    # ------------------------------------------------------------------
    @guestfn(name="kmalloc", allocator="alloc")
    def kmalloc(self, ctx: GuestContext, size: int) -> int:
        """Allocate ``size`` bytes of kernel memory; 0 on failure.

        Sizes beyond the largest class fall through to whole pages,
        like Linux's large-kmalloc path.
        """
        if size <= 0:
            return 0
        if ctx.alloc_fault(size):
            return 0
        cache = self.cache_for(size)
        if cache is None:
            return self._kmalloc_large(ctx, size)
        addr = self._take_from_freelist(ctx, cache)
        if addr == 0:
            if not self._refill(ctx, cache):
                return 0
            addr = self._take_from_freelist(ctx, cache)
            if addr == 0:
                return 0
        cache.live += 1
        self.live_objects[addr] = (cache.cache_id, size)
        self.alloc_count += 1
        ctx.work(6)
        ctx.notify_alloc(addr, size, cache.cache_id)
        return addr

    @guestfn(name="kzalloc", allocator="alloc")
    def kzalloc(self, ctx: GuestContext, size: int) -> int:
        """kmalloc + zeroing.

        Calls the kmalloc body directly (inlined, like the real kernel's
        header inline) so the object is reported exactly once.
        """
        addr = self.kmalloc.pyfunc(ctx, size)
        if addr:
            ctx.memset(addr, 0, size)
            ctx.notify_init(addr, size)  # __GFP_ZERO semantics
        return addr

    @guestfn(name="kfree", allocator="free")
    def kfree(self, ctx: GuestContext, addr: int) -> int:
        """Release a kmalloc'd object.

        Double frees push the object onto the freelist twice — the real
        corruption — after reporting the free to sanitizer hooks.
        """
        if addr == 0:
            return 0
        ctx.notify_free(addr)
        self.free_count += 1
        ctx.work(6)
        entry = self.live_objects.pop(addr, None)
        if entry is None:
            # double free / invalid free: corrupt the freelist like SLUB
            cache = self._cache_of_freed(addr)
            self.double_free_count += 1
            if cache is not None:
                self._push_freelist(ctx, cache, addr)
            return -1
        cache_id, _size = entry
        cache = self.caches[cache_id] if cache_id < len(self.caches) else None
        if cache is None:
            return self.buddy.free_pages(ctx, addr)
        cache.live -= 1
        if self.quarantine_depth > 0:
            # defer reuse: the object enters quarantine, and the oldest
            # quarantined object takes its place on the freelist
            self._quarantine.append((cache, addr))
            if len(self._quarantine) > self.quarantine_depth:
                old_cache, old_addr = self._quarantine.pop(0)
                self._push_freelist(ctx, old_cache, old_addr)
            return 0
        self._push_freelist(ctx, cache, addr)
        return 0

    @guestfn(name="ksize")
    def ksize(self, ctx: GuestContext, addr: int) -> int:
        """Usable size of a live allocation (slot size, like SLUB)."""
        entry = self.live_objects.get(addr)
        if entry is None:
            return 0
        cache_id, _size = entry
        if cache_id >= len(self.caches):
            return _size
        return self.caches[cache_id].object_size

    # ------------------------------------------------------------------
    # internals (uninstrumented allocator metadata)
    # ------------------------------------------------------------------
    def _kmalloc_large(self, ctx: GuestContext, size: int) -> int:
        order = max(0, (size + PAGE_SIZE - 1) // PAGE_SIZE - 1).bit_length()
        addr = self.buddy.alloc_pages(ctx, order)
        if addr:
            self.live_objects[addr] = (PAGE_SIZE << order, size)
            self.alloc_count += 1
            ctx.notify_alloc(addr, size, 0xFFFE)
        return addr

    def _refill(self, ctx: GuestContext, cache: KmemCache) -> bool:
        page = self.buddy.alloc_pages(ctx, cache.slab_order)
        if page == 0:
            return False
        cache.pages.append(page)
        ctx.notify_slab_page(page, PAGE_SIZE << cache.slab_order)
        for slot in range(cache.objects_per_page - 1, -1, -1):
            self._push_freelist(ctx, cache, page + slot * cache.slot_size)
        return True

    def _push_freelist(self, ctx: GuestContext, cache: KmemCache, addr: int) -> None:
        ctx.raw_st32(addr, cache.freelist_head)
        cache.freelist_head = addr
        self._free_objects[addr] = cache.cache_id

    def _take_from_freelist(self, ctx: GuestContext, cache: KmemCache) -> int:
        addr = cache.freelist_head
        if addr == _FREELIST_END:
            return 0
        cache.freelist_head = ctx.raw_ld32(addr)
        self._free_objects.pop(addr, None)
        return addr

    def _cache_of_freed(self, addr: int) -> Optional[KmemCache]:
        cache_id = self._free_objects.get(addr)
        if cache_id is not None:
            return self.caches[cache_id]
        for cache in self.caches:
            span = PAGE_SIZE << cache.slab_order
            for page in cache.pages:
                if page <= addr < page + span:
                    return cache
        return None

    # ------------------------------------------------------------------
    def live_count(self) -> int:
        """Number of live objects (diagnostic / test invariant)."""
        return len(self.live_objects)

    def check_invariants(self) -> None:
        """Assert cache bookkeeping is self-consistent."""
        for cache in self.caches:
            assert cache.live >= 0, f"negative live count in {cache!r}"
        overlap = set(self.live_objects) & set(self._free_objects)
        # a double-freed-then-reallocated object can appear in both maps;
        # absent seeded double frees the sets must be disjoint.
        if self.double_free_count == 0:
            assert not overlap, f"objects both live and free: {overlap}"


def _align(value: int, boundary: int) -> int:
    return (value + boundary - 1) // boundary * boundary
