"""The rehosted Embedded Linux kernel.

Wires the buddy/slab allocators, VFS, socket layer and subsystem hooks
behind a Linux-shaped syscall interface.  Firmware images (see
:mod:`repro.firmware`) decide which driver/filesystem modules are
present and which seeded defects are armed.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Optional, Tuple

from repro.emulator.machine import Machine
from repro.errors import FirmwareBuildError
from repro.guest.context import GuestContext
from repro.guest.module import guestfn
from repro.os.common import BugSwitchboard, KernelBase
from repro.os.embedded_linux.buddy import BuddyAllocator, PAGE_SIZE
from repro.os.embedded_linux.slab import SlabAllocator
from repro.os.embedded_linux.syscalls import (
    EINVAL,
    ENOMEM,
    ENOSYS,
    Syscall,
)
from repro.os.embedded_linux.vfs import NullConsoleDevice, Vfs

#: device id of the always-present console character device
CONSOLE_DEV_ID = 1

#: device-id base for socket "files"
SOCK_DEV_BASE = 0x8000


def parse_version(text: str) -> Tuple[int, int, int, int]:
    """Parse "5.17-rc2" / "6.0" / "5.18-next" into a comparable tuple.

    Release candidates order before the release; "-next" after it.
    """
    match = re.match(r"^(\d+)\.(\d+)(?:\.(\d+))?(?:-(rc(\d+)|next))?$", text.strip())
    if not match:
        raise ValueError(f"unparsable kernel version {text!r}")
    major, minor = int(match.group(1)), int(match.group(2))
    patch = int(match.group(3) or 0)
    suffix = match.group(4)
    if suffix is None:
        rank = 0
    elif suffix == "next":
        rank = 100
    else:
        rank = int(match.group(5)) - 100  # rc1 .. rc9 sort before release
    return (major, minor, patch, rank)


class EmbeddedLinuxKernel(KernelBase):
    """A Linux-shaped embedded kernel with a fuzzable syscall surface."""

    os_name = "embedded-linux"

    def __init__(
        self,
        machine: Machine,
        version: str = "6.1",
        bugs: Optional[BugSwitchboard] = None,
    ):
        super().__init__(machine, bugs=bugs)
        self.version = version
        self.version_key = parse_version(version)
        self.banner = f"Embedded Linux {version} (repro) ready."
        dram = machine.arch.region("dram")
        self.buddy = BuddyAllocator(dram.base, dram.size)
        self.mm = SlabAllocator(self.buddy)
        self.vfs = Vfs(self)
        self.console_dev = NullConsoleDevice(self)
        self.add_module(self.buddy)
        self.add_module(self.mm)
        self.add_module(self.vfs)
        self.add_module(self.console_dev)
        #: subsystem hooks: "bpf", "watchq", "scan", ...
        self.handlers: Dict[str, Callable] = {}
        #: netlink protocol handlers: proto -> (ctx, cmd, arg) -> int
        self.netlink_protos: Dict[int, Callable] = {}
        #: mounted-filesystem registry: fs_id -> module
        self.filesystems: Dict[int, object] = {}
        self._mounted: Dict[int, bool] = {}
        #: mmap bookkeeping: addr -> order
        self._mmaps: Dict[int, int] = {}
        self.user_buf = 0
        self.syscall_count = 0

    # ------------------------------------------------------------------
    # registration API used by driver/fs modules
    # ------------------------------------------------------------------
    def register_handler(self, name: str, handler: Callable) -> None:
        """Register a subsystem syscall handler ("bpf", "watchq", ...)."""
        if name in self.handlers:
            raise FirmwareBuildError(f"subsystem handler {name!r} already set")
        self.handlers[name] = handler

    def register_filesystem(self, fs_id: int, module) -> None:
        """Register a mountable filesystem module."""
        self.filesystems[fs_id] = module

    def register_netlink(self, proto: int, handler: Callable) -> None:
        """Register a netlink protocol handler."""
        if proto in self.netlink_protos:
            raise FirmwareBuildError(f"netlink proto {proto} already registered")
        self.netlink_protos[proto] = handler

    def register_socket_family(self, family: int, node) -> None:
        """Register a socket family as a VFS device node."""
        self.vfs.register_device(SOCK_DEV_BASE + family, node)

    def spawn_kthread(self, name: str, body) -> None:
        """Spawn a background kernel thread (generator body).

        The thread gets its own text slot so its memory traffic
        symbolizes to ``kthread.<name>`` in sanitizer reports.
        """
        fn_addr = self.ctx.layout.alloc_text(f"kthread.{name}") if self.ctx else 0
        self.sched.spawn(name, body, fn_addr=fn_addr)

    # ------------------------------------------------------------------
    def do_boot(self, ctx: GuestContext) -> None:
        self.user_buf = self.buddy.alloc_pages(ctx, 0)
        if self.user_buf == 0:
            raise FirmwareBuildError("could not allocate the user staging page")
        self.vfs.register_device(CONSOLE_DEV_ID, self.console_dev)
        for module in self.modules:
            hook = getattr(module, "late_init", None)
            if hook is not None:
                hook(ctx)

    def probe_workload(self, ctx: GuestContext) -> None:
        """Boot-time self-test: exercise the slab and page allocators."""
        objs = []
        for size in (24, 100, 300, 1000):
            addr = self.mm.kmalloc(ctx, size)
            if addr:
                ctx.st32(addr, size)
                ctx.st32(addr + 8, 0)
                objs.append(addr)
        zeroed = self.mm.kzalloc(ctx, 128)
        if zeroed:
            ctx.ld32(zeroed + 16)
            objs.append(zeroed)
        for addr in objs:
            self.mm.kfree(ctx, addr)
        for order in (0, 1, 0):
            page = self.buddy.alloc_pages(ctx, order)
            if page:
                ctx.st32(page, order)
                self.buddy.free_pages(ctx, page)

    def user_payload(self, ctx: GuestContext, seed: int, size: int) -> int:
        """Synthesize a deterministic userspace buffer; returns its address."""
        size = min(size, PAGE_SIZE)
        state = (seed * 2654435761 + 1) & 0xFFFFFFFF
        out = bytearray()
        while len(out) < size:
            state = (state * 1103515245 + 12345) & 0xFFFFFFFF
            out.append((state >> 16) & 0xFF)
        ctx.raw_write(self.user_buf, bytes(out[:size]))
        return self.user_buf

    # ------------------------------------------------------------------
    @guestfn(name="do_syscall")
    def do_syscall(
        self, ctx: GuestContext, nr: int, a0: int = 0, a1: int = 0,
        a2: int = 0, a3: int = 0,
    ) -> int:
        """The kernel syscall entry point; returns result or -errno."""
        self.syscall_count += 1
        # syscall entry/exit: mode switch, register save/restore, path
        # lookup boilerplate — uninstrumented guest work
        ctx.work(20)
        try:
            result = self._dispatch(ctx, nr, a0, a1, a2, a3)
        finally:
            # give background kthreads a slice after every syscall —
            # this interleaving is what exposes the seeded data races
            self.sched.tick(ctx)
        return result

    def _dispatch(
        self, ctx: GuestContext, nr: int, a0: int, a1: int, a2: int, a3: int
    ) -> int:
        if nr == Syscall.OPEN:
            return self.vfs.do_open(ctx, a0)
        if nr == Syscall.CLOSE:
            return self.vfs.filp_close(ctx, a0)
        if nr == Syscall.READ:
            return self.vfs.vfs_read(ctx, a0, a1, a2)
        if nr == Syscall.WRITE:
            return self.vfs.vfs_write(ctx, a0, a1, a2)
        if nr == Syscall.IOCTL:
            return self.vfs.do_ioctl(ctx, a0, a1, a2, a3)
        if nr == Syscall.MMAP:
            return self._sys_mmap(ctx, a0)
        if nr == Syscall.MUNMAP:
            return self._sys_munmap(ctx, a0)
        if nr == Syscall.SOCKET:
            return self.vfs.do_open(ctx, SOCK_DEV_BASE + a0)
        if nr == Syscall.SENDMSG:
            return self.vfs.vfs_write(ctx, a0, a1, a2)
        if nr == Syscall.RECVMSG:
            return self.vfs.vfs_read(ctx, a0, a1, 0)
        if nr == Syscall.MOUNT:
            return self._sys_mount(ctx, a0, a1)
        if nr == Syscall.UMOUNT:
            return self._sys_umount(ctx, a0)
        if nr == Syscall.FSOP:
            return self._sys_fsop(ctx, a0, a1, a2, a3)
        if nr == Syscall.NETLINK:
            nl_handler = self.netlink_protos.get(a0)
            if nl_handler is None:
                return EINVAL
            return nl_handler(ctx, a1, a2)
        handler = {
            Syscall.BPF: "bpf",
            Syscall.WATCHQ: "watchq",
            Syscall.SCAN: "scan",
            Syscall.FONT: "font",
            Syscall.FLOPPY: "floppy",
            Syscall.SYSFS: "sysfs",
            Syscall.PRCTL: "prctl",
        }.get(nr)
        if handler is not None and handler in self.handlers:
            return self.handlers[handler](ctx, a0, a1, a2)
        return ENOSYS

    # ------------------------------------------------------------------
    def _sys_mmap(self, ctx: GuestContext, length: int) -> int:
        order = 0
        while (PAGE_SIZE << order) < min(length, 1 << 20):
            order += 1
        addr = self.buddy.alloc_pages(ctx, order)
        if addr == 0:
            return ENOMEM
        self._mmaps[addr] = order
        ctx.cov(10)
        return addr

    def _sys_munmap(self, ctx: GuestContext, addr: int) -> int:
        if addr not in self._mmaps:
            if self.bugs.enabled("t2_08_free_pages"):
                # 5.17-rc8 free_pages null-deref shape: the kernel follows
                # a null page pointer when freeing an unmapped address
                ctx.ld32(0)
            return EINVAL
        del self._mmaps[addr]
        return self.buddy.free_pages(ctx, addr)

    def _sys_mount(self, ctx: GuestContext, fs_id: int, flags: int) -> int:
        fs = self.filesystems.get(fs_id)
        if fs is None:
            return EINVAL
        self._mounted[fs_id] = True
        mount = getattr(fs, "fs_mount", None)
        return mount(ctx, flags) if mount else 0

    def _sys_umount(self, ctx: GuestContext, fs_id: int) -> int:
        fs = self.filesystems.get(fs_id)
        if fs is None or not self._mounted.get(fs_id):
            return EINVAL
        self._mounted[fs_id] = False
        umount = getattr(fs, "fs_umount", None)
        return umount(ctx) if umount else 0

    def _sys_fsop(self, ctx: GuestContext, fs_id: int, op: int, a2: int, a3: int) -> int:
        fs = self.filesystems.get(fs_id)
        if fs is None:
            return EINVAL
        fsop = getattr(fs, "fs_op", None)
        return fsop(ctx, op, a2, a3) if fsop else ENOSYS
