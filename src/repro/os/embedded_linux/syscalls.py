"""Syscall numbers and dispatch plumbing for the rehosted Linux kernel.

The surface is Linux-shaped but reduced to what the evaluation needs:
file descriptors over device nodes and filesystems, sockets, bpf, the
watch_queue/keyctl pair, mmap, and a few subsystem-specific entries.
Arguments are four guest words, matching the EVM32 ABI, so fuzzers
generate programs as ``(nr, a0, a1, a2, a3)`` tuples.
"""

from __future__ import annotations

import enum

#: errno values returned as negative numbers, Linux style.
EINVAL = -22
EBADF = -9
ENOMEM = -12
ENODEV = -19
ENOSYS = -38


class Syscall(enum.IntEnum):
    """Syscall numbers understood by :class:`EmbeddedLinuxKernel`."""

    OPEN = 1  #: a0 = device id
    CLOSE = 2  #: a0 = fd
    READ = 3  #: a0 = fd, a1 = size, a2 = offset
    WRITE = 4  #: a0 = fd, a1 = size, a2 = data seed
    IOCTL = 5  #: a0 = fd, a1 = cmd, a2/a3 = args
    MMAP = 6  #: a0 = length, a1 = prot
    MUNMAP = 7  #: a0 = addr
    SOCKET = 8  #: a0 = family
    SENDMSG = 9  #: a0 = fd, a1 = size, a2 = seed
    RECVMSG = 10  #: a0 = fd, a1 = size
    BPF = 11  #: a0 = cmd, a1/a2 = args
    WATCHQ = 12  #: a0 = cmd, a1/a2 = args
    MOUNT = 13  #: a0 = fs id, a1 = flags
    UMOUNT = 14  #: a0 = fs id
    FSOP = 15  #: a0 = fs id, a1 = op, a2/a3 = args
    NETLINK = 16  #: a0 = proto, a1 = cmd, a2 = arg
    SCAN = 17  #: a0 = wiphy id (wireless scan trigger)
    FONT = 18  #: a0 = op, a1 = height (console font path)
    FLOPPY = 19  #: a0 = cmd, a1 = arg
    SYSFS = 20  #: a0 = op, a1 = arg (driver core uevent/register)
    PRCTL = 21  #: a0 = op, a1 = arg


#: Human-readable names, used by reproducer listings.
SYSCALL_NAMES = {call.value: call.name.lower() for call in Syscall}
