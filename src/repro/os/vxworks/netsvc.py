"""The WDR-7660's closed-source network services, as EVM32 binaries.

``pppoed`` and ``dhcpsd`` are assembled from the sources below into
stripped blobs at firmware build time and execute on the machine's TCG
engine.  Their Table-4 defects are real missing bounds checks in the
binary code: both daemons copy an attacker-controlled length field's
worth of bytes into a fixed-size response buffer allocated from
memPartLib.

Packet layouts (as the daemons parse them):

pppoed (PPPoE discovery)::

    +0 ver/type  +1 code (0x09 = PADI)  +2..3 session
    +4..5 tag_type  +6..7 tag_length  +8.. tag payload

dhcpsd (BOOTP/DHCP)::

    +0 op (1 = BOOTREQUEST)  +1 htype  +2 option code
    +3 option length  +4.. option payload
"""

from __future__ import annotations

from typing import Dict

from repro.isa.assembler import assemble

#: response scratch buffers the daemons fill (allocated per packet)
PPPOE_RESP_BYTES = 32
DHCP_RESP_BYTES = 24

PPPOED_SOURCE = """
; pppoed packet parser -- stripped build, no symbol table shipped
; in: a0 = packet, a1 = packet length, a2 = response buffer
; out: a0 = 0 ok / -22 reject
.org {base}
.global pppoed_entry
pppoed_entry:
    ld8   t0, [a0 + 1]          ; discovery code
    movi  t3, 0x09              ; PADI
    bne   t0, t3, pppoed_reject
    ld16  t1, [a0 + 6]          ; tag_length (attacker controlled)
    movi  t2, 0
pppoed_copy:
    bgeu  t2, t1, pppoed_done   ; no clamp against the 32-byte response
    add   t3, a0, t2
    ld8   s0, [t3 + 8]
    add   t3, a2, t2
    st8   s0, [t3]
    addi  t2, t2, 1
    jmp   pppoed_copy
pppoed_done:
    mov   a0, t2
    ret
pppoed_reject:
    movi  a0, -22
    ret
"""

DHCPSD_SOURCE = """
; dhcpsd option parser -- stripped build, no symbol table shipped
; in: a0 = packet, a1 = packet length, a2 = response buffer
; out: a0 = 0 ok / -22 reject
.org {base}
.global dhcpsd_entry
dhcpsd_entry:
    ld8   t0, [a0]              ; BOOTP op
    movi  t3, 1                 ; BOOTREQUEST
    bne   t0, t3, dhcpsd_reject
    ld8   t1, [a0 + 3]          ; option length (attacker controlled)
    movi  t2, 0
dhcpsd_copy:
    bgeu  t2, t1, dhcpsd_done   ; no clamp against the 24-byte response
    add   t3, a0, t2
    ld8   s0, [t3 + 4]
    add   t3, a2, t2
    st8   s0, [t3]
    addi  t2, t2, 1
    jmp   dhcpsd_copy
dhcpsd_done:
    mov   a0, t2
    ret
dhcpsd_reject:
    movi  a0, -22
    ret
"""

#: a one-instruction landing pad the kernel points ``lr`` at
HALT_PAD_SOURCE = """
.org {base}
.global halt_pad
halt_pad:
    hlt
"""


def assemble_services(pppoed_base: int, dhcpsd_base: int,
                      pad_base: int) -> Dict[str, tuple]:
    """Assemble all three blobs; returns name -> (image, base, entry)."""
    out = {}
    for name, source, base in (
        ("pppoed", PPPOED_SOURCE, pppoed_base),
        ("dhcpsd", DHCPSD_SOURCE, dhcpsd_base),
        ("halt_pad", HALT_PAD_SOURCE, pad_base),
    ):
        result = assemble(source.format(base=hex(base)), base=base)
        entry = result.symbols[f"{name}_entry" if name != "halt_pad" else "halt_pad"]
        out[name] = (result.image, base, entry)
    return out
