"""VxWorks memPartLib: first-fit partition allocator.

Block headers (size word + free link) live in guest memory.  The
module is ``stripped``: closed-source firmware exports no symbols, so
the Prober must identify ``memPartAlloc``/``memPartFree`` purely from
their call/return behaviour.
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn

_HEADER_BYTES = 8
_USED_FLAG = 0x8000_0000
_ALIGN = 8


class MemPartLib(GuestModule):
    """The VxWorks system memory partition."""

    location = "memPartLib"
    stripped = True

    def __init__(self, base: int, size: int):
        super().__init__(name="memPartLib")
        self.base = _align_up(base)
        self.size = size - (self.base - base)
        self.alloc_count = 0
        self.free_count = 0
        self._free_head = 0

    def on_install(self, ctx: GuestContext) -> None:
        first = self.base
        ctx.raw_st32(first, self.size)
        ctx.raw_st32(first + 4, 0)  # next free = NULL
        self._free_head = first

    # ------------------------------------------------------------------
    @guestfn(name="memPartAlloc", allocator="alloc")
    def memPartAlloc(self, ctx: GuestContext, size: int) -> int:
        """First-fit allocate ``size`` bytes from the partition."""
        if size <= 0:
            return 0
        if ctx.alloc_fault(size):
            return 0
        need = _align_up(size + _HEADER_BYTES)
        prev = 0
        block = self._free_head
        hops = 0
        while block:
            hops += 1
            if hops > 256 or not self.base <= block < self.base + self.size:
                # heap corruption (an overflow scribbled a header): the
                # real memPartLib would wander or crash here; we fail the
                # allocation so the guest stays drivable
                return 0
            block_size = ctx.raw_ld32(block) & ~_USED_FLAG
            if block_size >= need:
                break
            prev = block
            block = ctx.raw_ld32(block + 4)
        if not block:
            return 0
        ctx.work(5)
        block_size = ctx.raw_ld32(block) & ~_USED_FLAG
        nxt = ctx.raw_ld32(block + 4)
        if block_size - need >= _HEADER_BYTES * 2:
            tail = block + need
            ctx.raw_st32(tail, block_size - need)
            ctx.raw_st32(tail + 4, nxt)
            nxt = tail
            ctx.raw_st32(block, need | _USED_FLAG)
        else:
            ctx.raw_st32(block, block_size | _USED_FLAG)
        if prev:
            ctx.raw_st32(prev + 4, nxt)
        else:
            self._free_head = nxt
        self.alloc_count += 1
        addr = block + _HEADER_BYTES
        ctx.notify_alloc(addr, size, 0)
        return addr

    @guestfn(name="memPartFree", allocator="free")
    def memPartFree(self, ctx: GuestContext, addr: int) -> int:
        """Return a block to the partition free list (no coalescing,
        like classic memPartLib)."""
        if addr == 0:
            return -1
        ctx.notify_free(addr)
        block = addr - _HEADER_BYTES
        word = ctx.raw_ld32(block)
        if not word & _USED_FLAG:
            self.free_count += 1
            return -1  # double free
        ctx.raw_st32(block, word & ~_USED_FLAG)
        ctx.raw_st32(block + 4, self._free_head)
        self._free_head = block
        self.free_count += 1
        ctx.work(4)
        return 0


def _align_up(value: int) -> int:
    return (value + _ALIGN - 1) // _ALIGN * _ALIGN
