"""Rehosted Wind River VxWorks (closed-source firmware).

memPartLib (first-fit partitions with guest-resident headers) plus the
TP-Link WDR-7660's network services — ``pppoed`` and ``dhcpsd`` — which
ship as **stripped EVM32 binaries** and execute on the TCG engine.
This is the Prober's category-3 target: no source, no symbols, and the
sanitizer sees only what the emulator exposes.
"""

from repro.os.vxworks.mempart import MemPartLib
from repro.os.vxworks.kernel import VxWorksKernel, VxWorksOp

__all__ = ["MemPartLib", "VxWorksKernel", "VxWorksOp"]
