"""The rehosted VxWorks kernel (TP-Link WDR-7660).

Closed-source firmware: the memPartLib module is stripped and the
network daemons are opaque EVM32 binaries executing on the TCG engine.
The executor interface models packets arriving from the network.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.emulator.machine import Machine
from repro.guest.context import GuestContext
from repro.os.common import BugSwitchboard, KernelBase
from repro.os.vxworks.mempart import MemPartLib
from repro.os.vxworks.netsvc import (
    DHCP_RESP_BYTES,
    PPPOE_RESP_BYTES,
    assemble_services,
)

E_INVAL = -22
E_NOMEM = -12

#: blob placement inside flash (away from rehosted-function slots)
_BLOB_OFFSET = 0x20_0000
_BLOB_STRIDE = 0x1000


class VxWorksOp(enum.IntEnum):
    """Executor-visible operations (packets + partition ops)."""

    PPPOE_PACKET = 1  #: a0 = code, a1 = tag_len, a2 = seed
    DHCP_PACKET = 2  #: a0 = op, a1 = opt_len, a2 = seed
    MALLOC = 3
    FREE = 4


class VxWorksKernel(KernelBase):
    """VxWorks with the WDR-7660 service set."""

    os_name = "vxworks"
    #: closed-source: even the kernel's own wrapper symbols are stripped
    stripped = True

    def __init__(
        self,
        machine: Machine,
        version: str = "6.9",
        bugs: Optional[BugSwitchboard] = None,
    ):
        super().__init__(machine, bugs=bugs)
        self.version = version
        self.banner = f"VxWorks {version} (repro) WDR-7660 services up."
        dram = machine.arch.region("dram")
        self.heap = MemPartLib(dram.base, min(dram.size, 1 << 21))
        self.add_module(self.heap)
        self.cpu = None
        self.blobs: Dict[str, tuple] = {}
        self._halt_pad = 0
        self._exec_allocs: Dict[int, int] = {}
        self.op_count = 0

    @property
    def mm(self):
        """Allocator alias shared across OS kernels."""
        return self.heap

    # ------------------------------------------------------------------
    def do_boot(self, ctx: GuestContext) -> None:
        flash = self.machine.arch.region("flash")
        base = flash.base + _BLOB_OFFSET
        self.blobs = assemble_services(
            base, base + _BLOB_STRIDE, base + 2 * _BLOB_STRIDE
        )
        with ctx.bus.untraced():
            for name, (image, blob_base, _entry) in self.blobs.items():
                ctx.bus.region_named("flash").write(blob_base, image)
                ctx.layout.register_blob(name, blob_base, max(len(image), 1))
        self._halt_pad = self.blobs["halt_pad"][2]
        sram = self.machine.arch.region("sram")
        self.cpu = self.machine.add_cpu(
            pc=self._halt_pad, sp=sram.base + sram.size // 4
        )

    def probe_workload(self, ctx: GuestContext) -> None:
        """Boot-time self-test: exercise the system partition and feed
        each daemon one benign packet (observable service activity)."""
        objs = []
        for size in (16, 64, 128, 40):
            addr = self.heap.memPartAlloc(ctx, size)
            if addr:
                ctx.st32(addr, size)
                objs.append(addr)
        for addr in objs:
            self.heap.memPartFree(ctx, addr)
        self._pppoe_rx(ctx, 0x09, 4, 1)
        self._dhcp_rx(ctx, 1, 4, 1)

    # ------------------------------------------------------------------
    def _run_blob(self, entry: int, pkt: int, pkt_len: int, resp: int) -> int:
        """Execute a service blob with the packet register convention."""
        state = self.cpu.state
        state.halted = False
        state.pc = entry
        state.write(1, pkt)
        state.write(2, pkt_len)
        state.write(3, resp)
        state.write(15, self._halt_pad)
        self.cpu.run(max_steps=100_000)
        return _signed(state.read(1))

    # ------------------------------------------------------------------
    def invoke(self, ctx: GuestContext, op: int, a0: int = 0, a1: int = 0,
               a2: int = 0) -> int:
        """The executor entry point (packets from the network side)."""
        self.op_count += 1
        # task-API trap entry/exit: uninstrumented guest boilerplate
        ctx.work(10)
        try:
            result = self._dispatch(ctx, op, a0, a1, a2)
        finally:
            self.sched.tick(ctx)
        return result

    def _dispatch(self, ctx: GuestContext, op: int, a0: int, a1: int,
                  a2: int) -> int:
        if op == VxWorksOp.PPPOE_PACKET:
            return self._pppoe_rx(ctx, a0, a1, a2)
        if op == VxWorksOp.DHCP_PACKET:
            return self._dhcp_rx(ctx, a0, a1, a2)
        if op == VxWorksOp.MALLOC:
            addr = self.heap.memPartAlloc(ctx, a0 & 0x3FF)
            if addr == 0:
                return E_NOMEM
            self._exec_allocs[len(self._exec_allocs) + 1] = addr
            return len(self._exec_allocs)
        if op == VxWorksOp.FREE:
            addr = self._exec_allocs.pop(a0, 0)
            if addr == 0:
                return E_INVAL
            return self.heap.memPartFree(ctx, addr)
        return E_INVAL

    # ------------------------------------------------------------------
    def _pppoe_rx(self, ctx: GuestContext, code: int, tag_len: int,
                  seed: int) -> int:
        """A PPPoE discovery frame arrived on the WAN interface."""
        tag_len &= 0xFF
        payload = _packet_payload(seed, 16)
        header = bytes((0x11, code & 0xFF, 0, 0, 0x01, 0x01,
                        tag_len & 0xFF, (tag_len >> 8) & 0xFF))
        pkt_bytes = header + payload
        pkt = self.heap.memPartAlloc(ctx, len(pkt_bytes))
        resp = self.heap.memPartAlloc(ctx, PPPOE_RESP_BYTES)
        if pkt == 0 or resp == 0:
            return E_NOMEM
        ctx.write_bytes(pkt, pkt_bytes)
        if (code & 0xFF) == 0x09 and tag_len > PPPOE_RESP_BYTES:
            # ground truth: the daemon's missing clamp is about to fire
            self.bugs.enabled("t4_wdr7660_pppoed_oob")
        result = self._run_blob(self.blobs["pppoed"][2], pkt, len(pkt_bytes), resp)
        self.heap.memPartFree(ctx, resp)
        self.heap.memPartFree(ctx, pkt)
        return result

    def _dhcp_rx(self, ctx: GuestContext, bootp_op: int, opt_len: int,
                 seed: int) -> int:
        """A BOOTP/DHCP datagram arrived on the LAN interface."""
        opt_len &= 0xFF
        payload = _packet_payload(seed, 12)
        header = bytes((bootp_op & 0xFF, 1, 53, opt_len & 0xFF))
        pkt_bytes = header + payload
        pkt = self.heap.memPartAlloc(ctx, len(pkt_bytes))
        resp = self.heap.memPartAlloc(ctx, DHCP_RESP_BYTES)
        if pkt == 0 or resp == 0:
            return E_NOMEM
        ctx.write_bytes(pkt, pkt_bytes)
        if (bootp_op & 0xFF) == 1 and opt_len > DHCP_RESP_BYTES:
            self.bugs.enabled("t4_wdr7660_dhcpsd_oob")
        result = self._run_blob(self.blobs["dhcpsd"][2], pkt, len(pkt_bytes), resp)
        self.heap.memPartFree(ctx, resp)
        self.heap.memPartFree(ctx, pkt)
        return result


def _packet_payload(seed: int, size: int) -> bytes:
    state = (seed * 2246822519 + 7) & 0xFFFFFFFF
    out = bytearray()
    while len(out) < size:
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        out.append((state >> 16) & 0xFF)
    return bytes(out)


def _signed(value: int) -> int:
    return value - (1 << 32) if value >= 1 << 31 else value
