"""FreeRTOS task layer: TCBs in guest heap memory."""

from __future__ import annotations

from typing import Dict

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn

E_INVAL = -22
E_NOMEM = -12

_TCB_BYTES = 64


class TaskLayer(GuestModule):
    """Task control blocks and deletion semantics."""

    location = "tasks.c"

    def __init__(self, kernel):
        super().__init__(name="freertos_tasks")
        self.kernel = kernel
        #: handle -> TCB guest address
        self.tcbs: Dict[int, int] = {}
        self._next_handle = 1

    # ------------------------------------------------------------------
    @guestfn(name="xTaskCreate")
    def xTaskCreate(self, ctx: GuestContext, priority: int, depth: int) -> int:
        """Create a task; returns its handle."""
        tcb = self.kernel.heap.pvPortMalloc(ctx, _TCB_BYTES)
        if tcb == 0:
            return E_NOMEM
        ctx.memset(tcb, 0, _TCB_BYTES)
        ctx.st32(tcb, priority & 0xF)
        ctx.st32(tcb + 4, max(64, depth & 0xFFF))
        handle = self._next_handle
        self._next_handle += 1
        self.tcbs[handle] = tcb
        ctx.cov(1)
        return handle

    @guestfn(name="vTaskDelete")
    def vTaskDelete(self, ctx: GuestContext, handle: int) -> int:
        """Delete a task, releasing its TCB."""
        tcb = self.tcbs.pop(handle, None)
        if tcb is None:
            return E_INVAL
        ctx.st32(tcb + 8, 0xDEAD)
        self.kernel.heap.vPortFree(ctx, tcb)
        ctx.cov(2)
        return 0

    @guestfn(name="uxTaskPriorityGet")
    def uxTaskPriorityGet(self, ctx: GuestContext, handle: int) -> int:
        """Read a task's priority from its TCB."""
        tcb = self.tcbs.get(handle)
        if tcb is None:
            return E_INVAL
        return ctx.ld32(tcb)
