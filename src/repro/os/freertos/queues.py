"""FreeRTOS queues: ring storage in guest heap memory."""

from __future__ import annotations

from typing import Dict

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn

E_INVAL = -22
E_NOMEM = -12
E_FULL = -105
E_EMPTY = -61

_ITEM_BYTES = 4
_HDR_BYTES = 16  #: head(4) tail(4) count(4) length(4)


class QueueLayer(GuestModule):
    """Queue control blocks + ring storage."""

    location = "queue.c"

    def __init__(self, kernel):
        super().__init__(name="freertos_queues")
        self.kernel = kernel
        #: handle -> queue guest address
        self.queues: Dict[int, int] = {}
        self._next_handle = 1

    # ------------------------------------------------------------------
    @guestfn(name="xQueueCreate")
    def xQueueCreate(self, ctx: GuestContext, length: int, _unused: int) -> int:
        """Create a queue of ``length`` word items; returns its handle."""
        length = max(1, length & 0x3F)
        queue = self.kernel.heap.pvPortMalloc(
            ctx, _HDR_BYTES + length * _ITEM_BYTES
        )
        if queue == 0:
            return E_NOMEM
        ctx.memset(queue, 0, _HDR_BYTES)
        ctx.st32(queue + 12, length)
        handle = self._next_handle
        self._next_handle += 1
        self.queues[handle] = queue
        ctx.cov(1)
        return handle

    @guestfn(name="xQueueSend")
    def xQueueSend(self, ctx: GuestContext, handle: int, item: int) -> int:
        """Enqueue one item."""
        queue = self.queues.get(handle)
        if queue is None:
            return E_INVAL
        length = ctx.ld32(queue + 12)
        count = ctx.ld32(queue + 8)
        if count >= length:
            return E_FULL
        head = ctx.ld32(queue)
        ctx.st32(queue + _HDR_BYTES + head * _ITEM_BYTES, item)
        ctx.st32(queue, (head + 1) % length)
        ctx.st32(queue + 8, count + 1)
        ctx.cov(2)
        return 0

    @guestfn(name="xQueueReceive")
    def xQueueReceive(self, ctx: GuestContext, handle: int) -> int:
        """Dequeue one item; E_EMPTY when none is pending."""
        queue = self.queues.get(handle)
        if queue is None:
            return E_INVAL
        count = ctx.ld32(queue + 8)
        if count == 0:
            return E_EMPTY
        length = ctx.ld32(queue + 12)
        tail = ctx.ld32(queue + 4)
        item = ctx.ld32(queue + _HDR_BYTES + tail * _ITEM_BYTES)
        ctx.st32(queue + 4, (tail + 1) % length)
        ctx.st32(queue + 8, count - 1)
        ctx.cov(3)
        return item & 0x7FFFFFFF

    @guestfn(name="vQueueDelete")
    def vQueueDelete(self, ctx: GuestContext, handle: int) -> int:
        """Delete a queue, releasing its storage."""
        queue = self.queues.pop(handle, None)
        if queue is None:
            return E_INVAL
        self.kernel.heap.vPortFree(ctx, queue)
        ctx.cov(4)
        return 0
