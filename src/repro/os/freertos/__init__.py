"""Rehosted FreeRTOS.

heap_4 allocator with first-fit + coalescing over guest memory, a task
layer, queues, and the InfiniTime application modules (littlefs, SPI,
ST7789 display driver) carrying that firmware's Table-4 defects.
"""

from repro.os.freertos.heap4 import Heap4Allocator
from repro.os.freertos.kernel import FreeRtosKernel, FreeRtosOp

__all__ = ["FreeRtosKernel", "FreeRtosOp", "Heap4Allocator"]
