"""FreeRTOS heap_4: first-fit allocation with block coalescing.

Block headers live *inside guest memory* (next-free pointer + size
word), written untraced like any uninstrumented allocator metadata.
This is the real heap_4 layout: a singly linked free list ordered by
address, split on allocation, coalesced with both neighbours on free.
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn

#: header: next-free pointer (4) + size-and-flag word (4)
_HEADER_BYTES = 8
#: top bit of the size word marks "allocated"
_ALLOC_BIT = 0x8000_0000
_ALIGN = 8


class Heap4Allocator(GuestModule):
    """The heap_4 memory manager."""

    location = "portable/MemMang/heap_4"

    def __init__(self, base: int, size: int):
        super().__init__(name="heap4")
        self.base = _align_up(base)
        self.size = size - (self.base - base)
        self.free_bytes = 0
        self.min_free_bytes = 0
        self.alloc_count = 0
        self.free_count = 0
        self._end_marker = 0

    def on_install(self, ctx: GuestContext) -> None:
        """Lay the initial single free block across the heap span."""
        start = self.base
        self._end_marker = self.base + self.size - _HEADER_BYTES
        first_size = self._end_marker - start
        ctx.raw_st32(start, self._end_marker)  # next free = end marker
        ctx.raw_st32(start + 4, first_size)
        ctx.raw_st32(self._end_marker, 0)  # end: next = NULL
        ctx.raw_st32(self._end_marker + 4, 0)
        self._free_head = start
        self.free_bytes = first_size
        self.min_free_bytes = first_size

    # ------------------------------------------------------------------
    @guestfn(name="pvPortMalloc", allocator="alloc")
    def pvPortMalloc(self, ctx: GuestContext, wanted: int) -> int:
        """Allocate ``wanted`` bytes; returns 0 when the heap is exhausted."""
        if wanted <= 0:
            return 0
        if ctx.alloc_fault(wanted):
            return 0
        need = _align_up(wanted + _HEADER_BYTES)
        prev = 0
        block = self._free_head
        hops = 0
        while block != self._end_marker and block != 0:
            hops += 1
            if hops > 4096 or not self.base <= block < self.base + self.size:
                return 0  # heap corruption: fail allocation, stay drivable
            size = ctx.raw_ld32(block + 4)
            if size >= need:
                break
            prev = block
            block = ctx.raw_ld32(block)
        if block == self._end_marker or block == 0:
            return 0
        ctx.work(6)
        size = ctx.raw_ld32(block + 4)
        nxt = ctx.raw_ld32(block)
        if size - need > _HEADER_BYTES * 2:
            # split: the tail stays on the free list
            tail = block + need
            ctx.raw_st32(tail, nxt)
            ctx.raw_st32(tail + 4, size - need)
            nxt = tail
            ctx.raw_st32(block + 4, need)
        if prev:
            ctx.raw_st32(prev, nxt)
        else:
            self._free_head = nxt
        taken = ctx.raw_ld32(block + 4)
        ctx.raw_st32(block + 4, taken | _ALLOC_BIT)
        self.free_bytes -= taken
        self.min_free_bytes = min(self.min_free_bytes, self.free_bytes)
        self.alloc_count += 1
        addr = block + _HEADER_BYTES
        ctx.notify_alloc(addr, wanted, 0)
        return addr

    @guestfn(name="vPortFree", allocator="free")
    def vPortFree(self, ctx: GuestContext, addr: int) -> int:
        """Return a block to the free list, coalescing neighbours."""
        if addr == 0:
            return 0
        ctx.notify_free(addr)
        block = addr - _HEADER_BYTES
        word = ctx.raw_ld32(block + 4)
        if not word & _ALLOC_BIT:
            # double free: heap_4 corrupts its list; record and bail
            self.free_count += 1
            return -1
        size = word & ~_ALLOC_BIT
        ctx.raw_st32(block + 4, size)
        self.free_bytes += size
        self.free_count += 1
        ctx.work(6)
        # insert by address and coalesce
        prev = 0
        cursor = self._free_head
        hops = 0
        while cursor != 0 and cursor < block:
            hops += 1
            if hops > 4096:
                break  # corrupted list: give up on ordered insertion
            prev = cursor
            cursor = ctx.raw_ld32(cursor)
        if prev and prev + ctx.raw_ld32(prev + 4) == block:
            # merge into the previous block
            ctx.raw_st32(prev + 4, ctx.raw_ld32(prev + 4) + size)
            block = prev
        else:
            if prev:
                ctx.raw_st32(prev, block)
            else:
                self._free_head = block
            ctx.raw_st32(block, cursor)
        blk_size = ctx.raw_ld32(block + 4)
        nxt = ctx.raw_ld32(block)
        if nxt != 0 and nxt != self._end_marker and block + blk_size == nxt:
            # merge the following block in
            ctx.raw_st32(block + 4, blk_size + ctx.raw_ld32(nxt + 4))
            ctx.raw_st32(block, ctx.raw_ld32(nxt))
        return 0

    # ------------------------------------------------------------------
    def walk_free_list(self, ctx: GuestContext):
        """Yield (block, size) over the free list (diagnostics/tests)."""
        cursor = self._free_head
        hops = 0
        while cursor not in (0, self._end_marker) and hops < 1_000_000:
            yield cursor, ctx.raw_ld32(cursor + 4)
            cursor = ctx.raw_ld32(cursor)
            hops += 1

    def check_invariants(self, ctx: GuestContext) -> None:
        """Free list must be address-ordered, in-range and acyclic."""
        last = 0
        total = 0
        for block, size in self.walk_free_list(ctx):
            assert block > last, "free list out of order"
            assert self.base <= block < self.base + self.size, "block escaped heap"
            assert size & ~_ALLOC_BIT == size, "free block marked allocated"
            total += size
            last = block
        assert total == self.free_bytes, (
            f"free accounting drift: walked {total}, counter {self.free_bytes}"
        )


def _align_up(value: int) -> int:
    return (value + _ALIGN - 1) // _ALIGN * _ALIGN
