"""InfiniTime application modules (the PineTime smartwatch firmware).

Three Table-4 defects live here:

* ``t4_infinitime_littlefs_oob`` — src/libs/littlefs: the directory-block
  scanner trusts the on-flash entry size and reads past the block cache.
* ``t4_infinitime_spi_oob`` — src/drivers/Spi: the DMA descriptor setup
  writes one transfer descriptor too many for chained transfers.
* ``t4_infinitime_st7789_uaf`` — src/drivers/St7789: the vsync callback
  touches the draw buffer freed by a sleep transition.
"""

from __future__ import annotations

from repro.guest.context import GuestContext
from repro.guest.module import GuestModule, guestfn

E_INVAL = -22
E_NOMEM = -12

APP_LITTLEFS = 1
APP_SPI = 2
APP_ST7789 = 3

LFS_OP_MOUNT = 1
LFS_OP_SCAN = 2
SPI_OP_XFER = 1
ST_OP_WAKE = 1
ST_OP_SLEEP = 2
ST_OP_VSYNC = 3

_BLOCK_CACHE_BYTES = 96
_DESC_BYTES = 8
_DRAW_BUF_BYTES = 120


class LittleFsModule(GuestModule):
    """src/libs/littlefs: the block-cache directory scanner."""

    location = "src/libs/littlefs"

    def __init__(self, kernel):
        super().__init__(name="littlefs")
        self.kernel = kernel
        self.cache = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_app(APP_LITTLEFS, self.handle)

    def handle(self, ctx: GuestContext, op: int, arg: int) -> int:
        if op == LFS_OP_MOUNT:
            return self.lfs_mount(ctx)
        if op == LFS_OP_SCAN:
            return self.lfs_dir_scan(ctx, arg)
        return E_INVAL

    @guestfn(name="lfs_mount")
    def lfs_mount(self, ctx: GuestContext) -> int:
        """Mount: allocate the block cache."""
        if self.cache:
            return E_INVAL
        cache = self.kernel.heap.pvPortMalloc(ctx, _BLOCK_CACHE_BYTES)
        if cache == 0:
            return E_NOMEM
        ctx.memset(cache, 0x11, _BLOCK_CACHE_BYTES)
        self.cache = cache
        ctx.cov(1)
        return 0

    @guestfn(name="lfs_dir_scan")
    def lfs_dir_scan(self, ctx: GuestContext, entry_size: int) -> int:
        """Scan directory entries out of the cached block."""
        if self.cache == 0:
            return E_INVAL
        ctx.cov(2)
        declared = entry_size & 0xFF
        limit = declared if self.kernel.bugs.enabled(
            "t4_infinitime_littlefs_oob"
        ) else min(declared, _BLOCK_CACHE_BYTES)
        entries = 0
        for offset in range(0, limit, 8):
            # buggy scanner honours the on-flash entry size field
            tag = ctx.ld32(self.cache + offset)
            if tag:
                entries += 1
        return entries


class SpiDriverModule(GuestModule):
    """src/drivers/Spi: chained-transfer descriptor setup."""

    location = "src/drivers/Spi"

    def __init__(self, kernel):
        super().__init__(name="spi")
        self.kernel = kernel

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_app(APP_SPI, self.handle)

    def handle(self, ctx: GuestContext, op: int, arg: int) -> int:
        if op == SPI_OP_XFER:
            return self.spi_transfer(ctx, arg)
        return E_INVAL

    @guestfn(name="spi_transfer")
    def spi_transfer(self, ctx: GuestContext, chunks: int) -> int:
        """Set up a chained SPI transfer of ``chunks`` descriptors."""
        chunks = max(1, chunks & 0xF)
        ctx.cov(1)
        descs = self.kernel.heap.pvPortMalloc(ctx, chunks * _DESC_BYTES)
        if descs == 0:
            return E_NOMEM
        writes = chunks
        if chunks > 1 and self.kernel.bugs.enabled("t4_infinitime_spi_oob"):
            # chained transfers emit a trailing stop descriptor the
            # allocation never accounted for
            writes = chunks + 1
        for idx in range(writes):
            ctx.st32(descs + idx * _DESC_BYTES, 0x40003000)
            ctx.st32(descs + idx * _DESC_BYTES + 4, 0xFF if idx == writes - 1 else idx)
        self.kernel.heap.vPortFree(ctx, descs)
        return writes


class St7789Module(GuestModule):
    """src/drivers/St7789: the display driver's draw buffer."""

    location = "src/drivers/St7789"

    def __init__(self, kernel):
        super().__init__(name="st7789")
        self.kernel = kernel
        self.draw_buf = 0

    def on_install(self, ctx: GuestContext) -> None:
        self.kernel.register_app(APP_ST7789, self.handle)

    def handle(self, ctx: GuestContext, op: int, arg: int) -> int:
        if op == ST_OP_WAKE:
            return self.st7789_wake(ctx)
        if op == ST_OP_SLEEP:
            return self.st7789_sleep(ctx)
        if op == ST_OP_VSYNC:
            return self.st7789_vsync(ctx, arg)
        return E_INVAL

    @guestfn(name="st7789_wake")
    def st7789_wake(self, ctx: GuestContext) -> int:
        """Wake the panel: allocate the draw buffer."""
        if self.draw_buf:
            return E_INVAL
        buf = self.kernel.heap.pvPortMalloc(ctx, _DRAW_BUF_BYTES)
        if buf == 0:
            return E_NOMEM
        ctx.memset(buf, 0, _DRAW_BUF_BYTES)
        self.draw_buf = buf
        ctx.cov(1)
        return 0

    @guestfn(name="st7789_sleep")
    def st7789_sleep(self, ctx: GuestContext) -> int:
        """Sleep transition: free the draw buffer."""
        if self.draw_buf == 0:
            return E_INVAL
        self.kernel.heap.vPortFree(ctx, self.draw_buf)
        if not self.kernel.bugs.enabled("t4_infinitime_st7789_uaf"):
            self.draw_buf = 0
        # the buggy driver leaves the vsync callback's pointer live
        ctx.cov(2)
        return 0

    @guestfn(name="st7789_vsync")
    def st7789_vsync(self, ctx: GuestContext, line: int) -> int:
        """Vsync interrupt: flush one scanline from the draw buffer."""
        if self.draw_buf == 0:
            return E_INVAL
        ctx.cov(3)
        slot = (line % (_DRAW_BUF_BYTES // 4)) * 4
        pixel = ctx.ld32(self.draw_buf + slot)  # UAF after sleep
        ctx.st32(self.draw_buf + slot, pixel ^ 0xFFFF)
        return pixel & 0x7FFFFFFF
