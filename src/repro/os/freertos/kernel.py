"""The rehosted FreeRTOS kernel.

Exposes a task-API surface (the equivalent of the executor interface
Tardis drives on RTOS targets): numbered operations over tasks, queues
and the application modules the firmware ships.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional

from repro.emulator.machine import Machine
from repro.guest.context import GuestContext
from repro.os.common import BugSwitchboard, KernelBase
from repro.os.freertos.heap4 import Heap4Allocator
from repro.os.freertos.queues import QueueLayer
from repro.os.freertos.tasks import TaskLayer

E_INVAL = -22
E_NOMEM = -12


class FreeRtosOp(enum.IntEnum):
    """Executor-visible operations (the Tardis interface spec)."""

    TASK_CREATE = 1
    TASK_DELETE = 2
    QUEUE_CREATE = 3
    QUEUE_SEND = 4
    QUEUE_RECV = 5
    QUEUE_DELETE = 6
    MALLOC = 7
    FREE = 8
    APP_OP = 9  #: a0 = app id, a1/a2 -> module


class FreeRtosKernel(KernelBase):
    """FreeRTOS with the InfiniTime application stack."""

    os_name = "freertos"

    def __init__(
        self,
        machine: Machine,
        version: str = "10.4.3",
        bugs: Optional[BugSwitchboard] = None,
    ):
        super().__init__(machine, bugs=bugs)
        self.version = version
        self.banner = f"FreeRTOS {version} (repro) scheduler started."
        dram = machine.arch.region("dram")
        self.heap = Heap4Allocator(dram.base, min(dram.size, 1 << 22))
        self.tasks = TaskLayer(self)
        self.queues = QueueLayer(self)
        self.add_module(self.heap)
        self.add_module(self.tasks)
        self.add_module(self.queues)
        #: app id -> handler(ctx, op, arg) registered by app modules
        self.apps: Dict[int, Callable] = {}
        #: raw allocations made through the executor interface
        self._exec_allocs: Dict[int, int] = {}
        self.op_count = 0

    # ------------------------------------------------------------------
    def register_app(self, app_id: int, handler: Callable) -> None:
        """Register an application module's operation handler."""
        self.apps[app_id] = handler

    @property
    def mm(self):
        """Allocator alias so shared helpers work across OSs."""
        return self.heap

    def probe_workload(self, ctx: GuestContext) -> None:
        """Boot-time self-test: exercise heap_4, tasks and queues."""
        objs = []
        for size in (16, 64, 200, 48):
            addr = self.heap.pvPortMalloc(ctx, size)
            if addr:
                ctx.st32(addr, size)
                objs.append(addr)
        for addr in objs:
            self.heap.vPortFree(ctx, addr)
        handle = self.tasks.xTaskCreate(ctx, 1, 256)
        if handle > 0:
            self.tasks.vTaskDelete(ctx, handle)
        queue = self.queues.xQueueCreate(ctx, 4, 0)
        if queue > 0:
            self.queues.xQueueSend(ctx, queue, 0x55)
            self.queues.xQueueReceive(ctx, queue)
            self.queues.vQueueDelete(ctx, queue)

    # ------------------------------------------------------------------
    def invoke(self, ctx: GuestContext, op: int, a0: int = 0, a1: int = 0,
               a2: int = 0) -> int:
        """The executor entry point (Tardis's interface)."""
        self.op_count += 1
        # task-API trap entry/exit: uninstrumented guest boilerplate
        ctx.work(10)
        try:
            result = self._dispatch(ctx, op, a0, a1, a2)
        finally:
            self.sched.tick(ctx)
        return result

    def _dispatch(self, ctx: GuestContext, op: int, a0: int, a1: int,
                  a2: int) -> int:
        if op == FreeRtosOp.TASK_CREATE:
            return self.tasks.xTaskCreate(ctx, a0, a1)
        if op == FreeRtosOp.TASK_DELETE:
            return self.tasks.vTaskDelete(ctx, a0)
        if op == FreeRtosOp.QUEUE_CREATE:
            return self.queues.xQueueCreate(ctx, a0, a1)
        if op == FreeRtosOp.QUEUE_SEND:
            return self.queues.xQueueSend(ctx, a0, a1)
        if op == FreeRtosOp.QUEUE_RECV:
            return self.queues.xQueueReceive(ctx, a0)
        if op == FreeRtosOp.QUEUE_DELETE:
            return self.queues.vQueueDelete(ctx, a0)
        if op == FreeRtosOp.MALLOC:
            addr = self.heap.pvPortMalloc(ctx, a0 & 0x3FF)
            if addr:
                self._exec_allocs[len(self._exec_allocs) + 1] = addr
                return len(self._exec_allocs)
            return E_NOMEM
        if op == FreeRtosOp.FREE:
            addr = self._exec_allocs.pop(a0, 0)
            if addr == 0:
                return E_INVAL
            return self.heap.vPortFree(ctx, addr)
        if op == FreeRtosOp.APP_OP:
            handler = self.apps.get(a0)
            if handler is None:
                return E_INVAL
            return handler(ctx, a1, a2)
        return E_INVAL
