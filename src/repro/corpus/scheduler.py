"""Rarity/energy-weighted seed scheduling.

The stock engine picks its mutation seed uniformly from the corpus.
That wastes budget re-mutating programs whose coverage is common; the
scheduler replaces the uniform draw with a weighted one:

* **rarity** — a program's base weight is the sum of ``1/frequency``
  over its signature's coverage points, where frequency counts how
  many corpus programs touch that point.  A program that alone reaches
  a rare point outweighs ten programs circling the same hot path
  (EmbedFuzz and syzkaller's prio scheduling make the same bet).
* **energy decay** — each time a seed is chosen its weight is divided
  by ``1 + picks``, so the scheduler explores the corpus instead of
  hammering the single rarest entry forever.

The draw consumes exactly one ``rng.random()`` per choice, so a
scheduled campaign is deterministic for a fixed seed — but its RNG
stream *differs* from the uniform scheduler's, which is why the engine
keeps scheduling behind an opt-in flag and the default census stays
byte-identical.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.fuzz.program import Program


class SeedScheduler:
    """Weighted corpus selection over coverage signatures."""

    def __init__(self):
        self._programs: List[Program] = []
        self._signatures: List[Sequence[int]] = []
        self._picks: List[int] = []
        #: how many corpus programs touch each coverage point
        self._frequency: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._programs)

    def note(self, program: Program, signature: Sequence[int] = ()) -> None:
        """Register a corpus program (mirrors every corpus append)."""
        self._programs.append(program)
        self._signatures.append(tuple(signature))
        self._picks.append(0)
        for point in signature:
            self._frequency[point] = self._frequency.get(point, 0) + 1

    def weight(self, index: int) -> float:
        """Current selection weight of corpus entry ``index``."""
        signature = self._signatures[index]
        if signature:
            rarity = sum(
                1.0 / self._frequency[point] for point in signature
            )
        else:
            # signature unknown (spec seeds, checkpoint restores):
            # neutral weight keeps them in rotation
            rarity = 1.0
        return rarity / (1 + self._picks[index])

    def choose(self, rng: random.Random) -> Optional[Program]:
        """Draw one seed; None when the corpus is empty."""
        if not self._programs:
            return None
        weights = [self.weight(i) for i in range(len(self._programs))]
        total = sum(weights)
        if total <= 0:
            index = rng.randrange(len(self._programs))
        else:
            mark = rng.random() * total
            index = 0
            for index, weight in enumerate(weights):
                mark -= weight
                if mark < 0:
                    break
        self._picks[index] += 1
        return self._programs[index]
