"""The content-addressed on-disk corpus store.

Layout of a store directory::

    <root>/
      manifest.json           # single-writer stores
      manifest.<writer>.json  # one segment per fleet shard
      programs/<digest>.json  # canonical program bytes (codec.py)

Program bodies are immutable and content-addressed, so concurrent
writers can never conflict on them: two shards that discover the same
program write the same bytes to the same path (atomically, via
write-then-rename).  Mutable state lives only in the manifest, and a
sharded store gives every writer its *own* segment file — readers
union all segments, keyed by digest, which makes the merged view a
set union: order-independent by construction, no locks anywhere.

The manifest is versioned and carries the firmware identity: a corpus
grown on one firmware refuses to seed a campaign on another, the same
way checkpoints validate their identity fields.  Each entry records
the coverage *signature* of its program — the sorted coverage points
the program touched when it was inserted — which is what distillation
(greedy minset) and rarity-weighted seed scheduling consume.

Every structural failure raises :class:`~repro.errors.CorpusError`
(a :class:`~repro.errors.FuzzerError`), mirroring the checkpoint
layer's :class:`~repro.errors.CheckpointError` contract: corrupt
stores are diagnosable and discardable, never a raw traceback.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.corpus.codec import (
    decode_program,
    digest_of_bytes,
    encode_program,
    program_digest,
)
from repro.errors import CorpusError
from repro.fuzz.program import Program

MANIFEST_VERSION = 1

#: entry kinds: ``cover`` entries earn their place by coverage
#: signature; ``crash`` entries are (minimized) bug reproducers and
#: survive distillation unconditionally; ``seed`` entries are corpus
#: programs persisted only so checkpoints can reference them by digest
KINDS = ("cover", "crash", "seed")


@dataclass(frozen=True)
class CorpusEntry:
    """One manifest row: a program's identity and why it is here."""

    digest: str
    signature: Tuple[int, ...]
    kind: str = "cover"
    execs: int = 0  #: exec count when the program was inserted

    def to_json(self) -> dict:
        return {
            "signature": list(self.signature),
            "kind": self.kind,
            "execs": self.execs,
        }

    @staticmethod
    def from_json(digest: str, data, source: Optional[str] = None
                  ) -> "CorpusEntry":
        if not isinstance(data, dict):
            raise CorpusError(
                f"manifest entry {digest[:12]} is not an object",
                path=source,
            )
        signature = data.get("signature", [])
        kind = data.get("kind", "cover")
        execs = data.get("execs", 0)
        if (
            not isinstance(signature, list)
            or not all(isinstance(p, int) for p in signature)
            or kind not in KINDS
            or not isinstance(execs, int)
        ):
            raise CorpusError(
                f"manifest entry {digest[:12]} is structurally broken",
                path=source,
            )
        return CorpusEntry(digest, tuple(sorted(signature)), kind, execs)


def _atomic_write(path: str, data: bytes) -> None:
    """Write-then-rename, the same durability story checkpoints use.

    Both the temp file and the parent directory are fsync'd: rename
    alone only orders the swap against other metadata, it does not
    force either the new data blocks or the directory entry to disk,
    so a host crash could otherwise surface an empty or stale file."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_parent_dir(path)


def _fsync_parent_dir(path: str) -> None:
    """Make the rename durable by syncing the containing directory.

    Platforms that refuse fsync on a directory fd are tolerated — the
    write-then-rename above already bounds the damage to "old file".
    """
    parent = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _prefer(a: CorpusEntry, b: CorpusEntry) -> CorpusEntry:
    """Deterministic winner when two segments carry the same digest.

    Two shards can insert the same program with different metadata
    (different insertion execs, even different signatures when they
    reached it from different session states).  The merged view must
    not depend on which segment was read first, so collisions resolve
    to the smallest ``(execs, kind, signature)`` — earliest generation
    wins, which also makes the entry visible to sync watermarks as
    early as any writer saw it.
    """
    ka = (a.execs, a.kind, a.signature)
    kb = (b.execs, b.kind, b.signature)
    return a if ka <= kb else b


class CorpusStore:
    """A persistent, shardable, content-addressed program corpus."""

    def __init__(
        self,
        root: str,
        firmware: Optional[str] = None,
        writer: Optional[str] = None,
    ):
        self.root = root
        self.writer = writer
        self.firmware = firmware
        #: merged view across every manifest segment, digest -> entry
        self.entries: Dict[str, CorpusEntry] = {}
        #: digests this handle's writer segment owns (cumulative)
        self._own: Dict[str, CorpusEntry] = {}
        #: coverage-signature index for dedup-by-signature on insert
        self._by_signature: Dict[Tuple[int, ...], str] = {}
        #: session counters, harvested into ``corpus.*`` metrics
        self.inserts = 0
        self.dedup_hits = 0
        os.makedirs(self._programs_dir, exist_ok=True)
        self.reload()

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def _programs_dir(self) -> str:
        return os.path.join(self.root, "programs")

    def _program_path(self, digest: str) -> str:
        return os.path.join(self._programs_dir, f"{digest}.json")

    @property
    def manifest_path(self) -> str:
        if self.writer is None:
            return os.path.join(self.root, "manifest.json")
        return os.path.join(self.root, f"manifest.{self.writer}.json")

    def _segment_paths(self) -> List[str]:
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return []
        return [
            os.path.join(self.root, name)
            for name in names
            if name == "manifest.json"
            or (name.startswith("manifest.") and name.endswith(".json"))
        ]

    # ------------------------------------------------------------------
    # manifest I/O
    # ------------------------------------------------------------------
    def reload(self) -> "CorpusStore":
        """(Re-)read every manifest segment from disk.

        The merged view is the union of all segments keyed by digest —
        a set union, so the result is independent of which shard wrote
        which segment first.  Called at open, and again at fleet sync
        points to pick up sibling shards' discoveries.
        """
        merged: Dict[str, CorpusEntry] = {}
        own_disk: Dict[str, CorpusEntry] = {}
        for path in self._segment_paths():
            segment = self._read_segment(path)
            for digest, entry in segment.items():
                existing = merged.get(digest)
                merged[digest] = entry if existing is None else \
                    _prefer(existing, entry)
            if path == self.manifest_path:
                own_disk = segment
        # a reopened handle adopts its own segment's prior entries, and
        # this handle's unflushed inserts survive a reload
        own_disk.update(self._own)
        self._own = own_disk
        for digest, entry in self._own.items():
            existing = merged.get(digest)
            merged[digest] = entry if existing is None else \
                _prefer(existing, entry)
        self.entries = merged
        # the signature-dedup index covers only this writer's OWN
        # entries: dedup against a sibling's segment would make an
        # insert depend on sibling timing, breaking the sharded
        # determinism contract (see docs/corpus.md)
        self._by_signature = {}
        for digest in sorted(self._own):
            entry = self._own[digest]
            if entry.signature and entry.kind == "cover":
                self._by_signature.setdefault(entry.signature, digest)
        return self

    def _read_segment(self, path: str) -> Dict[str, CorpusEntry]:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CorpusError(
                f"not a valid corpus manifest (truncated or corrupt): "
                f"{exc}",
                path=path,
            ) from exc
        except OSError as exc:
            raise CorpusError(f"unreadable: {exc}", path=path) from exc
        if not isinstance(doc, dict):
            raise CorpusError(
                f"expected a manifest object, found {type(doc).__name__}",
                path=path,
            )
        if doc.get("version") != MANIFEST_VERSION:
            raise CorpusError(
                f"manifest format {doc.get('version')!r} not supported "
                f"(store speaks version {MANIFEST_VERSION})",
                path=path,
            )
        firmware = doc.get("firmware")
        if firmware is not None:
            if self.firmware is None:
                self.firmware = firmware
            elif firmware != self.firmware:
                raise CorpusError(
                    f"corpus belongs to firmware {firmware!r}, "
                    f"not {self.firmware!r}",
                    path=path,
                )
        raw = doc.get("entries")
        if not isinstance(raw, dict):
            raise CorpusError("manifest has no entries object", path=path)
        return {
            digest: CorpusEntry.from_json(digest, data, source=path)
            for digest, data in raw.items()
        }

    def flush(self) -> None:
        """Atomically persist this writer's manifest segment."""
        doc = {
            "version": MANIFEST_VERSION,
            "firmware": self.firmware,
            "writer": self.writer,
            "entries": {
                digest: self._own[digest].to_json()
                for digest in sorted(self._own)
            },
        }
        _atomic_write(
            self.manifest_path,
            json.dumps(doc, sort_keys=True, indent=1).encode("utf-8"),
        )

    # ------------------------------------------------------------------
    # entry access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self.entries

    def digests(self) -> List[str]:
        """Every entry digest, deterministically ordered."""
        return sorted(self.entries)

    def get(self, digest: str) -> Program:
        """Load one program body, verifying its content address."""
        if digest not in self.entries:
            raise CorpusError(f"no corpus entry {digest[:12]}",
                              path=self.root)
        path = self._program_path(digest)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise CorpusError(
                f"entry {digest[:12]} body missing: {exc}", path=path
            ) from exc
        if digest_of_bytes(data) != digest:
            raise CorpusError(
                f"entry {digest[:12]} failed its integrity check "
                f"(content does not match its digest)",
                path=path,
            )
        return decode_program(data, source=path)

    def programs(self) -> Iterator[Tuple[str, Program]]:
        """Iterate ``(digest, program)`` in deterministic digest order."""
        for digest in self.digests():
            yield digest, self.get(digest)

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def add(
        self,
        program: Program,
        signature: Sequence[int] = (),
        kind: str = "cover",
        execs: int = 0,
    ) -> Tuple[str, bool]:
        """Insert one program; returns ``(digest, inserted)``.

        Dedup happens twice: by digest (this writer never stores the
        same program twice) and — for ``cover`` entries — by coverage
        signature (a different program that covers exactly the same
        points adds nothing to the minset and is rejected).  Both count
        as ``dedup_hits``, and both are scoped to this writer's OWN
        segment: whether a *sibling* shard already found the program
        must not change what this writer does, or sharded fleets would
        depend on worker timing.  Cross-shard duplicates are cheap
        (same body bytes, one extra manifest row) and distillation
        prunes them.
        """
        if kind not in KINDS:
            raise CorpusError(f"unknown corpus entry kind {kind!r}")
        digest = program_digest(program)
        if digest in self._own:
            self.dedup_hits += 1
            return digest, False
        sig = tuple(sorted(int(p) for p in signature))
        if sig and kind == "cover":
            existing = self._by_signature.get(sig)
            if existing is not None:
                self.dedup_hits += 1
                return existing, False
        _atomic_write(self._program_path(digest), encode_program(program))
        entry = CorpusEntry(digest, sig, kind, execs)
        merged = self.entries.get(digest)
        self.entries[digest] = entry if merged is None else \
            _prefer(merged, entry)
        self._own[digest] = entry
        if sig and kind == "cover":
            self._by_signature[sig] = digest
        self.inserts += 1
        self.flush()
        return digest, True

    def ensure(self, program: Program, kind: str = "seed",
               execs: int = 0) -> str:
        """Persist ``program`` if absent (checkpoint-by-digest support);
        never counts as an insert or a dedup hit.

        ``execs`` should be the writer's current exec count: sync
        watermarks treat it as the entry's generation, and a
        checkpoint-time bookkeeping row must not masquerade as a
        generation-zero seed (fresh sharded starts import those).
        """
        digest = program_digest(program)
        if digest not in self.entries:
            _atomic_write(self._program_path(digest),
                          encode_program(program))
            entry = CorpusEntry(digest, (), kind, execs)
            self.entries[digest] = entry
            self._own[digest] = entry
            self.flush()
        return digest

    # ------------------------------------------------------------------
    # merge / export / import
    # ------------------------------------------------------------------
    def absorb(self, other: "CorpusStore") -> int:
        """Union another store into this one; returns entries copied.

        Keyed purely by digest — signature dedup is deliberately *not*
        applied here, so absorbing A then B equals absorbing B then A
        (distillation is where signature-duplicates get pruned).
        """
        if (
            other.firmware is not None
            and self.firmware is not None
            and other.firmware != self.firmware
        ):
            raise CorpusError(
                f"cannot merge corpus for firmware {other.firmware!r} "
                f"into one for {self.firmware!r}",
                path=other.root,
            )
        if self.firmware is None:
            self.firmware = other.firmware
        copied = 0
        changed = False
        for digest in other.digests():
            entry = other.entries[digest]
            existing = self.entries.get(digest)
            if existing is not None:
                # same program in both: resolve the metadata exactly
                # like reload() resolves colliding segments, so
                # merge(A, B) == merge(B, A) entry for entry
                preferred = _prefer(existing, entry)
                if preferred != existing:
                    self.entries[digest] = preferred
                    self._own[digest] = preferred
                    changed = True
                continue
            program = other.get(digest)
            _atomic_write(self._program_path(digest),
                          encode_program(program))
            self.entries[digest] = entry
            self._own[digest] = entry
            if entry.signature and entry.kind == "cover":
                self._by_signature.setdefault(entry.signature, digest)
            copied += 1
        if copied or changed:
            self.flush()
        return copied

    def export_bundle_obj(self) -> dict:
        """The whole store as one JSON-encodable bundle object.

        The same document :meth:`export_bundle` writes to disk; the
        fleet transport ships it inline over the wire as the corpus
        payload of job and ``corpus_sync`` frames.
        """
        return {
            "version": MANIFEST_VERSION,
            "firmware": self.firmware,
            "entries": {
                digest: dict(self.entries[digest].to_json(),
                             program=self.get(digest).to_json())
                for digest in self.digests()
            },
        }

    def export_bundle(self, path: str) -> int:
        """Write the whole store as one portable JSON file."""
        bundle = self.export_bundle_obj()
        _atomic_write(
            path, json.dumps(bundle, sort_keys=True, indent=1).encode()
        )
        return len(bundle["entries"])

    def import_bundle_obj(self, bundle, source: str = "bundle") -> int:
        """Load an in-memory bundle object; returns entries added.

        ``source`` labels the provenance in entry records and error
        messages (a file path for :meth:`import_bundle`, a peer name
        for network sync).
        """
        from repro.corpus.codec import program_from_payload

        if not isinstance(bundle, dict) or \
                bundle.get("version") != MANIFEST_VERSION:
            raise CorpusError("unsupported corpus bundle", path=source)
        firmware = bundle.get("firmware")
        if firmware is not None and self.firmware is not None \
                and firmware != self.firmware:
            raise CorpusError(
                f"bundle belongs to firmware {firmware!r}, "
                f"not {self.firmware!r}",
                path=source,
            )
        if self.firmware is None:
            self.firmware = firmware
        entries = bundle.get("entries")
        if not isinstance(entries, dict):
            raise CorpusError("bundle has no entries object", path=source)
        added = 0
        for digest in sorted(entries):
            data = entries[digest]
            if digest in self.entries:
                continue
            entry = CorpusEntry.from_json(digest, data, source=source)
            program = program_from_payload(
                data.get("program"), source=source)
            if program_digest(program) != digest:
                raise CorpusError(
                    f"bundle entry {digest[:12]} failed its integrity "
                    f"check",
                    path=source,
                )
            _atomic_write(self._program_path(digest),
                          encode_program(program))
            self.entries[digest] = entry
            self._own[digest] = entry
            added += 1
        if added:
            self.flush()
        return added

    def import_bundle(self, path: str) -> int:
        """Load an :meth:`export_bundle` file; returns entries added."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                bundle = json.load(fh)
        except (OSError, ValueError) as exc:
            raise CorpusError(
                f"not a valid corpus bundle: {exc}", path=path
            ) from exc
        return self.import_bundle_obj(bundle, source=path)

    # ------------------------------------------------------------------
    def prune_to(self, keep: Sequence[str]) -> int:
        """Consolidate the store down to ``keep`` digests (distill).

        Collapses every manifest segment into a single
        ``manifest.json`` and deletes unreferenced program bodies;
        returns the number of entries dropped.  Surviving entries are
        rebased to generation zero (``execs = 0``): a distilled corpus
        *is* the seed set of whatever campaign consumes it next, which
        is what lets sharded fleets adopt it at a fresh start (their
        sync watermark only admits generation-zero entries there).
        """
        keep_set = set(keep)
        unknown = keep_set - set(self.entries)
        if unknown:
            raise CorpusError(
                f"cannot keep unknown digests: "
                f"{sorted(d[:12] for d in unknown)}",
                path=self.root,
            )
        dropped = len(self.entries) - len(keep_set)
        kept = {
            d: CorpusEntry(d, self.entries[d].signature,
                           self.entries[d].kind, 0)
            for d in sorted(keep_set)
        }
        doc = {
            "version": MANIFEST_VERSION,
            "firmware": self.firmware,
            "writer": None,
            "entries": {d: e.to_json() for d, e in kept.items()},
        }
        consolidated = os.path.join(self.root, "manifest.json")
        _atomic_write(
            consolidated,
            json.dumps(doc, sort_keys=True, indent=1).encode("utf-8"),
        )
        for path in self._segment_paths():
            if path != consolidated:
                os.unlink(path)
        for digest in set(self.entries) - keep_set:
            try:
                os.unlink(self._program_path(digest))
            except OSError:
                pass
        self.writer = None
        self.entries = kept
        self._own = dict(kept)
        self._by_signature = {}
        for digest, entry in kept.items():
            if entry.signature and entry.kind == "cover":
                self._by_signature.setdefault(entry.signature, digest)
        return dropped

    def stats(self) -> Dict[str, int]:
        """Session counters for the ``corpus.*`` metric family.

        ``size`` counts this writer's OWN segment — for a single-writer
        store that is the whole corpus, and for a fleet shard it is a
        number that does not depend on sibling timing (the merged-view
        size mid-round would; campaign diagnostics must stay
        deterministic).  Readers wanting the merged size use
        ``len(store)``.
        """
        return {
            "size": len(self._own),
            "inserts": self.inserts,
            "dedup_hits": self.dedup_hits,
        }


def merge_stores(dest_root: str, source_roots: Sequence[str],
                 firmware: Optional[str] = None) -> CorpusStore:
    """Merge several stores into ``dest_root`` (order-independent)."""
    dest = CorpusStore(dest_root, firmware=firmware)
    for root in source_roots:
        dest.absorb(CorpusStore(root))
    return dest
