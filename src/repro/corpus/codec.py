"""Deterministic Program serialization for the persistent corpus.

The corpus store is content-addressed: every :class:`Program` maps to
exactly one canonical byte string, and its SHA-256 hex digest is the
entry's identity everywhere — on disk, in checkpoints, across fleet
shards.  Canonical means: the JSON form from :meth:`Program.to_json`,
dumped with sorted keys and no whitespace, UTF-8 encoded.  Two
programs with the same calls therefore always share one digest, no
matter which process or session serialized them.

Decoding is defensive: the store reads files another process (or a
disk) may have mangled, so every structural assumption is checked and
violations raise :class:`~repro.errors.CorpusError` rather than a raw
``KeyError`` three frames deep.
"""

from __future__ import annotations

import hashlib
import json

from repro.errors import CorpusError
from repro.fuzz.program import Call, Program

#: bump when the canonical byte form changes (digests would too)
CODEC_VERSION = 1


def encode_program(program: Program) -> bytes:
    """The canonical byte form of ``program`` (stable across sessions)."""
    return json.dumps(
        program.to_json(), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def program_digest(program: Program) -> str:
    """Content address: SHA-256 hex of the canonical byte form."""
    return hashlib.sha256(encode_program(program)).hexdigest()


def digest_of_bytes(data: bytes) -> str:
    """Digest of an already-encoded program (integrity verification)."""
    return hashlib.sha256(data).hexdigest()


def decode_program(data: bytes, source: str | None = None) -> Program:
    """Rebuild a program from its canonical bytes, validating structure.

    ``source`` names the file (or other origin) for error messages.
    """
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise CorpusError(
            f"not a valid corpus entry (truncated or corrupt): {exc}",
            path=source,
        ) from exc
    return program_from_payload(payload, source=source)


def program_from_payload(payload, source: str | None = None) -> Program:
    """Validate and rebuild a program from parsed JSON."""
    if not isinstance(payload, list):
        raise CorpusError(
            f"corpus entry must be a call list, found "
            f"{type(payload).__name__}",
            path=source,
        )
    calls = []
    for index, entry in enumerate(payload):
        calls.append(_call_from_payload(entry, index, source))
    return Program(calls)


def _call_from_payload(entry, index: int, source: str | None) -> Call:
    def broken(reason: str) -> CorpusError:
        return CorpusError(
            f"corpus entry call #{index} is structurally broken: {reason}",
            path=source,
        )

    if not isinstance(entry, dict):
        raise broken(f"expected an object, found {type(entry).__name__}")
    nr = entry.get("nr")
    if not isinstance(nr, int):
        raise broken(f"call number {nr!r} is not an integer")
    raw_args = entry.get("args")
    if not isinstance(raw_args, list):
        raise broken("args is not a list")
    args = []
    for arg in raw_args:
        if isinstance(arg, int):
            args.append(arg)
        elif (
            isinstance(arg, list)
            and len(arg) == 3
            and arg[0] == "res"
            and isinstance(arg[1], str)
            and isinstance(arg[2], int)
        ):
            args.append((arg[0], arg[1], arg[2]))
        else:
            raise broken(f"argument {arg!r} is neither an integer nor a "
                         f"resource reference")
    produces = entry.get("produces")
    if produces is not None and not isinstance(produces, str):
        raise broken(f"produces {produces!r} is not a resource kind")
    return Call(nr, args, produces)
