"""Corpus distillation: a greedy minset over coverage signatures.

A long campaign accumulates hundreds of coverage-novel programs whose
signatures overlap heavily.  Distillation keeps the classic greedy
set-cover approximation of the smallest subset that preserves the full
coverage frontier — the afl-cmin / corpus-minimization idea — plus
every ``crash`` entry unconditionally (reproducers are the census; a
minset that drops them would forget the bugs).

The selection is deterministic: candidates are ranked by how many
still-uncovered points they contribute, ties broken by smallest
digest, so two distillations of the same store always agree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.corpus.store import CorpusEntry, CorpusStore


def distill_entries(entries: Dict[str, CorpusEntry]) -> List[str]:
    """The digests a minimal-coverage corpus keeps, sorted.

    Crash reproducers are always kept (and their signatures count as
    covered before the greedy pass, so a cover entry that only repeats
    a reproducer's trail is dropped).  Entries whose signature adds no
    new point — including empty-signature ``seed`` bookkeeping rows —
    do not survive.
    """
    kept: List[str] = []
    covered: Set[int] = set()
    for digest in sorted(entries):
        entry = entries[digest]
        if entry.kind == "crash":
            kept.append(digest)
            covered.update(entry.signature)
    candidates = {
        digest: set(entry.signature)
        for digest, entry in entries.items()
        if entry.kind == "cover" and entry.signature
    }
    while candidates:
        # the candidate adding the most uncovered points; iterating in
        # digest order with a strict > makes ties — and therefore the
        # whole minset — deterministic
        best, best_gain = None, 0
        for digest in sorted(candidates):
            gain = len(candidates[digest] - covered)
            if gain > best_gain:
                best, best_gain = digest, gain
        if best is None:
            break
        kept.append(best)
        covered |= candidates.pop(best)
    return sorted(kept)


def distill_store(
    store: CorpusStore, out_root: Optional[str] = None
) -> CorpusStore:
    """Distill a store in place, or into a fresh store at ``out_root``.

    Returns the distilled store; ``store.entries`` minus the returned
    store's entries is exactly the redundancy the campaign accumulated.
    """
    kept = distill_entries(store.entries)
    if out_root is None:
        store.prune_to(kept)
        return store
    out = CorpusStore(out_root, firmware=store.firmware)
    for digest in kept:
        entry = store.entries[digest]
        # execs rebases to 0, matching prune_to: a distilled corpus is
        # the next campaign's generation-zero seed set
        out.add(store.get(digest), signature=entry.signature,
                kind=entry.kind, execs=0)
    return out
