"""Persistent corpus subsystem: store, distillation, seed scheduling.

See ``docs/corpus.md`` for the store layout, signature scheme,
sharding semantics and the determinism contract.
"""

from repro.corpus.codec import (
    decode_program,
    encode_program,
    program_digest,
)
from repro.corpus.distill import distill_entries, distill_store
from repro.corpus.scheduler import SeedScheduler
from repro.corpus.store import (
    CorpusEntry,
    CorpusStore,
    merge_stores,
)

__all__ = [
    "CorpusEntry",
    "CorpusStore",
    "SeedScheduler",
    "decode_program",
    "distill_entries",
    "distill_store",
    "encode_program",
    "merge_stores",
    "program_digest",
]
