"""EMBSAN's top-level API: the paper's full workflow in two calls.

The *Pre-Testing Probing Phase* (§3.4)::

    deployment = prepare(firmware="OpenWRT-bcm63xx",
                         sanitizers=("kasan", "kcsan"))

distills the requested reference sanitizers, dry-runs the firmware with
the category-appropriate Prober strategy, and compiles both DSL
documents into a runtime configuration.  The *Testing Phase* (§3.5)::

    image, runtime = deployment.launch()

builds a fresh instance of the firmware, attaches the Common Sanitizer
Runtime, boots, and returns both — ready for fuzzing or reproducer
replay.  ``runtime.sink`` collects the sanitizer reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.firmware.image import FirmwareImage
from repro.firmware.instrument import InstrumentationMode
from repro.firmware.registry import build_firmware, firmware_spec
from repro.sanitizers.distiller import distill_reference
from repro.sanitizers.dsl.ast import MergedSpec, PlatformSpec
from repro.sanitizers.dsl.compiler import (
    compile_runtime_config,
    merge_sanitizers,
)
from repro.sanitizers.prober import probe_firmware
from repro.sanitizers.runtime.runtime import CommonSanitizerRuntime


@dataclass
class Deployment:
    """Everything the probing phase produced for one firmware."""

    firmware: str
    merged: MergedSpec  #: the Distiller's merged sanitizer spec
    platform: PlatformSpec  #: the Prober's platform spec
    panic_on_report: bool = False

    @property
    def mode(self) -> InstrumentationMode:
        """The instrumentation mode implied by the firmware category."""
        return (InstrumentationMode.EMBSAN_C if self.platform.category == 1
                else InstrumentationMode.EMBSAN_D)

    def launch(self, with_bugs: bool = True
               ) -> Tuple[FirmwareImage, CommonSanitizerRuntime]:
        """Build + attach + boot: the testing phase's target."""
        config = compile_runtime_config(
            self.merged, self.platform, panic_on_report=self.panic_on_report
        )
        image = build_firmware(self.firmware, mode=self.mode,
                               with_bugs=with_bugs, boot=False)
        runtime = CommonSanitizerRuntime(
            image.machine, config, symbolizer=image.symbolizer()
        ).attach()
        image.boot()
        return image, runtime

    def dsl_text(self) -> str:
        """Both DSL documents, as the tester would archive them."""
        return self.merged.to_text() + "\n\n" + self.platform.to_text()


def prepare(
    firmware: str,
    sanitizers: Sequence[str] = ("kasan",),
    category: Optional[int] = None,
    hints: Optional[dict] = None,
    panic_on_report: bool = False,
) -> Deployment:
    """Run the pre-testing probing phase for one Table-1 firmware.

    ``sanitizers`` names reference implementations to distill ("kasan",
    "kcsan").  ``category`` and ``hints`` override/assist firmware
    classification exactly where §3.2 permits tester intervention.
    """
    specs = [distill_reference(name) for name in sanitizers]
    merged = merge_sanitizers(specs)
    if hints is None and firmware_spec(firmware).source == "closed":
        hints = {"blob_names": ("pppoed", "dhcpsd")}
    platform = probe_firmware(firmware, category=category, hints=hints)
    return Deployment(firmware, merged, platform,
                      panic_on_report=panic_on_report)
