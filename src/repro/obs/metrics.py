"""Metrics: counters, gauges and histograms with a no-op fast path.

The registry is *pull-friendly*: hot components (the TCG engine, shadow
memory, the sanitizer runtimes) keep their existing plain-int counters
and the observability layer harvests them at coarse boundaries (target
refresh, campaign end), so an enabled registry adds no per-access work
and a disabled one adds none at all.  Components that have no natural
counter of their own (the campaign loop, the fleet supervisor) hold an
instrument handle instead; when observability is off that handle is the
module-level :data:`NULL_METRIC` singleton, whose methods discard their
arguments — the "no-op fast path" that keeps disabled cost at one
attribute load and an empty call per coarse event.

Metric names are dotted, lowercase, ``component.thing`` (see
``docs/observability.md`` for the full catalog).  Counters are
monotonic within one registry; gauges are last-write-wins; histograms
bucket non-negative samples against fixed upper bounds.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

#: JSON schema tag written by :meth:`MetricsRegistry.to_json`.
SCHEMA = "repro-metrics/1"

#: default histogram bucket upper bounds (milliseconds-flavoured, but
#: any non-negative quantity works); the implicit +inf bucket is last.
DEFAULT_BUCKETS = (
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
)


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram of non-negative samples."""

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds = tuple(bounds)
        # one slot per bound plus the +inf overflow bucket
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample into its bucket."""
        idx = 0
        for bound in self.bounds:
            if value <= bound:
                break
            idx += 1
        self.counts[idx] += 1
        self.total += value
        self.count += 1

    def to_json(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class _NullMetric:
    """Shared do-nothing instrument: the disabled-observability handle.

    One instance (:data:`NULL_METRIC`) stands in for every counter,
    gauge and histogram when no registry is active, so instrumented
    call sites never branch — they call ``inc``/``set``/``observe`` on
    whatever handle they hold and the disabled case discards it.
    """

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: module-level no-op instrument; identity-comparable (``is NULL_METRIC``).
NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """A namespace of named instruments plus snapshot-time collectors."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: callables run (in registration order) by :meth:`collect` so
        #: pull-model components can publish their counters lazily
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # ------------------------------------------------------------------
    # instrument access (get-or-create; names are the identity)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    # ------------------------------------------------------------------
    # collectors (pull model)
    # ------------------------------------------------------------------
    def add_collector(self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callable invoked at every :meth:`collect`."""
        self._collectors.append(collector)

    def remove_collector(self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Drop a collector (no-op when it was never registered)."""
        if collector in self._collectors:
            self._collectors.remove(collector)

    def collect(self) -> None:
        """Run every registered collector once."""
        for collector in list(self._collectors):
            collector(self)

    # ------------------------------------------------------------------
    # export / merge
    # ------------------------------------------------------------------
    def snapshot(self, collect: bool = True) -> dict:
        """Plain ``{name: value}`` view (histograms as dicts)."""
        if collect:
            self.collect()
        out: Dict[str, object] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[name] = histogram.to_json()
        return out

    def to_json(self, collect: bool = True) -> dict:
        """Typed JSON document (the ``--metrics FILE`` payload)."""
        if collect:
            self.collect()
        counters = {}
        for name, counter in sorted(self._counters.items()):
            counters[name] = counter.value
        gauges = {}
        for name, gauge in sorted(self._gauges.items()):
            gauges[name] = gauge.value
        histograms = {}
        for name, histogram in sorted(self._histograms.items()):
            histograms[name] = histogram.to_json()
        return {
            "schema": SCHEMA,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge_json(self, data: dict) -> None:
        """Fold a :meth:`to_json` document (e.g. from a fleet worker)
        into this registry: counters sum, gauges take the incoming
        value, histograms merge bucket-wise when their bounds agree.
        """
        for name, value in data.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in data.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in data.get("histograms", {}).items():
            histogram = self.histogram(name, tuple(payload["bounds"]))
            if histogram.bounds != tuple(payload["bounds"]):
                # incompatible shape: keep the coarse aggregates only
                histogram.total += payload["sum"]
                histogram.count += payload["count"]
                continue
            for idx, count in enumerate(payload["counts"]):
                histogram.counts[idx] += count
            histogram.total += payload["sum"]
            histogram.count += payload["count"]

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


def format_metrics(data: dict, indent: str = "  ") -> str:
    """Human-readable rendering of a :meth:`MetricsRegistry.to_json`
    document, grouped by the metric name's leading component."""
    groups: Dict[str, List[str]] = {}

    def _add(name: str, rendered: str) -> None:
        group = name.split(".", 1)[0]
        groups.setdefault(group, []).append(rendered)

    for name, value in data.get("counters", {}).items():
        _add(name, f"{indent}{name:40s} {value:>14,}")
    for name, value in data.get("gauges", {}).items():
        _add(name, f"{indent}{name:40s} {value:>14,.6g} (gauge)")
    for name, payload in data.get("histograms", {}).items():
        count = payload["count"]
        mean = payload["sum"] / count if count else 0.0
        stat = f"{count:>14,} samples, mean {mean:.3f}"
        _add(name, f"{indent}{name:40s} {stat}")
    lines: List[str] = []
    for group in sorted(groups):
        lines.append(f"{group}:")
        lines.extend(sorted(groups[group]))
    return "\n".join(lines)
