"""Bounded ring-buffer tracer with Chrome trace-event / Perfetto export.

Every span (a named duration) and instant (a point event) is recorded
as one dict in the Chrome trace-event format, so a dump loads directly
into Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` and a
whole fleet run — supervisor plus every worker process — renders as a
single timeline.  The buffer is a ``deque(maxlen=capacity)``: a
runaway campaign overwrites its oldest events instead of growing
without bound, and ``dropped`` says how many were lost.

Timestamps are microseconds from ``time.perf_counter_ns``, which is
monotonic within one process; cross-process alignment uses the
``clock_sync`` metadata each process emits at tracer construction
(wall-clock epoch of its t=0).
"""

from __future__ import annotations

import os
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional

#: default ring capacity (events); one fuzz exec emits O(1) spans, so
#: this comfortably holds a full default campaign with headroom.
DEFAULT_CAPACITY = 65536


class Tracer:
    """Structured span/instant event recorder."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        pid: Optional[int] = None,
        process_name: str = "repro",
    ):
        self.capacity = capacity
        self.pid = os.getpid() if pid is None else pid
        self.process_name = process_name
        self._events: deque = deque(maxlen=capacity)
        self._emitted = 0
        #: perf_counter origin; all event timestamps are relative to it
        self._origin_ns = time.perf_counter_ns()
        #: wall-clock second matching ``_origin_ns`` (cross-process sync)
        self._origin_wall = time.time()
        self._named: Dict[int, str] = {}
        self.name_process(self.pid, process_name)
        self._meta("clock_sync", {"wall_epoch": self._origin_wall})

    # ------------------------------------------------------------------
    def _now_us(self) -> float:
        return (time.perf_counter_ns() - self._origin_ns) / 1000.0

    def _emit(self, event: dict) -> None:
        self._events.append(event)
        self._emitted += 1

    def _meta(
        self,
        name: str,
        args: dict,
        pid: Optional[int] = None,
        tid: int = 0,
    ) -> None:
        event = {
            "name": name,
            "ph": "M",
            "ts": 0,
            "pid": self.pid if pid is None else pid,
            "tid": tid,
            "args": args,
        }
        self._emit(event)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def name_process(self, pid: int, name: str) -> None:
        """Label ``pid``'s track (Perfetto shows it as the process name)."""
        if self._named.get(pid) == name:
            return
        self._named[pid] = name
        self._meta("process_name", {"name": name}, pid=pid)

    def instant(
        self,
        name: str,
        cat: str = "repro",
        args: Optional[dict] = None,
        tid: int = 0,
    ) -> None:
        """Record a point event."""
        event = {
            "name": name,
            "ph": "i",
            "s": "t",
            "ts": self._now_us(),
            "pid": self.pid,
            "tid": tid,
            "cat": cat,
        }
        if args:
            event["args"] = args
        self._emit(event)

    def complete(
        self,
        name: str,
        start_us: float,
        cat: str = "repro",
        args: Optional[dict] = None,
        tid: int = 0,
    ) -> None:
        """Record a finished duration that began at ``start_us``
        (a value previously obtained from :meth:`now`)."""
        now = self._now_us()
        event = {
            "name": name,
            "ph": "X",
            "ts": start_us,
            "dur": max(0.0, now - start_us),
            "pid": self.pid,
            "tid": tid,
            "cat": cat,
        }
        if args:
            event["args"] = args
        self._emit(event)

    def now(self) -> float:
        """Current trace timestamp (microseconds); pair with
        :meth:`complete` for spans that cannot nest lexically."""
        return self._now_us()

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "repro",
        args: Optional[dict] = None,
        tid: int = 0,
    ):
        """Context manager recording one complete ("X") event."""
        start = self._now_us()
        try:
            yield self
        finally:
            self.complete(name, start, cat=cat, args=args, tid=tid)

    def counter(self, name: str, values: Dict[str, float], tid: int = 0) -> None:
        """Record a Chrome counter ("C") sample (renders as a track)."""
        event = {
            "name": name,
            "ph": "C",
            "ts": self._now_us(),
            "pid": self.pid,
            "tid": tid,
            "args": dict(values),
        }
        self._emit(event)

    # ------------------------------------------------------------------
    # merge / export
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events overwritten by the ring bound."""
        return self._emitted - len(self._events)

    def extend(self, events: Iterable[dict]) -> None:
        """Merge foreign events (e.g. shipped from a fleet worker).

        Events keep their own ``pid``/``ts``; a worker's ``clock_sync``
        metadata lets the merged timeline be re-aligned offline if the
        sub-microsecond skew ever matters.
        """
        for event in events:
            self._emit(dict(event))

    def events(self) -> List[dict]:
        """The buffered events, oldest first (JSON-encodable)."""
        return list(self._events)

    def to_chrome(self) -> dict:
        """The Perfetto/chrome://tracing-loadable document."""
        return {
            "traceEvents": self.events(),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro-obs", "dropped_events": self.dropped},
        }
