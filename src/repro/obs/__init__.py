"""Unified observability: metrics registry + structured tracing.

Public surface:

* :class:`~repro.obs.metrics.MetricsRegistry` / ``Counter`` / ``Gauge``
  / ``Histogram`` — named instruments with a shared
  :data:`~repro.obs.metrics.NULL_METRIC` no-op fast path for the
  disabled case.
* :class:`~repro.obs.trace.Tracer` — bounded ring buffer of Chrome
  trace-event records; ``to_chrome()`` loads directly in Perfetto.
* :class:`~repro.obs.observer.Observer` — the bundle every layer
  accepts as ``observer=``; harvests hot-path counters at coarse
  boundaries so instrumentation charges zero guest cycles and adds no
  per-access host work.

See ``docs/observability.md`` for the metric catalog and trace schema.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    format_metrics,
)
from repro.obs.observer import Observer, ensure_parent
from repro.obs.trace import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "Observer",
    "Tracer",
    "ensure_parent",
    "format_metrics",
]
