"""The Observer: one handle bundling a metrics registry and a tracer.

Construction is cheap and side-effect free; *not* constructing one is
free.  Every instrumented layer takes ``observer=None`` and holds
either no-op handles (:data:`~repro.obs.metrics.NULL_METRIC`) or
``None`` tracers, so the disabled path costs one attribute test per
coarse event and nothing per guest instruction or memory access.

Harvest model: hot components keep their own plain-int counters (the
TCG engine's ``tb_chain_hits``, shadow memory's ``check_ops``, ...).
A campaign machine lives until the fuzzer refreshes its target, at
which point :meth:`Observer.harvest_target` folds that machine's
counters into the registry — each machine is harvested exactly once,
so the campaign totals are exact across any number of rebuilds while
the hot paths stay untouched.  Observability charges **zero guest
cycles**: it reads the cost model's counters, never feeds them (see
``docs/cost_model.md``).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Optional

from repro.obs.metrics import MetricsRegistry, format_metrics
from repro.obs.trace import DEFAULT_CAPACITY, Tracer


@contextmanager
def _null_span():
    yield None


def ensure_parent(path: str) -> str:
    """Create the parent directory of ``path`` (the JSONL-sink bugfix:
    ``--events-log``/``--metrics``/``--trace``/``--diagnostics`` paths
    must work even when their directory does not exist yet)."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    return path


class Observer:
    """Aggregates one run's metrics and trace."""

    def __init__(
        self,
        metrics: bool = True,
        trace: bool = True,
        trace_capacity: int = DEFAULT_CAPACITY,
        process_name: str = "repro",
    ):
        self.registry: Optional[MetricsRegistry] = None
        if metrics:
            self.registry = MetricsRegistry()
        self.tracer: Optional[Tracer] = None
        if trace:
            self.tracer = Tracer(
                capacity=trace_capacity,
                process_name=process_name,
            )

    # ------------------------------------------------------------------
    # instrument access (no-op-safe)
    # ------------------------------------------------------------------
    def counter(self, name: str):
        from repro.obs.metrics import NULL_METRIC

        if self.registry is None:
            return NULL_METRIC
        return self.registry.counter(name)

    def gauge(self, name: str):
        from repro.obs.metrics import NULL_METRIC

        if self.registry is None:
            return NULL_METRIC
        return self.registry.gauge(name)

    def histogram(self, name: str, bounds=None):
        from repro.obs.metrics import DEFAULT_BUCKETS, NULL_METRIC

        if self.registry is None:
            return NULL_METRIC
        if bounds is None:
            bounds = DEFAULT_BUCKETS
        return self.registry.histogram(name, bounds)

    def span(
        self,
        name: str,
        cat: str = "repro",
        args: Optional[dict] = None,
        tid: int = 0,
    ):
        """A tracer span, or a shared null context when tracing is off."""
        if self.tracer is None:
            return _null_span()
        return self.tracer.span(name, cat=cat, args=args, tid=tid)

    def instant(
        self,
        name: str,
        cat: str = "repro",
        args: Optional[dict] = None,
        tid: int = 0,
    ) -> None:
        if self.tracer is not None:
            self.tracer.instant(name, cat=cat, args=args, tid=tid)

    # ------------------------------------------------------------------
    # harvesting (pull model; every probe is defensive — the target may
    # be mid-crash when a refresh harvests it)
    # ------------------------------------------------------------------
    def watch_machine(self, machine) -> None:
        """Point every engine's trace hook at this observer's tracer
        (translate-miss spans), including engines attached later."""
        if self.tracer is None or machine is None:
            return
        tracer = self.tracer

        def _hook(engine) -> None:
            if hasattr(engine, "tracer"):
                engine.tracer = tracer

        for engine in machine.engines:
            _hook(engine)
        machine.engine_listeners.append(_hook)

    def harvest_target(self, target) -> None:
        """Fold one (about to be discarded or finished) fuzz target's
        machine + runtime counters into the registry."""
        if self.registry is None or target is None:
            return
        try:
            machine = target.image.ctx.machine
        except Exception:
            machine = None
        self.harvest_machine(machine)
        self.harvest_runtime(getattr(target, "runtime", None))

    def harvest_machine(self, machine) -> None:
        """Accumulate TCG-engine and machine-level counters."""
        if self.registry is None or machine is None:
            return
        counter = self.registry.counter
        gauge = self.registry.gauge
        # materialize the tcg.* family up front: a firmware whose kernel
        # model never attaches a TCG engine still reports them (at 0),
        # so every --metrics document has the same counter catalog
        insns = counter("tcg.insns")
        cycles = counter("tcg.cycles")
        host_ops = counter("tcg.host_ops")
        translates = counter("tcg.translates")
        flushes = counter("tcg.tb_flushes")
        evictions = counter("tcg.tb_evictions")
        chain_hits = counter("tcg.tb_chain_hits")
        cache_blocks = gauge("tcg.tb_cache_blocks")
        jit_compiled = counter("tcg.jit.tb_compiled")
        jit_deopts = counter("tcg.jit.deopts")
        jit_execs = counter("tcg.jit.trace_execs")
        for engine in getattr(machine, "engines", ()):
            insns.inc(getattr(engine, "insn_count", 0))
            cycles.inc(getattr(engine, "cycles", 0))
            host_ops.inc(getattr(engine, "host_ops", 0))
            translates.inc(getattr(engine, "tb_translations", 0))
            flushes.inc(getattr(engine, "tb_flush_count", 0))
            evictions.inc(getattr(engine, "tb_evictions", 0))
            chain_hits.inc(getattr(engine, "tb_chain_hits", 0))
            jit_compiled.inc(getattr(engine, "tb_compiled", 0))
            jit_deopts.inc(getattr(engine, "jit_deopts", 0))
            jit_execs.inc(getattr(engine, "jit_trace_execs", 0))
            cache = getattr(engine, "tb_cache", None)
            if cache is not None:
                cache_blocks.set(len(cache))
        counter("machine.guest_cycles").inc(getattr(machine, "guest_cycles", 0))
        counter("machine.overhead_cycles").inc(getattr(machine, "overhead_cycles", 0))
        watchdog = getattr(machine, "watchdog", None)
        if watchdog is not None:
            counter("machine.watchdog_trips").inc(getattr(watchdog, "trips", 0))
        # periph.* family materialized the same way as tcg.*: a build
        # without modeled peripherals still reports the catalog at 0
        mmio_reads = counter("periph.mmio_reads")
        mmio_writes = counter("periph.mmio_writes")
        dma_descriptors = counter("periph.dma_descriptors")
        dma_bytes = counter("periph.dma_bytes")
        dma_faults = counter("periph.dma_faults")
        irqs_raised = counter("periph.irqs_raised")
        irqs_delivered = counter("periph.irqs_delivered")
        for device in getattr(machine, "periphs", ()):
            mmio_reads.inc(getattr(device, "mmio_reads", 0))
            mmio_writes.inc(getattr(device, "mmio_writes", 0))
            ring = getattr(device, "ring", None)
            if ring is not None:
                dma_descriptors.inc(getattr(ring, "descriptors_done", 0))
                dma_bytes.inc(getattr(ring, "bytes_copied", 0))
                dma_faults.inc(getattr(ring, "dma_faults", 0))
            irq = getattr(device, "irq", None)
            if irq is not None:
                irqs_raised.inc(getattr(irq, "raised", 0))
                irqs_delivered.inc(getattr(irq, "delivered", 0))

    def harvest_runtime(self, runtime) -> None:
        """Accumulate sanitizer-runtime counters (shadow, KASAN, KCSAN,
        quarantine, overhead-cycle breakdown)."""
        if self.registry is None or runtime is None:
            return
        counter = self.registry.counter
        gauge = self.registry.gauge
        try:
            counter("runtime.events").inc(runtime.events_handled)
            for category, cycles in runtime.breakdown.items():
                counter(f"runtime.cycles.{category}").inc(int(cycles))
            sink = runtime.sink
            counter("runtime.reports").inc(sink.count())
            gauge("runtime.unique_reports").set(sink.unique_count())
        except Exception:
            pass
        shadow = getattr(runtime, "shadow", None)
        if shadow is not None:
            counter("shadow.checks").inc(getattr(shadow, "check_ops", 0))
            counter("shadow.poisons").inc(getattr(shadow, "poison_ops", 0))
            counter("shadow.fastpath_hits").inc(getattr(shadow, "fastpath_hits", 0))
        kasan = getattr(runtime, "kasan", None)
        if kasan is not None:
            counter("kasan.checks").inc(kasan.checks)
            counter("kasan.allocs").inc(getattr(kasan, "allocs", 0))
            counter("kasan.frees").inc(getattr(kasan, "frees", 0))
            gauge("kasan.live_objects").set(kasan.live_count())
            freed = getattr(kasan, "freed", None)
            if freed is not None:
                counter("quarantine.pushes").inc(getattr(freed, "pushes", 0))
                counter("quarantine.evictions").inc(freed.evictions)
                gauge("quarantine.len").set(len(freed))
        kcsan = getattr(runtime, "kcsan", None)
        if kcsan is not None:
            counter("kcsan.checks").inc(kcsan.checks)
            counter("kcsan.races").inc(getattr(kcsan, "races_seen", 0))
            gauge("kcsan.armed_watchpoints").set(len(getattr(kcsan, "_watches", ())))

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export(self) -> dict:
        """JSON-encodable bundle (the fleet worker -> supervisor wire
        format): metrics document plus raw trace events."""
        metrics = None
        if self.registry is not None:
            metrics = self.registry.to_json()
        trace = None
        if self.tracer is not None:
            trace = self.tracer.events()
        return {
            "pid": os.getpid(),
            "metrics": metrics,
            "trace": trace,
        }

    def absorb(self, payload: dict, process_name: Optional[str] = None):
        """Merge a worker's :meth:`export` bundle into this observer."""
        metrics = payload.get("metrics")
        if metrics is not None and self.registry is not None:
            self.registry.merge_json(metrics)
        events = payload.get("trace")
        if events is not None and self.tracer is not None:
            if process_name is not None and payload.get("pid") is not None:
                self.tracer.name_process(payload["pid"], process_name)
            self.tracer.extend(events)
        return self

    def write_metrics(self, path: str) -> None:
        """Serialize the registry to ``path`` (parents created)."""
        if self.registry is None:
            return
        with open(ensure_parent(path), "w", encoding="utf-8") as fh:
            json.dump(self.registry.to_json(), fh, indent=2, sort_keys=True)

    def write_trace(self, path: str) -> None:
        """Serialize the Perfetto-loadable trace to ``path``."""
        if self.tracer is None:
            return
        with open(ensure_parent(path), "w", encoding="utf-8") as fh:
            json.dump(self.tracer.to_chrome(), fh)

    def summary(self) -> str:
        """Human-readable metrics rendering (the ``repro stats`` view)."""
        if self.registry is None:
            return "(metrics disabled)"
        return format_metrics(self.registry.to_json())
