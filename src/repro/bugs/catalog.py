"""The bug catalog: every Table-2 and Table-4 row of the paper.

Each record carries the paper's metadata (location, type, kernel
version or firmware) plus what the reproduction needs: the switchboard
id that arms the defect, a deterministic reproducer program, the
sanitizer expected to flag it, and location substrings that match the
sanitizer report back to the row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.os.embedded_linux.syscalls import Syscall
from repro.sanitizers.runtime.reports import BugType

S = Syscall  # local alias to keep reproducer tables readable


@dataclass(frozen=True)
class BugRecord:
    """One evaluation bug (a row of Table 2 or Table 4)."""

    bug_id: str
    table: int  #: 2 or 4
    arm_id: str  #: BugSwitchboard id that makes the defect live
    location: str  #: the paper's location string
    bug_class: str  #: Table-3 census class
    expect_type: BugType  #: report type the sanitizer should emit
    reproducer: Tuple[Tuple[int, ...], ...]  #: program to trigger it
    report_match: Tuple[str, ...]  #: substrings locating the report
    tool: str = "kasan"  #: sanitizer expected to flag it
    kernel_version: Optional[str] = None  #: Table 2 only
    firmware: Optional[str] = None  #: Table 4 only
    #: Table 2: expected detection per (EMBSAN-C, EMBSAN-D, native KASAN)
    detected_by: Tuple[bool, bool, bool] = (True, True, True)
    #: "syscall" programs go to do_syscall, "rtos" to kernel.invoke
    interface: str = "syscall"


# ----------------------------------------------------------------------
# Table 2 — 25 known syzbot bugs (reproducible, version-pinned)
# ----------------------------------------------------------------------
TABLE2_BUGS: Tuple[BugRecord, ...] = (
    BugRecord(
        "t2_01", 2, "t2_01_ringbuf_map_alloc", "ringbuf_map_alloc",
        "OOB Access", BugType.SLAB_OOB,
        ((S.BPF, 1, 0x1040, 0, 0),), ("ringbuf_map_alloc",),
        kernel_version="5.17-rc2",
    ),
    BugRecord(
        "t2_02", 2, "t2_02_ieee80211_scan_rx", "ieee80211_scan_rx",
        "UAF", BugType.UAF,
        ((S.SCAN, 1, 1, 0, 0), (S.SCAN, 3, 1, 0, 0), (S.SCAN, 2, 1, 8, 0)),
        ("ieee80211_scan_rx",), kernel_version="5.19",
    ),
    BugRecord(
        "t2_03", 2, "t2_03_bpf_prog_test_run_xdp", "bpf_prog_test_run_xdp",
        "OOB Access", BugType.SLAB_OOB,
        ((S.BPF, 2, 64, 5, 0),), ("bpf_prog_test_run_xdp",),
        kernel_version="5.17-rc1",
    ),
    BugRecord(
        "t2_04", 2, "t2_04_btrfs_scan_one_device", "btrfs_scan_one_device",
        "UAF", BugType.UAF,
        ((S.FSOP, 1, 1, 4, 0),), ("btrfs_scan_one_device",),
        kernel_version="5.17",
    ),
    BugRecord(
        "t2_05", 2, "t2_05_post_one_notification", "post_one_notification",
        "UAF", BugType.UAF,
        ((S.WATCHQ, 1, 0, 0, 0), (S.WATCHQ, 5, 1, 0, 0),
         (S.WATCHQ, 2, 1, 3, 0)),
        ("post_one_notification",), kernel_version="5.19-rc1",
    ),
    BugRecord(
        "t2_06", 2, "t2_06_post_watch_notification", "post_watch_notification",
        "UAF", BugType.UAF,
        ((S.WATCHQ, 1, 0, 0, 0), (S.WATCHQ, 5, 1, 0, 0),
         (S.WATCHQ, 3, 2, 0, 0)),
        ("post_watch_notification",), kernel_version="5.19-rc1",
    ),
    BugRecord(
        "t2_07", 2, "t2_07_watch_queue_set_filter", "watch_queue_set_filter",
        "OOB Access", BugType.SLAB_OOB,
        ((S.WATCHQ, 1, 0, 0, 0), (S.WATCHQ, 4, 1, 4, 0)),
        ("watch_queue_set_filter",), kernel_version="5.17-rc6",
    ),
    BugRecord(
        "t2_08", 2, "t2_08_free_pages", "free_pages",
        "Null-pointer-deref", BugType.NULL_DEREF,
        ((S.MUNMAP, 0x00DEA000, 0, 0, 0),), ("free_pages", "do_syscall"),
        kernel_version="5.17-rc8",
    ),
    BugRecord(
        "t2_09", 2, "t2_09_vxlan_vnifilter_dump_dev", "vxlan_vnifilter_dump_dev",
        "OOB Access", BugType.SLAB_OOB,
        ((S.NETLINK, 1, 1, 5, 0), (S.NETLINK, 1, 2, 3, 0)),
        ("vxlan_vnifilter_dump_dev",), kernel_version="5.17",
    ),
    BugRecord(
        "t2_10", 2, "t2_10_imageblit", "imageblit",
        "OOB Access", BugType.SLAB_OOB,
        ((S.OPEN, 0x10, 0, 0, 0), (S.IOCTL, 3, 1, 5, 0xFF)),
        ("imageblit",), kernel_version="5.19",
    ),
    BugRecord(
        "t2_11", 2, "t2_11_bpf_jit_free", "bpf_jit_free",
        "OOB Access", BugType.SLAB_OOB,
        ((S.BPF, 3, 4, 0, 0), (S.BPF, 4, 1, 0, 0)),
        ("bpf_jit_free",), kernel_version="5.19-rc4",
    ),
    BugRecord(
        "t2_12", 2, "t2_12_null_skcipher_crypt", "null_skcipher_crypt",
        "UAF", BugType.UAF,
        ((S.OPEN, 0x11, 0, 0, 0), (S.IOCTL, 3, 1, 0, 0),
         (S.IOCTL, 3, 2, 1, 0), (S.IOCTL, 3, 3, 1, 16)),
        ("null_skcipher_crypt",), kernel_version="5.17-rc6",
    ),
    BugRecord(
        "t2_13", 2, "t2_13_bio_poll", "bio_poll",
        "UAF", BugType.UAF,
        ((S.OPEN, 0x12, 0, 0, 0), (S.IOCTL, 3, 1, 5, 0),
         (S.IOCTL, 3, 3, 1, 0), (S.IOCTL, 3, 2, 1, 0)),
        ("bio_poll",), kernel_version="5.18-rc6",
    ),
    BugRecord(
        "t2_14", 2, "t2_14_blk_mq_sched_free_rqs", "blk_mq_sched_free_rqs",
        "UAF", BugType.UAF,
        ((S.OPEN, 0x12, 0, 0, 0), (S.IOCTL, 3, 4, 0, 0)),
        ("blk_mq_sched_free_rqs",), kernel_version="5.18",
    ),
    BugRecord(
        "t2_15", 2, "t2_15_do_sync_mmap_readahead", "do_sync_mmap_readahead",
        "UAF", BugType.UAF,
        ((S.PRCTL, 4, 1, 0, 0), (S.PRCTL, 5, 0, 0, 0),
         (S.PRCTL, 4, 2, 0, 0)),
        ("do_sync_mmap_readahead",), kernel_version="5.18-rc7",
    ),
    BugRecord(
        "t2_16", 2, "t2_16_filp_close", "filp_close",
        "UAF", BugType.UAF,
        ((S.OPEN, 0x10, 0, 0, 0), (S.CLOSE, 3, 0, 0, 0)),
        ("filp_close",), kernel_version="5.18",
    ),
    BugRecord(
        "t2_17", 2, "t2_17_setup_rw_floppy", "setup_rw_floppy",
        "UAF", BugType.UAF,
        ((S.FLOPPY, 1, 0x8, 0, 0), (S.FLOPPY, 2, 0x55, 0, 0)),
        ("floppy_interrupt", "setup_rw_floppy"), kernel_version="5.17-rc4",
    ),
    BugRecord(
        "t2_18", 2, "t2_18_driver_register", "driver_register",
        "UAF", BugType.UAF,
        ((S.SYSFS, 1, 1, 1, 0), (S.SYSFS, 1, 1, 0, 0)),
        ("driver_register",), kernel_version="5.18-next",
    ),
    BugRecord(
        "t2_19", 2, "t2_19_dev_uevent", "dev_uevent",
        "UAF", BugType.UAF,
        ((S.SYSFS, 1, 2, 0, 0), (S.SYSFS, 2, 2, 0, 0),
         (S.SYSFS, 3, 2, 0, 0)),
        ("dev_uevent",), kernel_version="5.17-rc4",
    ),
    BugRecord(
        "t2_20", 2, "t2_20_run_unpack", "run_unpack",
        "OOB Access", BugType.SLAB_OOB,
        ((S.MOUNT, 2, 0, 0, 0), (S.FSOP, 2, 1, 12, 3)),
        ("run_unpack",), kernel_version="6.0",
    ),
    BugRecord(
        "t2_21", 2, "t2_21_ath9k_hif_usb_rx_cb", "ath9k_hif_usb_rx_cb",
        "UAF", BugType.UAF,
        ((S.OPEN, 0x13, 0, 0, 0), (S.IOCTL, 3, 1, 0, 0),
         (S.IOCTL, 3, 2, 0, 0), (S.IOCTL, 3, 3, 64, 0)),
        ("ath9k_hif_usb_rx_cb",), kernel_version="5.19",
    ),
    BugRecord(
        "t2_22", 2, "t2_22_vma_adjust", "vma_adjust",
        "UAF", BugType.UAF,
        ((S.PRCTL, 1, 0x100, 0, 0), (S.PRCTL, 1, 0x100, 0, 0),
         (S.PRCTL, 2, 1, 0, 0), (S.PRCTL, 3, 0, 0x20, 0)),
        ("vma_adjust",), kernel_version="5.19-rc1",
    ),
    BugRecord(
        "t2_23", 2, "t2_23_nilfs_mdt_destroy", "nilfs_mdt_destroy",
        "UAF", BugType.UAF,
        ((S.MOUNT, 3, 0, 0, 0), (S.FSOP, 3, 1, 0, 0),
         (S.FSOP, 3, 2, 0, 0)),
        ("nilfs_mdt_destroy",), kernel_version="6.0-rc7",
    ),
    BugRecord(
        "t2_24", 2, "t2_24_fbcon_get_font", "fbcon_get_font",
        "OOB Access", BugType.GLOBAL_OOB,
        ((S.FONT, 1, 32, 0, 0),), ("fbcon_get_font",),
        kernel_version="5.7-rc5",
        detected_by=(True, False, True),  # EMBSAN-D lacks global redzones
    ),
    BugRecord(
        "t2_25", 2, "t2_25_string", "string",
        "OOB Access", BugType.GLOBAL_OOB,
        ((S.OPEN, 0x14, 0, 0, 0), (S.READ, 3, 64, 0, 0)),
        ("vsprintf.string",), kernel_version="4.17-rc1",
        detected_by=(True, False, True),  # EMBSAN-D lacks global redzones
    ),
)


# ----------------------------------------------------------------------
# Table 4 — 41 previously unknown bugs, per firmware
# ----------------------------------------------------------------------
def _t4(bug_id, arm_id, firmware, location, bug_class, expect_type,
        reproducer, report_match, tool="kasan", interface="syscall"):
    return BugRecord(
        bug_id, 4, arm_id, location, bug_class, expect_type,
        tuple(tuple(step) for step in reproducer), tuple(report_match),
        tool=tool, firmware=firmware, interface=interface,
    )


TABLE4_BUGS: Tuple[BugRecord, ...] = (
    # --- OpenWRT-armvirt (5 OOB, 1 Double Free) ------------------------
    _t4("t4_av_01", "t4_nfs_common_oob", "OpenWRT-armvirt",
        "fs/nfs_common", "OOB Access", BugType.SLAB_OOB,
        ((S.MOUNT, 4, 0, 0, 0), (S.FSOP, 4, 2, 3, 0)), ("nfsacl_encode",)),
    _t4("t4_av_02", "t4_armvirt_netfilter_oob", "OpenWRT-armvirt",
        "net/netfilter", "OOB Access", BugType.SLAB_OOB,
        ((S.NETLINK, 2, 1, 4, 0), (S.NETLINK, 2, 2, 3, 0)),
        ("nft_do_chain",)),
    _t4("t4_av_03", "t4_armvirt_net_wireless_oob", "OpenWRT-armvirt",
        "net/wireless", "OOB Access", BugType.SLAB_OOB,
        ((S.SCAN, 1, 1, 0, 0), (S.SCAN, 2, 1, 100, 0)),
        ("ieee80211_scan_rx",)),
    _t4("t4_av_04", "t4_marvell_eth_oob", "OpenWRT-armvirt",
        "drivers/net/ethernet/marvell", "OOB Access", BugType.SLAB_OOB,
        ((S.OPEN, 0x20, 0, 0, 0), (S.IOCTL, 3, 1, 10, 1)),
        ("eth_marvell",)),
    _t4("t4_av_05", "t4_realtek_eth_oob", "OpenWRT-armvirt",
        "drivers/net/ethernet/realtek", "OOB Access", BugType.SLAB_OOB,
        ((S.OPEN, 0x21, 0, 0, 0), (S.IOCTL, 3, 1, 10, 1)),
        ("eth_realtek",)),
    _t4("t4_av_06", "t4_atheros_eth_double_free", "OpenWRT-armvirt",
        "drivers/net/ethernet/atheros", "Double Free", BugType.DOUBLE_FREE,
        ((S.OPEN, 0x22, 0, 0, 0), (S.IOCTL, 3, 3, 8, 0),
         (S.IOCTL, 3, 4, 0, 0)),
        ("eth_atheros",)),
    # --- OpenWRT-bcm63xx (3 OOB, 2 UAF) ---------------------------------
    _t4("t4_bc_01", "t4_bcm63xx_bluetooth_oob", "OpenWRT-bcm63xx",
        "drivers/bluetooth", "OOB Access", BugType.SLAB_OOB,
        ((S.OPEN, 0x40, 0, 0, 0), (S.IOCTL, 3, 1, 0x10, 0)),
        ("hci_event",)),
    _t4("t4_bc_02", "t4_bcm2835_dma_oob", "OpenWRT-bcm63xx",
        "drivers/dma/bcm2835-dma", "OOB Access", BugType.SLAB_OOB,
        ((S.OPEN, 0x51, 0, 0, 0), (S.IOCTL, 3, 1, 64, 0)),
        ("dma_issue",)),
    _t4("t4_bc_03", "t4_aic7xxx_scsi_oob", "OpenWRT-bcm63xx",
        "drivers/scsi/aic7xxx", "OOB Access", BugType.SLAB_OOB,
        ((S.OPEN, 0x53, 0, 0, 0), (S.IOCTL, 3, 1, 0x50, 0)),
        ("ahc_loadseq",)),
    _t4("t4_bc_04", "t4_bcm63xx_btrfs_uaf", "OpenWRT-bcm63xx",
        "fs/btrfs", "UAF", BugType.UAF,
        ((S.MOUNT, 1, 0, 0, 0), (S.FSOP, 1, 2, 0xF800, 0),
         (S.FSOP, 1, 3, 0, 0)),
        ("btrfs_commit",)),
    _t4("t4_bc_05", "t4_broadcom_wifi_uaf", "OpenWRT-bcm63xx",
        "drivers/net/wireless/broadcom", "UAF", BugType.UAF,
        ((S.OPEN, 0x30, 0, 0, 0), (S.IOCTL, 3, 1, 0, 0),
         (S.IOCTL, 3, 2, 0, 0), (S.IOCTL, 3, 3, 5, 0)),
        ("wifi_fw_event",)),
    # --- OpenWRT-ipq807x (3 OOB, 1 UAF, 1 Double Free) ------------------
    _t4("t4_ip_01", "t4_broadcom_eth_oob", "OpenWRT-ipq807x",
        "drivers/net/ethernet/broadcom", "OOB Access", BugType.SLAB_OOB,
        ((S.OPEN, 0x23, 0, 0, 0), (S.IOCTL, 3, 1, 10, 1)),
        ("eth_broadcom.eth_xmit", "eth_xmit")),
    _t4("t4_ip_02", "t4_broadcom_eth_oob2", "OpenWRT-ipq807x",
        "drivers/net/ethernet/broadcom", "OOB Access", BugType.SLAB_OOB,
        ((S.OPEN, 0x23, 0, 0, 0), (S.IOCTL, 3, 2, 0x40, 0)),
        ("eth_rx_poll",)),
    _t4("t4_ip_03", "t4_ipq807x_net_sched_oob", "OpenWRT-ipq807x",
        "net/sched", "OOB Access", BugType.SLAB_OOB,
        ((S.NETLINK, 3, 1, 6, 0), (S.NETLINK, 3, 3, 0, 0)),
        ("prio_dump_stats",)),
    _t4("t4_ip_04", "t4_ath_wifi_uaf", "OpenWRT-ipq807x",
        "drivers/net/wireless/ath", "UAF", BugType.UAF,
        ((S.OPEN, 0x31, 0, 0, 0), (S.IOCTL, 3, 1, 0, 0),
         (S.IOCTL, 3, 2, 0, 0), (S.IOCTL, 3, 3, 5, 0)),
        ("wifi_fw_event",)),
    _t4("t4_ip_05", "t4_ipq807x_fuse_double_free", "OpenWRT-ipq807x",
        "fs/fuse", "Double Free", BugType.DOUBLE_FREE,
        ((S.MOUNT, 5, 0, 0, 0), (S.FSOP, 5, 1, 3, 0),
         (S.FSOP, 5, 2, 1, 0), (S.FSOP, 5, 3, 1, 0)),
        ("fuse_request_end", "fuse")),
    # --- OpenWRT-mt7629 (2 OOB, 2 Double Free) --------------------------
    _t4("t4_mt_01", "t4_mediatek_eth_oob", "OpenWRT-mt7629",
        "drivers/net/ethernet/mediatek", "OOB Access", BugType.SLAB_OOB,
        ((S.OPEN, 0x24, 0, 0, 0), (S.IOCTL, 3, 1, 10, 1)),
        ("eth_mediatek",)),
    _t4("t4_mt_02", "t4_nfs_oob", "OpenWRT-mt7629",
        "fs/nfs", "OOB Access", BugType.SLAB_OOB,
        ((S.MOUNT, 4, 0, 0, 0), (S.FSOP, 4, 1, 200, 0)),
        ("nfs_readdir",)),
    _t4("t4_mt_03", "t4_mt7629_net_core_double_free", "OpenWRT-mt7629",
        "net/core", "Double Free", BugType.DOUBLE_FREE,
        ((S.SOCKET, 1, 0, 0, 0), (S.SENDMSG, 3, 20, 0x10, 0)),
        ("sock_sendmsg", "net_core")),
    _t4("t4_mt_04", "t4_mediatek_dma_double_free", "OpenWRT-mt7629",
        "drivers/dma/mediatek", "Double Free", BugType.DOUBLE_FREE,
        ((S.OPEN, 0x52, 0, 0, 0), (S.IOCTL, 3, 1, 30, 0),
         (S.IOCTL, 3, 2, 0, 0), (S.IOCTL, 3, 3, 0, 0)),
        ("dma_complete", "dma_mediatek")),
    # --- OpenWRT-rtl839x (1 OOB, 1 UAF, 1 Double Free) -------------------
    _t4("t4_rt_01", "t4_realtek_eth_oob", "OpenWRT-rtl839x",
        "drivers/net/ethernet/realtek", "OOB Access", BugType.SLAB_OOB,
        ((S.OPEN, 0x21, 0, 0, 0), (S.IOCTL, 3, 1, 10, 1)),
        ("eth_realtek",)),
    _t4("t4_rt_02", "t4_realtek_bt_uaf", "OpenWRT-rtl839x",
        "drivers/net/bluetooth/realtek", "UAF", BugType.UAF,
        ((S.OPEN, 0x41, 0, 0, 0), (S.IOCTL, 3, 2, 0, 0),
         (S.IOCTL, 3, 3, 0, 0), (S.IOCTL, 3, 4, 0, 0)),
        ("rtk_coredump",)),
    _t4("t4_rt_03", "t4_rtl839x_netrom_double_free", "OpenWRT-rtl839x",
        "fs/netrom", "Double Free", BugType.DOUBLE_FREE,
        ((S.MOUNT, 6, 0, 0, 0), (S.FSOP, 6, 1, 10, 0),
         (S.FSOP, 6, 2, 10, 0), (S.FSOP, 6, 3, 0, 0)),
        ("nr_route_flush", "netrom")),
    # --- OpenWRT-x86_64 (5 OOB, 2 Race) ----------------------------------
    _t4("t4_x8_01", "t4_x86_64_iommu_oob", "OpenWRT-x86_64",
        "drivers/iommu", "OOB Access", BugType.SLAB_OOB,
        ((S.OPEN, 0x54, 0, 0, 0), (S.IOCTL, 3, 1, 0, 0),
         (S.IOCTL, 3, 3, 0xF000, 4)),
        ("iommu_unmap",)),
    _t4("t4_x8_02", "t4_realtek_eth_oob", "OpenWRT-x86_64",
        "drivers/net/ethernet/realtek", "OOB Access", BugType.SLAB_OOB,
        ((S.OPEN, 0x21, 0, 0, 0), (S.IOCTL, 3, 1, 10, 1)),
        ("eth_realtek",)),
    _t4("t4_x8_03", "t4_stmicro_eth_oob", "OpenWRT-x86_64",
        "drivers/net/ethernet/stmicro", "OOB Access", BugType.SLAB_OOB,
        ((S.OPEN, 0x25, 0, 0, 0), (S.IOCTL, 3, 1, 10, 1)),
        ("eth_stmicro",)),
    _t4("t4_x8_04", "t4_iwlwifi_wifi_oob", "OpenWRT-x86_64",
        "drivers/net/wireless/intel/iwlwifi", "OOB Access", BugType.SLAB_OOB,
        ((S.OPEN, 0x32, 0, 0, 0), (S.IOCTL, 3, 4, 200, 0)),
        ("wifi_parse_beacon", "wifi_iwlwifi")),
    _t4("t4_x8_05", "t4_b43_wifi_oob", "OpenWRT-x86_64",
        "drivers/net/wireless/broadcom/b43", "OOB Access", BugType.SLAB_OOB,
        ((S.OPEN, 0x33, 0, 0, 0), (S.IOCTL, 3, 4, 200, 0)),
        ("wifi_parse_beacon", "wifi_b43")),
    _t4("t4_x8_06", "t4_x86_64_btrfs_race1", "OpenWRT-x86_64",
        "fs/btrfs", "Race", BugType.DATA_RACE,
        ((S.MOUNT, 1, 0, 0, 0), (S.FSOP, 1, 4, 0, 0),
         (S.FSOP, 1, 4, 0, 0)),
        ("btrfs",), tool="kcsan"),
    _t4("t4_x8_07", "t4_x86_64_btrfs_race2", "OpenWRT-x86_64",
        "fs/btrfs", "Race", BugType.DATA_RACE,
        ((S.MOUNT, 1, 0, 0, 0), (S.FSOP, 1, 2, 100, 0),
         (S.FSOP, 1, 2, 100, 0)),
        ("btrfs",), tool="kcsan"),
    # --- OpenHarmony-rk3566 (2 OOB, 1 UAF) -------------------------------
    _t4("t4_rk_01", "t4_nfs_oob", "OpenHarmony-rk3566",
        "fs/nfs", "OOB Access", BugType.SLAB_OOB,
        ((S.MOUNT, 4, 0, 0, 0), (S.FSOP, 4, 1, 200, 0)),
        ("nfs_readdir",)),
    _t4("t4_rk_02", "t4_nfs_common_oob", "OpenHarmony-rk3566",
        "fs/nfs_common", "OOB Access", BugType.SLAB_OOB,
        ((S.MOUNT, 4, 0, 0, 0), (S.FSOP, 4, 2, 3, 0)),
        ("nfsacl_encode",)),
    _t4("t4_rk_03", "t4_rk3566_net_sched_uaf", "OpenHarmony-rk3566",
        "net/sched", "UAF", BugType.UAF,
        ((S.NETLINK, 3, 1, 3, 0), (S.NETLINK, 3, 2, 0, 0),
         (S.NETLINK, 3, 4, 7, 0)),
        ("tcf_filter_change",)),
    # --- OpenHarmony LiteOS (3 OOB) ---------------------------------------
    _t4("t4_mp_01", "t4_stm32mp1_vfs_oob", "OpenHarmony-stm32mp1",
        "fs/vfs", "OOB Access", BugType.SLAB_OOB,
        ((4, 1, 1, 60),), ("vfs_normalize_path",), interface="rtos"),
    _t4("t4_f4_01", "t4_stm32f407_vfs_oob", "OpenHarmony-stm32f407",
        "fs/vfs", "OOB Access", BugType.SLAB_OOB,
        ((4, 1, 1, 60),), ("vfs_normalize_path",), interface="rtos"),
    _t4("t4_f4_02", "t4_stm32f407_fat_oob", "OpenHarmony-stm32f407",
        "fs/fat", "OOB Access", BugType.SLAB_OOB,
        ((4, 2, 1, 0), (4, 2, 2, 7)), ("fat_read_lfn",), interface="rtos"),
    # --- InfiniTime / FreeRTOS (2 OOB, 1 UAF) ------------------------------
    _t4("t4_it_01", "t4_infinitime_littlefs_oob", "InfiniTime",
        "src/libs/littlefs/", "OOB Access", BugType.SLAB_OOB,
        ((9, 1, 1, 0), (9, 1, 2, 200)), ("lfs_dir_scan",),
        interface="rtos"),
    _t4("t4_it_02", "t4_infinitime_spi_oob", "InfiniTime",
        "src/drivers/Spi", "OOB Access", BugType.SLAB_OOB,
        ((9, 2, 1, 3),), ("spi_transfer",), interface="rtos"),
    _t4("t4_it_03", "t4_infinitime_st7789_uaf", "InfiniTime",
        "src/drivers/St7789", "UAF", BugType.UAF,
        ((9, 3, 1, 0), (9, 3, 2, 0), (9, 3, 3, 4)), ("st7789_vsync",),
        interface="rtos"),
    # --- TP-Link WDR-7660 / VxWorks (2 OOB) ---------------------------------
    _t4("t4_tp_01", "t4_wdr7660_pppoed_oob", "TP-Link WDR-7660",
        "pppoed", "OOB Access", BugType.SLAB_OOB,
        ((1, 0x09, 200, 42),), ("pppoed",), interface="rtos"),
    _t4("t4_tp_02", "t4_wdr7660_dhcpsd_oob", "TP-Link WDR-7660",
        "dhcpsd", "OOB Access", BugType.SLAB_OOB,
        ((2, 1, 100, 7),), ("dhcpsd",), interface="rtos"),
)


# ----------------------------------------------------------------------
# Driver-surface bugs — seeded in the netdma guest driver (ISR + ring
# refill), reachable only through ``--surface driver`` builds.  Kept
# out of TABLE4_BUGS so the paper's census tables and every default
# syscall-surface campaign stay byte-identical.
# ----------------------------------------------------------------------
def _drv(bug_id, arm_id, firmware, bug_class, expect_type, reproducer,
         report_match, tool="kasan"):
    return BugRecord(
        bug_id, 4, arm_id, "drivers/net/netdma", bug_class, expect_type,
        tuple(tuple(step) for step in reproducer), tuple(report_match),
        tool=tool, firmware=firmware, interface="driver",
    )


# driver-op reproducers: (op, a0, a1, a2) — see repro.os.drivers.netdma.
# The OOB needs five retired descriptors (the unmasked free-running
# completion index first leaves the 4-slot ring on completion #5), the
# UAF fires on the first retirement, and the uninit read needs one
# spurious (forced) interrupt after init.
DRIVER_BUGS: Tuple[BugRecord, ...] = (
    _drv("drv_av_01", "drv_armvirt_netdma_ring_oob", "OpenWRT-armvirt",
         "OOB Access", BugType.SLAB_OOB,
         ((1, 0, 0, 0), (3, 3, 8, 0), (3, 0, 8, 0)), ("netdma_isr",)),
    _drv("drv_av_02", "drv_armvirt_netdma_desc_uaf", "OpenWRT-armvirt",
         "UAF", BugType.UAF,
         ((1, 0, 0, 0), (3, 0, 8, 0)), ("netdma_isr",)),
    _drv("drv_av_03", "drv_armvirt_netdma_status_uninit", "OpenWRT-armvirt",
         "Uninit Read", BugType.UNINIT_READ,
         ((1, 0, 0, 0), (4, 0, 0, 0)), ("netdma_isr",), tool="kmsan"),
    _drv("drv_rk_01", "drv_rk3566_netdma_ring_oob", "OpenHarmony-rk3566",
         "OOB Access", BugType.SLAB_OOB,
         ((1, 0, 0, 0), (3, 3, 8, 0), (3, 0, 8, 0)), ("netdma_isr",)),
    _drv("drv_rk_02", "drv_rk3566_netdma_desc_uaf", "OpenHarmony-rk3566",
         "UAF", BugType.UAF,
         ((1, 0, 0, 0), (3, 0, 8, 0)), ("netdma_isr",)),
    _drv("drv_rk_03", "drv_rk3566_netdma_status_uninit", "OpenHarmony-rk3566",
         "Uninit Read", BugType.UNINIT_READ,
         ((1, 0, 0, 0), (4, 0, 0, 0)), ("netdma_isr",), tool="kmsan"),
)


#: id -> record index over both tables, built once at import; campaign
#: census/matching code resolves ids through this instead of scanning
TABLE4_BY_ID: dict = {bug.bug_id: bug for bug in TABLE4_BUGS}
TABLE2_BY_ID: dict = {bug.bug_id: bug for bug in TABLE2_BUGS}
DRIVER_BY_ID: dict = {bug.bug_id: bug for bug in DRIVER_BUGS}


def record_by_id(bug_id: str) -> BugRecord:
    """Resolve a catalog row by id (Table 4, then Table 2, then driver)."""
    record = TABLE4_BY_ID.get(bug_id)
    if record is None:
        record = TABLE2_BY_ID.get(bug_id)
    if record is None:
        record = DRIVER_BY_ID.get(bug_id)
    if record is None:
        raise KeyError(bug_id)
    return record


def driver_bugs_for(firmware: str) -> Tuple[BugRecord, ...]:
    """The driver-surface rows seeded in one firmware."""
    return tuple(bug for bug in DRIVER_BUGS if bug.firmware == firmware)


def table4_bugs_for(firmware: str) -> Tuple[BugRecord, ...]:
    """The Table-4 rows seeded in one firmware."""
    return tuple(bug for bug in TABLE4_BUGS if bug.firmware == firmware)


def census_by_firmware() -> dict:
    """firmware -> {census class -> count}: the paper's Table 3."""
    out: dict = {}
    for bug in TABLE4_BUGS:
        row = out.setdefault(bug.firmware, {})
        row[bug.bug_class] = row.get(bug.bug_class, 0) + 1
    return out
