"""The evaluation bug corpora.

* :mod:`repro.bugs.catalog` — every Table-2 row (25 known syzbot bugs)
  and Table-4 row (41 new bugs) with its deterministic reproducer.
* :mod:`repro.bugs.table2` — the syzbot-replay kernel factory and the
  per-sanitizer detection experiment behind Table 2.
* :mod:`repro.bugs.replay` — reproducer execution and crash oracles.
"""

from repro.bugs.catalog import (
    BugRecord,
    TABLE2_BUGS,
    TABLE4_BUGS,
    table4_bugs_for,
)
from repro.bugs.replay import ReplayResult, replay_on_embsan, replay_on_native

__all__ = [
    "BugRecord",
    "ReplayResult",
    "TABLE2_BUGS",
    "TABLE4_BUGS",
    "replay_on_embsan",
    "replay_on_native",
    "table4_bugs_for",
]
