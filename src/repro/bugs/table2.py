"""The Table-2 replay kernel: every syzbot-bug module in one build.

Table 2 replays 25 known KASAN bugs on their pinned kernel versions.
The replay kernel is an Embedded Linux build carrying all the subsystem
modules those bugs live in; :func:`table2_kernel_factory` arms exactly
one defect per build, like compiling the vulnerable kernel version.
"""

from __future__ import annotations

from repro.emulator.machine import Machine
from repro.os.common import BugSwitchboard
from repro.os.embedded_linux.kernel import EmbeddedLinuxKernel
from repro.os.embedded_linux.modules.block import BlockModule
from repro.os.embedded_linux.modules.bpf import BpfModule
from repro.os.embedded_linux.modules.btrfs import BtrfsModule
from repro.os.embedded_linux.modules.crypto import CryptoModule
from repro.os.embedded_linux.modules.driver_base import DriverBaseModule
from repro.os.embedded_linux.modules.fbdev import FbdevModule
from repro.os.embedded_linux.modules.floppy import FloppyModule
from repro.os.embedded_linux.modules.mac80211 import Mac80211Module
from repro.os.embedded_linux.modules.mm_extra import MmExtraModule
from repro.os.embedded_linux.modules.nilfs import NilfsModule
from repro.os.embedded_linux.modules.ntfs import NtfsModule
from repro.os.embedded_linux.modules.usb_wifi import Ath9kUsbModule
from repro.os.embedded_linux.modules.vsprintf import VsprintfModule
from repro.os.embedded_linux.modules.vxlan import VxlanModule
from repro.os.embedded_linux.modules.watch_queue import WatchQueueModule

#: module set covering every Table-2 bug location
TABLE2_MODULES = (
    BpfModule, WatchQueueModule, Mac80211Module, BtrfsModule, VxlanModule,
    FbdevModule, CryptoModule, BlockModule, MmExtraModule, FloppyModule,
    DriverBaseModule, NtfsModule, Ath9kUsbModule, NilfsModule,
    VsprintfModule,
)


def table2_kernel_factory(version: str):
    """A kernel factory for the given syzbot kernel version."""

    def factory(machine: Machine, bugs: BugSwitchboard) -> EmbeddedLinuxKernel:
        kernel = EmbeddedLinuxKernel(machine, version=version, bugs=bugs)
        for make in TABLE2_MODULES:
            kernel.add_module(make(kernel))
        return kernel

    return factory
