"""Reproducer replay with crash oracles.

Runs a :class:`~repro.bugs.catalog.BugRecord`'s reproducer on a fresh
firmware build under a chosen sanitizer deployment and decides whether
the defect was *detected*: either the expected sanitizer report fired at
the expected location, or — for fault-class bugs — the guest crashed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.bugs.catalog import BugRecord
from repro.bugs.table2 import table2_kernel_factory
from repro.errors import GuestFault
from repro.firmware.builder import attach_runtime, build_image
from repro.firmware.instrument import InstrumentationMode
from repro.firmware.registry import build_firmware, firmware_spec
from repro.sanitizers.runtime.reports import BugType, SanitizerReport


@dataclass
class ReplayResult:
    """Outcome of one reproducer replay."""

    record: BugRecord
    detected: bool
    crashed: bool = False
    reports: List[SanitizerReport] = field(default_factory=list)
    mode: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.detected


def run_program(image, program: Sequence[Tuple[int, ...]],
                interface: str = "syscall") -> Optional[GuestFault]:
    """Execute a reproducer program; returns the fault if the guest died."""
    ctx, kernel = image.ctx, image.kernel
    try:
        for step in program:
            padded = tuple(step) + (0,) * (5 - len(step))
            if interface == "syscall":
                kernel.do_syscall(ctx, *padded[:5])
            else:
                kernel.invoke(ctx, *padded[:4])
    except GuestFault as fault:
        return fault
    return None


def _match(record: BugRecord, reports) -> List[SanitizerReport]:
    hits = []
    for report in reports:
        if report.bug_type is not record.expect_type:
            continue
        if any(sub in report.location for sub in record.report_match):
            hits.append(report)
    return hits


def _crash_detects(record: BugRecord, fault: Optional[GuestFault]) -> bool:
    if fault is None:
        return False
    return record.expect_type in (BugType.NULL_DEREF, BugType.WILD_ACCESS)


def _build_for_record(record: BugRecord, mode: InstrumentationMode,
                      native_sanitizers=()):
    if record.table == 2:
        return build_image(
            f"syzbot-replay-{record.bug_id}", "x86",
            table2_kernel_factory(record.kernel_version or "6.1"),
            mode=mode, bug_ids=(record.arm_id,),
            native_sanitizers=native_sanitizers, boot=False,
        )
    spec = firmware_spec(record.firmware)
    return build_firmware(
        record.firmware, mode=mode, native_sanitizers=native_sanitizers,
        boot=False,
    )


def replay_on_embsan(
    record: BugRecord,
    mode: InstrumentationMode,
    sanitizers: Optional[Sequence[str]] = None,
) -> ReplayResult:
    """Replay a reproducer under EMBSAN-C or EMBSAN-D."""
    if sanitizers is None:
        sanitizers = ("kasan", "kcsan") if record.tool == "kcsan" else ("kasan",)
    image = _build_for_record(record, mode)
    runtime = attach_runtime(image, sanitizers=sanitizers)
    image.boot()
    fault = run_program(image, record.reproducer, record.interface)
    hits = _match(record, runtime.sink.unique.values())
    detected = bool(hits) or _crash_detects(record, fault)
    return ReplayResult(record, detected, crashed=fault is not None,
                        reports=hits, mode=f"embsan-{mode.value[-1]}")


def replay_on_native(
    record: BugRecord,
    sanitizers: Optional[Sequence[str]] = None,
) -> ReplayResult:
    """Replay a reproducer under the native in-guest sanitizer build."""
    if sanitizers is None:
        sanitizers = ("kcsan",) if record.tool == "kcsan" else ("kasan",)
    image = _build_for_record(
        record, InstrumentationMode.NATIVE, native_sanitizers=sanitizers
    )
    image.boot()
    fault = run_program(image, record.reproducer, record.interface)
    hits = _match(record, image.native_reports())
    detected = bool(hits) or _crash_detects(record, fault)
    return ReplayResult(record, detected, crashed=fault is not None,
                        reports=hits, mode="native")
