"""Memory regions that the system bus maps into the guest address space."""

from __future__ import annotations

import enum
import mmap
from typing import Callable, Optional

from repro.errors import BusError

#: zero-filled regions at least this large use anonymous-mmap backing
#: (lazily faulted zero pages) instead of an eagerly memset bytearray
_MMAP_MIN = 1 << 20


class Perm(enum.IntFlag):
    """Region access permissions."""

    NONE = 0
    R = 1
    W = 2
    X = 4
    RW = R | W
    RX = R | X
    RWX = R | W | X


class MemoryRegion:
    """A contiguous span of guest physical memory backed by a bytearray.

    Regions never overlap on a bus.  ``kind`` is free-form metadata used by
    the Prober when reconstructing the platform memory map ("ram", "rom",
    "flash", "sram", "device").
    """

    def __init__(
        self,
        name: str,
        base: int,
        size: int,
        perm: Perm = Perm.RWX,
        kind: str = "ram",
        fill: int = 0,
    ):
        if size <= 0:
            raise ValueError(f"region {name!r} must have positive size")
        if base < 0:
            raise ValueError(f"region {name!r} must have non-negative base")
        self.name = name
        self.base = base
        self.size = size
        self.perm = perm
        self.kind = kind
        fill &= 0xFF
        # Large zero-filled regions are backed by an anonymous mmap:
        # the kernel hands out lazily faulted zero pages, so a 64 MiB
        # DRAM region costs only the pages the guest actually touches.
        # Rebuild-heavy fuzzing constructs regions thousands of times,
        # and bytearray(size) memsets the whole span every time.
        if fill == 0 and size >= _MMAP_MIN:
            self.data = mmap.mmap(-1, size)
        else:
            self.data = bytearray([fill]) * size

    @property
    def end(self) -> int:
        """One past the highest mapped address."""
        return self.base + self.size

    def contains(self, addr: int, size: int = 1) -> bool:
        """True when [addr, addr+size) lies entirely inside the region."""
        return self.base <= addr and addr + size <= self.end

    def read(self, addr: int, size: int) -> bytes:
        """Read raw bytes; the caller has already validated the span."""
        off = addr - self.base
        return bytes(self.data[off : off + size])

    def write(self, addr: int, payload: bytes) -> None:
        """Write raw bytes; the caller has already validated the span."""
        off = addr - self.base
        self.data[off : off + len(payload)] = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryRegion({self.name!r}, base={self.base:#010x}, "
            f"size={self.size:#x}, kind={self.kind!r})"
        )


class MmioRegion(MemoryRegion):
    """A region whose accesses are served by device callbacks.

    ``on_read(offset, size) -> int`` and ``on_write(offset, size, value)``
    receive offsets relative to the region base.  The backing bytearray is
    still present so devices can fall back to plain storage for registers
    they do not special-case.
    """

    def __init__(
        self,
        name: str,
        base: int,
        size: int,
        on_read: Optional[Callable[[int, int], int]] = None,
        on_write: Optional[Callable[[int, int, int], None]] = None,
    ):
        super().__init__(name, base, size, perm=Perm.RW, kind="device")
        self.on_read = on_read
        self.on_write = on_write

    def read(self, addr: int, size: int) -> bytes:
        off = addr - self.base
        if self.on_read is not None:
            value = self.on_read(off, size)
            return int(value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        return super().read(addr, size)

    def write(self, addr: int, payload: bytes) -> None:
        off = addr - self.base
        if self.on_write is not None:
            self.on_write(off, len(payload), int.from_bytes(payload, "little"))
            return
        super().write(addr, payload)


def check_no_overlap(regions, candidate: MemoryRegion) -> None:
    """Raise :class:`BusError` when ``candidate`` overlaps any mapped region."""
    for region in regions:
        if candidate.base < region.end and region.base < candidate.end:
            raise BusError(
                f"region {candidate.name!r} [{candidate.base:#x}, "
                f"{candidate.end:#x}) overlaps {region.name!r} "
                f"[{region.base:#x}, {region.end:#x})",
                addr=candidate.base,
            )
