"""Guest physical memory: regions, the system bus, and access records.

The bus is the single chokepoint every guest memory operation flows
through.  This is what makes emulator-level sanitation possible: the
Common Sanitizer Runtime attaches observers here (and to the TCG engine's
translated templates) without any cooperation from the guest.
"""

from repro.mem.access import Access, AccessKind
from repro.mem.bus import MemoryBus
from repro.mem.regions import Perm, MemoryRegion, MmioRegion

__all__ = [
    "Access",
    "AccessKind",
    "MemoryBus",
    "MemoryRegion",
    "MmioRegion",
    "Perm",
]
