"""The guest system bus.

Every guest memory operation — scalar loads/stores from the interpreter,
bulk copies from rehosted kernel code, DMA from device models — goes
through one :class:`MemoryBus`.  Observers registered on the bus see an
:class:`~repro.mem.access.Access` per operation; this is the dynamic
(EMBSAN-D) interception point.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from typing import Callable, Iterable, List, Optional

from repro.errors import BusError
from repro.mem.access import Access, AccessKind
from repro.mem.regions import MemoryRegion, Perm, check_no_overlap

Observer = Callable[[Access], None]

_SCALAR_SIZES = frozenset((1, 2, 4, 8))


class MemoryBus:
    """Maps :class:`MemoryRegion` objects and routes guest accesses.

    Observers are invoked *before* the access is performed so a sanitizer
    can flag a violation at the faulting operation, matching how KASAN
    reports point at the offending instruction.
    """

    def __init__(self):
        self._regions: List[MemoryRegion] = []
        self._bases: List[int] = []
        self._observers: tuple = ()
        self._write_watchers: tuple = ()
        self._silent_depth = 0
        #: optional FaultPlan whose mutate_load() filters guest loads
        self.fault_plan = None
        #: active write journal (pre-image log) or None; see journal_begin
        self._journal: Optional[list] = None
        #: attached DirtySet receiving page marks for every RAM write,
        #: or None; see attach_dirty
        self._dirty = None

    # ------------------------------------------------------------------
    # region management
    # ------------------------------------------------------------------
    def map(self, region: MemoryRegion) -> MemoryRegion:
        """Map a region; raises :class:`BusError` on overlap."""
        check_no_overlap(self._regions, region)
        idx = bisect.bisect_left(self._bases, region.base)
        self._regions.insert(idx, region)
        self._bases.insert(idx, region.base)
        return region

    def unmap(self, name: str) -> None:
        """Unmap the region with the given name."""
        for idx, region in enumerate(self._regions):
            if region.name == name:
                del self._regions[idx]
                del self._bases[idx]
                return
        raise BusError(f"no region named {name!r} to unmap")

    @property
    def regions(self) -> Iterable[MemoryRegion]:
        """Mapped regions in ascending base order."""
        return tuple(self._regions)

    def region_named(self, name: str) -> MemoryRegion:
        """Return the region with the given name."""
        for region in self._regions:
            if region.name == name:
                return region
        raise BusError(f"no region named {name!r}")

    def region_at(self, addr: int) -> Optional[MemoryRegion]:
        """Return the region containing ``addr``, or None."""
        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx < 0:
            return None
        region = self._regions[idx]
        return region if addr < region.end else None

    def _resolve(self, addr: int, size: int, want: Perm) -> MemoryRegion:
        region = self.region_at(addr)
        if region is None or not region.contains(addr, size):
            raise BusError(
                f"unmapped guest access at {addr:#010x} size {size}", addr=addr
            )
        if not region.perm & want:
            raise BusError(
                f"permission violation at {addr:#010x}: need {want.name}, "
                f"region {region.name!r} grants {region.perm!r}",
                addr=addr,
            )
        return region

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def add_observer(self, observer: Observer) -> None:
        """Attach an access observer (sanitizer probe, tracer, ...)."""
        self._observers = self._observers + (observer,)

    def remove_observer(self, observer: Observer) -> None:
        """Detach a previously attached observer."""
        self._observers = tuple(o for o in self._observers if o is not observer)

    def add_write_watcher(self, watcher: Callable[[int, int], None]) -> None:
        """Attach a ``(addr, size)`` callback fired on every bulk write.

        Unlike observers, watchers are a cache-coherency channel, not a
        tracing one: they fire even inside ``untraced()`` (a host-side
        write invalidates translations just as a guest one does), and
        execution engines use them to detect writes into translated code
        arriving via ``write_bytes``/``fill``/``copy``/DMA rather than
        scalar stores.
        """
        self._write_watchers = self._write_watchers + (watcher,)

    def remove_write_watcher(self, watcher: Callable[[int, int], None]) -> None:
        """Detach a previously attached bulk-write watcher."""
        self._write_watchers = tuple(
            w for w in self._write_watchers if w is not watcher
        )

    @contextmanager
    def untraced(self):
        """Suppress observer notification inside the ``with`` block.

        Used for host-side manipulation that has no guest-visible
        counterpart: the firmware loader populating ROM, the Prober taking
        memory snapshots, report generators peeking at object contents.
        """
        self._silent_depth += 1
        try:
            yield self
        finally:
            self._silent_depth -= 1

    def _notify(self, access: Access) -> None:
        if self._silent_depth:
            return
        for observer in self._observers:
            observer(access)

    # ------------------------------------------------------------------
    # write journal (crash-isolation rollback)
    # ------------------------------------------------------------------
    def journal_begin(self) -> None:
        """Start recording pre-images of every RAM write.

        While active, scalar and bulk writes into non-device regions log
        ``(region, offset, old_bytes)`` so :meth:`journal_rollback` can
        rewind guest memory to the begin point in O(bytes written) — a
        lightweight alternative to a full Snapshot for per-input crash
        isolation.  Device (MMIO) writes are never journalled: they have
        host-side effects a memory rewind cannot undo.
        """
        if self._journal is not None:
            raise BusError("write journal already active")
        self._journal = []

    def journal_commit(self) -> int:
        """Stop journalling, keeping all writes; returns entries dropped."""
        journal = self._journal
        if journal is None:
            raise BusError("no write journal active")
        self._journal = None
        return len(journal)

    def journal_rollback(self) -> int:
        """Stop journalling and rewind every journalled write (LIFO)."""
        journal = self._journal
        if journal is None:
            raise BusError("no write journal active")
        self._journal = None
        for region, off, old in reversed(journal):
            region.data[off : off + len(old)] = old
        return len(journal)

    @property
    def journal_active(self) -> bool:
        """True while a write journal is recording."""
        return self._journal is not None

    def journal_write_bounds(self) -> Optional[tuple]:
        """Absolute ``(lo, hi)`` span covering all journalled writes.

        Returns None when no journal is active or it recorded nothing.
        Must be read *before* commit/rollback (both clear the journal);
        the rollback path uses it to invalidate only the translations
        the rewind can actually have changed instead of flushing whole
        TB caches.
        """
        journal = self._journal
        if not journal:
            return None
        lo = hi = None
        for region, off, old in journal:
            start = region.base + off
            end = start + len(old)
            if lo is None or start < lo:
                lo = start
            if hi is None or end > hi:
                hi = end
        return (lo, hi)

    # ------------------------------------------------------------------
    # dirty-page tracking (fork-server delta restore)
    # ------------------------------------------------------------------
    def attach_dirty(self, dirty) -> None:
        """Attach a :class:`~repro.mem.dirty.DirtySet` to all write paths.

        While attached, every store into a non-device region marks the
        covered pages dirty — scalar stores, silent stores, and the bulk
        ``write_bytes``/``fill``/``copy``/DMA family alike.  Unlike the
        journal this is a persistent accounting channel, not a scoped
        one: it stays attached across programs and is consumed (and
        cleared) by whoever owns the delta-restore strategy.
        """
        self._dirty = dirty

    def detach_dirty(self) -> None:
        """Stop marking pages dirty."""
        self._dirty = None

    @property
    def dirty(self):
        """The attached DirtySet, or None."""
        return self._dirty

    # ------------------------------------------------------------------
    # scalar access
    # ------------------------------------------------------------------
    def load(
        self,
        addr: int,
        size: int,
        pc: int = 0,
        task: int = 0,
        atomic: bool = False,
    ) -> int:
        """Perform a scalar little-endian load and return the value."""
        if size not in _SCALAR_SIZES:
            raise BusError(f"invalid scalar load size {size}", addr=addr)
        region = self._resolve(addr, size, Perm.R)
        if self._observers:
            self._notify(Access(addr, size, False, pc, task, atomic=atomic))
        value = int.from_bytes(region.read(addr, size), "little")
        # fault injection applies to guest traffic only; untraced host
        # reads (report generators, the Prober) see pristine memory
        if self.fault_plan is not None and not self._silent_depth:
            value = self.fault_plan.mutate_load(addr, size, value)
        return value

    def store(
        self,
        addr: int,
        size: int,
        value: int,
        pc: int = 0,
        task: int = 0,
        atomic: bool = False,
    ) -> None:
        """Perform a scalar little-endian store."""
        if size not in _SCALAR_SIZES:
            raise BusError(f"invalid scalar store size {size}", addr=addr)
        region = self._resolve(addr, size, Perm.W)
        if self._observers:
            self._notify(Access(addr, size, True, pc, task, atomic=atomic))
        if region.kind != "device":
            if self._journal is not None:
                off = addr - region.base
                self._journal.append(
                    (region, off, bytes(region.data[off : off + size]))
                )
            if self._dirty is not None:
                self._dirty.mark(region.name, addr - region.base, size)
        region.write(addr, int(value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    def load_silent(self, addr: int, size: int) -> int:
        """Scalar load with no observer notification.

        Hot-path twin of ``with untraced(): load(...)`` for specialized
        TCG templates whose injected probes are already the notification
        channel; skips the context-manager round trip and the scalar-size
        guard (instruction decoding fixes the size to 1/2/4).
        """
        region = self._resolve(addr, size, Perm.R)
        value = int.from_bytes(region.read(addr, size), "little")
        if self.fault_plan is not None:
            # this path carries only guest (EVM32 template) loads
            value = self.fault_plan.mutate_load(addr, size, value)
        return value

    def store_silent(self, addr: int, size: int, value: int) -> None:
        """Scalar store with no observer notification (see load_silent)."""
        region = self._resolve(addr, size, Perm.W)
        if region.kind != "device":
            if self._journal is not None:
                off = addr - region.base
                self._journal.append(
                    (region, off, bytes(region.data[off : off + size]))
                )
            if self._dirty is not None:
                self._dirty.mark(region.name, addr - region.base, size)
        region.write(addr, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    # ------------------------------------------------------------------
    # bulk access (guest memcpy / memset family)
    # ------------------------------------------------------------------
    def read_bytes(
        self,
        addr: int,
        size: int,
        pc: int = 0,
        task: int = 0,
        kind: AccessKind = AccessKind.RANGE,
    ) -> bytes:
        """Read ``size`` raw bytes as one range access."""
        if size == 0:
            return b""
        region = self._resolve(addr, size, Perm.R)
        if self._observers:
            self._notify(Access(addr, size, False, pc, task, kind=kind))
        return region.read(addr, size)

    def write_bytes(
        self,
        addr: int,
        payload: bytes,
        pc: int = 0,
        task: int = 0,
        kind: AccessKind = AccessKind.RANGE,
    ) -> None:
        """Write raw bytes as one range access."""
        if not payload:
            return
        region = self._resolve(addr, len(payload), Perm.W)
        if self._observers:
            self._notify(Access(addr, len(payload), True, pc, task, kind=kind))
        if region.kind != "device":
            if self._journal is not None:
                off = addr - region.base
                self._journal.append(
                    (region, off, bytes(region.data[off : off + len(payload)]))
                )
            if self._dirty is not None:
                self._dirty.mark(region.name, addr - region.base, len(payload))
        region.write(addr, bytes(payload))
        for watcher in self._write_watchers:
            watcher(addr, len(payload))

    def fill(
        self, addr: int, size: int, value: int, pc: int = 0, task: int = 0
    ) -> None:
        """Guest memset: one range write of ``size`` copies of ``value``."""
        self.write_bytes(addr, bytes([value & 0xFF]) * size, pc=pc, task=task)

    def copy(
        self, dst: int, src: int, size: int, pc: int = 0, task: int = 0
    ) -> None:
        """Guest memcpy: a range read of ``src`` then a range write of ``dst``."""
        payload = self.read_bytes(src, size, pc=pc, task=task)
        self.write_bytes(dst, payload, pc=pc, task=task)

    # ------------------------------------------------------------------
    # instruction fetch
    # ------------------------------------------------------------------
    def fetch(self, addr: int, size: int) -> bytes:
        """Fetch instruction bytes; requires execute permission."""
        region = self._resolve(addr, size, Perm.X)
        return region.read(addr, size)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def load_cstring(self, addr: int, max_len: int = 4096) -> bytes:
        """Read a NUL-terminated guest string (untraced; host helper)."""
        out = bytearray()
        with self.untraced():
            for offset in range(max_len):
                byte = self.read_bytes(addr + offset, 1)
                if byte == b"\x00":
                    break
                out += byte
        return bytes(out)

    def total_mapped(self) -> int:
        """Total number of mapped guest bytes."""
        return sum(region.size for region in self._regions)
