"""Dirty-page tracking for delta snapshot restore.

A :class:`DirtySet` records, per memory region, which pages have been
written since the last :meth:`clear`.  The bus marks pages on every
store path (scalar stores, bulk writes, DMA); a fork-server restore
then copies back only the dirty pages of a golden snapshot instead of
every byte of RAM, making reset cost proportional to what the input
touched rather than to machine size.

The same abstraction underlies all three restore strategies in
:mod:`repro.emulator.snapshot`:

* ``Snapshot`` (full copy) conservatively marks everything it rewrites;
* ``Checkpoint`` (journal) needs no page map — its pre-image log *is*
  a byte-exact dirty record — but re-dirties only pages the journal
  already marked when it rolls back;
* ``ForkServer`` owns a DirtySet attached to the bus and consumes it
  on every delta restore.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

#: bytes per tracked page; matches the mmap granularity of large regions
PAGE_SIZE = 4096
PAGE_SHIFT = 12


class DirtySet:
    """Per-region sets of dirty page indices.

    Keys are region *names* (stable across snapshots); values are sets
    of page indices within the region.  The hot path is :meth:`mark`,
    called on every guest store — it special-cases the overwhelmingly
    common single-page write.
    """

    __slots__ = ("_pages",)

    def __init__(self) -> None:
        self._pages: Dict[str, Set[int]] = {}

    # ------------------------------------------------------------------
    # marking (hot path)
    # ------------------------------------------------------------------
    def mark(self, region_name: str, off: int, size: int) -> None:
        """Mark the pages covering ``[off, off+size)`` dirty."""
        first = off >> PAGE_SHIFT
        pages = self._pages.get(region_name)
        if pages is None:
            pages = self._pages[region_name] = set()
        last = (off + size - 1) >> PAGE_SHIFT
        if first == last:
            pages.add(first)
        else:
            pages.update(range(first, last + 1))

    def mark_all(self, region_name: str, region_size: int) -> None:
        """Mark every page of a region dirty (full-rewrite hygiene)."""
        count = (region_size + PAGE_SIZE - 1) >> PAGE_SHIFT
        self._pages[region_name] = set(range(count))

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def pages(self, region_name: str) -> Set[int]:
        """The dirty page indices of one region (empty set when clean)."""
        return self._pages.get(region_name, set())

    def spans(self, region_name: str) -> List[Tuple[int, int]]:
        """Merged ``(lo, hi)`` byte ranges covering the dirty pages.

        Contiguous dirty pages coalesce into one span so the copy-back
        runs as few (large) slice assignments as possible.
        """
        pages = self._pages.get(region_name)
        if not pages:
            return []
        spans: List[Tuple[int, int]] = []
        start = prev = None
        for page in sorted(pages):
            if prev is not None and page == prev + 1:
                prev = page
                continue
            if start is not None:
                spans.append((start << PAGE_SHIFT, (prev + 1) << PAGE_SHIFT))
            start = prev = page
        spans.append((start << PAGE_SHIFT, (prev + 1) << PAGE_SHIFT))
        return spans

    def page_count(self) -> int:
        """Total dirty pages across all regions."""
        return sum(len(pages) for pages in self._pages.values())

    def region_names(self) -> Iterator[str]:
        """Regions with at least one dirty page."""
        return (name for name, pages in self._pages.items() if pages)

    def clear(self) -> None:
        """Forget all dirty pages (after a restore or golden capture)."""
        for pages in self._pages.values():
            pages.clear()
