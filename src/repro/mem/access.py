"""Access records emitted by the memory bus.

An :class:`Access` is the unit of information a sanitizer sees for data
memory traffic.  It deliberately mirrors what a QEMU/TCG load/store probe
can reconstruct: guest address, size, direction, program counter, and the
id of the task that was running (recovered from the emulated CPU state).
"""

from __future__ import annotations

import enum


class AccessKind(enum.Enum):
    """How the access reached the bus."""

    #: A scalar load/store issued by an executed instruction.
    DATA = "data"
    #: A bulk range operation (guest memcpy/memset family).
    RANGE = "range"
    #: An instruction fetch (never sanitized, but visible to coverage).
    FETCH = "fetch"
    #: Device DMA traffic (sanitized like data by KASAN semantics).
    DMA = "dma"


class Access:
    """One guest memory access.

    Attributes
    ----------
    addr:
        Guest physical address of the first byte touched.
    size:
        Number of bytes touched (1, 2, 4 or 8 for DATA; arbitrary for RANGE).
    is_write:
        True for stores, False for loads.
    pc:
        Guest program counter of the instruction responsible, or 0 when the
        access came from a context with no meaningful pc (e.g. DMA).
    task:
        Identifier of the running guest task, or 0 for pre-scheduler and
        interrupt contexts.  KCSAN uses this to attribute racing accesses.
    kind:
        The :class:`AccessKind`.
    atomic:
        True when the guest marked the access as atomic (KCSAN ignores
        races where both sides are atomic, mirroring the kernel's
        ``KCSAN_ACCESS_ATOMIC``).
    """

    __slots__ = ("addr", "size", "is_write", "pc", "task", "kind", "atomic")

    def __init__(
        self,
        addr: int,
        size: int,
        is_write: bool,
        pc: int = 0,
        task: int = 0,
        kind: AccessKind = AccessKind.DATA,
        atomic: bool = False,
    ):
        self.addr = addr
        self.size = size
        self.is_write = is_write
        self.pc = pc
        self.task = task
        self.kind = kind
        self.atomic = atomic

    @property
    def end(self) -> int:
        """One past the last byte touched."""
        return self.addr + self.size

    def overlaps(self, other: "Access") -> bool:
        """True when the two accesses touch at least one common byte."""
        return self.addr < other.end and other.addr < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rw = "W" if self.is_write else "R"
        return (
            f"Access({rw} {self.kind.value} addr={self.addr:#010x} "
            f"size={self.size} pc={self.pc:#x} task={self.task})"
        )
