"""Fleet worker: one campaign job inside an expendable process.

:func:`worker_main` is the ``spawn``-context entry point the
:mod:`repro.fuzz.supervisor` launches one process per job attempt.  The
worker's only side channel is the supervisor's event queue; everything
it sends is a plain JSON-encodable tuple

    (kind, job_id, attempt, payload)

so a message from a stale attempt (a worker the supervisor already
declared dead but whose queue writes were still in flight) can be
recognized and discarded.  Message kinds:

``started``
    Posted before fuzzing begins; carries the pid, the exec count the
    job resumed from (``None`` for a fresh start) and a diagnosis
    string when an existing checkpoint had to be discarded as corrupt.
``heartbeat``
    Posted immediately and then every ``heartbeat_interval`` seconds by
    a daemon thread.  Its absence past the supervisor's liveness
    timeout is what declares this process hung.
``metrics``
    Sent only when the job payload's ``observe`` flag is set: the
    worker's :meth:`repro.obs.Observer.export` bundle (metrics
    document + raw trace events), posted immediately before ``result``
    so the supervisor merges a completed attempt exactly once.
``result``
    The completed campaign, serialized with
    :func:`repro.fuzz.checkpoint.result_to_json`.
``failed``
    An exception escaped the campaign; carries the type, message and a
    trimmed traceback.  The worker then exits nonzero.

The worker never retries anything itself: retry policy, backoff and
checkpoint-driven resume all belong to the supervisor, which simply
starts a fresh attempt — ``run_campaign`` finds the last checkpoint on
disk and continues from it.
"""

from __future__ import annotations

import os
import sys
import threading
import time
import traceback


def _liveness_loop(events, job_id: str, attempt: int, interval: float,
                   stop: threading.Event) -> None:
    """Post a heartbeat every ``interval`` seconds until stopped.

    Runs on a daemon thread, so a SIGSTOP/SIGKILL of the process (or a
    wedged interpreter) silences it — which is the point: heartbeats
    prove the *process* is schedulable, while in-guest hangs are the
    watchdog's job (see ``docs/robustness.md``).
    """
    start = time.monotonic()
    while not stop.wait(interval):
        events.put(("heartbeat", job_id, attempt, {
            "pid": os.getpid(),
            "elapsed": round(time.monotonic() - start, 3),
        }))


def _run_job(job: dict, observer=None, on_checkpoint_saved=None):
    """Execute the campaign a job payload describes.

    Shared by the spawn-context entry point below and the TCP worker
    client (:func:`repro.fuzz.transport.run_worker`), which passes
    ``on_checkpoint_saved`` to ship each fresh checkpoint back to the
    supervisor the moment it lands on the worker's local disk.
    """
    from repro.emulator.faults import plan_for
    from repro.fuzz.campaign import run_campaign, run_campaign_repeated

    kwargs = {}
    if observer is not None:
        kwargs["observer"] = observer
    if job.get("faults"):
        # per-job fault plan: each job owns its RNG stream, so a fleet
        # member's faults never depend on sibling scheduling
        kwargs["fault_plan"] = plan_for(
            job["faults"],
            seed=job.get("fault_seed", job.get("seed", 0)),
        )
    for key in ("crash_budget", "watchdog_insns", "watchdog_cycles"):
        if job.get(key) is not None:
            kwargs[key] = job[key]
    if job.get("sanitizers") is not None:
        kwargs["sanitizers"] = tuple(job["sanitizers"])
    if job.get("corpus_dir") is not None:
        kwargs["corpus_dir"] = job["corpus_dir"]
    if job.get("seed_schedule", "uniform") != "uniform":
        kwargs["seed_schedule"] = job["seed_schedule"]
    if job.get("shard_count") is not None:
        kwargs["shard"] = (job["shard_index"], job["shard_count"])
    if job.get("exec_mode", "journal") != "journal":
        kwargs["exec_mode"] = job["exec_mode"]
    if job.get("engine", "tcg") != "tcg":
        kwargs["engine"] = job["engine"]
    if job.get("jit_threshold") is not None:
        kwargs["jit_threshold"] = job["jit_threshold"]
    if job.get("surface", "syscall") != "syscall":
        kwargs["surface"] = job["surface"]
    if job.get("seeds"):
        # repeated campaigns restart from scratch on retry: their
        # early-stop logic is inherently sequential across seeds
        return run_campaign_repeated(
            job["firmware"],
            budget=job["budget"],
            seeds=tuple(job["seeds"]),
            **kwargs,
        )
    if on_checkpoint_saved is not None:
        kwargs["on_checkpoint_saved"] = on_checkpoint_saved
    return run_campaign(
        job["firmware"],
        budget=job["budget"],
        seed=job.get("seed", 0),
        checkpoint_path=job.get("checkpoint_path"),
        checkpoint_every=job.get("checkpoint_every", 0),
        **kwargs,
    )


def worker_main(job: dict, events) -> None:
    """Process entry point: run one job attempt, report, exit."""
    job_id = job["job_id"]
    attempt = job.get("attempt", 1)
    stop = threading.Event()
    failed = False
    try:
        from repro.errors import CheckpointError
        from repro.fuzz.checkpoint import load_checkpoint, result_to_json

        resumed_execs = None
        checkpoint_corrupt = None
        path = job.get("checkpoint_path")
        if path is not None:
            try:
                state = load_checkpoint(path)
                if state is not None:
                    resumed_execs = state.get("execs")
            except CheckpointError as exc:
                # run_campaign will discard it the same way; surfacing
                # the diagnosis early lets the supervisor log the event
                # before the (budget-long) fresh run completes
                checkpoint_corrupt = str(exc)
        events.put(("started", job_id, attempt, {
            "pid": os.getpid(),
            "resumed_execs": resumed_execs,
            "checkpoint_corrupt": checkpoint_corrupt,
        }))
        beats = threading.Thread(
            target=_liveness_loop,
            args=(events, job_id, attempt,
                  job.get("heartbeat_interval", 1.0), stop),
            name=f"heartbeat-{job_id}",
            daemon=True,
        )
        beats.start()
        observer = None
        if job.get("observe"):
            # the supervisor holds an Observer: collect here and ship
            # the bundle back just before the result so the supervisor
            # can merge every worker into one fleet-wide document
            from repro.obs import Observer

            observer = Observer(process_name=f"worker:{job_id}")
        result = _run_job(job, observer=observer)
        stop.set()
        if observer is not None:
            events.put(("metrics", job_id, attempt, observer.export()))
        events.put(("result", job_id, attempt, result_to_json(result)))
    except BaseException as exc:  # report, then die loudly
        stop.set()
        failed = True
        events.put(("failed", job_id, attempt, {
            "pid": os.getpid(),
            "exc_type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(limit=20),
        }))
    finally:
        # flush the queue's feeder thread before the process exits so
        # the terminal message is never lost to a fast shutdown
        events.close()
        events.join_thread()
    if failed:
        sys.exit(1)
