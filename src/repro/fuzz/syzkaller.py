"""The Syzkaller-shaped fuzzer: syscall programs + kcov coverage."""

from __future__ import annotations

from typing import Sequence

from repro.firmware.builder import attach_runtime
from repro.firmware.registry import build_firmware
from repro.fuzz.coverage import EmulatorCoverage, KcovCoverage
from repro.fuzz.engine import FuzzerEngine, FuzzTarget
from repro.fuzz.ifspec import linux_interface


class SyzkallerFuzzer(FuzzerEngine):
    """Coverage-guided syscall fuzzing of Embedded Linux firmware."""

    name = "syzkaller"

    def __init__(
        self,
        firmware: str,
        sanitizers: Sequence[str] = ("kasan",),
        seed: int = 0,
    ):
        self.firmware = firmware
        self.sanitizers = tuple(sanitizers)

        def make():
            image = build_firmware(firmware, boot=False)
            runtime = attach_runtime(image, sanitizers=self.sanitizers)
            if image.ctx.kcov_enabled:
                coverage = KcovCoverage(image.machine)
            else:
                coverage = EmulatorCoverage(image.machine)
            image.boot()
            return image, runtime, coverage

        target = FuzzTarget(make)
        spec = linux_interface(target.image.kernel)
        super().__init__(target, spec, seed=seed)
