"""The Syzkaller-shaped fuzzer: syscall programs + kcov coverage."""

from __future__ import annotations

from typing import Sequence

from repro.errors import FuzzerError
from repro.firmware.builder import attach_runtime
from repro.firmware.registry import build_firmware
from repro.fuzz.coverage import EmulatorCoverage, KcovCoverage
from repro.fuzz.engine import (
    DEFAULT_CRASH_BUDGET,
    DEFAULT_WATCHDOG_CYCLES,
    DEFAULT_WATCHDOG_INSNS,
    SURFACES,
    FuzzerEngine,
    FuzzTarget,
)
from repro.fuzz.ifspec import driver_interface, linux_interface


class SyzkallerFuzzer(FuzzerEngine):
    """Coverage-guided syscall fuzzing of Embedded Linux firmware."""

    name = "syzkaller"

    def __init__(
        self,
        firmware: str,
        sanitizers: Sequence[str] = ("kasan",),
        seed: int = 0,
        fault_plan=None,
        crash_budget: int = DEFAULT_CRASH_BUDGET,
        watchdog_insns: int = DEFAULT_WATCHDOG_INSNS,
        watchdog_cycles: float = DEFAULT_WATCHDOG_CYCLES,
        observer=None,
        corpus_store=None,
        seed_schedule: str = "uniform",
        shard=None,
        exec_mode: str = "journal",
        engine: str = "tcg",
        jit_threshold=None,
        surface: str = "syscall",
    ):
        if surface not in SURFACES:
            raise FuzzerError(
                f"unknown fuzz surface {surface!r} "
                f"(expected one of {', '.join(SURFACES)})"
            )
        self.firmware = firmware
        self.sanitizers = tuple(sanitizers)
        self.surface = surface

        def make():
            image = build_firmware(
                firmware, boot=False, driver=(surface == "driver")
            )
            runtime = attach_runtime(image, sanitizers=self.sanitizers)
            if image.ctx.kcov_enabled:
                coverage = KcovCoverage(image.machine)
            else:
                coverage = EmulatorCoverage(image.machine)
            image.machine.isa_engine = engine
            image.machine.jit_threshold = jit_threshold
            image.boot()
            # arm hardening after boot so boot-time work never trips the
            # per-program watchdog; the shared fault plan keeps one RNG
            # stream across target rebuilds
            if fault_plan is not None:
                image.machine.set_fault_plan(fault_plan)
            image.machine.set_watchdog(
                insn_budget=watchdog_insns, cycle_budget=watchdog_cycles
            )
            return image, runtime, coverage

        target = FuzzTarget(make, exec_mode=exec_mode)
        if surface == "driver":
            spec = driver_interface(target.image.kernel)
        else:
            spec = linux_interface(target.image.kernel)
        super().__init__(target, spec, seed=seed, fault_plan=fault_plan,
                         crash_budget=crash_budget, observer=observer,
                         corpus_store=corpus_store,
                         seed_schedule=seed_schedule, shard=shard)
