"""Fuzzing campaign orchestration (the Table-3/Table-4 experiment).

Runs the firmware's paper-designated fuzzer with EMBSAN attached for a
deterministic execution budget (our stand-in for the paper's 7-day
wall-clock campaigns), deduplicates and reproduces findings, and maps
each to the bug catalog so the census can be compared row by row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bugs.catalog import (
    BugRecord,
    driver_bugs_for,
    record_by_id,
    table4_bugs_for,
)
from repro.errors import CheckpointError, FuzzerError
from repro.firmware.registry import firmware_spec
from repro.fuzz.checkpoint import (
    load_checkpoint,
    restore_engine,
    save_checkpoint,
)
from repro.fuzz.diagnostics import CampaignDiagnostics
from repro.fuzz.engine import DEFAULT_CRASH_BUDGET, Finding
from repro.fuzz.syzkaller import SyzkallerFuzzer
from repro.fuzz.tardis import TardisFuzzer

#: default per-firmware execution budget for a scaled-down campaign
DEFAULT_BUDGET = 1500
#: default checkpoint cadence when a checkpoint path is configured;
#: matches the engine's refresh interval so checkpoint boundaries align
#: with refreshes the campaign performs anyway
DEFAULT_CHECKPOINT_EVERY = 500


@dataclass
class CampaignResult:
    """Outcome of one firmware's campaign."""

    firmware: str
    fuzzer: str
    execs: int
    coverage: int
    crashes: int
    findings: List[Finding] = field(default_factory=list)
    #: catalog rows matched by at least one reproducible finding
    matched: Dict[str, Finding] = field(default_factory=dict)
    #: catalog rows never matched
    missed: List[BugRecord] = field(default_factory=list)
    #: campaign identity: replaying with the same seed and budget
    #: reproduces every finding and crash exactly
    seed: int = 0
    budget: int = 0
    #: robustness telemetry (quarantined crashes, degradation, faults)
    diagnostics: Optional[CampaignDiagnostics] = None

    def census(self) -> Dict[str, int]:
        """Found-bug counts by Table-3 class."""
        out: Dict[str, int] = {}
        for bug_id, _finding in self.matched.items():
            record = record_by_id(bug_id)
            out[record.bug_class] = out.get(record.bug_class, 0) + 1
        return out

    def found_count(self) -> int:
        """Distinct catalog rows found."""
        return len(self.matched)


def _match_findings(records: Sequence[BugRecord],
                    findings: Sequence[Finding]) -> Tuple[dict, list]:
    matched: Dict[str, Finding] = {}
    for record in records:
        for finding in findings:
            if not finding.reproducible:
                continue
            report = finding.report
            if report.bug_type is not record.expect_type:
                continue
            if any(sub in report.location for sub in record.report_match):
                matched[record.bug_id] = finding
                break
    missed = [r for r in records if r.bug_id not in matched]
    return matched, missed


def run_campaign(
    firmware: str,
    budget: int = DEFAULT_BUDGET,
    seed: int = 0,
    sanitizers: Optional[Sequence[str]] = None,
    fault_plan=None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 0,
    crash_budget: Optional[int] = None,
    watchdog_insns: Optional[int] = None,
    watchdog_cycles: Optional[float] = None,
    observer=None,
    corpus_dir: Optional[str] = None,
    seed_schedule: str = "uniform",
    shard: Optional[Tuple[int, int]] = None,
    exec_mode: str = "journal",
    engine: str = "tcg",
    jit_threshold: Optional[int] = None,
    surface: str = "syscall",
    on_checkpoint_saved: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Fuzz one Table-1 firmware with its designated fuzzer + EMBSAN.

    When ``checkpoint_path`` is set, campaign state is serialized there
    every ``checkpoint_every`` execs (default
    :data:`DEFAULT_CHECKPOINT_EVERY`) and an existing checkpoint at that
    path resumes the campaign mid-budget; the resumed run produces the
    same census and findings as an uninterrupted one.

    ``corpus_dir`` attaches a persistent :class:`repro.corpus.CorpusStore`:
    existing entries seed the campaign (with an unmutated triage pass),
    coverage-novel programs and crash reproducers persist back, and
    checkpoints reference corpus programs by digest instead of inlining
    them.  ``seed_schedule="rarity"`` switches corpus selection from the
    uniform draw to rarity/energy weighting (a *different* RNG stream —
    the default census stays byte-identical only at ``"uniform"``).
    ``shard=(index, count)`` makes this campaign one worker of an
    intra-firmware fleet: it starts from its disjoint slice of the spec
    seed corpus and writes its own manifest segment in the shared store
    (see ``docs/corpus.md``).

    ``observer`` (a :class:`repro.obs.Observer`) collects campaign
    metrics, trace spans and per-phase wall-clock timings; campaign
    *results* — findings, census, checkpoints — are byte-identical with
    or without one (only ``diagnostics.phase_timings`` appears).

    ``exec_mode`` selects the target reset strategy (see
    ``docs/forkserver.md``): ``"journal"`` rebuilds the firmware at
    every refresh and journals each program, ``"forkserver"`` rewinds a
    golden snapshot by copying back only dirty pages.  The census is
    byte-identical either way; only throughput differs.

    ``engine`` selects the ISA execution tier (``"tcg"``, ``"tcg-interp"``
    or ``"jit"`` — see ``docs/jit.md``) and ``jit_threshold`` overrides
    the hot-trace compile threshold; census output is engine-invariant,
    only throughput differs.

    ``surface="driver"`` fuzzes the firmware's driver-op surface instead
    of its syscall/task API: the build attaches the modeled peripherals
    (``build_firmware(driver=True)``), the interface spec comes from the
    registered driver ops, and the census is measured against the
    driver-surface rows of the bug catalog (``driver_bugs_for``) — see
    ``docs/peripherals.md``.
    """
    import time

    spec = firmware_spec(firmware)
    phase_timings = None if observer is None else {}
    phase_started = time.perf_counter() if observer is not None else 0.0

    def _phase_done(name: str) -> None:
        nonlocal phase_started
        if observer is None:
            return
        now = time.perf_counter()
        elapsed = now - phase_started
        phase_timings[name] = round(
            phase_timings.get(name, 0.0) + elapsed, 6)
        observer.histogram("campaign.phase_ms").observe(elapsed * 1e3)
        observer.instant(f"phase:{name}", cat="campaign",
                         args={"firmware": firmware,
                               "seconds": round(elapsed, 6)})
        phase_started = now

    if surface == "driver":
        records = driver_bugs_for(firmware)
    else:
        records = table4_bugs_for(firmware)
    if sanitizers is None:
        needed = {r.tool for r in records}
        sanitizers = tuple(
            ["kasan"] + [t for t in ("kcsan", "kmsan") if t in needed]
        )
    fuzzer_cls = SyzkallerFuzzer if spec.fuzzer == "syzkaller" else TardisFuzzer
    kwargs = dict(
        sanitizers=sanitizers,
        seed=seed,
        fault_plan=fault_plan,
        crash_budget=(DEFAULT_CRASH_BUDGET if crash_budget is None
                      else crash_budget),
    )
    if watchdog_insns is not None:
        kwargs["watchdog_insns"] = watchdog_insns
    if watchdog_cycles is not None:
        kwargs["watchdog_cycles"] = watchdog_cycles
    if observer is not None:
        kwargs["observer"] = observer
    corpus_store = None
    if corpus_dir is not None:
        from repro.corpus import CorpusStore

        writer = None if shard is None else f"shard{shard[0]:02d}"
        corpus_store = CorpusStore(
            corpus_dir, firmware=firmware, writer=writer
        )
        kwargs["corpus_store"] = corpus_store
    if seed_schedule != "uniform":
        kwargs["seed_schedule"] = seed_schedule
    if shard is not None:
        kwargs["shard"] = (shard[0], shard[1])
    if exec_mode != "journal":
        kwargs["exec_mode"] = exec_mode
    if engine != "tcg":
        kwargs["engine"] = engine
    if jit_threshold is not None:
        kwargs["jit_threshold"] = jit_threshold
    if surface != "syscall":
        kwargs["surface"] = surface
    fuzzer = fuzzer_cls(firmware, **kwargs)
    _phase_done("build")

    on_checkpoint = None
    checkpoint_discarded = None
    if checkpoint_path is not None:
        checkpoint_every = checkpoint_every or DEFAULT_CHECKPOINT_EVERY
        try:
            state = load_checkpoint(checkpoint_path)
            if state is not None:
                restore_engine(fuzzer, state, firmware)
        except CheckpointError as exc:
            # corrupt/truncated/unsupported checkpoint: discard it and
            # start from scratch.  restore_engine may have partially
            # mutated the fuzzer (or its fault plan's RNG), so rebuild
            # both from their recipes — the recovered run is then
            # byte-identical to one that never saw the bad file.
            checkpoint_discarded = str(exc)
            if observer is not None:
                # the half-restored fuzzer's machine is being discarded
                observer.harvest_target(fuzzer.target)
            if fault_plan is not None:
                from repro.emulator.faults import FaultPlan

                fault_plan = FaultPlan.parse(fault_plan.describe())
                kwargs["fault_plan"] = fault_plan
            fuzzer = fuzzer_cls(firmware, **kwargs)

        def on_checkpoint(engine):
            if observer is not None:
                observer.counter("campaign.checkpoints").inc()
                with observer.span("checkpoint:write", cat="campaign",
                                   args={"execs": engine.execs}):
                    save_checkpoint(checkpoint_path, engine, firmware,
                                    budget)
            else:
                save_checkpoint(checkpoint_path, engine, firmware, budget)
            if on_checkpoint_saved is not None:
                # the fleet's TCP worker ships the fresh checkpoint (and
                # its corpus store) home from here; failures propagate so
                # the attempt dies rather than silently losing custody
                on_checkpoint_saved(checkpoint_path)

    execs_before = fuzzer.execs
    fuzz_started = time.perf_counter()
    fuzzer.run(budget, checkpoint_every=checkpoint_every,
               on_checkpoint=on_checkpoint)
    fuzz_elapsed = time.perf_counter() - fuzz_started
    if observer is not None and fuzz_elapsed > 0:
        # the headline throughput number (docs/forkserver.md): programs
        # executed this run over fuzz-phase wall-clock
        observer.gauge("campaign.execs_per_sec").set(
            round((fuzzer.execs - execs_before) / fuzz_elapsed, 3))
    _phase_done("fuzz")
    findings = fuzzer.reproduce_findings()
    matched, missed = _match_findings(records, findings)
    _phase_done("reproduce")
    corpus_stats = None
    if corpus_store is not None:
        from repro.fuzz.program import Program

        # persist each reproducible finding's minimized reproducer as a
        # crash entry: re-running from this corpus replays the bug in
        # the triage pass instead of re-discovering it by mutation
        for finding in findings:
            if finding.reproducible:
                corpus_store.add(
                    Program(finding.reproducer_calls()),
                    kind="crash", execs=fuzzer.execs,
                )
        corpus_store.flush()
        corpus_stats = dict(corpus_store.stats())
        corpus_stats["imported"] = fuzzer.corpus_imported
        if observer is not None:
            observer.gauge("corpus.size").set(len(corpus_store))
        _phase_done("corpus")
    if checkpoint_path is not None:
        # final checkpoint: a later resume of a finished campaign is a
        # no-op instead of re-fuzzing
        if observer is not None:
            observer.counter("campaign.checkpoints").inc()
        save_checkpoint(checkpoint_path, fuzzer, firmware, budget)
        if on_checkpoint_saved is not None:
            on_checkpoint_saved(checkpoint_path)
        _phase_done("checkpoint")
    if observer is not None:
        # the live machine's counters (rebuild-discarded ones were
        # harvested at each refresh)
        observer.harvest_target(fuzzer.target)
    diagnostics = CampaignDiagnostics(
        firmware=firmware,
        seed=seed,
        budget=budget,
        quarantined=list(fuzzer.quarantined),
        host_crashes=fuzzer.host_crashes,
        degraded=fuzzer.degraded,
        watchdog_trips=fuzzer.watchdog_trips(),
        fault_stats=fault_plan.stats() if fault_plan is not None else {},
        checkpoint_discarded=checkpoint_discarded,
        phase_timings=phase_timings,
        corpus=corpus_stats,
    )
    return CampaignResult(
        firmware=firmware,
        fuzzer=fuzzer.name,
        execs=fuzzer.execs,
        coverage=len(fuzzer.target.coverage),
        crashes=fuzzer.crashes,
        findings=findings,
        matched=matched,
        missed=missed,
        seed=seed,
        budget=budget,
        diagnostics=diagnostics,
    )


def run_campaign_repeated(
    firmware: str,
    budget: int = DEFAULT_BUDGET,
    seeds: Sequence[int] = (1, 2, 3),
    carry_corpus: bool = False,
    **kwargs,
) -> CampaignResult:
    """Repeat a campaign across seeds, merging findings.

    The paper repeats every quantitative experiment 10 times per
    accepted fuzzing-evaluation practice; findings merge across
    repetitions.  Stops early once every seeded defect is matched.
    Extra keyword arguments (fault plans, watchdog budgets, ...) are
    forwarded to :func:`run_campaign`.

    With ``carry_corpus=True`` every repetition fuzzes through the same
    persistent corpus store, so seed *n+1* starts from everything seeds
    *1..n* discovered (coverage programs replay unmutated in its triage
    pass) instead of from scratch.  Uses the caller's ``corpus_dir`` if
    one is passed, otherwise a temporary store scoped to this call; the
    merged diagnostics' ``inherited_corpus`` lists, per seed in order,
    how many store entries that repetition inherited.

    Diagnostics merge too: the returned record's ``seeds`` lists every
    repetition that ran, counters sum, and every seed's quarantined
    crash records are preserved — a crash in repetition 3 is triagable
    from the merged result, not silently dropped.
    """
    tmp_corpus = None
    if carry_corpus and not kwargs.get("corpus_dir"):
        import tempfile

        tmp_corpus = tempfile.TemporaryDirectory(prefix="repro-corpus-")
        kwargs = dict(kwargs, corpus_dir=tmp_corpus.name)
    try:
        return _run_repeated(firmware, budget, seeds, carry_corpus, kwargs)
    finally:
        if tmp_corpus is not None:
            tmp_corpus.cleanup()


def _run_repeated(firmware, budget, seeds, carry_corpus, kwargs):
    merged: Optional[CampaignResult] = None
    for seed in seeds:
        result = run_campaign(firmware, budget=budget, seed=seed, **kwargs)
        if carry_corpus and result.diagnostics is not None:
            stats = result.diagnostics.corpus or {}
            result.diagnostics.inherited_corpus = [
                stats.get("imported", 0)
            ]
        if merged is None:
            merged = result
        else:
            merged.execs += result.execs
            merged.crashes += result.crashes
            merged.coverage = max(merged.coverage, result.coverage)
            merged.findings.extend(result.findings)
            for bug_id, finding in result.matched.items():
                merged.matched.setdefault(bug_id, finding)
            merged.missed = [
                record for record in merged.missed
                if record.bug_id not in merged.matched
            ]
            if merged.diagnostics is not None and \
                    result.diagnostics is not None:
                merged.diagnostics.merge(result.diagnostics)
        if not merged.missed:
            break
    return merged


def run_all_campaigns(
    budget: int = DEFAULT_BUDGET,
    seed: int = 0,
    seeds: Optional[Sequence[int]] = None,
    checkpoint_dir: Optional[str] = None,
    workers: int = 1,
    faults: Optional[str] = None,
    fleet_options: Optional[dict] = None,
    observer=None,
    **kwargs,
) -> List[CampaignResult]:
    """Run every Table-1 firmware's campaign (the full Table-3 sweep).

    With ``checkpoint_dir``, each firmware checkpoints into its own file
    (``campaign_<firmware>.json``), making a multi-firmware sweep
    interruption-safe: re-running the sweep resumes each firmware from
    its last checkpoint instead of starting over.

    With ``workers > 1`` the sweep is delegated to the
    :mod:`repro.fuzz.supervisor` fleet: one job per firmware across
    ``workers`` supervised processes, with heartbeat liveness checks and
    checkpoint-driven restart of killed or hung workers.  Results come
    back in catalog order and are byte-identical to the sequential sweep
    (per-job RNG isolation is the determinism contract); a job that
    exhausts its retry budget yields ``None`` in its slot instead of
    aborting the sweep.  ``faults`` is a fault-plan DSL string, compiled
    to a fresh per-firmware plan in either mode so worker count never
    changes which faults fire; ``fleet_options`` passes supervisor
    knobs (``heartbeat_timeout``, ``max_retries``, ``events_path``...).
    """
    import os

    from repro.emulator.faults import plan_for
    from repro.firmware.registry import all_firmware

    if faults and kwargs.get("fault_plan") is not None:
        raise FuzzerError("pass either faults= (DSL) or fault_plan=, not both")

    if workers > 1:
        if kwargs.pop("fault_plan", None) is not None:
            raise FuzzerError(
                "a live fault_plan cannot cross process boundaries; "
                "pass faults=<DSL spec> so each worker builds its own plan"
            )
        from repro.fuzz.supervisor import make_jobs, run_fleet

        jobs = make_jobs(
            budget=budget, seed=seed, seeds=seeds,
            checkpoint_dir=checkpoint_dir, faults=faults,
            crash_budget=kwargs.pop("crash_budget", None),
            watchdog_insns=kwargs.pop("watchdog_insns", None),
            watchdog_cycles=kwargs.pop("watchdog_cycles", None),
            exec_mode=kwargs.pop("exec_mode", "journal"),
            surface=kwargs.pop("surface", "syscall"),
        )
        if kwargs:
            raise FuzzerError(
                f"options not supported with workers>1: {sorted(kwargs)}"
            )
        return run_fleet(jobs, workers=workers, observer=observer,
                         **(fleet_options or {})).results

    def _path(name: str) -> Optional[str]:
        if checkpoint_dir is None:
            return None
        os.makedirs(checkpoint_dir, exist_ok=True)
        safe = name.replace("/", "_")
        return os.path.join(checkpoint_dir, f"campaign_{safe}.json")

    def _kwargs() -> dict:
        # per-firmware fault plan, rebuilt from the spec exactly as a
        # fleet worker would, so sequential and fleet sweeps match
        if not faults:
            return kwargs
        return dict(kwargs, fault_plan=plan_for(faults, seed=seed))

    # a driver-surface sweep covers only the firmware that model
    # peripherals, matching supervisor.make_jobs' default job list
    specs = [
        spec for spec in all_firmware()
        if kwargs.get("surface", "syscall") != "driver"
        or spec.driver_factory is not None
    ]
    if seeds is not None:
        return [
            run_campaign_repeated(spec.name, budget=budget, seeds=seeds,
                                  observer=observer, **_kwargs())
            for spec in specs
        ]
    return [
        run_campaign(spec.name, budget=budget, seed=seed,
                     checkpoint_path=_path(spec.name), observer=observer,
                     **_kwargs())
        for spec in specs
    ]
