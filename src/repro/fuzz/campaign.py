"""Fuzzing campaign orchestration (the Table-3/Table-4 experiment).

Runs the firmware's paper-designated fuzzer with EMBSAN attached for a
deterministic execution budget (our stand-in for the paper's 7-day
wall-clock campaigns), deduplicates and reproduces findings, and maps
each to the bug catalog so the census can be compared row by row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bugs.catalog import BugRecord, table4_bugs_for
from repro.firmware.registry import firmware_spec
from repro.fuzz.engine import Finding
from repro.fuzz.syzkaller import SyzkallerFuzzer
from repro.fuzz.tardis import TardisFuzzer

#: default per-firmware execution budget for a scaled-down campaign
DEFAULT_BUDGET = 1500


@dataclass
class CampaignResult:
    """Outcome of one firmware's campaign."""

    firmware: str
    fuzzer: str
    execs: int
    coverage: int
    crashes: int
    findings: List[Finding] = field(default_factory=list)
    #: catalog rows matched by at least one reproducible finding
    matched: Dict[str, Finding] = field(default_factory=dict)
    #: catalog rows never matched
    missed: List[BugRecord] = field(default_factory=list)

    def census(self) -> Dict[str, int]:
        """Found-bug counts by Table-3 class."""
        out: Dict[str, int] = {}
        for bug_id, _finding in self.matched.items():
            record = _record_by_id(bug_id)
            out[record.bug_class] = out.get(record.bug_class, 0) + 1
        return out

    def found_count(self) -> int:
        """Distinct catalog rows found."""
        return len(self.matched)


def _record_by_id(bug_id: str) -> BugRecord:
    from repro.bugs.catalog import TABLE4_BUGS

    for record in TABLE4_BUGS:
        if record.bug_id == bug_id:
            return record
    raise KeyError(bug_id)


def _match_findings(records: Sequence[BugRecord],
                    findings: Sequence[Finding]) -> Tuple[dict, list]:
    matched: Dict[str, Finding] = {}
    for record in records:
        for finding in findings:
            if not finding.reproducible:
                continue
            report = finding.report
            if report.bug_type is not record.expect_type:
                continue
            if any(sub in report.location for sub in record.report_match):
                matched[record.bug_id] = finding
                break
    missed = [r for r in records if r.bug_id not in matched]
    return matched, missed


def run_campaign(
    firmware: str,
    budget: int = DEFAULT_BUDGET,
    seed: int = 0,
    sanitizers: Optional[Sequence[str]] = None,
) -> CampaignResult:
    """Fuzz one Table-1 firmware with its designated fuzzer + EMBSAN."""
    spec = firmware_spec(firmware)
    records = table4_bugs_for(firmware)
    if sanitizers is None:
        needs_kcsan = any(r.tool == "kcsan" for r in records)
        sanitizers = ("kasan", "kcsan") if needs_kcsan else ("kasan",)
    fuzzer_cls = SyzkallerFuzzer if spec.fuzzer == "syzkaller" else TardisFuzzer
    fuzzer = fuzzer_cls(firmware, sanitizers=sanitizers, seed=seed)
    fuzzer.run(budget)
    findings = fuzzer.reproduce_findings()
    matched, missed = _match_findings(records, findings)
    return CampaignResult(
        firmware=firmware,
        fuzzer=fuzzer.name,
        execs=fuzzer.execs,
        coverage=len(fuzzer.target.coverage),
        crashes=fuzzer.crashes,
        findings=findings,
        matched=matched,
        missed=missed,
    )


def run_campaign_repeated(
    firmware: str,
    budget: int = DEFAULT_BUDGET,
    seeds: Sequence[int] = (1, 2, 3),
) -> CampaignResult:
    """Repeat a campaign across seeds, merging findings.

    The paper repeats every quantitative experiment 10 times per
    accepted fuzzing-evaluation practice; findings merge across
    repetitions.  Stops early once every seeded defect is matched.
    """
    merged: Optional[CampaignResult] = None
    for seed in seeds:
        result = run_campaign(firmware, budget=budget, seed=seed)
        if merged is None:
            merged = result
        else:
            merged.execs += result.execs
            merged.crashes += result.crashes
            merged.coverage = max(merged.coverage, result.coverage)
            merged.findings.extend(result.findings)
            for bug_id, finding in result.matched.items():
                merged.matched.setdefault(bug_id, finding)
            merged.missed = [
                record for record in merged.missed
                if record.bug_id not in merged.matched
            ]
        if not merged.missed:
            break
    return merged


def run_all_campaigns(
    budget: int = DEFAULT_BUDGET,
    seed: int = 0,
    seeds: Optional[Sequence[int]] = None,
) -> List[CampaignResult]:
    """Run every Table-1 firmware's campaign (the full Table-3 sweep)."""
    from repro.firmware.registry import all_firmware

    if seeds is not None:
        return [
            run_campaign_repeated(spec.name, budget=budget, seeds=seeds)
            for spec in all_firmware()
        ]
    return [
        run_campaign(spec.name, budget=budget, seed=seed)
        for spec in all_firmware()
    ]
