"""Interface specifications: what a fuzzer knows how to call.

The paper's discussion section notes that fuzzer effectiveness is
bounded by the available syscall descriptions — these templates are
that knowledge.  A template describes one callable operation: its
number, argument generators, and the resource kind its result yields.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from repro.errors import FuzzerError
from repro.fuzz.program import Arg, Call, Program
from repro.os.embedded_linux.kernel import SOCK_DEV_BASE, EmbeddedLinuxKernel
from repro.os.embedded_linux.syscalls import Syscall as S
from repro.os.freertos.kernel import FreeRtosOp
from repro.os.liteos.kernel import LiteOsOp
from repro.os.vxworks.kernel import VxWorksOp

#: magic values that exercise boundary conditions across the module set
INTERESTING = (
    0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 20, 24, 30, 31, 32, 48, 60,
    64, 80, 96, 100, 128, 200, 255, 0x10, 0x1F, 0x40, 0x50, 0x3F,
    0x1040, 0xF000, 0xF800, 0x00DEA000,
)

ArgGen = Callable[[random.Random], Arg]


def lit(*choices: int) -> ArgGen:
    """Generator: one of the given literals.

    The choice list stays inspectable (``gen.choices``) so seed-corpus
    construction can enumerate command spaces systematically.
    """
    pool = list(choices)

    def gen(rng: random.Random) -> Arg:
        return rng.choice(pool)

    gen.choices = pool
    return gen


def interesting() -> ArgGen:
    """Generator: a magic value or a small random integer."""

    def gen(rng: random.Random) -> Arg:
        if rng.random() < 0.7:
            return rng.choice(INTERESTING)
        return rng.randrange(0, 256)

    return gen


def res(kind: str) -> ArgGen:
    """Generator: a reference to a previously produced resource."""

    def gen(rng: random.Random) -> Arg:
        return ("res", kind, rng.randrange(4))

    return gen


class CallTemplate:
    """One operation the fuzzer can emit."""

    __slots__ = ("nr", "name", "arggens", "produces", "weight")

    def __init__(self, nr: int, name: str, arggens: Sequence[ArgGen],
                 produces: Optional[str] = None, weight: float = 1.0):
        self.nr = int(nr)
        self.name = name
        self.arggens = list(arggens)
        self.produces = produces
        self.weight = weight

    def instantiate(self, rng: random.Random) -> Call:
        """Generate one concrete call from this template."""
        return Call(self.nr, [gen(rng) for gen in self.arggens], self.produces)


class InterfaceSpec:
    """A weighted set of call templates plus naming for reproducers."""

    def __init__(self, templates: Sequence[CallTemplate], style: str,
                 extra_seeds: Sequence["Program"] = ()):
        self.templates = list(templates)
        self.style = style  #: "syscall" or "rtos"
        self.extra_seeds = list(extra_seeds)
        self._weights = [t.weight for t in self.templates]

    def generate_call(self, rng: random.Random) -> Call:
        """Sample one call according to template weights."""
        template = rng.choices(self.templates, weights=self._weights)[0]
        return template.instantiate(rng)

    def seed_programs(self, rng: random.Random) -> List["Program"]:
        """Build the initial corpus straight from the descriptions.

        One singleton program per template, plus producer→consumer
        pairs so resource-dependent operations are reachable from the
        first mutation on (syzkaller seeds its corpus the same way).
        """
        from repro.fuzz.program import Program

        seeds = [Program([t.instantiate(rng)]) for t in self.templates]
        producers = [t for t in self.templates if t.produces]
        for producer in producers:
            for consumer in self.templates:
                if consumer is producer:
                    continue
                uses = any(
                    isinstance(arg, tuple) and arg[1] == producer.produces
                    for arg in consumer.instantiate(rng).args
                )
                if not uses:
                    continue
                seeds.append(Program([
                    producer.instantiate(rng),
                    consumer.instantiate(rng),
                    consumer.instantiate(rng),
                ]))
                seeds.extend(
                    self._enumerated_chains(rng, producer, consumer)
                )
        seeds.extend(program.clone() for program in self.extra_seeds)
        return seeds

    def _producer_variants(self, rng, producer) -> list:
        """One producer instance per literal choice of its first lit arg
        (each device node / socket family gets its own chain)."""
        for slot, gen in enumerate(producer.arggens):
            choices = getattr(gen, "choices", None)
            if choices and len(choices) <= 12:
                variants = []
                for value in choices:
                    call = producer.instantiate(rng)
                    call.args[slot] = value
                    variants.append(call)
                return variants
        return [producer.instantiate(rng)]

    def _enumerated_chains(self, rng, producer, consumer) -> list:
        """Chains sweeping a small literal argument (command numbers).

        For each producer variant (each device) and each ``lit``
        argument of the consumer with few choices, build one program
        running the whole sweep in sequence — reaching stateful
        multi-command bugs (setup cmd then trigger cmd on the same
        resource).
        """
        from repro.fuzz.program import Program

        out = []
        for opener in self._producer_variants(rng, producer):
            for slot, gen in enumerate(consumer.arggens):
                choices = getattr(gen, "choices", None)
                if not choices or len(choices) > 8:
                    continue
                sweep = []
                for value in choices:
                    call = consumer.instantiate(rng)
                    call.args[slot] = value
                    sweep.append(call)
                out.append(Program([opener.clone()] + sweep))
        return out

    def names(self) -> dict:
        """nr -> template name (serialization aid; collisions keep first)."""
        out = {}
        for template in self.templates:
            out.setdefault(template.nr, template.name)
        return out


# ----------------------------------------------------------------------
# per-OS interface construction
# ----------------------------------------------------------------------
def linux_interface(kernel: EmbeddedLinuxKernel) -> InterfaceSpec:
    """Syscall templates reflecting the modules this build ships."""
    device_ids = sorted(d for d in kernel.vfs.devices if d < SOCK_DEV_BASE)
    families = sorted(d - SOCK_DEV_BASE for d in kernel.vfs.devices
                      if d >= SOCK_DEV_BASE)
    fs_ids = sorted(kernel.filesystems)
    protos = sorted(kernel.netlink_protos)

    templates: List[CallTemplate] = []
    if device_ids:
        templates += [
            CallTemplate(S.OPEN, "open", [lit(*device_ids)], produces="fd",
                         weight=2.0),
            CallTemplate(S.CLOSE, "close", [res("fd")]),
            CallTemplate(S.READ, "read", [res("fd"), interesting(), lit(0, 4)]),
            CallTemplate(S.WRITE, "write", [res("fd"), interesting(),
                                            interesting()]),
            CallTemplate(S.IOCTL, "ioctl",
                         [res("fd"), lit(1, 2, 3, 4, 5), interesting(),
                          interesting()], weight=3.0),
        ]
    if families:
        templates += [
            CallTemplate(S.SOCKET, "socket", [lit(*families)], produces="fd"),
            CallTemplate(S.SENDMSG, "sendmsg",
                         [res("fd"), interesting(), interesting()]),
            CallTemplate(S.RECVMSG, "recvmsg", [res("fd"), interesting()]),
        ]
    if fs_ids:
        templates += [
            CallTemplate(S.MOUNT, "mount", [lit(*fs_ids), lit(0, 1)],
                         weight=1.5),
            CallTemplate(S.UMOUNT, "umount", [lit(*fs_ids)], weight=0.3),
            CallTemplate(S.FSOP, "fsop",
                         [lit(*fs_ids), lit(1, 2, 3, 4), interesting(),
                          interesting()], weight=3.0),
        ]
    if protos:
        templates.append(
            CallTemplate(S.NETLINK, "netlink",
                         [lit(*protos), lit(1, 2, 3, 4), interesting()],
                         weight=2.0)
        )
    # handlers registered by optional modules
    handler_templates = {
        "scan": CallTemplate(S.SCAN, "scan",
                             [lit(1, 2, 3), lit(0, 1, 2), interesting()],
                             weight=1.5),
        "font": CallTemplate(S.FONT, "font", [lit(1, 2), interesting()]),
        "floppy": CallTemplate(S.FLOPPY, "floppy",
                               [lit(1, 2), interesting()]),
        "sysfs": CallTemplate(S.SYSFS, "sysfs",
                              [lit(1, 2, 3), lit(0, 1, 2, 3), lit(0, 1)]),
        "prctl": CallTemplate(S.PRCTL, "prctl",
                              [lit(1, 2, 3, 4, 5), interesting(),
                               interesting()]),
        "bpf": CallTemplate(S.BPF, "bpf",
                            [lit(1, 2, 3, 4, 5), interesting(),
                             interesting()]),
        "watchq": CallTemplate(S.WATCHQ, "watchq",
                               [lit(1, 2, 3, 4, 5), lit(1, 2, 3),
                                interesting()]),
    }
    for name, template in handler_templates.items():
        if name in kernel.handlers:
            templates.append(template)
    templates += [
        CallTemplate(S.MMAP, "mmap", [interesting()], produces="map"),
        CallTemplate(S.MUNMAP, "munmap", [res("map")], weight=0.5),
    ]
    # filesystem op sweeps: mount then every fs op in sequence (the fs
    # id is a literal, not a produced resource, so pairs alone miss it)
    extra = [
        Program([Call(S.MOUNT, [fs_id, 0])] +
                [Call(S.FSOP, [fs_id, op, 3, 0]) for op in (1, 2, 3, 4)])
        for fs_id in fs_ids
    ]
    extra += [
        Program([Call(S.NETLINK, [proto, cmd, 4]) for cmd in (1, 1, 2, 3, 4)])
        for proto in protos
    ]
    return InterfaceSpec(templates, style="syscall", extra_seeds=extra)


def freertos_interface(kernel) -> InterfaceSpec:
    """Tardis executor templates for FreeRTOS targets."""
    apps = sorted(kernel.apps)
    templates = [
        CallTemplate(FreeRtosOp.TASK_CREATE, "xTaskCreate",
                     [lit(1, 2, 3), interesting()], produces="task"),
        CallTemplate(FreeRtosOp.TASK_DELETE, "vTaskDelete", [res("task")],
                     weight=0.5),
        CallTemplate(FreeRtosOp.QUEUE_CREATE, "xQueueCreate",
                     [lit(1, 4, 8, 16), lit(0)], produces="queue"),
        CallTemplate(FreeRtosOp.QUEUE_SEND, "xQueueSend",
                     [res("queue"), interesting()]),
        CallTemplate(FreeRtosOp.QUEUE_RECV, "xQueueReceive", [res("queue")]),
        CallTemplate(FreeRtosOp.QUEUE_DELETE, "vQueueDelete", [res("queue")],
                     weight=0.4),
        CallTemplate(FreeRtosOp.MALLOC, "pvPortMalloc", [interesting()],
                     produces="mem"),
        CallTemplate(FreeRtosOp.FREE, "vPortFree", [res("mem")], weight=0.6),
    ]
    if apps:
        templates.append(
            CallTemplate(FreeRtosOp.APP_OP, "app_op",
                         [lit(*apps), lit(1, 2, 3), interesting()],
                         weight=4.0)
        )
    return InterfaceSpec(templates, style="rtos")


def liteos_interface(kernel) -> InterfaceSpec:
    """Tardis executor templates for LiteOS targets."""
    apps = sorted(kernel.apps)
    templates = [
        CallTemplate(LiteOsOp.MEM_ALLOC, "LOS_MemAlloc", [interesting()],
                     produces="mem"),
        CallTemplate(LiteOsOp.MEM_FREE, "LOS_MemFree", [res("mem")],
                     weight=0.6),
        CallTemplate(LiteOsOp.TASK_CREATE, "LOS_TaskCreate", [lit(1, 2, 3)],
                     produces="mem"),
    ]
    if apps:
        templates.append(
            CallTemplate(LiteOsOp.APP_OP, "app_op",
                         [lit(*apps), lit(1, 2), interesting()], weight=4.0)
        )
    return InterfaceSpec(templates, style="rtos")


def vxworks_interface(kernel) -> InterfaceSpec:
    """Tardis executor templates for the closed-source VxWorks target."""
    templates = [
        CallTemplate(VxWorksOp.PPPOE_PACKET, "pppoe_rx",
                     [lit(0x09, 0x07, 0x19, 0x65), interesting(),
                      interesting()], weight=3.0),
        CallTemplate(VxWorksOp.DHCP_PACKET, "dhcp_rx",
                     [lit(1, 2), interesting(), interesting()], weight=3.0),
        CallTemplate(VxWorksOp.MALLOC, "memPartAlloc", [interesting()],
                     produces="mem"),
        CallTemplate(VxWorksOp.FREE, "memPartFree", [res("mem")], weight=0.6),
    ]
    return InterfaceSpec(templates, style="rtos")


def driver_interface(kernel) -> InterfaceSpec:
    """Templates for the ``driver`` surface: the kernel's driver ops.

    Built from :attr:`repro.os.common.KernelBase.driver_templates`, the
    per-op argument hints the driver modules registered at install time
    (a non-empty hint tuple becomes a literal generator, an empty one a
    generic interesting-value generator).  Only ``driver=True`` builds
    register any ops; asking for this spec on a default build is a
    configuration error, not an empty surface.
    """
    if not kernel.driver_templates:
        raise FuzzerError(
            "kernel registered no driver ops — build the firmware with "
            "driver=True (--surface driver) to attach its peripherals"
        )
    templates = []
    for nr in sorted(kernel.driver_templates):
        name, arg_hints = kernel.driver_templates[nr]
        arggens = [
            lit(*hint) if hint else interesting() for hint in arg_hints
        ]
        templates.append(CallTemplate(nr, name, arggens))
    # description-derived chains: init-then-operate sequences, the same
    # way syzkaller seeds resource-dependent syscall chains.  These are
    # generic (first op + each other op swept), not bug reproducers.
    init_nr = min(kernel.driver_templates)
    extra = []
    for nr, template in zip(sorted(kernel.driver_templates), templates):
        if nr == init_nr:
            continue
        chain = [Call(init_nr, [0, 0, 0])]
        swept = False
        for slot, gen in enumerate(template.arggens):
            choices = getattr(gen, "choices", None)
            if choices and 1 < len(choices) <= 8:
                for value in choices:
                    call = template.instantiate(random.Random(nr))
                    call.args[slot] = value
                    chain.append(call)
                swept = True
                break
        if not swept:
            rng = random.Random(nr)
            chain += [template.instantiate(rng) for _ in range(3)]
        extra.append(Program(chain))
    return InterfaceSpec(templates, style="driver", extra_seeds=extra)


def interface_for(kernel) -> InterfaceSpec:
    """Pick the interface spec matching a kernel's OS family."""
    os_name = getattr(kernel, "os_name", "")
    if os_name == "embedded-linux":
        return linux_interface(kernel)
    if os_name == "freertos":
        return freertos_interface(kernel)
    if os_name == "liteos":
        return liteos_interface(kernel)
    if os_name == "vxworks":
        return vxworks_interface(kernel)
    raise ValueError(f"no interface spec for OS {os_name!r}")
