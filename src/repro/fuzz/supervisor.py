"""Supervised multi-process campaign fleet.

``run_all_campaigns`` sweeps the Table-1 catalog; this module makes
that sweep survivable and parallel.  A :class:`FleetSupervisor` shards
``(firmware, seed)`` campaign jobs across up to ``workers`` spawned
processes (``spawn`` context, so a wedged worker can be SIGKILLed
outright without corrupting shared state), watches per-worker
heartbeats on a result queue, and treats worker death — crash, OOM
kill, operator SIGKILL, heartbeat silence — as a routine, recoverable
event: the job restarts with exponential backoff and resumes from its
last checkpoint file.  After ``max_retries`` restarts the job is
marked *degraded* and the fleet moves on, so one pathological firmware
can never stall the sweep.

Determinism contract (CI-enforced): because every job re-runs
``run_campaign`` with identical arguments and owns its RNG stream, the
fleet's merged result list — ordered by job submission, never by
completion — is byte-identical to a sequential sweep with the same
seeds, regardless of worker count, interleaving, or how many times
workers were killed and resumed mid-job.

Observability: every supervision decision is appended to a structured
JSONL event log (``job_started``, ``heartbeat``, ``worker_died``,
``job_resumed``, ``checkpoint_discarded``, ``job_degraded``,
``job_done``, ``fleet_done``) and aggregated into a
:class:`~repro.fuzz.diagnostics.FleetDiagnostics` record that nests
each completed campaign's own ``CampaignDiagnostics``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import CheckpointError, CorpusError, FuzzerError
from repro.fuzz.diagnostics import FleetDiagnostics, JobDiagnostics
from repro.fuzz.transport import (
    SpawnTransport,
    WorkerTransport,
    exit_cause_of,
)

#: seconds between worker heartbeats
DEFAULT_HEARTBEAT_INTERVAL = 1.0
#: liveness timeout: a silent worker is declared hung after this long
DEFAULT_HEARTBEAT_TIMEOUT = 30.0
#: restarts granted per job before it is marked degraded
DEFAULT_MAX_RETRIES = 3
#: first retry delay; doubles per subsequent retry of the same job
DEFAULT_BACKOFF_BASE = 0.5
DEFAULT_BACKOFF_FACTOR = 2.0
#: supervisor event-queue poll granularity (also bounds loop latency)
_POLL = 0.05
#: grace period for a cleanly exited worker's terminal message to
#: drain from the queue before its silence is ruled a death
_DRAIN_GRACE = 1.0


@dataclass(frozen=True)
class CampaignJob:
    """One unit of fleet work: a single firmware campaign.

    ``seeds`` switches the job to a repeated (multi-seed, merged)
    campaign; otherwise ``seed`` runs a single campaign that
    checkpoints into ``checkpoint_path`` and resumes from it after a
    worker death.  ``faults`` is the fault-plan DSL string (plans are
    rebuilt per job from ``fault_seed`` so RNG streams never cross job
    boundaries).
    """

    job_id: str
    firmware: str
    budget: int
    seed: int = 0
    seeds: Optional[Tuple[int, ...]] = None
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 0
    faults: Optional[str] = None
    fault_seed: Optional[int] = None
    crash_budget: Optional[int] = None
    watchdog_insns: Optional[int] = None
    watchdog_cycles: Optional[float] = None
    sanitizers: Optional[Tuple[str, ...]] = None
    #: persistent corpus store shared with sibling jobs (sharded mode)
    corpus_dir: Optional[str] = None
    seed_schedule: str = "uniform"
    #: set both to make this job one shard of an intra-firmware fleet
    shard_index: Optional[int] = None
    shard_count: Optional[int] = None
    #: target reset strategy ("journal" | "forkserver")
    exec_mode: str = "journal"
    #: ISA execution tier ("tcg" | "tcg-interp" | "jit")
    engine: str = "tcg"
    jit_threshold: Optional[int] = None
    #: fuzz surface ("syscall" | "driver")
    surface: str = "syscall"

    def payload(self, attempt: int, heartbeat_interval: float,
                observe: bool = False) -> dict:
        """The JSON-encodable dict handed to ``worker_main``."""
        return {
            "job_id": self.job_id,
            "attempt": attempt,
            "heartbeat_interval": heartbeat_interval,
            "observe": observe,
            "firmware": self.firmware,
            "budget": self.budget,
            "seed": self.seed,
            "seeds": None if self.seeds is None else list(self.seeds),
            "checkpoint_path": self.checkpoint_path,
            "checkpoint_every": self.checkpoint_every,
            "faults": self.faults,
            "fault_seed": (self.seed if self.fault_seed is None
                           else self.fault_seed),
            "crash_budget": self.crash_budget,
            "watchdog_insns": self.watchdog_insns,
            "watchdog_cycles": self.watchdog_cycles,
            "sanitizers": (None if self.sanitizers is None
                           else list(self.sanitizers)),
            "corpus_dir": self.corpus_dir,
            "seed_schedule": self.seed_schedule,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "exec_mode": self.exec_mode,
            "engine": self.engine,
            "jit_threshold": self.jit_threshold,
            "surface": self.surface,
        }


@dataclass
class FleetResult:
    """Everything a finished fleet produced."""

    #: per-job campaign results in job *submission* order (the merge is
    #: deterministic by construction); ``None`` where a job degraded
    results: List[Optional[object]]
    diagnostics: FleetDiagnostics
    #: the full structured event stream (also on disk when
    #: ``events_path`` was configured)
    events: List[dict] = field(default_factory=list)
    #: True when :meth:`FleetSupervisor.interrupt` stopped the fleet
    #: before every job finished — unfinished jobs keep their
    #: checkpoints and a rerun resumes them; they are *not* degraded
    interrupted: bool = False
    #: job ids that were still waiting or running at interrupt time
    unfinished: List[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when any job exhausted its retry budget.

        An interrupted fleet's unfinished jobs do not count: they were
        stopped by the operator mid-flight, not abandoned by the
        supervisor, and their checkpoints make them resumable.
        """
        if self.interrupted:
            return any(
                result is None
                for result, job_id in zip(self.results, self._job_ids())
                if job_id not in self.unfinished
            )
        return any(result is None for result in self.results)

    def _job_ids(self) -> List[str]:
        return [diag.job_id for diag in self.diagnostics.jobs]

    def completed(self) -> List[object]:
        """The successful results, submission order preserved."""
        return [result for result in self.results if result is not None]


class _JobState:
    """Supervisor-side bookkeeping for one job."""

    __slots__ = ("job", "status", "handle", "attempt",
                 "last_signal", "not_before", "dead_since", "death_cause",
                 "diag", "result", "discard_logged", "span_start")

    def __init__(self, job: CampaignJob):
        self.job = job
        self.status = "waiting"  # waiting | running | done | degraded
        #: the current attempt's :class:`AttemptHandle` — a spawn
        #: process + fresh queue, or a job dispatched to a TCP peer
        self.handle = None
        self.attempt = 0
        self.last_signal = 0.0
        self.not_before = 0.0  # backoff deadline (monotonic)
        self.dead_since = None  # first time the worker was seen dead
        self.death_cause = None
        self.diag = JobDiagnostics(
            job_id=job.job_id, firmware=job.firmware, seed=job.seed,
        )
        self.result = None
        self.discard_logged = False
        #: tracer timestamp when the current attempt started (observer)
        self.span_start = 0.0

    def drop_handle(self) -> None:
        """Reap the current attempt's handle (worker is gone)."""
        if self.handle is not None:
            self.handle.close()
            self.handle = None


class FleetSupervisor:
    """Shard campaign jobs across supervised worker processes."""

    def __init__(
        self,
        jobs: Sequence[CampaignJob],
        workers: int = 2,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_factor: float = DEFAULT_BACKOFF_FACTOR,
        events_path: Optional[str] = None,
        on_event: Optional[Callable[[dict], None]] = None,
        observer=None,
        transport: Optional[WorkerTransport] = None,
    ):
        if workers < 1:
            raise FuzzerError(f"fleet needs >= 1 worker, got {workers}")
        if not jobs:
            raise FuzzerError("fleet needs at least one job")
        seen = set()
        for job in jobs:
            if job.job_id in seen:
                raise FuzzerError(f"duplicate job id {job.job_id!r}")
            seen.add(job.job_id)
        self.jobs = list(jobs)
        self.workers = workers
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.events_path = events_path
        #: observation hook, called with every event record as it is
        #: logged — the test suite and the CI chaos job use it to
        #: inject failures (SIGKILL/SIGSTOP) at precise fleet states;
        #: exceptions it raises abort the fleet
        self.on_event = on_event
        #: optional :class:`repro.obs.Observer`.  The supervisor feeds
        #: it fleet-level counters/spans and asks each worker (via the
        #: job payload's ``observe`` flag) to ship its own metrics and
        #: trace back over the event queue for merging, so one document
        #: covers the whole fleet
        self.observer = observer
        #: worker channel; ``None`` means a supervisor-owned
        #: :class:`~repro.fuzz.transport.SpawnTransport` (today's
        #: byte-identical default).  Pass a
        #: :class:`~repro.fuzz.transport.TcpJsonlTransport` to dispatch
        #: jobs to ``repro worker --connect`` peers; the caller keeps
        #: ownership (and must ``close()``) of transports it passes in.
        self.transport = transport
        self._transport: Optional[WorkerTransport] = None
        self._events: List[dict] = []
        self._events_fh = None
        self._interrupted = threading.Event()

    def interrupt(self) -> None:
        """Ask a running fleet to stop at the next scheduling round.

        Safe to call from any thread (a signal handler, the serve
        daemon's drain path).  Running attempts are killed, waiting
        jobs stay waiting, and :meth:`run` returns a
        :class:`FleetResult` with ``interrupted=True`` listing the
        unfinished job ids.  Checkpoints written so far stay on disk,
        so a rerun of the same jobs resumes rather than restarts.
        """
        self._interrupted.set()

    # ------------------------------------------------------------------
    def run(self) -> FleetResult:
        """Run every job to completion (or degradation); block until done."""
        transport = self.transport
        owned = transport is None
        if owned:
            transport = SpawnTransport()
        self._transport = transport
        states = [_JobState(job) for job in self.jobs]
        started_wall = time.time()
        started = time.monotonic()
        if self.events_path:
            from repro.obs.observer import ensure_parent

            self._events_fh = open(ensure_parent(self.events_path), "w",
                                   encoding="utf-8")
        transport_stats = None
        try:
            self._emit("fleet_started", jobs=len(states),
                       workers=self.workers,
                       heartbeat_timeout=self.heartbeat_timeout,
                       max_retries=self.max_retries)
            if self.observer is not None:
                self.observer.gauge("fleet.workers").set(self.workers)
                self.observer.gauge("fleet.jobs").set(len(states))
            while (not self._interrupted.is_set()
                   and any(s.status in ("waiting", "running")
                           for s in states)):
                self._fill_slots(states)
                self._pump(states)
                self._check_liveness(states)
            unfinished = [s.job.job_id for s in states
                          if s.status in ("waiting", "running")]
            transport_stats = transport.stats()
            self._emit(
                "fleet_interrupted" if unfinished else "fleet_done",
                jobs=len(states),
                completed=sum(1 for s in states if s.status == "done"),
                degraded=[s.job.job_id for s in states
                          if s.status == "degraded"],
                unfinished=unfinished,
                restarts=sum(len(s.diag.restarts) for s in states),
                wall_time=round(time.monotonic() - started, 3),
                transport=transport_stats,
            )
            self._absorb_transport_stats(transport_stats)
        finally:
            for state in states:
                if state.handle is not None:
                    state.handle.kill()
                state.drop_handle()
            if owned:
                transport.close()
            self._transport = None
            if self._events_fh is not None:
                self._events_fh.close()
                self._events_fh = None
        diagnostics = FleetDiagnostics(
            workers=self.workers,
            heartbeat_timeout=self.heartbeat_timeout,
            max_retries=self.max_retries,
            backoff_base=self.backoff_base,
            jobs=[state.diag for state in states],
            wall_time=time.time() - started_wall,
            events_logged=len(self._events),
            transport=transport_stats,
        )
        return FleetResult(
            results=[state.result for state in states],
            diagnostics=diagnostics,
            events=list(self._events),
            interrupted=self._interrupted.is_set(),
            unfinished=[s.job.job_id for s in states
                        if s.status in ("waiting", "running")],
        )

    def _absorb_transport_stats(self, stats: Optional[dict]) -> None:
        if stats is None or self.observer is None:
            return
        for key in ("connects", "reconnects", "frames_dropped",
                    "resends", "remote_attempts", "spawn_fallbacks",
                    "bytes_sent", "bytes_received"):
            if stats.get(key):
                self.observer.counter(
                    f"fleet.transport.{key}").inc(stats[key])

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _fill_slots(self, states: List[_JobState]) -> None:
        now = time.monotonic()
        running = sum(1 for s in states if s.status == "running")
        for state in states:
            if running >= self.workers:
                return
            if state.status != "waiting" or state.not_before > now:
                continue
            if self._start(state):
                running += 1

    def _start(self, state: _JobState) -> bool:
        state.attempt += 1
        state.diag.attempts += 1
        payload = state.job.payload(state.attempt, self.heartbeat_interval,
                                    observe=self.observer is not None)
        handle = self._transport.launch(payload)
        if handle is None:
            # no capacity right now (every remote busy, fallback off):
            # leave the job waiting; the next poll retries
            state.attempt -= 1
            state.diag.attempts -= 1
            return False
        state.dead_since = None
        state.death_cause = None
        state.handle = handle
        state.status = "running"
        state.last_signal = time.monotonic()
        observer = self.observer
        if observer is not None:
            observer.counter("fleet.attempts").inc()
            if observer.tracer is not None:
                state.span_start = observer.tracer.now()
        path = state.job.checkpoint_path
        if state.attempt == 1:
            self._emit("job_started", job=state.job.job_id,
                       firmware=state.job.firmware, seed=state.job.seed,
                       budget=state.job.budget, pid=handle.pid,
                       where=handle.where)
        else:
            self._emit("job_resumed", job=state.job.job_id,
                       attempt=state.attempt, pid=handle.pid,
                       where=handle.where,
                       from_checkpoint=bool(path and os.path.exists(path)))
        return True

    # ------------------------------------------------------------------
    # event-queue pump
    # ------------------------------------------------------------------
    def _pump(self, states: List[_JobState]) -> None:
        by_id = {state.job.job_id: state for state in states}
        drained_any = False
        for state in states:
            handle = state.handle
            if handle is None:
                continue
            for message in handle.poll():
                drained_any = True
                self._handle(by_id, message)
        if not drained_any:
            time.sleep(_POLL)

    def _handle(self, by_id, message) -> None:
        kind, job_id, attempt, payload = message
        state = by_id.get(job_id)
        if state is None:
            return
        now = time.monotonic()
        if kind == "heartbeat":
            if state.status == "running" and attempt == state.attempt:
                gap = now - state.last_signal
                state.diag.max_heartbeat_gap = max(
                    state.diag.max_heartbeat_gap, gap)
                state.last_signal = now
                state.diag.heartbeats += 1
                if self.observer is not None:
                    self.observer.counter("fleet.heartbeats").inc()
                    self.observer.histogram(
                        "fleet.heartbeat_gap_ms").observe(gap * 1e3)
                self._emit("heartbeat", job=job_id, attempt=attempt,
                           elapsed=payload.get("elapsed"),
                           gap=round(gap, 3))
        elif kind == "started":
            if state.status == "running" and attempt == state.attempt:
                state.last_signal = now
                if payload.get("checkpoint_corrupt") and \
                        not state.discard_logged:
                    state.discard_logged = True
                    self._emit("checkpoint_discarded", job=job_id,
                               attempt=attempt,
                               reason=payload["checkpoint_corrupt"])
        elif kind == "metrics":
            # the worker's observability bundle, shipped just before its
            # result; stale-attempt bundles are dropped so counters are
            # never absorbed twice
            if self.observer is not None and attempt == state.attempt \
                    and state.status == "running":
                self.observer.absorb(payload,
                                     process_name=f"worker:{job_id}")
        elif kind == "result":
            if state.status in ("done", "degraded"):
                return  # duplicate from a stale attempt: same bytes
            from repro.fuzz.checkpoint import result_from_json

            result = result_from_json(payload)
            state.result = result
            state.status = "done"
            state.diag.campaign = result.diagnostics
            if self.observer is not None:
                self.observer.counter("fleet.jobs_done").inc()
                tracer = self.observer.tracer
                if tracer is not None:
                    tracer.complete(
                        f"job:{job_id}", state.span_start, cat="fleet",
                        args={"attempt": attempt, "execs": result.execs},
                    )
            diagnostics = result.diagnostics
            if diagnostics is not None and \
                    diagnostics.checkpoint_discarded and \
                    not state.discard_logged:
                state.discard_logged = True
                self._emit("checkpoint_discarded", job=job_id,
                           attempt=attempt,
                           reason=diagnostics.checkpoint_discarded)
            self._emit(
                "job_done", job=job_id, attempt=attempt,
                execs=result.execs, crashes=result.crashes,
                found=result.found_count(),
                census=result.census(),
                campaign_degraded=bool(diagnostics is not None
                                       and diagnostics.degraded),
            )
        elif kind == "failed":
            if state.status == "running" and attempt == state.attempt:
                # remember the structured cause; the exit-code path in
                # _check_liveness turns it into a death ruling
                state.death_cause = (
                    f"worker-error:{payload['exc_type']}: "
                    f"{payload['message']}"
                )
        elif kind == "checkpoint_sync":
            # a TCP worker shipping checkpoint custody home; persisting
            # it is what makes reassignment after a remote death resume
            # instead of restart.  The corpus bundle lands first so the
            # checkpoint's corpus_digests resolve against the store.
            if state.status == "running" and attempt == state.attempt:
                state.last_signal = now
                persisted = False
                rejected = None
                try:
                    bundle = payload.get("corpus")
                    if bundle and state.job.corpus_dir:
                        self._import_corpus(state, bundle, job_id)
                    ckpt = payload.get("state")
                    if ckpt is not None and state.job.checkpoint_path:
                        from repro.fuzz.checkpoint import (
                            write_checkpoint_state,
                        )

                        write_checkpoint_state(
                            state.job.checkpoint_path, ckpt)
                        persisted = True
                except (CheckpointError, CorpusError) as exc:
                    rejected = str(exc)
                if self.observer is not None:
                    self.observer.counter(
                        "fleet.transport.checkpoints_synced").inc()
                self._emit("checkpoint_synced", job=job_id,
                           attempt=attempt,
                           execs=(payload.get("state") or {}).get("execs"),
                           persisted=persisted, rejected=rejected)
        elif kind == "corpus_sync":
            # final corpus custody return from a TCP worker, sent just
            # before its result
            if state.status == "running" and attempt == state.attempt:
                state.last_signal = now
                added = None
                rejected = None
                try:
                    bundle = payload.get("bundle")
                    if bundle and state.job.corpus_dir:
                        added = self._import_corpus(state, bundle, job_id)
                except CorpusError as exc:
                    rejected = str(exc)
                self._emit("corpus_received", job=job_id, attempt=attempt,
                           entries=added, rejected=rejected)

    def _import_corpus(self, state: _JobState, bundle: dict,
                       job_id: str) -> int:
        from repro.corpus import CorpusStore

        store = CorpusStore(state.job.corpus_dir,
                            firmware=state.job.firmware)
        added = store.import_bundle_obj(bundle, source=f"worker:{job_id}")
        if self.observer is not None and added:
            self.observer.counter(
                "fleet.transport.corpus_entries").inc(added)
        return added

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def _check_liveness(self, states: List[_JobState]) -> None:
        now = time.monotonic()
        by_id = {state.job.job_id: state for state in states}
        for state in states:
            handle = state.handle
            if handle is None:
                continue
            if state.status in ("done", "degraded"):
                if not handle.alive() or state.status == "degraded":
                    state.drop_handle()
                continue
            if not handle.alive():
                # dead worker: grant a short grace for its terminal
                # message (result/failed) still draining the channel —
                # except abrupt deaths (signal kills, TCP disconnects),
                # which can never have sent one
                if state.dead_since is None:
                    state.dead_since = now
                terminal_known = state.death_cause is not None
                grace_over = now - state.dead_since > _DRAIN_GRACE
                if terminal_known or handle.abrupt() or grace_over:
                    # final drain before ruling: a message routed in the
                    # instant the channel died (a checkpoint_sync racing
                    # its own disconnect) is durable progress that must
                    # not be dropped with the handle
                    for message in handle.poll():
                        self._handle(by_id, message)
                    if state.status in ("done", "degraded"):
                        state.drop_handle()
                        continue
                    cause = state.death_cause or handle.exit_cause()
                    state.drop_handle()
                    self._on_death(state, cause)
            elif now - state.last_signal > self.heartbeat_timeout:
                # heartbeat silence: the worker is schedulable-dead
                # (SIGSTOP, swap thrash, runaway C loop) or its frames
                # are not arriving; kill/disconnect it hard
                handle.kill()
                state.drop_handle()
                self._on_death(
                    state,
                    f"heartbeat-timeout:{self.heartbeat_timeout}s",
                )

    def _on_death(self, state: _JobState, cause: str) -> None:
        state.dead_since = None
        state.death_cause = None
        observer = self.observer
        if observer is not None:
            observer.counter("fleet.worker_deaths").inc()
            if observer.tracer is not None:
                observer.tracer.complete(
                    f"job:{state.job.job_id}", state.span_start,
                    cat="fleet",
                    args={"attempt": state.attempt, "died": cause},
                )
        if state.attempt > self.max_retries:
            state.status = "degraded"
            state.diag.degraded = True
            state.diag.degraded_cause = cause
            if observer is not None:
                observer.counter("fleet.jobs_degraded").inc()
            self._emit("job_degraded", job=state.job.job_id,
                       attempts=state.attempt, cause=cause)
            return
        backoff = self.backoff_base * (
            self.backoff_factor ** (state.attempt - 1)
        )
        state.status = "waiting"
        state.not_before = time.monotonic() + backoff
        state.diag.restarts.append({
            "attempt": state.attempt,
            "cause": cause,
            "backoff": round(backoff, 3),
        })
        self._emit("worker_died", job=state.job.job_id,
                   attempt=state.attempt, cause=cause,
                   backoff=round(backoff, 3))

    # ------------------------------------------------------------------
    #: events whose loss would blind a postmortem: fsync the JSONL log
    #: after these so a supervisor crash cannot truncate the verdicts
    _DURABLE_EVENTS = frozenset({"job_degraded", "job_done", "fleet_done",
                                 "fleet_interrupted"})

    def _emit(self, event: str, **fields) -> None:
        record = {"ts": round(time.time(), 6), "event": event, **fields}
        self._events.append(record)
        if self._events_fh is not None:
            self._events_fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._events_fh.flush()
            if event in self._DURABLE_EVENTS:
                os.fsync(self._events_fh.fileno())
        if self.on_event is not None:
            self.on_event(record)


#: backwards-compatible alias; the classification lives with the
#: transports now (spawn exit codes are a transport detail)
_exit_cause = exit_cause_of


# ----------------------------------------------------------------------
# catalog-level conveniences
# ----------------------------------------------------------------------
def make_jobs(
    budget: int,
    seed: int = 0,
    seeds: Optional[Sequence[int]] = None,
    firmware: Optional[Sequence[str]] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 0,
    faults: Optional[str] = None,
    crash_budget: Optional[int] = None,
    watchdog_insns: Optional[int] = None,
    watchdog_cycles: Optional[float] = None,
    exec_mode: str = "journal",
    engine: str = "tcg",
    jit_threshold: Optional[int] = None,
    surface: str = "syscall",
) -> List[CampaignJob]:
    """One job per Table-1 firmware (or per ``firmware`` subset).

    With ``surface="driver"`` the default firmware set shrinks to the
    entries that model peripherals (have a ``driver_factory``); an
    explicit ``firmware`` list is taken as-is and a member without a
    driver surface fails in its worker at build time.
    """
    from repro.firmware.registry import all_firmware, firmware_spec

    if firmware is None:
        names = [
            spec.name for spec in all_firmware()
            if surface != "driver" or spec.driver_factory is not None
        ]
    else:
        names = [firmware_spec(name).name for name in firmware]

    def _path(name: str) -> Optional[str]:
        if checkpoint_dir is None:
            return None
        os.makedirs(checkpoint_dir, exist_ok=True)
        safe = name.replace("/", "_")
        return os.path.join(checkpoint_dir, f"campaign_{safe}.json")

    return [
        CampaignJob(
            job_id=name,
            firmware=name,
            budget=budget,
            seed=seed,
            seeds=None if seeds is None else tuple(seeds),
            checkpoint_path=None if seeds is not None else _path(name),
            checkpoint_every=checkpoint_every,
            faults=faults,
            crash_budget=crash_budget,
            watchdog_insns=watchdog_insns,
            watchdog_cycles=watchdog_cycles,
            exec_mode=exec_mode,
            engine=engine,
            jit_threshold=jit_threshold,
            surface=surface,
        )
        for name in names
    ]


def run_fleet(jobs: Sequence[CampaignJob], workers: int = 2,
              **supervisor_kwargs) -> FleetResult:
    """Run ``jobs`` under a :class:`FleetSupervisor` and return its result."""
    return FleetSupervisor(jobs, workers=workers, **supervisor_kwargs).run()


# ----------------------------------------------------------------------
# sharded intra-firmware fleet (one firmware, N cooperating shards)
# ----------------------------------------------------------------------
@dataclass
class ShardedFleetResult:
    """One firmware fuzzed by ``shards`` cooperating workers."""

    #: the shard results merged into a single campaign-shaped record
    #: (execs/crashes sum, coverage is the max frontier, findings and
    #: catalog matches union); ``None`` only if every shard degraded
    result: Optional[object]
    #: per-shard final-round results, shard order; ``None`` = degraded
    shard_results: List[Optional[object]]
    rounds: int
    shards: int
    #: the final round's supervision record
    diagnostics: FleetDiagnostics
    #: all rounds' supervision events plus the ``corpus_synced``
    #: barrier events, in order
    events: List[dict] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when any shard exhausted its retry budget."""
        return any(result is None for result in self.shard_results)


def make_shard_jobs(
    firmware: str,
    budget: int,
    shards: int,
    seed: int = 0,
    corpus_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 0,
    seed_schedule: str = "uniform",
    faults: Optional[str] = None,
    crash_budget: Optional[int] = None,
    watchdog_insns: Optional[int] = None,
    watchdog_cycles: Optional[float] = None,
    exec_mode: str = "journal",
    engine: str = "tcg",
    jit_threshold: Optional[int] = None,
    surface: str = "syscall",
) -> List[CampaignJob]:
    """One job per shard of a single firmware; ``budget`` is per shard.

    Shard ``i`` of ``n`` seeds its RNG with ``seed + i``, starts from
    its disjoint slice of the spec seed corpus, checkpoints into its
    own file and writes its own manifest segment of the shared store
    at ``corpus_dir`` — both are what lets a shard die and resume
    without touching its siblings.
    """
    from repro.firmware.registry import firmware_spec

    name = firmware_spec(firmware).name
    if shards < 1:
        raise FuzzerError(f"need >= 1 shard, got {shards}")
    if corpus_dir is None or checkpoint_dir is None:
        raise FuzzerError(
            "sharded jobs need corpus_dir (the sync medium) and "
            "checkpoint_dir (the resume medium)"
        )
    os.makedirs(checkpoint_dir, exist_ok=True)
    safe = name.replace("/", "_")
    return [
        CampaignJob(
            job_id=f"{name}#s{index}",
            firmware=name,
            budget=budget,
            seed=seed + index,
            checkpoint_path=os.path.join(
                checkpoint_dir, f"shard_{safe}_{index:02d}.json"
            ),
            checkpoint_every=checkpoint_every,
            faults=faults,
            crash_budget=crash_budget,
            watchdog_insns=watchdog_insns,
            watchdog_cycles=watchdog_cycles,
            corpus_dir=corpus_dir,
            seed_schedule=seed_schedule,
            shard_index=index,
            shard_count=shards,
            exec_mode=exec_mode,
            engine=engine,
            jit_threshold=jit_threshold,
            surface=surface,
        )
        for index in range(shards)
    ]


def merge_shard_results(results: Sequence[Optional[object]]):
    """Fold per-shard campaign results into one census record.

    Mirrors :func:`repro.fuzz.campaign.run_campaign_repeated`'s merge:
    counters sum, coverage takes the widest frontier, catalog matches
    union, and ``missed`` shrinks to the rows no shard found.  Returns
    ``None`` when every slot is ``None`` (all shards degraded).
    """
    import copy

    merged = None
    for result in results:
        if result is None:
            continue
        if merged is None:
            # deep copy: callers keep the per-shard results alongside
            # the merge, so folding in place would corrupt slot 0
            merged = copy.deepcopy(result)
            continue
        merged.execs += result.execs
        merged.crashes += result.crashes
        merged.coverage = max(merged.coverage, result.coverage)
        merged.budget += result.budget
        merged.findings.extend(result.findings)
        for bug_id, finding in result.matched.items():
            merged.matched.setdefault(bug_id, finding)
        merged.missed = [
            record for record in merged.missed
            if record.bug_id not in merged.matched
        ]
        if merged.diagnostics is not None and \
                result.diagnostics is not None:
            merged.diagnostics.merge(result.diagnostics)
    return merged


def run_sharded_fleet(
    firmware: str,
    budget: int,
    shards: int = 2,
    workers: Optional[int] = None,
    seed: int = 0,
    sync_every: int = 0,
    corpus_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    seed_schedule: str = "uniform",
    faults: Optional[str] = None,
    crash_budget: Optional[int] = None,
    watchdog_insns: Optional[int] = None,
    watchdog_cycles: Optional[float] = None,
    exec_mode: str = "journal",
    engine: str = "tcg",
    jit_threshold: Optional[int] = None,
    surface: str = "syscall",
    observer=None,
    events_path: Optional[str] = None,
    fleet_options: Optional[dict] = None,
) -> ShardedFleetResult:
    """Fuzz ONE firmware with ``shards`` cooperating workers.

    ``budget`` is the *total* execution budget, split evenly across
    shards — a 2-shard fleet at budget 1500 spends the same 1500 execs
    a single campaign would, so censuses are comparable.

    ``sync_every`` sets the corpus-sync cadence in per-shard execs.
    The fleet runs in rounds: each round every shard resumes from its
    checkpoint, imports what sibling shards persisted up to the round
    boundary (watermarked by insertion exec count), fuzzes
    ``sync_every`` more execs through the shared store, and
    checkpoints.  Rounds are barriers — the supervisor returns between
    them — so for a fixed ``(seed, shards, sync_every)`` schedule the
    merged result is deterministic regardless of worker count, OS
    scheduling, or how many times workers were killed and resumed.
    ``sync_every=0`` means a single round (shards sync only through
    their disjoint seed slices and the final merge).

    ``workers`` caps concurrent shard processes (default: one per
    shard); ``fleet_options`` passes supervisor knobs
    (``heartbeat_timeout``, ``max_retries``, ``on_event``, ...).
    """
    import tempfile

    from repro.firmware.registry import firmware_spec

    fleet_options = dict(fleet_options or {})
    if "events_path" in fleet_options:
        # rounds reuse the supervisor, which truncates its events file
        # per run(); route the stream through the combined writer below
        events_path = events_path or fleet_options.pop("events_path")
        fleet_options.pop("events_path", None)
    name = firmware_spec(firmware).name
    if shards < 1:
        raise FuzzerError(f"need >= 1 shard, got {shards}")
    if budget < shards:
        raise FuzzerError(
            f"budget {budget} cannot be split across {shards} shards"
        )
    per_shard = budget // shards
    if sync_every < 0:
        raise FuzzerError(f"sync_every must be >= 0, got {sync_every}")
    if sync_every and sync_every < per_shard:
        rounds = -(-per_shard // sync_every)  # ceil
    else:
        rounds = 1

    tmp_dirs = []
    if corpus_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-shard-corpus-")
        tmp_dirs.append(tmp)
        corpus_dir = tmp.name
    if checkpoint_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-shard-ckpt-")
        tmp_dirs.append(tmp)
        checkpoint_dir = tmp.name

    try:
        from repro.corpus import CorpusStore

        events: List[dict] = []
        fleet = None
        previous_size = 0
        for round_index in range(rounds):
            round_budget = per_shard if not sync_every else min(
                per_shard, (round_index + 1) * sync_every
            )
            jobs = make_shard_jobs(
                name, round_budget, shards, seed=seed,
                corpus_dir=corpus_dir, checkpoint_dir=checkpoint_dir,
                # checkpoints only at sync boundaries: a mid-round kill
                # resumes from the round start (or a fresh start in
                # single-round mode), where the import watermark sees
                # the same store every uninterrupted run saw
                checkpoint_every=sync_every or per_shard,
                seed_schedule=seed_schedule, faults=faults,
                crash_budget=crash_budget,
                watchdog_insns=watchdog_insns,
                watchdog_cycles=watchdog_cycles,
                exec_mode=exec_mode,
                engine=engine,
                jit_threshold=jit_threshold,
                surface=surface,
            )
            fleet = run_fleet(
                jobs, workers=workers or shards, observer=observer,
                **(fleet_options or {}),
            )
            events.extend(fleet.events)
            # the round barrier IS the sync point: every shard has
            # flushed its segment and gone idle, so this union is the
            # exact store the next round's resumes will import from
            store = CorpusStore(corpus_dir, firmware=name)
            synced = len(store) - previous_size
            previous_size = len(store)
            events.append({
                "ts": round(time.time(), 6),
                "event": "corpus_synced",
                "firmware": name,
                "round": round_index + 1,
                "rounds": rounds,
                "entries": len(store),
                "new_entries": synced,
            })
            if observer is not None:
                observer.counter("corpus.syncs").inc()
                observer.counter("corpus.sync_volume").inc(synced)
                observer.gauge("corpus.size").set(len(store))
        if events_path:
            from repro.obs.observer import ensure_parent

            with open(ensure_parent(events_path), "w",
                      encoding="utf-8") as fh:
                for record in events:
                    fh.write(json.dumps(record, sort_keys=True) + "\n")
        return ShardedFleetResult(
            result=merge_shard_results(fleet.results),
            shard_results=fleet.results,
            rounds=rounds,
            shards=shards,
            diagnostics=fleet.diagnostics,
            events=events,
        )
    finally:
        for tmp in tmp_dirs:
            tmp.cleanup()
