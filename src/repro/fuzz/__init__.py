"""Kernel fuzzers: the bug drivers of the paper's evaluation.

* :mod:`repro.fuzz.syzkaller` — a Syzkaller-shaped syscall fuzzer:
  template-based program generation with resource wiring, kcov-style
  coverage feedback, corpus mutation.
* :mod:`repro.fuzz.tardis` — a Tardis-shaped RTOS fuzzer: executor
  programs over the OS task API and *OS-agnostic* coverage collected at
  the emulator level (function-entry events), so closed-source targets
  fuzz exactly like open ones.
* :mod:`repro.fuzz.campaign` — campaign orchestration: run a fuzzer
  against a Table-1 firmware with EMBSAN attached, dedup and reproduce
  findings, map them back to the bug catalog.
"""

from repro.fuzz.coverage import CoverageMap, EmulatorCoverage, KcovCoverage
from repro.fuzz.program import Call, Program
from repro.fuzz.campaign import (
    CampaignResult,
    run_all_campaigns,
    run_campaign,
    run_campaign_repeated,
)
from repro.fuzz.syzkaller import SyzkallerFuzzer
from repro.fuzz.tardis import TardisFuzzer

__all__ = [
    "Call",
    "CampaignResult",
    "CoverageMap",
    "EmulatorCoverage",
    "KcovCoverage",
    "Program",
    "SyzkallerFuzzer",
    "TardisFuzzer",
    "run_all_campaigns",
    "run_campaign",
    "run_campaign_repeated",
]
