"""Crash-safe, WAL-backed job queue for the always-on fuzzing service.

The serve daemon (:mod:`repro.fuzz.serve`) must survive a ``kill -9``
with jobs queued *and* running, then pick up exactly where it left off.
This module provides the durability half of that promise:

* **Write-ahead log.**  Every state transition is appended to
  ``wal.jsonl`` as one JSON record in the same locked step that mutates
  the in-memory view (memory first, so a compaction triggered by the
  append snapshots a state that already includes it).
  Submissions and terminal records (done/failed/cancelled/quarantined)
  are fsync'd, matching the fleet event log's durability policy: once
  ``submit`` returns, a power cut cannot lose the job, and once a
  result is acknowledged it cannot un-happen.  Lease records are
  flushed but not fsync'd — losing one merely makes the job look queued
  again on replay, which is the same recovery the lease would demand.
* **Compacted snapshots.**  Every ``snapshot_every`` records the full
  job table is written to ``snapshot.json`` with the fsync'd
  write-then-rename from :mod:`repro.fuzz.checkpoint`, and the WAL is
  restarted.  Replay cost is therefore bounded by the snapshot cadence,
  not by service lifetime.
* **Replay.**  On startup the snapshot (if any) is loaded and WAL
  records with a later sequence number are applied on top.  A torn
  final record — the classic half-written-line crash artifact — is
  tolerated and dropped; corruption anywhere else raises
  :class:`~repro.errors.QueueError`.  Jobs that were *running* at crash
  time hold a lease with no terminal record: replay requeues them
  (``recovered_leases``), and their campaign checkpoints on disk let
  the rerun resume mid-budget.
* **Leases + crash budget.**  ``lease`` hands a queued job to an owner
  and counts the attempt; ``requeue`` returns it (worker death, drain,
  daemon crash).  Attempts that count against the budget (everything
  except a graceful drain) eventually trip ``max_attempts`` and the job
  is **quarantined** — the poisoned-job analogue of the engine layer's
  crash budget, so one wedged campaign degrades instead of wedging the
  service.
* **Admission control.**  ``max_pending`` bounds the queue;
  over-admission raises :class:`~repro.errors.AdmissionError` with an
  explicit ``retry_after``.  Resubmitting an accepted job with the same
  client-supplied ``dedup_key`` is idempotent at any point in the job's
  life, including after completion — the key maps to the original job
  and its result.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AdmissionError, QueueError
from repro.fuzz.checkpoint import fsync_parent_dir

QUEUE_FORMAT_VERSION = 1

#: States a job moves through.  ``queued -> running`` via lease,
#: ``running -> queued`` via requeue, and the terminal set is
#: ``{done, failed, cancelled, quarantined}``.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
QUARANTINED = "quarantined"

TERMINAL_STATES = (DONE, FAILED, CANCELLED, QUARANTINED)

#: WAL record kinds that must hit the platter before the call returns.
_DURABLE_RECORDS = ("submitted", "done", "failed", "cancelled", "quarantined")


@dataclass
class QueueJob:
    """One tenanted campaign job and its full durable history."""

    job_id: str
    spec: dict
    dedup_key: Optional[str] = None
    state: str = QUEUED
    attempts: int = 0
    owner: Optional[str] = None
    result: Optional[dict] = None
    error: Optional[str] = None
    requeues: List[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "job_id": self.job_id,
            "spec": self.spec,
            "dedup_key": self.dedup_key,
            "state": self.state,
            "attempts": self.attempts,
            "owner": self.owner,
            "result": self.result,
            "error": self.error,
            "requeues": list(self.requeues),
        }

    @classmethod
    def from_json(cls, data: dict) -> "QueueJob":
        return cls(
            job_id=data["job_id"],
            spec=data["spec"],
            dedup_key=data.get("dedup_key"),
            state=data.get("state", QUEUED),
            attempts=data.get("attempts", 0),
            owner=data.get("owner"),
            result=data.get("result"),
            error=data.get("error"),
            requeues=list(data.get("requeues", ())),
        )

    def summary(self) -> dict:
        """The status-API view: everything but the bulky result."""
        return {
            "job_id": self.job_id,
            "firmware": self.spec.get("firmware"),
            "state": self.state,
            "attempts": self.attempts,
            "owner": self.owner,
            "dedup_key": self.dedup_key,
            "error": self.error,
            "requeues": list(self.requeues),
        }


class JobQueue:
    """Durable job table backed by ``<root>/wal.jsonl`` + ``snapshot.json``.

    Thread-safe: the serve daemon's API handler threads and scheduler
    loop share one instance.  All mutating operations write the WAL
    record first, then update memory, so the on-disk log is never
    behind what a caller has observed.
    """

    def __init__(
        self,
        root: str,
        *,
        max_pending: int = 64,
        max_attempts: int = 3,
        retry_after: float = 2.0,
        snapshot_every: int = 256,
        on_record=None,
    ):
        self.root = root
        #: optional callback invoked with every WAL entry as it is
        #: appended (never during replay) — the serve daemon's event
        #: stream is exactly the durable log, so watchers can never see
        #: a transition the WAL would forget
        self.on_record = on_record
        self.max_pending = max_pending
        self.max_attempts = max_attempts
        self.retry_after = retry_after
        self.snapshot_every = snapshot_every
        self._lock = threading.RLock()
        self._jobs: Dict[str, QueueJob] = {}
        self._dedup: Dict[str, str] = {}
        self._order: List[str] = []  # FIFO of queued job ids
        self._seq = 0
        self._next_job = 1
        self._wal_records = 0
        self.recovered_leases: List[str] = []
        self.replayed_records = 0
        os.makedirs(root, exist_ok=True)
        self._wal_path = os.path.join(root, "wal.jsonl")
        self._snap_path = os.path.join(root, "snapshot.json")
        self._replay()
        self._wal = open(self._wal_path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def _append(self, record: str, **fields) -> None:
        self._seq += 1
        entry = {"seq": self._seq, "record": record}
        entry.update(fields)
        self._wal.write(json.dumps(entry, sort_keys=True) + "\n")
        self._wal.flush()
        if record in _DURABLE_RECORDS:
            os.fsync(self._wal.fileno())
        self._wal_records += 1
        if self._wal_records >= self.snapshot_every:
            self._compact()
        if self.on_record is not None:
            self.on_record(dict(entry))

    def _snapshot_payload(self) -> dict:
        return {
            "version": QUEUE_FORMAT_VERSION,
            "seq": self._seq,
            "next_job": self._next_job,
            "jobs": [self._jobs[j].to_json() for j in sorted(self._jobs)],
            "order": list(self._order),
        }

    def _compact(self) -> None:
        """Fold the WAL into ``snapshot.json`` and restart the log.

        The snapshot is written with the fsync'd atomic rename, *then*
        the WAL is truncated: a crash between the two replays a WAL
        whose records are all <= the snapshot seq, which replay skips.
        """
        _atomic_json(self._snap_path, self._snapshot_payload())
        self._wal.close()
        self._wal = open(self._wal_path, "w", encoding="utf-8")
        self._wal.flush()
        os.fsync(self._wal.fileno())
        fsync_parent_dir(self._wal_path)
        self._wal_records = 0

    def _replay(self) -> None:
        snap_seq = 0
        if os.path.exists(self._snap_path):
            try:
                with open(self._snap_path, "r", encoding="utf-8") as fh:
                    snap = json.load(fh)
            except (json.JSONDecodeError, OSError) as exc:
                raise QueueError(
                    f"snapshot unreadable: {exc}", path=self._snap_path
                ) from exc
            if snap.get("version") != QUEUE_FORMAT_VERSION:
                raise QueueError(
                    f"snapshot format {snap.get('version')!r} unsupported "
                    f"(expected {QUEUE_FORMAT_VERSION})",
                    path=self._snap_path,
                )
            snap_seq = snap["seq"]
            self._seq = snap_seq
            self._next_job = snap["next_job"]
            for payload in snap["jobs"]:
                job = QueueJob.from_json(payload)
                self._jobs[job.job_id] = job
                if job.dedup_key is not None:
                    self._dedup[job.dedup_key] = job.job_id
            self._order = [
                j for j in snap["order"]
                if j in self._jobs and self._jobs[j].state == QUEUED
            ]
        if os.path.exists(self._wal_path):
            self._replay_wal(snap_seq)
        # Leases open at crash time: the daemon died owning these jobs.
        # Requeue them -- their checkpoints let the rerun resume.
        for job in self._jobs.values():
            if job.state == RUNNING:
                job.state = QUEUED
                job.owner = None
                job.requeues.append("daemon-crash")
                if job.job_id not in self._order:
                    self._order.append(job.job_id)
                self.recovered_leases.append(job.job_id)

    def _replay_wal(self, snap_seq: int) -> None:
        with open(self._wal_path, "rb") as fh:
            blob = fh.read()
        chunks = blob.split(b"\n")
        # A record is only complete once its newline landed: anything
        # after the final newline is a torn tail from a mid-append
        # crash.  Torn records never reached a caller (durable records
        # are fsync'd whole), so dropping one is correct, not lossy --
        # but it must also be *truncated* so the reopened append-mode
        # log does not splice the next record onto the fragment.
        torn = None
        if chunks:
            if chunks[-1]:
                torn = chunks.pop()
            else:
                # newline-terminated blob: drop split()'s empty sentinel
                # so the final *real* record sits at len(chunks) - 1 and
                # the corrupt-tail tolerance below can actually match it
                chunks.pop()
        offset = 0
        for idx, chunk in enumerate(chunks):
            line_len = len(chunk) + 1
            line = chunk.strip()
            if not line:
                offset += line_len
                continue
            try:
                entry = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                if idx == len(chunks) - 1:
                    torn = chunk  # torn newline-terminated tail
                    break
                raise QueueError(
                    f"WAL record {idx + 1} is corrupt mid-log: {exc}",
                    path=self._wal_path,
                ) from exc
            offset += line_len
            if entry.get("seq", 0) <= snap_seq:
                continue  # already folded into the snapshot
            self._apply(entry)
            self._seq = entry["seq"]
            self.replayed_records += 1
            self._wal_records += 1
        if torn is not None:
            with open(self._wal_path, "r+b") as fh:
                fh.truncate(offset)
                fh.flush()
                os.fsync(fh.fileno())

    def _apply(self, entry: dict) -> None:
        record = entry.get("record")
        if record == "submitted":
            job = QueueJob(
                job_id=entry["job"],
                spec=entry["spec"],
                dedup_key=entry.get("dedup_key"),
            )
            self._jobs[job.job_id] = job
            if job.dedup_key is not None:
                self._dedup[job.dedup_key] = job.job_id
            self._order.append(job.job_id)
            num = _job_number(job.job_id)
            if num is not None and num >= self._next_job:
                self._next_job = num + 1
            return
        job = self._jobs.get(entry.get("job"))
        if job is None:
            raise QueueError(
                f"WAL record {record!r} names unknown job "
                f"{entry.get('job')!r}",
                path=self._wal_path,
            )
        if record == "leased":
            job.state = RUNNING
            job.owner = entry.get("owner")
            job.attempts = entry.get("attempts", job.attempts + 1)
            if job.job_id in self._order:
                self._order.remove(job.job_id)
        elif record == "requeued":
            job.state = QUEUED
            job.owner = None
            job.requeues.append(entry.get("cause", "unknown"))
            job.attempts = entry.get("attempts", job.attempts)
            if job.job_id not in self._order:
                self._order.append(job.job_id)
        elif record == "done":
            job.state = DONE
            job.owner = None
            job.result = entry.get("result")
            if job.job_id in self._order:
                self._order.remove(job.job_id)
        elif record in ("failed", "cancelled", "quarantined"):
            job.state = record
            job.owner = None
            job.error = entry.get("error")
            if job.job_id in self._order:
                self._order.remove(job.job_id)
        else:
            raise QueueError(
                f"WAL record kind {record!r} unknown", path=self._wal_path
            )

    # ------------------------------------------------------------------
    # client-facing operations
    # ------------------------------------------------------------------
    def submit(
        self, spec: dict, dedup_key: Optional[str] = None
    ) -> Tuple[QueueJob, bool]:
        """Admit a job; returns ``(job, deduped)``.

        Raises :class:`AdmissionError` with ``reason="queue-full"``
        when ``max_pending`` non-terminal jobs already exist.  A hit on
        ``dedup_key`` bypasses admission control — the job is already
        in (or through) the queue, so there is nothing to admit.
        """
        with self._lock:
            if dedup_key is not None and dedup_key in self._dedup:
                return self._jobs[self._dedup[dedup_key]], True
            pending = sum(
                1 for j in self._jobs.values()
                if j.state not in TERMINAL_STATES
            )
            if pending >= self.max_pending:
                raise AdmissionError(
                    f"queue holds {pending} live jobs (cap "
                    f"{self.max_pending})",
                    reason="queue-full",
                    retry_after=self.retry_after,
                )
            job = QueueJob(
                job_id=f"job-{self._next_job:06d}",
                spec=dict(spec),
                dedup_key=dedup_key,
            )
            self._next_job += 1
            self._jobs[job.job_id] = job
            if dedup_key is not None:
                self._dedup[dedup_key] = job.job_id
            self._order.append(job.job_id)
            self._append(
                "submitted",
                job=job.job_id,
                spec=job.spec,
                dedup_key=dedup_key,
            )
            return job, False

    def lease(self, owner: str) -> Optional[QueueJob]:
        """Claim the oldest queued job for ``owner``; None when empty.

        Counting happens here: a job leased ``max_attempts`` times
        without reaching a terminal state is quarantined instead of
        handed out again.
        """
        with self._lock:
            while self._order:
                job = self._jobs[self._order[0]]
                if job.attempts >= self.max_attempts:
                    self._order.pop(0)
                    self._terminal(
                        job,
                        QUARANTINED,
                        error=(
                            f"crash budget exhausted after "
                            f"{job.attempts} attempts"
                            + (f": {job.error}" if job.error else "")
                        ),
                    )
                    continue
                self._order.pop(0)
                job.attempts += 1
                job.state = RUNNING
                job.owner = owner
                self._append(
                    "leased",
                    job=job.job_id,
                    owner=owner,
                    attempts=job.attempts,
                )
                return job
            return None

    def requeue(self, job_id: str, cause: str, *, counted: bool = True) -> None:
        """Return a leased job to the queue (worker death, drain).

        ``counted=False`` (graceful drain) refunds the attempt — an
        operator-initiated stop must not eat the job's crash budget.
        """
        with self._lock:
            job = self._require(job_id, RUNNING, "requeue")
            if not counted and job.attempts > 0:
                job.attempts -= 1
            job.state = QUEUED
            job.owner = None
            job.requeues.append(cause)
            self._order.append(job_id)
            self._append(
                "requeued",
                job=job_id,
                cause=cause,
                counted=counted,
                attempts=job.attempts,
            )

    def complete(self, job_id: str, result: dict) -> None:
        with self._lock:
            job = self._require(job_id, RUNNING, "complete")
            self._terminal(job, DONE, result=result)

    def fail(self, job_id: str, error: str) -> None:
        """Record a failed attempt.

        The job goes back to the queue while its crash budget lasts
        (the next ``lease`` retries it) and is quarantined once the
        budget is gone, so a poisoned job degrades instead of looping.
        """
        with self._lock:
            job = self._require(job_id, RUNNING, "fail")
            job.error = error
            if job.attempts >= self.max_attempts:
                self._terminal(
                    job,
                    QUARANTINED,
                    error=(
                        f"crash budget exhausted after {job.attempts} "
                        f"attempts: {error}"
                    ),
                )
            else:
                job.state = QUEUED
                job.owner = None
                job.requeues.append(f"failed: {error}")
                self._order.append(job_id)
                self._append(
                    "requeued",
                    job=job_id,
                    cause=f"failed: {error}",
                    counted=True,
                    attempts=job.attempts,
                )

    def cancel(self, job_id: str) -> QueueJob:
        """Cancel a queued or running job; terminal states are final."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise QueueError(f"no such job {job_id!r}")
            if job.state in TERMINAL_STATES:
                raise QueueError(
                    f"job {job_id} is already {job.state}; cancel refused"
                )
            if job.job_id in self._order:
                self._order.remove(job.job_id)
            self._terminal(job, CANCELLED, error="cancelled by operator")
            return job

    def get(self, job_id: str) -> Optional[QueueJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[QueueJob]:
        with self._lock:
            return [self._jobs[j] for j in sorted(self._jobs)]

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out: Dict[str, int] = {}
            for job in self._jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
            return out

    def flush(self) -> None:
        """Force the WAL to disk — the drain path's final durability act."""
        with self._lock:
            self._wal.flush()
            os.fsync(self._wal.fileno())

    def close(self) -> None:
        with self._lock:
            try:
                self.flush()
            except (OSError, ValueError):
                pass
            self._wal.close()

    # ------------------------------------------------------------------
    def _require(self, job_id: str, state: str, op: str) -> QueueJob:
        job = self._jobs.get(job_id)
        if job is None:
            raise QueueError(f"cannot {op}: no such job {job_id!r}")
        if job.state != state:
            raise QueueError(
                f"cannot {op} job {job_id}: state is {job.state!r}, "
                f"need {state!r}"
            )
        return job

    def _terminal(self, job: QueueJob, state: str, **fields) -> None:
        job.state = state
        job.owner = None
        job.result = fields.get("result", job.result)
        job.error = fields.get("error", job.error)
        self._append(state, job=job.job_id, **fields)


def _job_number(job_id: str) -> Optional[int]:
    try:
        return int(job_id.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return None


def _atomic_json(path: str, payload: dict) -> None:
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_parent_dir(path)
