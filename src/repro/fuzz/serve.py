"""`repro serve`: the always-on fuzzing service.

Campaigns stop being one-shot CLI invocations and become **tenanted
jobs** inside a long-lived daemon.  The daemon owns

* a crash-safe :class:`~repro.fuzz.queue.JobQueue` (WAL + snapshot,
  replayed on startup — ``kill -9`` loses nothing),
* per-job :class:`~repro.fuzz.supervisor.FleetSupervisor` runs that
  checkpoint into the service's state directory, so a job interrupted
  by *any* death — worker, supervisor, or the daemon itself — resumes
  mid-budget instead of restarting, and
* a line-oriented JSONL control API speaking the same ``RJ1`` frame
  codec as the fleet transport (:mod:`repro.fuzz.transport`), with
  ``submit`` / ``status`` / ``results`` / ``cancel`` / ``drain``
  requests, streaming job events (``watch``) and an obs metrics
  snapshot (``metrics``).

Failure matrix (details in ``docs/serve.md``):

===================  ==============================================
event                recovery
===================  ==============================================
worker dies          supervisor restarts it from the job checkpoint
job poisoned         crash budget -> quarantined; service keeps going
SIGTERM              graceful drain: stop admitting, interrupt and
                     requeue running jobs (budget refunded), flush
                     WAL, exit 0
kill -9              WAL replay requeues leased jobs; checkpoints
                     resume them; results byte-identical
===================  ==============================================

Results use one **normalized findings record**
(:func:`normalized_findings`) as the engine<->exporter contract: the
``results`` API response carries both the full campaign payload (for
byte-identity checks and checkpoint-compatible tooling) and the flat
per-finding records (for downstream exporters).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.errors import AdmissionError, FuzzerError, QueueError, \
    TransportError
from repro.fuzz.checkpoint import result_to_json
from repro.fuzz.queue import (
    CANCELLED,
    DONE,
    JobQueue,
    TERMINAL_STATES,
    QueueJob,
)
from repro.fuzz.supervisor import (
    CampaignJob,
    DEFAULT_BACKOFF_BASE,
    DEFAULT_HEARTBEAT_TIMEOUT,
    DEFAULT_MAX_RETRIES,
    FleetSupervisor,
)
from repro.fuzz.transport import PROTOCOL_VERSION, FrameStream

#: spec keys a submission may carry; everything else is rejected so a
#: typo'd knob fails loudly at admission instead of silently defaulting
SPEC_FIELDS = frozenset({
    "firmware", "budget", "seed", "seeds", "faults", "fault_seed",
    "crash_budget", "watchdog_insns", "watchdog_cycles", "sanitizers",
    "seed_schedule", "exec_mode", "checkpoint_every",
    "engine", "jit_threshold", "surface",
})


def validate_spec(spec) -> dict:
    """Shape-check a job spec at admission time.

    Deliberately *syntactic*: an unknown firmware name passes admission
    and fails in the runner, where it consumes the job's crash budget
    and lands in quarantine.  Admission control guards the queue, the
    crash budget guards the compute — a submitter cannot learn the
    firmware catalog by probing rejections, and a catalog drift between
    client and server degrades one job instead of the ingest path.
    """
    if not isinstance(spec, dict):
        raise FuzzerError(f"spec must be an object, got "
                          f"{type(spec).__name__}")
    unknown = sorted(set(spec) - SPEC_FIELDS)
    if unknown:
        raise FuzzerError(f"unknown spec fields: {', '.join(unknown)}")
    firmware = spec.get("firmware")
    if not isinstance(firmware, str) or not firmware:
        raise FuzzerError("spec.firmware must be a non-empty string")
    budget = spec.get("budget")
    if not isinstance(budget, int) or isinstance(budget, bool) \
            or budget < 1:
        raise FuzzerError("spec.budget must be a positive integer")
    return dict(spec)


def build_campaign_job(job: QueueJob, checkpoint_dir: str) -> CampaignJob:
    """Materialize a queue job into a fleet CampaignJob.

    The checkpoint path is derived from the *queue* job id, not the
    firmware: two jobs fuzzing the same firmware are distinct tenants
    with distinct resume state.
    """
    spec = job.spec
    os.makedirs(checkpoint_dir, exist_ok=True)
    seeds = spec.get("seeds")
    return CampaignJob(
        job_id=job.job_id,
        firmware=spec["firmware"],
        budget=spec["budget"],
        seed=spec.get("seed", 0),
        seeds=None if seeds is None else tuple(seeds),
        checkpoint_path=(
            None if seeds is not None
            else os.path.join(checkpoint_dir, f"{job.job_id}.json")
        ),
        checkpoint_every=spec.get("checkpoint_every", 0),
        faults=spec.get("faults"),
        fault_seed=spec.get("fault_seed"),
        crash_budget=spec.get("crash_budget"),
        watchdog_insns=spec.get("watchdog_insns"),
        watchdog_cycles=spec.get("watchdog_cycles"),
        sanitizers=(
            None if spec.get("sanitizers") is None
            else tuple(spec["sanitizers"])
        ),
        seed_schedule=spec.get("seed_schedule", "uniform"),
        exec_mode=spec.get("exec_mode", "journal"),
        engine=spec.get("engine", "tcg"),
        jit_threshold=spec.get("jit_threshold"),
        surface=spec.get("surface", "syscall"),
    )


def normalized_findings(payload: dict) -> List[dict]:
    """Flatten a campaign result payload into exporter-ready records.

    One record per finding, stable field set, catalog attribution
    inlined (``bug_id`` is None for unmatched findings).  This is the
    single engine<->exporter contract: the serve API, the ``submit
    --wait`` client and any downstream sink all consume the same rows.
    """
    by_key: Dict[tuple, str] = {
        tuple(key): bug_id
        for bug_id, key in payload.get("matched", {}).items()
    }
    records = []
    for finding in payload.get("findings", ()):
        report = finding["report"]
        records.append({
            "firmware": payload["firmware"],
            "fuzzer": payload["fuzzer"],
            "bug_id": by_key.get(tuple(finding["key"])),
            "key": list(finding["key"]),
            "tool": report["tool"],
            "bug_type": report["bug_type"],
            "location": report["location"],
            "pc": report["pc"],
            "addr": report["addr"],
            "task": report["task"],
            "detail": report["detail"],
            "seed": finding["seed"],
            "reproducible": finding["reproducible"],
        })
    return records


class FuzzService:
    """The daemon: queue + scheduler + runners + control API server."""

    def __init__(
        self,
        state_dir: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        token: Optional[str] = None,
        max_running: int = 2,
        max_pending: int = 64,
        max_attempts: int = 3,
        retry_after: float = 2.0,
        snapshot_every: int = 256,
        workers_per_job: int = 1,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        observer=None,
        log: Optional[Callable[[str], None]] = None,
    ):
        self.state_dir = state_dir
        self.token = token
        self.max_running = max_running
        self.workers_per_job = workers_per_job
        self.heartbeat_timeout = heartbeat_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.observer = observer
        self.log = log or (lambda line: None)
        self.checkpoint_dir = os.path.join(state_dir, "checkpoints")
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        self.queue = JobQueue(
            os.path.join(state_dir, "queue"),
            max_pending=max_pending,
            max_attempts=max_attempts,
            retry_after=retry_after,
            snapshot_every=snapshot_every,
            on_record=self._publish_record,
        )
        self._lock = threading.Lock()
        self._running: Dict[str, FleetSupervisor] = {}
        #: jobs leased by the scheduler whose runner has not yet settled;
        #: this — not len(_running) — gates max_running, because a lease
        #: is in flight before its supervisor registers in _running
        self._inflight = 0
        self._runner_threads: List[threading.Thread] = []
        self._cancelling: set = set()
        # Watchers get their own lock: _publish runs inside the queue's
        # on_record callback, i.e. on whatever thread performed the WAL
        # append — possibly one already holding self._lock.  Keeping the
        # publish path off self._lock makes queue mutations safe to call
        # from anywhere.
        self._watch_lock = threading.Lock()
        self._watchers: List[tuple] = []  # (sink, job filter)
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._drain_thread: Optional[threading.Thread] = None
        self._listener = socket.create_server(
            (host, port), backlog=16, reuse_port=False
        )
        self._listener.settimeout(0.25)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._scheduler_thread = threading.Thread(
            target=self._scheduler_loop, name="serve-scheduler", daemon=True
        )
        if self.queue.recovered_leases:
            self.log(
                f"recovered {len(self.queue.recovered_leases)} leased "
                f"job(s) from the WAL: "
                f"{', '.join(self.queue.recovered_leases)}"
            )
            self._count("serve.recovered_leases",
                        len(self.queue.recovered_leases))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> None:
        self._accept_thread.start()
        self._scheduler_thread.start()
        self.log(f"serving on {self.address} (state {self.state_dir})")

    def serve_forever(self, poll: float = 0.2) -> None:
        """Block until the service drains; the CLI's main loop."""
        while not self._stopped.wait(poll):
            pass

    def drain(self, cause: str = "drain") -> None:
        """Graceful shutdown: the SIGTERM path.

        Stops admitting, interrupts every running supervisor (their
        jobs requeue with the attempt refunded — an operator stop must
        not eat crash budget), flushes the WAL and releases
        :meth:`serve_forever`.  Idempotent; callable from any thread
        or a signal handler.
        """
        if self._draining.is_set():
            return
        self._draining.set()
        self.log(f"draining ({cause}): admissions closed")
        thread = threading.Thread(
            target=self._drain_impl, name="serve-drain", daemon=True
        )
        self._drain_thread = thread
        thread.start()

    def _drain_impl(self) -> None:
        # let the scheduler finish its in-flight lease/registration
        # round first, so the runner snapshot below is complete
        if self._scheduler_thread.is_alive():
            self._scheduler_thread.join(timeout=10.0)
        with self._lock:
            supervisors = list(self._running.values())
            runners = list(self._runner_threads)
        for sup in supervisors:
            sup.interrupt()
        for thread in runners:
            thread.join(timeout=60.0)
        self.queue.flush()
        self._publish({"event": "drained", "job": None})
        self._stopped.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self.queue.close()
        self.log("drained: WAL flushed, exiting")

    def close(self) -> None:
        """Hard stop for tests; production exits via :meth:`drain`."""
        self._draining.set()
        self._stopped.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._scheduler_thread.is_alive():
            self._scheduler_thread.join(timeout=10.0)
        with self._lock:
            supervisors = list(self._running.values())
            runners = list(self._runner_threads)
        for sup in supervisors:
            sup.interrupt()
        for thread in runners:
            thread.join(timeout=30.0)
        self.queue.close()

    # ------------------------------------------------------------------
    # scheduler + runners (the supervised internal restart loop)
    # ------------------------------------------------------------------
    def _scheduler_loop(self) -> None:
        while not self._stopped.is_set() and not self._draining.is_set():
            try:
                leased = self._schedule_once()
            except Exception as exc:  # keep the service alive
                self.log(f"scheduler error: {exc}")
                self._count("serve.scheduler_errors")
                leased = False
            if not leased:
                time.sleep(0.1)

    def _schedule_once(self) -> bool:
        # Reserve the concurrency slot *before* leasing: a runner only
        # registers in _running after building its supervisor, so
        # gating on len(_running) lets back-to-back leases overshoot
        # max_running.  The slot is released in the runner's finally.
        with self._lock:
            if self._inflight >= self.max_running:
                return False
            self._inflight += 1
        job = None
        try:
            job = self.queue.lease(f"serve:{os.getpid()}")
        finally:
            if job is None:
                with self._lock:
                    self._inflight -= 1
        if job is None:
            return False
        thread = threading.Thread(
            target=self._runner, args=(job,),
            name=f"serve-runner-{job.job_id}", daemon=True,
        )
        with self._lock:
            self._runner_threads.append(thread)
        try:
            thread.start()
        except Exception:
            with self._lock:
                self._inflight -= 1
                self._runner_threads.remove(thread)
            raise
        return True

    def _runner(self, job: QueueJob) -> None:
        """Drive one leased job to a queue transition, come what may.

        Every exception path ends in a queue record: the runner is the
        service's restart loop, so a poisoned job (bad firmware, a bug
        in the engine, a supervisor crash) burns its own crash budget
        and quarantines instead of taking the daemon down.
        """
        gauge_set = False
        try:
            with self._lock:
                running = len(self._running) + 1
            self._gauge("serve.running", running)
            gauge_set = True
            cjob = build_campaign_job(job, self.checkpoint_dir)
            supervisor = FleetSupervisor(
                [cjob],
                workers=self.workers_per_job,
                heartbeat_timeout=self.heartbeat_timeout,
                max_retries=self.max_retries,
                backoff_base=self.backoff_base,
            )
            with self._lock:
                drain_won = self._draining.is_set()
                if not drain_won:
                    self._running[job.job_id] = supervisor
            if drain_won:
                # drain won the race: hand the lease straight back.
                # Requeue outside self._lock — the WAL append publishes
                # to watchers, and no queue mutation may run under the
                # service lock.
                self.queue.requeue(job.job_id, "drain", counted=False)
                return
            fleet = supervisor.run()
            with self._lock:
                self._running.pop(job.job_id, None)
            self._settle(job, fleet)
        except Exception as exc:
            with self._lock:
                self._running.pop(job.job_id, None)
            self._count("serve.runner_errors")
            self._record_failure(
                job.job_id, f"{type(exc).__name__}: {exc}"
            )
        finally:
            with self._lock:
                self._inflight -= 1
                if threading.current_thread() in self._runner_threads:
                    self._runner_threads.remove(threading.current_thread())
                running = len(self._running)
            if gauge_set:
                self._gauge("serve.running", running)

    def _settle(self, job: QueueJob, fleet) -> None:
        result = fleet.results[0]
        if fleet.interrupted and result is None:
            if job.job_id in self._cancelling:
                self._cancelling.discard(job.job_id)
                self.queue.cancel(job.job_id)
            else:
                self.queue.requeue(job.job_id, "drain", counted=False)
            return
        self._cancelling.discard(job.job_id)
        if result is None:
            self._record_failure(
                job.job_id,
                "degraded: supervisor retry budget exhausted",
            )
            return
        self.queue.complete(job.job_id, result_to_json(result))

    def _record_failure(self, job_id: str, error: str) -> None:
        try:
            self.queue.fail(job_id, error)
        except QueueError as exc:
            # the job may have been cancelled under us; log, don't die
            self.log(f"failure for {job_id} not recorded: {exc}")

    # ------------------------------------------------------------------
    # events + metrics
    # ------------------------------------------------------------------
    def _publish_record(self, entry: dict) -> None:
        self._count("serve.wal_records")
        kind = entry.get("record")
        if kind in ("done", "failed", "cancelled", "quarantined",
                    "requeued", "submitted", "leased"):
            self._count(f"serve.jobs_{kind}")
        self._publish({
            "event": kind,
            "job": entry.get("job"),
            "seq": entry.get("seq"),
            **{k: v for k, v in entry.items()
               if k in ("owner", "cause", "counted", "attempts",
                        "error", "dedup_key")},
        })

    def _publish(self, event: dict) -> None:
        with self._watch_lock:
            watchers = list(self._watchers)
        for sink, job_filter in watchers:
            if job_filter is not None and event.get("job") != job_filter:
                continue
            try:
                sink(event)
            except Exception:
                pass  # a broken watcher must not poison the publisher

    def _count(self, name: str, n: int = 1) -> None:
        if self.observer is not None:
            self.observer.counter(name).inc(n)

    def _gauge(self, name: str, value) -> None:
        if self.observer is not None:
            self.observer.gauge(name).set(value)

    # ------------------------------------------------------------------
    # control API server
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                sock, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_connection, args=(sock,),
                name="serve-conn", daemon=True,
            ).start()

    def _serve_connection(self, sock: socket.socket) -> None:
        stream = FrameStream(sock)
        try:
            if not self._handshake(stream):
                return
            while not self._stopped.is_set():
                try:
                    frame = stream.recv(timeout=0.5)
                except TransportError as exc:
                    if exc.kind == "crc":
                        stream.send({"type": "error",
                                     "reason": "bad-frame"})
                        continue
                    return
                if frame is None:
                    continue
                if not self._handle_request(stream, frame):
                    return
        except TransportError:
            pass
        finally:
            stream.close()

    def _handshake(self, stream: FrameStream) -> bool:
        hello = stream.recv(timeout=10.0)
        if hello is None or hello.get("type") != "hello":
            stream.close()
            return False
        if hello.get("version") != PROTOCOL_VERSION:
            stream.send({"type": "error", "reason": "version-mismatch",
                         "server_version": PROTOCOL_VERSION})
            stream.close()
            return False
        if self.token is not None and hello.get("token") != self.token:
            stream.send({"type": "error", "reason": "auth-failed"})
            stream.close()
            return False
        stream.send({"type": "welcome", "version": PROTOCOL_VERSION,
                     "service": "repro-serve"})
        return True

    def _handle_request(self, stream: FrameStream, frame: dict) -> bool:
        kind = frame.get("type")
        if kind == "submit":
            stream.send(self._api_submit(frame))
        elif kind == "status":
            stream.send(self._api_status(frame))
        elif kind == "results":
            stream.send(self._api_results(frame))
        elif kind == "cancel":
            stream.send(self._api_cancel(frame))
        elif kind == "metrics":
            stream.send(self._api_metrics())
        elif kind == "drain":
            stream.send({"type": "draining"})
            self.drain(cause="api")
            return True
        elif kind == "watch":
            self._api_watch(stream, frame.get("job"))
        elif kind == "bye":
            return False
        else:
            stream.send({"type": "error",
                         "reason": f"unknown request {kind!r}"})
        return True

    def _api_submit(self, frame: dict) -> dict:
        if self._draining.is_set():
            self._count("serve.rejects")
            return {"type": "rejected", "reason": "draining",
                    "retry_after": self.queue.retry_after}
        try:
            spec = validate_spec(frame.get("spec"))
            job, deduped = self.queue.submit(
                spec, dedup_key=frame.get("dedup_key")
            )
        except AdmissionError as exc:
            self._count("serve.rejects")
            return {"type": "rejected", "reason": exc.reason,
                    "retry_after": exc.retry_after}
        except FuzzerError as exc:
            return {"type": "error", "reason": str(exc)}
        if deduped:
            self._count("serve.dedup_hits")
        return {"type": "submitted", "job": job.job_id,
                "deduped": deduped, "state": job.state}

    def _api_status(self, frame: dict) -> dict:
        job_id = frame.get("job")
        if job_id is not None:
            job = self.queue.get(job_id)
            if job is None:
                return {"type": "error", "reason": f"no such job {job_id!r}"}
            return {"type": "status", "job": job.summary()}
        return {
            "type": "status",
            "jobs": [job.summary() for job in self.queue.jobs()],
            "counts": self.queue.counts(),
            "draining": self._draining.is_set(),
        }

    def _api_results(self, frame: dict) -> dict:
        job_id = frame.get("job")
        job = self.queue.get(job_id) if job_id else None
        if job is None:
            return {"type": "error", "reason": f"no such job {job_id!r}"}
        return {
            "type": "results",
            "job": job.job_id,
            "state": job.state,
            "error": job.error,
            "result": job.result if job.state == DONE else None,
            "findings": (
                normalized_findings(job.result)
                if job.state == DONE and job.result else []
            ),
        }

    def _api_cancel(self, frame: dict) -> dict:
        job_id = frame.get("job")
        job = self.queue.get(job_id) if job_id else None
        if job is None:
            return {"type": "error", "reason": f"no such job {job_id!r}"}
        with self._lock:
            supervisor = self._running.get(job_id)
            if supervisor is not None:
                self._cancelling.add(job_id)
        if supervisor is not None:
            supervisor.interrupt()
            self._count("serve.cancels")
            return {"type": "ok", "job": job_id, "state": "cancelling"}
        try:
            self.queue.cancel(job_id)
        except QueueError as exc:
            return {"type": "error", "reason": str(exc)}
        self._count("serve.cancels")
        return {"type": "ok", "job": job_id, "state": CANCELLED}

    def _api_metrics(self) -> dict:
        return {
            "type": "metrics",
            "queue": self.queue.counts(),
            "draining": self._draining.is_set(),
            "obs": (None if self.observer is None
                    else self.observer.export()),
        }

    def _api_watch(self, stream: FrameStream, job_id: Optional[str]) -> None:
        """Stream job events until the watched job is terminal.

        The connection is dedicated to the stream while the watch is
        live; a ``watch-end`` frame hands it back to request mode.
        """
        done = threading.Event()

        def sink(event: dict) -> None:
            try:
                stream.send({"type": "event", **event})
            except TransportError:
                done.set()
                return
            if job_id is not None and event.get("job") == job_id \
                    and event.get("event") in TERMINAL_STATES:
                done.set()
            if event.get("event") == "drained":
                done.set()

        entry = (sink, job_id)
        with self._watch_lock:
            self._watchers.append(entry)
        stream.send({"type": "watching", "job": job_id})
        # a job already terminal will never emit again: close out now
        if job_id is not None:
            job = self.queue.get(job_id)
            if job is not None and job.state in TERMINAL_STATES:
                done.set()
        while not done.wait(0.5):
            if self._stopped.is_set():
                break
        with self._watch_lock:
            if entry in self._watchers:
                self._watchers.remove(entry)
        try:
            stream.send({"type": "watch-end", "job": job_id})
        except TransportError:
            pass


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
class ServeClient:
    """Thin synchronous client for the serve control API."""

    def __init__(self, host: str, port: int, *,
                 token: Optional[str] = None, timeout: float = 10.0):
        self.timeout = timeout
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        self.stream = FrameStream(sock)
        self.stream.send({"type": "hello", "version": PROTOCOL_VERSION,
                          "token": token, "role": "control"})
        reply = self._recv()
        if reply.get("type") != "welcome":
            self.stream.close()
            raise TransportError(
                f"handshake rejected: {reply.get('reason', 'no welcome')}",
                kind="auth",
            )

    def _recv(self) -> dict:
        deadline = time.monotonic() + self.timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportError("server reply timed out",
                                     kind="closed")
            frame = self.stream.recv(timeout=min(remaining, 1.0))
            if frame is not None:
                return frame

    def request(self, obj: dict) -> dict:
        self.stream.send(obj)
        return self._recv()

    # -- the verbs -----------------------------------------------------
    def submit(self, spec: dict,
               dedup_key: Optional[str] = None) -> dict:
        return self.request({"type": "submit", "spec": spec,
                             "dedup_key": dedup_key})

    def status(self, job: Optional[str] = None) -> dict:
        return self.request({"type": "status", "job": job})

    def results(self, job: str) -> dict:
        return self.request({"type": "results", "job": job})

    def cancel(self, job: str) -> dict:
        return self.request({"type": "cancel", "job": job})

    def drain(self) -> dict:
        return self.request({"type": "drain"})

    def metrics(self) -> dict:
        return self.request({"type": "metrics"})

    def watch(self, job: Optional[str] = None,
              on_event: Optional[Callable[[dict], None]] = None,
              timeout: float = 300.0) -> List[dict]:
        """Stream events until the watch ends; returns what was seen."""
        self.stream.send({"type": "watch", "job": job})
        events: List[dict] = []
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            frame = self.stream.recv(timeout=1.0)
            if frame is None:
                continue
            if frame.get("type") == "watch-end":
                return events
            if frame.get("type") == "event":
                events.append(frame)
                if on_event is not None:
                    on_event(frame)
        raise TransportError("watch timed out", kind="closed")

    def wait(self, job: str, poll: float = 0.5,
             timeout: float = 600.0) -> dict:
        """Poll until ``job`` reaches a terminal state; final results."""
        reply = None
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            reply = self.results(job)
            if reply.get("type") == "error":
                raise FuzzerError(reply["reason"])
            if reply["state"] in TERMINAL_STATES:
                return reply
            time.sleep(poll)
        state = reply.get("state") if reply else None
        raise FuzzerError(f"job {job} still {state!r} after "
                          f"{timeout:g}s")

    def close(self) -> None:
        try:
            self.stream.send({"type": "bye"})
        except TransportError:
            pass
        self.stream.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parse_address(value: str) -> tuple:
    """``host:port`` -> (host, port); the CLI's --listen/--connect."""
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise FuzzerError(f"address must be host:port, got {value!r}")
    try:
        return host, int(port)
    except ValueError:
        raise FuzzerError(f"port in {value!r} is not an integer") from None
