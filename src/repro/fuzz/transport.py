"""Fleet worker transports: spawn processes or TCP/JSONL peers.

The :class:`~repro.fuzz.supervisor.FleetSupervisor` historically owned
its workers directly — ``spawn``-context processes plus one private
queue per attempt.  This module abstracts that channel behind a
:class:`WorkerTransport` so the same supervision loop (heartbeats,
death rulings, backoff, checkpoint-resume, degradation) drives workers
it cannot ``SIGKILL`` because they live on another host:

:class:`SpawnTransport`
    Today's behavior, byte-identical, still the default: each
    ``launch`` spawns a fresh process running ``worker_main`` with a
    fresh queue (see the supervisor's poisoned-queue rationale).

:class:`TcpJsonlTransport`
    A listening socket speaking a length-prefixed JSONL wire protocol.
    Remote hosts join the fleet with ``repro worker --connect
    HOST:PORT``; each connected client runs one job at a time via the
    exact :func:`repro.fuzz.worker._run_job` code path the spawn
    workers use, so merged fleet results stay byte-identical to a
    sequential sweep regardless of where workers run (CI-enforced).
    When no remote worker is idle, jobs degrade gracefully to local
    spawn processes (``spawn_fallback``, on by default).

Wire format — one frame per protocol message::

    RJ1 <len:08x> <crc32:08x>\\n<payload JSON>\\n

The 22-byte ASCII header carries the payload length and its CRC32; the
payload is one compact ``sort_keys`` JSON object, newline-terminated so
a captured stream reads as JSONL.  A CRC mismatch is a *skippable*
:class:`~repro.errors.TransportError` (``kind="crc"``): the length
prefix already advanced the parser past the bad bytes, so the
connection survives.  A broken header or a mid-frame EOF is
``kind="framing"``/``"closed"`` — the connection is dead and the
client's reconnect loop (exponential backoff + jitter) takes over.

Frame types: ``hello``/``welcome``/``error`` (version + auth-token
handshake, rejections are permanent — clients must not retry),
``job`` (dispatch; payload is :meth:`CampaignJob.payload` plus custody
fields), ``event`` (the worker tuple stream: ``started``,
``heartbeat``, ``metrics``, ``result``, ``failed``, plus the custody
kinds ``checkpoint_sync``/``corpus_sync``), ``ack`` (server receipt
for terminal events — at-least-once delivery), ``idle`` (client
keepalive) and ``bye``.

Delivery contract: terminal events are retransmitted until acked, so
the supervisor may see the same result twice — attempt-id idempotence
(the supervisor drops terminal messages for jobs already ``done``)
makes the duplicate harmless, and determinism makes even a *stale
attempt's* result byte-identical to the live one.  Checkpoint custody:
the server owns checkpoint files; job frames carry the checkpoint
*state* out, ``checkpoint_sync`` events carry each fresh state (plus
the corpus bundle it references) home, so a reassigned job resumes
exactly where the dead remote got to.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import zlib
from queue import Empty, Queue
from typing import Callable, List, Optional

from repro.errors import TransportError

#: wire protocol revision; mismatches are rejected at hello time
PROTOCOL_VERSION = 1
#: frame header: b"RJ1 " + 8-hex length + b" " + 8-hex crc32 + b"\n"
MAGIC = b"RJ1 "
HEADER_LEN = 22
#: hard cap on a single frame's payload (corpus bundles ride inline)
MAX_FRAME = 1 << 28


# ----------------------------------------------------------------------
# frame codec
# ----------------------------------------------------------------------
def encode_frame(obj: dict) -> bytes:
    """Serialize one protocol message to its wire bytes."""
    body = json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise TransportError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME}-byte cap", kind="framing",
        )
    header = b"%s%08x %08x\n" % (MAGIC, len(body), zlib.crc32(body))
    return header + body + b"\n"


def _parse_header(header: bytes) -> tuple:
    """(payload length, expected crc) from one 22-byte header."""
    if not header.startswith(MAGIC) or header[12:13] != b" " \
            or header[21:22] != b"\n":
        raise TransportError(
            f"bad frame header {header[:12]!r}", kind="framing"
        )
    try:
        length = int(header[4:12], 16)
        crc = int(header[13:21], 16)
    except ValueError as exc:
        raise TransportError(
            f"non-hex frame header field: {exc}", kind="framing"
        ) from exc
    if length > MAX_FRAME:
        raise TransportError(
            f"frame announces {length} bytes, cap is {MAX_FRAME}",
            kind="framing",
        )
    return length, crc


class FrameStream:
    """Framed JSON messages over one socket, with byte counters.

    ``send`` is thread-safe (the client's heartbeat thread and its job
    loop share the stream); ``recv`` belongs to a single reader.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._buf = b""
        self._send_lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0
        self._closed = False

    # -- sending ------------------------------------------------------
    def send(self, obj: dict) -> None:
        self.send_bytes(encode_frame(obj))

    def send_bytes(self, raw: bytes) -> None:
        """Ship pre-encoded frame bytes (the chaos wrapper's hook)."""
        with self._send_lock:
            if self._closed:
                raise TransportError("stream is closed", kind="closed")
            try:
                self.sock.sendall(raw)
            except OSError as exc:
                raise TransportError(
                    f"send failed: {exc}", kind="closed"
                ) from exc
            self.bytes_sent += len(raw)

    # -- receiving ----------------------------------------------------
    def recv(self, timeout: float = 1.0) -> Optional[dict]:
        """The next frame, or None if the wire stays idle past ``timeout``.

        Raises :class:`TransportError` — ``kind="crc"`` for a frame
        whose payload failed its checksum or JSON decode (the parser
        has already advanced past it; callers may skip and keep the
        connection), ``kind="framing"``/``"closed"`` when the byte
        stream itself is broken or the peer is gone.
        """
        deadline = time.monotonic() + timeout
        while True:
            frame = self._parse_one()
            if frame is not None:
                return frame
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                self.sock.settimeout(remaining)
                chunk = self.sock.recv(1 << 16)
            except socket.timeout:
                return None
            except OSError as exc:
                raise TransportError(
                    f"receive failed: {exc}", kind="closed"
                ) from exc
            if not chunk:
                if self._buf:
                    raise TransportError(
                        "connection closed mid-frame", kind="framing"
                    )
                raise TransportError(
                    "peer closed the connection", kind="closed"
                )
            self._buf += chunk
            self.bytes_received += len(chunk)

    def _parse_one(self) -> Optional[dict]:
        """Pop one complete frame off the buffer, if present."""
        if len(self._buf) < HEADER_LEN:
            return None
        length, crc = _parse_header(self._buf[:HEADER_LEN])
        total = HEADER_LEN + length + 1
        if len(self._buf) < total:
            return None
        body = self._buf[HEADER_LEN:HEADER_LEN + length]
        separator = self._buf[total - 1:total]
        # the parser advances BEFORE validating the payload: a bad CRC
        # must not desynchronize framing, or one flipped byte would
        # poison every later frame
        self._buf = self._buf[total:]
        if separator != b"\n":
            raise TransportError(
                "frame missing its newline separator", kind="framing"
            )
        if zlib.crc32(body) != crc:
            raise TransportError(
                f"frame CRC mismatch ({len(body)} bytes)", kind="crc"
            )
        try:
            obj = json.loads(body)
        except ValueError as exc:
            raise TransportError(
                f"frame payload is not JSON: {exc}", kind="crc"
            ) from exc
        if not isinstance(obj, dict):
            raise TransportError(
                f"frame payload is {type(obj).__name__}, not an object",
                kind="crc",
            )
        return obj

    def close(self) -> None:
        with self._send_lock:
            self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


def exit_cause_of(exitcode: Optional[int]) -> str:
    """Human-readable worker exit classification (spawn transport)."""
    import signal as _signal

    if exitcode is None:
        return "exit:unknown"
    if exitcode < 0:
        try:
            return f"signal:{_signal.Signals(-exitcode).name}"
        except ValueError:
            return f"signal:{-exitcode}"
    return f"exit:{exitcode}"


# ----------------------------------------------------------------------
# transport interface
# ----------------------------------------------------------------------
class AttemptHandle:
    """One in-flight job attempt, however its worker is reached.

    The supervisor only ever talks to attempts through this surface:
    ``poll`` drains the worker's ``(kind, job_id, attempt, payload)``
    message tuples, ``alive`` feeds the liveness loop, ``abrupt``
    says whether a dead attempt can still have a terminal message in
    flight (signal deaths and TCP disconnects cannot), ``exit_cause``
    words the death ruling, ``kill``/``close`` end and reap it.
    """

    pid: Optional[int] = None
    where: str = "unknown"

    def poll(self) -> List[tuple]:
        raise NotImplementedError

    def alive(self) -> bool:
        raise NotImplementedError

    def abrupt(self) -> bool:
        raise NotImplementedError

    def exit_cause(self) -> str:
        raise NotImplementedError

    def kill(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class WorkerTransport:
    """Factory for :class:`AttemptHandle`\\ s plus lifetime bookkeeping."""

    def launch(self, payload: dict) -> Optional[AttemptHandle]:
        """Start one attempt; ``None`` = no capacity right now (the
        supervisor leaves the job waiting and retries next poll)."""
        raise NotImplementedError

    def stats(self) -> Optional[dict]:
        """Transport counters for diagnostics; ``None`` = nothing to say."""
        return None

    def close(self) -> None:
        """Release sockets/processes the transport still owns."""


# ----------------------------------------------------------------------
# spawn transport (the default; byte-identical to the pre-transport fleet)
# ----------------------------------------------------------------------
class _SpawnAttempt(AttemptHandle):
    where = "spawn"

    def __init__(self, ctx, payload: dict):
        from repro.fuzz.worker import worker_main

        #: fresh queue per attempt: a SIGKILL mid-``put`` can leave a
        #: queue's shared write-lock held forever, and a shared queue
        #: would wedge every other worker's messages with it
        self.queue = ctx.Queue()
        self.process = ctx.Process(
            target=worker_main,
            args=(payload, self.queue),
            name=f"fleet-{payload['job_id']}-a{payload['attempt']}",
            daemon=True,
        )
        self.process.start()
        self.pid = self.process.pid

    def poll(self) -> List[tuple]:
        messages = []
        if self.queue is None:
            return messages
        while True:
            try:
                messages.append(self.queue.get_nowait())
            except Empty:
                break
            except Exception:
                # a killed worker can leave its (private) queue holding
                # a truncated pickle; the liveness check will rule on
                # the death, nothing to drain here
                break
        return messages

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def abrupt(self) -> bool:
        exitcode = None if self.process is None else self.process.exitcode
        return exitcode is not None and exitcode < 0

    def exit_cause(self) -> str:
        return exit_cause_of(
            None if self.process is None else self.process.exitcode
        )

    def kill(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.kill()

    def close(self) -> None:
        if self.process is not None:
            self.process.join(timeout=5)
            self.process = None
        if self.queue is not None:
            self.queue.cancel_join_thread()
            self.queue.close()
            self.queue = None


class SpawnTransport(WorkerTransport):
    """Local ``spawn``-context worker processes (the default)."""

    def __init__(self):
        self._ctx = None

    def launch(self, payload: dict) -> AttemptHandle:
        if self._ctx is None:
            import multiprocessing

            self._ctx = multiprocessing.get_context("spawn")
        return _SpawnAttempt(self._ctx, payload)


# ----------------------------------------------------------------------
# TCP/JSONL transport — server side
# ----------------------------------------------------------------------
class _Assignment:
    """Server-side record of one job attempt running on a remote."""

    __slots__ = ("job_id", "attempt", "sink", "finished")

    def __init__(self, job_id: str, attempt: int):
        self.job_id = job_id
        self.attempt = attempt
        self.sink: Queue = Queue()
        self.finished = False


class _RemoteWorker:
    """One connected ``repro worker`` client."""

    def __init__(self, name: str, stream: FrameStream, sequence: int):
        self.name = name
        self.stream = stream
        self.sequence = sequence
        self.connected = True
        self.death_reason: Optional[str] = None
        self.assignment: Optional[_Assignment] = None
        #: (job_id, attempt) pairs whose terminal event was acked —
        #: a second arrival is a client retransmission
        self.acked = set()
        self.lock = threading.Lock()

    def fail(self, reason: str) -> None:
        with self.lock:
            self.connected = False
            if self.death_reason is None:
                self.death_reason = reason
        self.stream.close()


class _RemoteAttempt(AttemptHandle):
    """Supervisor handle for a job dispatched over TCP."""

    def __init__(self, worker: _RemoteWorker, assignment: _Assignment,
                 pid: Optional[int]):
        self.worker = worker
        self.assignment = assignment
        self.pid = pid
        self.where = f"remote:{worker.name}"

    def poll(self) -> List[tuple]:
        messages = []
        while True:
            try:
                messages.append(self.assignment.sink.get_nowait())
            except Empty:
                break
        return messages

    def alive(self) -> bool:
        # the attempt lives while its connection is up and no terminal
        # event has arrived; a finished attempt with messages still in
        # the sink stays pollable until close()
        if self.assignment.finished:
            return False
        return self.worker.connected and \
            self.worker.assignment is self.assignment

    def abrupt(self) -> bool:
        # a broken connection can never deliver a terminal message on
        # this assignment's sink: the pended result will arrive on a
        # NEW connection and be deduped by attempt id — rule now
        return not self.assignment.finished

    def exit_cause(self) -> str:
        if self.worker.death_reason is not None:
            return f"remote-disconnect:{self.worker.name}:" \
                   f"{self.worker.death_reason}"
        return f"remote-done:{self.worker.name}"

    def kill(self) -> None:
        # no SIGKILL across hosts: dropping the connection both stops
        # the supervisor trusting this attempt and tells the client (at
        # its next send) to pend its result and reconnect
        self.worker.fail("killed by supervisor")

    def close(self) -> None:
        with self.worker.lock:
            if self.worker.assignment is self.assignment:
                self.worker.assignment = None


class TcpJsonlTransport(WorkerTransport):
    """Listen for ``repro worker --connect`` clients and dispatch jobs.

    ``token`` (optional) must match each client's hello frame.
    ``spawn_fallback`` (default on) launches a local spawn worker when
    no remote is idle, so a fleet whose remote hosts never return still
    completes — degradation, not deadlock.  Counters surface as
    ``fleet.transport.*`` and in ``FleetDiagnostics.transport``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 token: Optional[str] = None, *,
                 spawn_fallback: bool = True,
                 handshake_timeout: float = 10.0):
        self.token = token
        self.spawn_fallback = spawn_fallback
        self.handshake_timeout = handshake_timeout
        self._spawn: Optional[SpawnTransport] = None
        self._workers: dict = {}
        self._lock = threading.Lock()
        self._closing = False
        self._sequence = 0
        # counters (summed under self._lock or monotonically bumped)
        self.connects = 0
        self.reconnects = 0
        self.frames_dropped = 0
        self.resends = 0
        self.remote_attempts = 0
        self.spawn_fallbacks = 0
        self._bytes_sent = 0
        self._bytes_received = 0
        self._listener = socket.create_server(
            (host, port), backlog=16, reuse_port=False
        )
        self._listener.settimeout(0.25)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fleet-tcp-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- connection intake --------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                sock, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_connection, args=(sock,),
                name="fleet-tcp-conn", daemon=True,
            ).start()

    def _serve_connection(self, sock: socket.socket) -> None:
        stream = FrameStream(sock)
        worker = None
        try:
            worker = self._handshake(stream)
            if worker is None:
                return
            self._reader_loop(worker)
        except TransportError:
            if worker is not None:
                worker.fail("handshake stream broke")
        finally:
            self._retire_stream(stream)
            if worker is not None and worker.connected:
                worker.fail("connection closed")

    def _handshake(self, stream: FrameStream) -> Optional[_RemoteWorker]:
        deadline = time.monotonic() + self.handshake_timeout
        hello = None
        while hello is None and time.monotonic() < deadline:
            hello = stream.recv(timeout=self.handshake_timeout)
        if hello is None or hello.get("type") != "hello":
            stream.close()
            return None
        if hello.get("version") != PROTOCOL_VERSION:
            stream.send({"type": "error", "reason": "version-mismatch",
                         "server_version": PROTOCOL_VERSION})
            stream.close()
            return None
        if self.token is not None and hello.get("token") != self.token:
            stream.send({"type": "error", "reason": "auth-failed"})
            stream.close()
            return None
        with self._lock:
            self._sequence += 1
            name = hello.get("name") or f"w{self._sequence:02d}"
            previous = self._workers.get(name)
            if previous is not None:
                # same name reattaching: the old connection is stale
                # (its reader will exit); every in-flight supervisor
                # handle on it reads as dead and triggers reassignment
                self.reconnects += 1
            worker = _RemoteWorker(name, stream, self._sequence)
            self._workers[name] = worker
            self.connects += 1
        if previous is not None:
            previous.fail("superseded by reconnect")
        stream.send({"type": "welcome", "version": PROTOCOL_VERSION,
                     "name": name})
        return worker

    def _reader_loop(self, worker: _RemoteWorker) -> None:
        stream = worker.stream
        while worker.connected and not self._closing:
            try:
                frame = stream.recv(timeout=0.5)
            except TransportError as exc:
                if exc.kind == "crc":
                    # length-intact bad payload: skip the frame, keep
                    # the connection (the client retransmits terminal
                    # events until acked, so nothing critical is lost)
                    with self._lock:
                        self.frames_dropped += 1
                    continue
                worker.fail(str(exc))
                return
            if frame is None:
                continue
            frame_type = frame.get("type")
            if frame_type == "bye":
                worker.fail("bye")
                return
            if frame_type == "idle":
                continue
            if frame_type == "event":
                self._route_event(worker, frame)

    def _route_event(self, worker: _RemoteWorker, frame: dict) -> None:
        kind = frame.get("kind")
        job_id = frame.get("job")
        attempt = frame.get("attempt")
        payload = frame.get("payload") or {}
        terminal = kind in ("result", "failed")
        if terminal:
            key = (job_id, attempt)
            with worker.lock:
                duplicate = key in worker.acked
                worker.acked.add(key)
            if duplicate:
                with self._lock:
                    self.resends += 1
            try:
                worker.stream.send({"type": "ack", "job": job_id,
                                    "attempt": attempt})
            except TransportError:
                worker.fail("ack send failed")
        with worker.lock:
            assignment = worker.assignment
            deliver = (assignment is not None
                       and assignment.job_id == job_id)
            if deliver and terminal and attempt == assignment.attempt:
                assignment.finished = True
                worker.assignment = None
        if deliver:
            assignment.sink.put((kind, job_id, attempt, payload))
        # events with no matching assignment are stale retransmissions
        # of an attempt the supervisor already ruled on; the ack above
        # stops the resend loop and idempotence makes the drop safe

    def _retire_stream(self, stream: FrameStream) -> None:
        with self._lock:
            self._bytes_sent += stream.bytes_sent
            self._bytes_received += stream.bytes_received

    # -- dispatch ------------------------------------------------------
    def wait_for_workers(self, count: int, timeout: float = 30.0) -> bool:
        """Block until ``count`` remote workers are connected and idle."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                idle = sum(
                    1 for worker in self._workers.values()
                    if worker.connected and worker.assignment is None
                )
            if idle >= count:
                return True
            time.sleep(0.05)
        return False

    def launch(self, payload: dict) -> Optional[AttemptHandle]:
        assignment = _Assignment(payload["job_id"], payload["attempt"])
        with self._lock:
            candidates = sorted(
                (worker for worker in self._workers.values()
                 if worker.connected and worker.assignment is None),
                key=lambda worker: worker.sequence,
            )
            chosen = candidates[0] if candidates else None
            if chosen is not None:
                chosen.assignment = assignment
                self.remote_attempts += 1
        if chosen is None:
            if not self.spawn_fallback:
                return None
            if self._spawn is None:
                self._spawn = SpawnTransport()
            with self._lock:
                self.spawn_fallbacks += 1
            return self._spawn.launch(payload)
        try:
            job = self._prepare_remote_payload(payload)
            chosen.stream.send({"type": "job", "payload": job})
        except TransportError as exc:
            chosen.fail(f"job dispatch failed: {exc}")
            with chosen.lock:
                chosen.assignment = None
            return None
        return _RemoteAttempt(chosen, assignment, pid=None)

    def _prepare_remote_payload(self, payload: dict) -> dict:
        """Attach custody state a remote host cannot read from disk.

        Checkpoints: the supervisor's filesystem owns the truth; the
        job frame carries the current state out and ``checkpoint_sync``
        events carry fresh states back, so reassignment after a remote
        death resumes exactly as a local restart would.  Single-writer
        corpus stores travel the same way as inline bundles.  *Shard*
        jobs keep their ``corpus_dir`` untouched — the sharded fleet's
        determinism contract requires every shard to see the same
        shared store, so TCP shard workers must share a filesystem
        with the supervisor (see ``docs/robustness.md``).
        """
        job = dict(payload)
        path = job.get("checkpoint_path")
        if path is not None:
            from repro.errors import CheckpointError
            from repro.fuzz.checkpoint import load_checkpoint

            state = None
            corrupt = None
            try:
                state = load_checkpoint(path)
            except CheckpointError as exc:
                corrupt = str(exc)
            job["checkpoint_remote"] = True
            job["checkpoint_state"] = state
            job["checkpoint_corrupt_upstream"] = corrupt
        if job.get("corpus_dir") is not None \
                and job.get("shard_count") is None:
            from repro.corpus import CorpusStore

            store = CorpusStore(job["corpus_dir"],
                                firmware=job["firmware"])
            job["corpus_remote"] = True
            job["corpus_bundle"] = store.export_bundle_obj()
            job["corpus_dir"] = None
        return job

    # -- bookkeeping ---------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            live = [
                worker.stream
                for worker in self._workers.values()
                if worker.connected
            ]
            return {
                "mode": "tcp",
                "address": self.address,
                "connects": self.connects,
                "reconnects": self.reconnects,
                "frames_dropped": self.frames_dropped,
                "resends": self.resends,
                "remote_attempts": self.remote_attempts,
                "spawn_fallbacks": self.spawn_fallbacks,
                "bytes_sent": self._bytes_sent
                + sum(stream.bytes_sent for stream in live),
                "bytes_received": self._bytes_received
                + sum(stream.bytes_received for stream in live),
            }

    def close(self) -> None:
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            workers = list(self._workers.values())
        for worker in workers:
            if worker.connected:
                try:
                    worker.stream.send({"type": "bye"})
                except TransportError:
                    pass
            worker.fail("server closed")
        if self._spawn is not None:
            self._spawn.close()
        self._accept_thread.join(timeout=2)


# ----------------------------------------------------------------------
# TCP/JSONL transport — client side (`repro worker --connect`)
# ----------------------------------------------------------------------
class WorkerStats:
    """What one :func:`run_worker` lifetime did, for logs and tests."""

    def __init__(self):
        self.jobs_run = 0
        self.jobs_failed = 0
        self.reconnects = 0
        self.resends = 0
        self.checkpoints_synced = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def to_json(self) -> dict:
        return dict(self.__dict__)


def _client_handshake(host: str, port: int, token: Optional[str],
                      name: Optional[str], reconnects: int,
                      connect_timeout: float) -> tuple:
    """Dial, hello, await welcome; returns (stream, assigned name)."""
    try:
        sock = socket.create_connection((host, port),
                                        timeout=connect_timeout)
    except OSError as exc:
        raise TransportError(
            f"cannot reach {host}:{port}: {exc}", kind="closed"
        ) from exc
    stream = FrameStream(sock)
    try:
        stream.send({
            "type": "hello",
            "version": PROTOCOL_VERSION,
            "token": token,
            "name": name,
            "pid": os.getpid(),
            "reconnects": reconnects,
        })
        reply = stream.recv(timeout=connect_timeout)
        if reply is None:
            raise TransportError("no welcome from server", kind="closed")
        if reply.get("type") == "error":
            reason = reply.get("reason", "rejected")
            kind = "auth" if reason == "auth-failed" else "version"
            raise TransportError(
                f"server rejected handshake: {reason}", kind=kind
            )
        if reply.get("type") != "welcome" \
                or reply.get("version") != PROTOCOL_VERSION:
            raise TransportError(
                f"unexpected handshake reply {reply.get('type')!r}",
                kind="framing",
            )
    except TransportError:
        stream.close()
        raise
    return stream, reply.get("name") or name


def _send_event(stream, job_id: str, attempt: int, kind: str,
                payload: dict) -> None:
    stream.send({"type": "event", "kind": kind, "job": job_id,
                 "attempt": attempt, "payload": payload})


def _await_ack(stream, job_id: str, attempt: int, timeout: float,
               held: List[dict]) -> bool:
    """True once the server acks this attempt's terminal event.

    The server marks a worker idle the moment it routes the terminal
    event, so the *next* job frame can arrive before the ack is read;
    anything that is not our ack is parked in ``held`` for the main
    loop to process in arrival order.
    """
    deadline = time.monotonic() + timeout
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        try:
            frame = stream.recv(timeout=remaining)
        except TransportError as exc:
            if exc.kind == "crc":
                continue
            raise
        if frame is None:
            return False
        if frame.get("type") == "ack" and frame.get("job") == job_id \
                and frame.get("attempt") == attempt:
            return True
        if frame.get("type") in ("job", "bye"):
            held.append(frame)


def _stage_job(job: dict, scratch: str) -> dict:
    """Materialize a job frame's custody payloads on local disk."""
    job = dict(job)
    if job.get("checkpoint_remote"):
        local = os.path.join(scratch, "checkpoint.json")
        state = job.get("checkpoint_state")
        if state is not None:
            from repro.fuzz.checkpoint import write_checkpoint_state

            write_checkpoint_state(local, state)
        job["checkpoint_path"] = local
    if job.get("corpus_remote"):
        from repro.corpus import CorpusStore

        local = os.path.join(scratch, "corpus")
        store = CorpusStore(local, firmware=job["firmware"])
        bundle = job.get("corpus_bundle")
        if bundle:
            store.import_bundle_obj(bundle, source="fleet-job")
        job["corpus_dir"] = local
    for key in ("checkpoint_state", "corpus_bundle"):
        job.pop(key, None)
    return job


class _JobSession:
    """Client-side execution of one job frame."""

    def __init__(self, stream, job: dict, stats: WorkerStats):
        self.stream = stream
        self.job = job
        self.stats = stats
        self.job_id = job["job_id"]
        self.attempt = job.get("attempt", 1)
        #: set when a send fails mid-job: the campaign keeps running
        #: (its result is still wanted) but no further frames go out
        self.conn_dead = threading.Event()

    def _send(self, kind: str, payload: dict) -> bool:
        if self.conn_dead.is_set():
            return False
        try:
            _send_event(self.stream, self.job_id, self.attempt, kind,
                        payload)
            return True
        except TransportError:
            self.conn_dead.set()
            return False

    def _heartbeat_loop(self, interval: float,
                        stop: threading.Event) -> None:
        start = time.monotonic()
        while not stop.wait(interval):
            if not self._send("heartbeat", {
                "pid": os.getpid(),
                "elapsed": round(time.monotonic() - start, 3),
            }):
                return

    def run(self, scratch: str) -> tuple:
        """Execute the job; returns (terminal kind, terminal payload)."""
        from repro.errors import CheckpointError
        from repro.fuzz.checkpoint import load_checkpoint, result_to_json
        from repro.fuzz.worker import _run_job

        job = _stage_job(self.job, scratch)
        upstream_corrupt = self.job.get("checkpoint_corrupt_upstream")
        resumed_execs = None
        path = job.get("checkpoint_path")
        if path is not None and upstream_corrupt is None:
            try:
                state = load_checkpoint(path)
                if state is not None:
                    resumed_execs = state.get("execs")
            except CheckpointError as exc:
                upstream_corrupt = str(exc)
        self._send("started", {
            "pid": os.getpid(),
            "resumed_execs": resumed_execs,
            "checkpoint_corrupt": upstream_corrupt,
        })
        stop = threading.Event()
        beats = threading.Thread(
            target=self._heartbeat_loop,
            args=(job.get("heartbeat_interval", 1.0), stop),
            name=f"heartbeat-{self.job_id}",
            daemon=True,
        )
        beats.start()
        on_checkpoint_saved = None
        if self.job.get("checkpoint_remote"):
            def on_checkpoint_saved(saved_path: str) -> None:
                self._sync_checkpoint(saved_path, job.get("corpus_dir")
                                      if self.job.get("corpus_remote")
                                      else None)
        observer = None
        if job.get("observe"):
            from repro.obs import Observer

            observer = Observer(process_name=f"worker:{self.job_id}")
        try:
            result = _run_job(job, observer=observer,
                              on_checkpoint_saved=on_checkpoint_saved)
        except Exception as exc:  # noqa: BLE001 - shipped as `failed`
            import traceback

            stop.set()
            return "failed", {
                "pid": os.getpid(),
                "exc_type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(limit=20),
            }
        stop.set()
        if observer is not None:
            self._send("metrics", observer.export())
        if self.job.get("corpus_remote") and job.get("corpus_dir"):
            self._sync_corpus(job["corpus_dir"])
        return "result", result_to_json(result)

    def _sync_checkpoint(self, saved_path: str,
                         corpus_dir: Optional[str]) -> None:
        try:
            with open(saved_path, "r", encoding="utf-8") as fh:
                state = json.load(fh)
        except (OSError, ValueError):
            return
        bundle = None
        if corpus_dir is not None:
            from repro.corpus import CorpusStore

            bundle = CorpusStore(
                corpus_dir, firmware=self.job["firmware"]
            ).export_bundle_obj()
        if self._send("checkpoint_sync",
                      {"state": state, "corpus": bundle}):
            self.stats.checkpoints_synced += 1

    def _sync_corpus(self, corpus_dir: str) -> None:
        from repro.corpus import CorpusStore

        bundle = CorpusStore(
            corpus_dir, firmware=self.job["firmware"]
        ).export_bundle_obj()
        self._send("corpus_sync", {"bundle": bundle})


def run_worker(
    host: str,
    port: int,
    *,
    token: Optional[str] = None,
    name: Optional[str] = None,
    reconnect_base: float = 0.5,
    reconnect_factor: float = 2.0,
    reconnect_max: float = 15.0,
    jitter: float = 0.25,
    max_reconnects: Optional[int] = None,
    max_jobs: Optional[int] = None,
    seed: int = 0,
    chaos=None,
    stop: Optional[threading.Event] = None,
    connect_timeout: float = 10.0,
    recv_timeout: float = 1.0,
    ack_timeout: float = 10.0,
    max_resends: int = 3,
    log: Callable[[str], None] = lambda line: None,
) -> WorkerStats:
    """Serve fleet jobs from ``host:port`` until told to stop.

    The client dials, handshakes, then loops: receive a ``job`` frame,
    run it through the same ``_run_job`` path a spawn worker uses
    (heartbeating from a daemon thread), deliver the terminal event and
    wait for the server's ``ack``.  A broken connection at any point
    pends the unacked terminal event and re-dials with exponential
    backoff (``reconnect_base * reconnect_factor**n``, capped at
    ``reconnect_max``) plus seeded jitter; after reconnect, pended
    events are retransmitted first — the server acks and dedups them by
    attempt id.  ``version``/``auth`` rejections are permanent and
    raise instead of retrying.

    ``chaos`` (a :class:`repro.fuzz.chaos.ChaosPlan` or DSL string)
    wraps each connection's send side for failure-matrix testing; the
    plan object persists across reconnects so ``nth`` counters keep
    advancing.  ``stop`` ends the loop at the next safe point;
    ``max_jobs`` ends it after that many completed jobs.
    """
    import random
    import tempfile

    from repro.fuzz.chaos import ChaosFrameStream, chaos_plan_for

    stats = WorkerStats()
    rng = random.Random(seed)
    plan = chaos_plan_for(chaos, seed=seed)
    pending: List[tuple] = []  # [(kind, payload, job_id, attempt)]
    failures = 0

    def _backoff() -> bool:
        """Sleep out one reconnect delay; False = give up."""
        nonlocal failures
        if max_reconnects is not None and stats.reconnects >= max_reconnects:
            return False
        delay = min(reconnect_max,
                    reconnect_base * (reconnect_factor ** failures))
        delay += delay * jitter * rng.random()
        failures += 1
        stats.reconnects += 1
        deadline = time.monotonic() + delay
        while time.monotonic() < deadline:
            if stop is not None and stop.is_set():
                return False
            time.sleep(min(0.05, max(0.001,
                                     deadline - time.monotonic())))
        return True

    while stop is None or not stop.is_set():
        if max_jobs is not None and stats.jobs_run >= max_jobs:
            break
        try:
            stream, assigned = _client_handshake(
                host, port, token, name, stats.reconnects, connect_timeout
            )
        except TransportError as exc:
            if exc.kind in ("version", "auth"):
                raise
            if not _backoff():
                break
            continue
        name = assigned
        failures = 0
        if plan is not None:
            stream = ChaosFrameStream(stream, plan)
        log(f"connected to {host}:{port} as {name}")
        held: List[dict] = []
        try:
            # retransmit unacked terminal events from the last life
            while pending:
                kind, payload, job_id, attempt = pending[0]
                _send_event(stream, job_id, attempt, kind, payload)
                stats.resends += 1
                if not _await_ack(stream, job_id, attempt, ack_timeout,
                                  held):
                    raise TransportError(
                        "resent terminal event went unacked",
                        kind="closed",
                    )
                pending.pop(0)
            while stop is None or not stop.is_set():
                if max_jobs is not None and stats.jobs_run >= max_jobs:
                    stream.send({"type": "bye"})
                    stream.close()
                    return stats
                if held:
                    frame = held.pop(0)
                else:
                    frame = stream.recv(timeout=recv_timeout)
                if frame is None:
                    stream.send({"type": "idle"})
                    continue
                frame_type = frame.get("type")
                if frame_type == "bye":
                    stream.close()
                    return stats
                if frame_type != "job":
                    continue
                session = _JobSession(stream, frame["payload"], stats)
                with tempfile.TemporaryDirectory(
                        prefix="repro-worker-") as scratch:
                    kind, payload = session.run(scratch)
                stats.jobs_run += 1
                if kind == "failed":
                    stats.jobs_failed += 1
                log(f"job {session.job_id} attempt {session.attempt}: "
                    f"{kind}")
                if session.conn_dead.is_set():
                    pending.append((kind, payload, session.job_id,
                                    session.attempt))
                    raise TransportError(
                        "connection died mid-job", kind="closed"
                    )
                delivered = False
                try:
                    for _ in range(max_resends + 1):
                        _send_event(stream, session.job_id,
                                    session.attempt, kind, payload)
                        if _await_ack(stream, session.job_id,
                                      session.attempt, ack_timeout, held):
                            delivered = True
                            break
                        stats.resends += 1
                except TransportError:
                    # the wire broke while delivering: pend the terminal
                    # event so the reconnect flush retransmits it
                    pending.append((kind, payload, session.job_id,
                                    session.attempt))
                    raise
                if not delivered:
                    pending.append((kind, payload, session.job_id,
                                    session.attempt))
                    raise TransportError(
                        "terminal event went unacked", kind="closed"
                    )
        except TransportError as exc:
            if exc.kind in ("version", "auth"):
                raise
            log(f"connection lost ({exc}); reconnecting")
            if not _backoff():
                break
            continue
        finally:
            stats.bytes_sent += getattr(stream, "bytes_sent", 0)
            stats.bytes_received += getattr(stream, "bytes_received", 0)
            stream.close()
    return stats
