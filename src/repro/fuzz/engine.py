"""The coverage-guided fuzzing engine shared by both fuzzers.

Syzkaller and Tardis differ in interface style (syscall table vs task
API), coverage source (kcov vs emulator events) and target OS — the
mutation/corpus/crash-triage loop is the same, so it lives here once.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional

from repro.emulator.snapshot import Checkpoint, ForkServer
from repro.errors import FuzzerError, GuestFault, GuestHang
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.diagnostics import CrashRecord, capture_crash
from repro.fuzz.ifspec import INTERESTING, InterfaceSpec
from repro.fuzz.program import (
    Mutator,
    Program,
    ResourcePool,
    resolve_args,
)
from repro.sanitizers.runtime.reports import BugType, SanitizerReport

#: host-level crashes tolerated before a campaign degrades to skip mode
DEFAULT_CRASH_BUDGET = 25
#: default per-program watchdog budgets armed by the fuzzer frontends;
#: generous (3+ orders of magnitude above a normal program) so only a
#: genuinely wedged guest trips
DEFAULT_WATCHDOG_INSNS = 2_000_000
DEFAULT_WATCHDOG_CYCLES = 5_000_000

#: target reset strategies: per-program journal + rebuild-per-refresh,
#: or a golden fork-server snapshot with dirty-page delta restores
EXEC_MODES = ("journal", "forkserver")

#: fuzz surfaces a frontend can target: the default syscall/task API,
#: or the driver-op surface of a driver=True build (modeled peripherals)
SURFACES = ("syscall", "driver")


class Finding:
    """One deduplicated bug found during a campaign.

    ``context`` holds the programs executed earlier in the same target
    session — multi-input state bugs (mount in one input, trigger in a
    later one) need them, exactly like syzkaller extracts reproducers
    from its execution log rather than the last program alone.
    """

    def __init__(self, key: tuple, report: SanitizerReport,
                 program: Program, context: Optional[List[Program]] = None,
                 seed: Optional[int] = None):
        self.key = key
        self.report = report
        self.program = program
        self.context: List[Program] = context or []
        self.reproducible = False
        self.reproducer: Optional[List[Program]] = None
        #: campaign RNG seed that produced this finding (exact replay)
        self.seed = seed

    def reproducer_calls(self) -> List:
        """Flattened call list of the minimized reproducer."""
        programs = self.reproducer if self.reproducer is not None else (
            self.context + [self.program]
        )
        return [call for program in programs for call in program.calls]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Finding {self.key} repro={self.reproducible}>"


class FuzzTarget:
    """One live firmware instance under test.

    ``make`` builds a fresh (image, runtime, coverage) triple.

    ``exec_mode`` selects the reset strategy:

    * ``"journal"`` — every program runs behind a journal-backed
      :class:`Checkpoint`, and each refresh rebuilds the target from
      scratch through ``make``.
    * ``"forkserver"`` — a golden :class:`ForkServer` snapshot is
      captured right after the first build; refreshes rewind to it by
      copying back only dirty pages, and programs run without any
      per-write journalling.  Boot is deterministic, so a restore is
      byte-identical to a rebuild — census results match journal mode
      exactly (the CI identity matrix enforces this).
    """

    def __init__(self, make: Callable[[], tuple], exec_mode: str = "journal"):
        if exec_mode not in EXEC_MODES:
            raise FuzzerError(
                f"unknown exec mode {exec_mode!r} "
                f"(expected one of {', '.join(EXEC_MODES)})"
            )
        self.make = make
        self.exec_mode = exec_mode
        self.image = None
        self.runtime = None
        self.coverage: Optional[CoverageMap] = None
        self.rebuilds = 0
        #: fork-server delta restores performed (forkserver mode)
        self.restores = 0
        self.fork_server: Optional[ForkServer] = None
        #: cost of the most recent reset (observability)
        self.last_reset_pages = 0
        self.last_reset_us = 0.0
        self.reset()

    def reset(self) -> None:
        """Return the target to a pristine ready-to-run state.

        Journal mode rebuilds from scratch.  Fork-server mode rewinds
        to the golden snapshot in O(dirty pages); if the delta restore
        ever fails (a region was remapped, a task held a live
        coroutine), it falls back to a full rebuild and captures a
        fresh golden snapshot, so a campaign never dies to a restore.
        """
        if self.fork_server is not None:
            try:
                stats = self.fork_server.restore()
            except Exception:
                self.fork_server.detach()
                self.fork_server = None
            else:
                self.coverage.reset(self._golden_points)
                self.restores += 1
                self.last_reset_pages = stats.pages
                self.last_reset_us = stats.us
                return
        started = time.perf_counter()
        self.image, self.runtime, self.coverage = self.make()
        self.rebuilds += 1
        self.last_reset_pages = 0
        self.last_reset_us = (time.perf_counter() - started) * 1e6
        if self.exec_mode == "forkserver":
            self.fork_server = ForkServer(
                self.image.ctx.machine,
                host_roots=(self.image.kernel, self.image.ctx),
            )
            # boot-time coverage: a rebuild re-collects it, so a restore
            # must rewind the map to it rather than to empty
            self._golden_points = frozenset(self.coverage.points)

    def execute(self, program: Program, style: str) -> Optional[GuestFault]:
        """Run one program; returns the fault when the guest dies.

        In journal mode each program runs behind a journal-backed
        :class:`Checkpoint`: a :class:`GuestFault` (including watchdog
        hangs) is part of normal fuzzing and commits — the engine's
        crash-oracle and refresh logic handle it — but *any other*
        escaping exception rolls guest memory and engine state back to
        the pre-program point before re-raising, so the caller can
        quarantine the input against a machine that is not also
        corrupted.

        In fork-server mode there is no per-program journal — dropping
        the per-write pre-image log is most of the throughput win — and
        the dirty-page restore at the next refresh is the isolation
        boundary instead.  A host-level crash therefore quarantines
        against the crashed (not rolled-back) state; the engine's
        recovery path restores the golden snapshot immediately after.
        """
        ctx = self.image.ctx
        kernel = self.image.kernel
        machine = ctx.machine
        watchdog = machine.watchdog
        if watchdog is not None:
            watchdog.reset()  # budgets are per-program
        checkpoint = (
            Checkpoint(machine) if self.exec_mode == "journal" else None
        )
        pool = ResourcePool()
        try:
            for nr, args, produces in program.resolve():
                concrete = resolve_args(args, pool)
                if style == "syscall":
                    result = kernel.do_syscall(ctx, nr, *concrete)
                elif style == "driver":
                    result = kernel.driver_invoke(ctx, nr, *concrete[:3])
                else:
                    result = kernel.invoke(ctx, nr, *concrete[:3])
                if produces and isinstance(result, int):
                    pool.put(produces, result)
        except GuestFault as fault:
            if checkpoint is not None:
                checkpoint.commit()
            return fault
        except BaseException:
            if checkpoint is not None:
                checkpoint.rollback()
            raise
        if checkpoint is not None:
            checkpoint.commit()
        return None


class FuzzerEngine:
    """Corpus management + mutation + triage."""

    def __init__(
        self,
        target: FuzzTarget,
        spec: InterfaceSpec,
        seed: int = 0,
        refresh_interval: int = 500,
        crash_budget: int = DEFAULT_CRASH_BUDGET,
        fault_plan=None,
        observer=None,
        corpus_store=None,
        seed_schedule: str = "uniform",
        shard=None,
    ):
        from repro.errors import FuzzerError

        self.target = target
        self.spec = spec
        self.seed = seed
        self.rng = random.Random(seed)
        self.mutator = Mutator(self.rng, INTERESTING)
        self.corpus: List[Program] = spec.seed_programs(self.rng)
        #: optional :class:`repro.corpus.CorpusStore`: coverage-novel
        #: programs and crash reproducers persist there, and existing
        #: entries join the corpus (and triage queue) at startup
        self.corpus_store = corpus_store
        #: digests of corpus programs already known to the store
        self._known_digests: set = set()
        #: store entries adopted from other sessions/shards
        self.corpus_imported = 0
        if seed_schedule not in ("uniform", "rarity"):
            raise FuzzerError(
                f"unknown seed schedule {seed_schedule!r} "
                f"(expected 'uniform' or 'rarity')"
            )
        self.seed_schedule = seed_schedule
        self.scheduler = None
        if seed_schedule == "rarity":
            from repro.corpus.scheduler import SeedScheduler

            self.scheduler = SeedScheduler()
        if shard is not None:
            # disjoint seed shards: worker i of n keeps every n-th
            # description-derived seed, so an intra-firmware fleet
            # starts from a partition instead of n identical corpora
            index, count = shard
            if not 0 <= index < count:
                raise FuzzerError(
                    f"shard index {index} outside 0..{count - 1}"
                )
            self.corpus = [
                program for position, program in enumerate(self.corpus)
                if position % count == index
            ]
        self.shard = shard
        if self.scheduler is not None:
            for program in self.corpus:
                self.scheduler.note(program, ())
        if corpus_store is not None:
            from repro.corpus.codec import program_digest

            self._known_digests = {
                program_digest(program) for program in self.corpus
            }
        self.findings: Dict[tuple, Finding] = {}
        self.execs = 0
        self.crashes = 0
        self.refresh_interval = refresh_interval
        #: host-level (non-GuestFault) crashes tolerated before degrading
        self.crash_budget = crash_budget
        self.host_crashes = 0
        self.quarantined: List[CrashRecord] = []
        #: set when the crash budget is exhausted or a rebuild failed;
        #: run() stops early and the campaign records the degradation
        self.degraded = False
        #: the fault plan shared across target rebuilds (its RNG stream
        #: is campaign state and rides along in checkpoints)
        self.fault_plan = fault_plan
        #: watchdog trips harvested from machines discarded by rebuilds
        self._watchdog_trips_retired = 0
        #: optional :class:`repro.obs.Observer`; None costs one attribute
        #: test per step and nothing per access
        self.observer = observer
        if observer is not None:
            observer.watch_machine(self._machine())
        #: seed-corpus programs awaiting their unmutated triage pass;
        #: explicit state so checkpoints can resume mid-triage
        self._triage: List[Program] = [p.clone() for p in self.corpus]
        #: inherited crash reproducers awaiting replay; kept apart from
        #: the plain triage queue because reproducers were minimized
        #: against a *fresh* target and only replay reliably from one
        self._triage_crash: List[Program] = []
        # adopt what earlier campaigns (or sibling shards) already
        # persisted; imports queue into the triage lists above, so
        # inherited entries get their unmutated replay pass too.  A
        # sharded engine imports only generation-zero entries
        # (execs == 0, i.e. distilled seeds), never a sibling's
        # mid-round writes — a fresh restart must see the same store a
        # fresh start did
        if corpus_store is not None:
            self.import_store_entries(
                max_execs=0 if shard is not None else None
            )
        self._execs_since_refresh = 0
        self._current_reports: List[SanitizerReport] = []
        #: programs executed on the current target session (for
        #: multi-input reproducer extraction), most recent last
        self._session: List[Program] = []
        self._listen()

    def _listen(self) -> None:
        sink = getattr(self.target.runtime, "sink", None)
        if sink is not None:
            sink.listeners.append(self._current_reports.append)

    # ------------------------------------------------------------------
    def _generate_program(self) -> Program:
        length = self.rng.randint(1, 6)
        return Program([self.spec.generate_call(self.rng)
                        for _ in range(length)])

    def _pick_input(self) -> Program:
        if self.corpus and self.rng.random() < 0.75:
            if self.scheduler is not None:
                seed = self.scheduler.choose(self.rng)
            else:
                seed = self.rng.choice(self.corpus)
            return self.mutator.mutate(
                seed, lambda: self.spec.generate_call(self.rng)
            )
        return self._generate_program()

    # ------------------------------------------------------------------
    # persistent corpus plumbing (no-ops without a store)
    # ------------------------------------------------------------------
    def import_store_entries(self, triage: bool = True,
                             max_execs: Optional[int] = None) -> int:
        """Adopt store entries this engine does not have yet.

        Entries are imported in digest order (deterministic) and, when
        ``triage`` is set, queued for one unmutated replay — this is
        the receive side of a fleet corpus sync.  ``max_execs`` is the
        sync watermark: entries a sibling shard inserted later than
        this exec count are skipped, so a worker restarted mid-round
        imports exactly what it would have seen at its round boundary
        (sharded determinism survives worker deaths; see
        ``docs/corpus.md``).  Returns the number of programs adopted.
        """
        store = self.corpus_store
        if store is None:
            return 0
        imported = 0
        for digest in store.digests():
            if digest in self._known_digests:
                continue
            if max_execs is not None and \
                    store.entries[digest].execs > max_execs:
                continue
            program = store.get(digest)
            self._known_digests.add(digest)
            self.corpus.append(program)
            if self.scheduler is not None:
                self.scheduler.note(
                    program, store.entries[digest].signature)
            if triage:
                if store.entries[digest].kind == "crash":
                    self._triage_crash.append(program.clone())
                else:
                    self._triage.append(program.clone())
            imported += 1
        self.corpus_imported += imported
        if imported and self.observer is not None:
            self.observer.counter("corpus.imports").inc(imported)
        return imported

    def _corpus_append(self, program: Program, signature) -> None:
        """One new corpus program: list, scheduler, store, metrics."""
        self.corpus.append(program)
        if self.scheduler is not None:
            self.scheduler.note(program, tuple(sorted(signature)))
        if self.corpus_store is not None:
            digest, inserted = self.corpus_store.add(
                program, signature=sorted(signature), kind="cover",
                execs=self.execs,
            )
            self._known_digests.add(digest)
            self._observe_store(inserted)

    def _store_crash(self, program: Program, signature) -> None:
        """Persist a bug-triggering program as a ``crash`` entry."""
        if self.corpus_store is None:
            return
        digest, inserted = self.corpus_store.add(
            program, signature=sorted(signature), kind="crash",
            execs=self.execs,
        )
        self._known_digests.add(digest)
        self._observe_store(inserted)

    def _observe_store(self, inserted: bool) -> None:
        observer = self.observer
        if observer is None:
            return
        if inserted:
            observer.counter("corpus.inserts").inc()
        else:
            observer.counter("corpus.dedup_hits").inc()
        observer.gauge("corpus.size").set(len(self.corpus_store))

    # ------------------------------------------------------------------
    def run(
        self,
        budget: int,
        checkpoint_every: int = 0,
        on_checkpoint=None,
    ) -> "FuzzerEngine":
        """Execute up to ``budget`` fuzz inputs (stops early when degraded).

        The first pass triages the seed corpus as-is (each description-
        derived chain runs once, unmutated) before mutation takes over;
        the triage queue is explicit engine state so a checkpointed run
        resumes exactly where it stopped.

        ``checkpoint_every`` > 0 invokes ``on_checkpoint(self)`` every
        that many execs.  Each boundary also forces a target refresh and
        session clear, making the campaign trajectory a function of the
        (seed, cadence) pair alone — an interrupted-and-resumed run and
        an uninterrupted one produce identical results.
        """
        while self.execs < budget and not self.degraded:
            self.step()
            if (
                checkpoint_every
                and self.execs % checkpoint_every == 0
                and self.execs < budget
            ):
                # deterministic boundary: fresh target + empty session,
                # matching the state a resumed run starts from
                if self._execs_since_refresh:
                    self._fresh_target()
                else:
                    self._session.clear()
                if on_checkpoint is not None:
                    on_checkpoint(self)
        return self

    def step(self, program: Optional[Program] = None) -> None:
        """One fuzz iteration: pick (or take), execute, triage.

        A non-:class:`GuestFault` exception escaping the target is a
        *host-level* crash: the input is quarantined into a
        :class:`CrashRecord`, the (already rolled-back) target is
        rebuilt, and the campaign continues — until ``crash_budget``
        such crashes, after which the engine degrades and stops.
        """
        if program is None:
            if self._triage_crash:
                # replay inherited reproducers the way _replays verified
                # them: against a fresh target (state-dependent bugs
                # rarely fire from a polluted heap)
                program = self._triage_crash.pop(0)
                if self._execs_since_refresh:
                    self._fresh_target()
            elif self._triage:
                program = self._triage.pop(0)
            else:
                program = self._pick_input()
        self.execs += 1
        self._execs_since_refresh += 1
        coverage = self.target.coverage
        coverage.begin_input()
        self._current_reports.clear()
        before_keys = set(self.findings)
        observer = self.observer
        try:
            if observer is not None:
                observer.counter("campaign.execs").inc()
                started = time.perf_counter()
                with observer.span("program:execute", cat="campaign",
                                   args={"exec": self.execs,
                                         "calls": len(program.calls)}):
                    fault = self.target.execute(program, self.spec.style)
                observer.histogram("campaign.program_ms").observe(
                    (time.perf_counter() - started) * 1e3)
            else:
                fault = self.target.execute(program, self.spec.style)
        except Exception as exc:
            self._quarantine(program, exc)
            return

        context = list(self._session[-30:])
        for report in self._current_reports:
            key = report.dedup_key()
            if key not in self.findings:
                self.findings[key] = Finding(key, report, program.clone(),
                                             context=context, seed=self.seed)
        if fault is not None:
            self.crashes += 1
            report = _fault_report(fault)
            key = report.dedup_key()
            if key not in self.findings:
                self.findings[key] = Finding(key, report, program.clone(),
                                             context=context, seed=self.seed)
        elif coverage.new_coverage() > 0:
            self._corpus_append(program, coverage.input_points())
        self._session.append(program.clone())

        new_findings = set(self.findings) - before_keys
        if new_findings:
            self._store_crash(program, coverage.input_points())
        if observer is not None:
            if fault is not None:
                observer.counter("campaign.guest_crashes").inc()
            if new_findings:
                observer.counter("campaign.findings").inc(len(new_findings))
        if fault is not None or new_findings or (
            self.execs % self.refresh_interval == 0
        ):
            # refresh after crashes and findings (contain state
            # pollution) and periodically, like snapshot-restoring
            # fuzzers do
            self._fresh_target()

    def _quarantine(self, program: Program, exc: Exception) -> None:
        """Record a host-level crash and recover (or degrade)."""
        self.host_crashes += 1
        self.quarantined.append(capture_crash(self, program, exc))
        if self.observer is not None:
            self.observer.counter("campaign.host_crashes").inc()
            self.observer.instant("campaign:host_crash", cat="campaign",
                                  args={"exec": self.execs,
                                        "exc": type(exc).__name__})
        if self.host_crashes >= self.crash_budget:
            # graceful degradation, stage 2: stop fuzzing this firmware;
            # the campaign completes with what it has plus diagnostics
            self.degraded = True
            return
        try:
            # stage 1: rebuild — Checkpoint rolled guest memory back,
            # but host-side kernel objects may be inconsistent
            self._fresh_target()
        except Exception:
            self.degraded = True

    def _fresh_target(self) -> None:
        self._watchdog_trips_retired += self._live_watchdog_trips()
        observer = self.observer
        if observer is not None:
            # harvest the machine we are about to discard: each machine
            # is folded into the registry exactly once (the live one is
            # harvested by the campaign at the end)
            observer.harvest_target(self.target)
            observer.counter("campaign.refreshes").inc()
        started = time.perf_counter()
        self.target.reset()
        if observer is not None:
            observer.histogram("campaign.reset_us").observe(
                (time.perf_counter() - started) * 1e6)
            observer.histogram("campaign.reset_pages").observe(
                self.target.last_reset_pages)
        self._session.clear()
        self._execs_since_refresh = 0
        self._listen()
        if observer is not None:
            observer.watch_machine(self._machine())

    def _machine(self):
        """The current target's machine, or None mid-wreckage."""
        try:
            return self.target.image.ctx.machine
        except Exception:
            return None

    def _live_watchdog_trips(self) -> int:
        try:
            watchdog = self.target.image.ctx.machine.watchdog
        except Exception:
            return 0
        return watchdog.trips if watchdog is not None else 0

    def watchdog_trips(self) -> int:
        """Total watchdog trips across every machine this campaign built."""
        return self._watchdog_trips_retired + self._live_watchdog_trips()

    # ------------------------------------------------------------------
    def reproduce_findings(self, minimize_budget: int = 150) -> List[Finding]:
        """Extract a minimized reproducer for every finding.

        Tries the triggering program alone, then progressively longer
        session suffixes (state-dependent bugs), then drop-one
        minimizes the reproducing sequence under an execution budget.
        """
        for finding in self.findings.values():
            base = self._find_reproducing_base(finding)
            if base is None:
                finding.reproducible = False
                continue
            finding.reproducible = True
            finding.reproducer = self._minimize(base, finding.key,
                                                minimize_budget)
        return list(self.findings.values())

    def _find_reproducing_base(self, finding: Finding):
        candidates = [[finding.program]]
        for depth in (5, 15, len(finding.context)):
            if depth:
                candidates.append(finding.context[-depth:] + [finding.program])
        for candidate in candidates:
            if self._replays(candidate, finding.key):
                return candidate
        return None

    def _minimize(self, programs: List[Program], key: tuple,
                  budget: int) -> List[Program]:
        spent = 0
        # pass 1: drop whole context programs
        current = [p.clone() for p in programs]
        idx = 0
        while idx < len(current) - 1 and spent < budget:
            candidate = current[:idx] + current[idx + 1:]
            spent += 1
            if self._replays(candidate, key):
                current = candidate
            else:
                idx += 1
        # pass 2: drop individual calls
        prog_idx = 0
        while prog_idx < len(current) and spent < budget:
            program = current[prog_idx]
            call_idx = 0
            while call_idx < len(program.calls) and spent < budget:
                candidate = [p.clone() for p in current]
                del candidate[prog_idx].calls[call_idx]
                if not candidate[prog_idx].calls:
                    del candidate[prog_idx]
                spent += 1
                if self._replays(candidate, key):
                    current = candidate
                    if prog_idx >= len(current):
                        break
                    program = current[prog_idx]
                else:
                    call_idx += 1
            prog_idx += 1
        return current

    def _replays(self, programs: List[Program], key: tuple) -> bool:
        try:
            self._fresh_target()
        except Exception:
            self.degraded = True
            return False
        self._current_reports.clear()
        for program in programs:
            try:
                fault = self.target.execute(program, self.spec.style)
            except Exception as exc:
                # a replay escaping the guest boundary is quarantined the
                # same as a fuzz-loop escape; the candidate is a non-repro
                self._quarantine(program, exc)
                return False
            if any(r.dedup_key() == key for r in self._current_reports):
                return True
            if fault is not None:
                return _fault_report(fault).dedup_key() == key
        return False


def _fault_report(fault: GuestFault) -> SanitizerReport:
    """Synthesize the crash-oracle report for a guest fault."""
    if isinstance(fault, GuestHang):
        return SanitizerReport(
            "oracle", BugType.HANG, fault.pc, 0, False, fault.pc, 0,
            location="guest-hang", detail=str(fault),
        )
    addr = fault.addr or 0
    bug = BugType.NULL_DEREF if addr < 0x1000 else BugType.WILD_ACCESS
    return SanitizerReport(
        "oracle", bug, addr, 0, False, 0, 0, location="guest-fault",
        detail=str(fault),
    )
