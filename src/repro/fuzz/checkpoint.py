"""Campaign checkpoint/resume: JSON serialization of fuzzer state.

A long census sweep must survive interruption.  ``run_campaign``
periodically serializes the complete deterministic state of its
:class:`~repro.fuzz.engine.FuzzerEngine` — corpus, remaining triage
queue, findings, exec counters, quarantine records, and the exact
Mersenne-Twister state of the campaign RNG (plus the fault plan's RNG
when one is attached) — so a killed campaign resumes mid-budget and
produces byte-identical results to an uninterrupted run.

Checkpoints are only written at engine refresh boundaries (fresh
target, empty session), which is why the file does not need to capture
guest memory: the resumed run rebuilds the target from the firmware
recipe exactly as the uninterrupted run refreshes it.

File format (``version`` 1): one JSON object with
``firmware``/``fuzzer``/``seed``/``budget`` identity fields (validated
on resume), counters, ``rng_state``/``fault_rng_state``, ``corpus`` and
``triage`` as program lists, ``findings`` as full report records, and
``quarantined`` diagnostics records.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from repro.errors import FuzzerError
from repro.fuzz.diagnostics import CrashRecord
from repro.fuzz.engine import Finding, FuzzerEngine
from repro.fuzz.program import Program
from repro.sanitizers.runtime.reports import BugType, SanitizerReport

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# leaf encoders
# ----------------------------------------------------------------------
def _rng_state_to_json(state) -> list:
    # random.Random.getstate() == (version, (int, ...), gauss_next)
    return [state[0], list(state[1]), state[2]]


def _rng_state_from_json(data) -> tuple:
    return (data[0], tuple(data[1]), data[2])


def _key_to_json(key: tuple) -> list:
    return list(key)


def _key_from_json(data: list) -> tuple:
    return tuple(data)


def _report_to_json(report: SanitizerReport) -> dict:
    return {
        "tool": report.tool,
        "bug_type": report.bug_type.value,
        "addr": report.addr,
        "size": report.size,
        "is_write": report.is_write,
        "pc": report.pc,
        "task": report.task,
        "location": report.location,
        "detail": report.detail,
        "alloc_pc": report.alloc_pc,
        "free_pc": report.free_pc,
        "second_pc": report.second_pc,
        "shadow_dump": report.shadow_dump,
    }


def _report_from_json(data: dict) -> SanitizerReport:
    return SanitizerReport(
        data["tool"],
        BugType(data["bug_type"]),
        data["addr"],
        data["size"],
        data["is_write"],
        data["pc"],
        data["task"],
        location=data["location"],
        detail=data["detail"],
        alloc_pc=data["alloc_pc"],
        free_pc=data["free_pc"],
        second_pc=data["second_pc"],
        shadow_dump=data["shadow_dump"],
    )


def _finding_to_json(finding: Finding) -> dict:
    return {
        "key": _key_to_json(finding.key),
        "report": _report_to_json(finding.report),
        "program": finding.program.to_json(),
        "context": [p.to_json() for p in finding.context],
        "reproducible": finding.reproducible,
        "reproducer": (
            None
            if finding.reproducer is None
            else [p.to_json() for p in finding.reproducer]
        ),
        "seed": finding.seed,
    }


def _finding_from_json(data: dict) -> Finding:
    finding = Finding(
        _key_from_json(data["key"]),
        _report_from_json(data["report"]),
        Program.from_json(data["program"]),
        context=[Program.from_json(p) for p in data["context"]],
        seed=data.get("seed"),
    )
    finding.reproducible = data["reproducible"]
    if data["reproducer"] is not None:
        finding.reproducer = [Program.from_json(p) for p in data["reproducer"]]
    return finding


# ----------------------------------------------------------------------
# engine <-> checkpoint state
# ----------------------------------------------------------------------
def engine_state(
    fuzzer: FuzzerEngine, firmware: str, budget: int
) -> dict:
    """Snapshot a fuzzer's deterministic state as a JSON-encodable dict."""
    state = {
        "version": FORMAT_VERSION,
        "firmware": firmware,
        "fuzzer": type(fuzzer).__name__,
        "seed": fuzzer.seed,
        "budget": budget,
        "execs": fuzzer.execs,
        "crashes": fuzzer.crashes,
        "host_crashes": fuzzer.host_crashes,
        "degraded": fuzzer.degraded,
        "watchdog_trips": fuzzer.watchdog_trips(),
        "rng_state": _rng_state_to_json(fuzzer.rng.getstate()),
        "corpus": [p.to_json() for p in fuzzer.corpus],
        "triage": [p.to_json() for p in fuzzer._triage],
        "findings": [_finding_to_json(f) for f in fuzzer.findings.values()],
        "quarantined": [r.to_json() for r in fuzzer.quarantined],
    }
    if fuzzer.fault_plan is not None:
        state["fault_rng_state"] = _rng_state_to_json(
            fuzzer.fault_plan.save_rng_state()
        )
    return state


def restore_engine(fuzzer: FuzzerEngine, state: dict, firmware: str) -> None:
    """Load a checkpoint into a freshly constructed fuzzer.

    The fuzzer must have been built with the same firmware and seed the
    checkpoint was taken from; mismatches raise :class:`FuzzerError`
    rather than silently producing a different campaign.
    """
    if state.get("version") != FORMAT_VERSION:
        raise FuzzerError(
            f"checkpoint format {state.get('version')!r} not supported"
        )
    if state["firmware"] != firmware:
        raise FuzzerError(
            f"checkpoint is for firmware {state['firmware']!r}, "
            f"not {firmware!r}"
        )
    if state["seed"] != fuzzer.seed:
        raise FuzzerError(
            f"checkpoint was taken with seed {state['seed']}, "
            f"engine has seed {fuzzer.seed}"
        )
    fuzzer.execs = state["execs"]
    fuzzer.crashes = state["crashes"]
    fuzzer.host_crashes = state["host_crashes"]
    fuzzer.degraded = state["degraded"]
    fuzzer._watchdog_trips_retired = state.get("watchdog_trips", 0)
    fuzzer.rng.setstate(_rng_state_from_json(state["rng_state"]))
    fuzzer.corpus = [Program.from_json(p) for p in state["corpus"]]
    fuzzer._triage = [Program.from_json(p) for p in state["triage"]]
    fuzzer.findings = {}
    for entry in state["findings"]:
        finding = _finding_from_json(entry)
        fuzzer.findings[finding.key] = finding
    fuzzer.quarantined = [
        CrashRecord.from_json(entry) for entry in state["quarantined"]
    ]
    if fuzzer.fault_plan is not None and "fault_rng_state" in state:
        fuzzer.fault_plan.load_rng_state(
            _rng_state_from_json(state["fault_rng_state"])
        )
    # checkpoints are written at refresh boundaries: the engine starts
    # from a fresh target with an empty session, matching that state
    fuzzer._session.clear()
    fuzzer._execs_since_refresh = 0


# ----------------------------------------------------------------------
# file I/O
# ----------------------------------------------------------------------
def save_checkpoint(
    path: str, fuzzer: FuzzerEngine, firmware: str, budget: int
) -> None:
    """Atomically write a checkpoint file (write-then-rename)."""
    state = engine_state(fuzzer, firmware, budget)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(state, fh)
    os.replace(tmp, path)


def load_checkpoint(path: str) -> Optional[dict]:
    """Read a checkpoint file; None when it does not exist."""
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
