"""Campaign checkpoint/resume: JSON serialization of fuzzer state.

A long census sweep must survive interruption.  ``run_campaign``
periodically serializes the complete deterministic state of its
:class:`~repro.fuzz.engine.FuzzerEngine` — corpus, remaining triage
queue, findings, exec counters, quarantine records, and the exact
Mersenne-Twister state of the campaign RNG (plus the fault plan's RNG
when one is attached) — so a killed campaign resumes mid-budget and
produces byte-identical results to an uninterrupted run.

Checkpoints are only written at engine refresh boundaries (fresh
target, empty session), which is why the file does not need to capture
guest memory: the resumed run rebuilds the target from the firmware
recipe exactly as the uninterrupted run refreshes it.

File format (``version`` 1): one JSON object with
``firmware``/``fuzzer``/``seed``/``budget`` identity fields (validated
on resume), counters, ``rng_state``/``fault_rng_state``, ``corpus`` and
``triage`` as program lists, ``findings`` as full report records, and
``quarantined`` diagnostics records.  When the engine has a persistent
corpus store attached, the inline ``corpus`` list is replaced by
``corpus_digests`` — an ordered list of content addresses resolved
against the store on resume (see ``docs/corpus.md``).
See ``docs/robustness.md``.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.errors import CheckpointError, CorpusError, FuzzerError
from repro.fuzz.diagnostics import CampaignDiagnostics, CrashRecord
from repro.fuzz.engine import Finding, FuzzerEngine
from repro.fuzz.program import Program
from repro.sanitizers.runtime.reports import BugType, SanitizerReport

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# leaf encoders
# ----------------------------------------------------------------------
def _rng_state_to_json(state) -> list:
    # random.Random.getstate() == (version, (int, ...), gauss_next)
    return [state[0], list(state[1]), state[2]]


def _rng_state_from_json(data) -> tuple:
    return (data[0], tuple(data[1]), data[2])


def _key_to_json(key: tuple) -> list:
    return list(key)


def _key_from_json(data: list) -> tuple:
    return tuple(data)


def _report_to_json(report: SanitizerReport) -> dict:
    return {
        "tool": report.tool,
        "bug_type": report.bug_type.value,
        "addr": report.addr,
        "size": report.size,
        "is_write": report.is_write,
        "pc": report.pc,
        "task": report.task,
        "location": report.location,
        "detail": report.detail,
        "alloc_pc": report.alloc_pc,
        "free_pc": report.free_pc,
        "second_pc": report.second_pc,
        "shadow_dump": report.shadow_dump,
    }


def _report_from_json(data: dict) -> SanitizerReport:
    return SanitizerReport(
        data["tool"],
        BugType(data["bug_type"]),
        data["addr"],
        data["size"],
        data["is_write"],
        data["pc"],
        data["task"],
        location=data["location"],
        detail=data["detail"],
        alloc_pc=data["alloc_pc"],
        free_pc=data["free_pc"],
        second_pc=data["second_pc"],
        shadow_dump=data["shadow_dump"],
    )


def _finding_to_json(finding: Finding) -> dict:
    return {
        "key": _key_to_json(finding.key),
        "report": _report_to_json(finding.report),
        "program": finding.program.to_json(),
        "context": [p.to_json() for p in finding.context],
        "reproducible": finding.reproducible,
        "reproducer": (
            None
            if finding.reproducer is None
            else [p.to_json() for p in finding.reproducer]
        ),
        "seed": finding.seed,
    }


def _finding_from_json(data: dict) -> Finding:
    finding = Finding(
        _key_from_json(data["key"]),
        _report_from_json(data["report"]),
        Program.from_json(data["program"]),
        context=[Program.from_json(p) for p in data["context"]],
        seed=data.get("seed"),
    )
    finding.reproducible = data["reproducible"]
    if data["reproducer"] is not None:
        finding.reproducer = [Program.from_json(p) for p in data["reproducer"]]
    return finding


# ----------------------------------------------------------------------
# engine <-> checkpoint state
# ----------------------------------------------------------------------
def _restore_corpus_from_store(fuzzer: FuzzerEngine, digests) -> None:
    """Resolve a checkpoint's ``corpus_digests`` against the store."""
    store = getattr(fuzzer, "corpus_store", None)
    if store is None:
        raise CheckpointError(
            "checkpoint references corpus entries by digest but the "
            "engine has no corpus store attached (resume with the same "
            "corpus directory the campaign was started with)"
        )
    store.reload()
    corpus = []
    for digest in digests:
        try:
            corpus.append(store.get(digest))
        except CorpusError as exc:
            raise CheckpointError(
                f"corpus entry referenced by the checkpoint is missing "
                f"or corrupt: {exc}"
            ) from exc
    fuzzer.corpus = corpus
    fuzzer._known_digests = set(digests)
    if fuzzer.scheduler is not None:
        from repro.corpus.scheduler import SeedScheduler

        scheduler = SeedScheduler()
        for digest, program in zip(digests, corpus):
            entry = store.entries.get(digest)
            scheduler.note(
                program, entry.signature if entry is not None else ()
            )
        fuzzer.scheduler = scheduler


def engine_state(
    fuzzer: FuzzerEngine, firmware: str, budget: int
) -> dict:
    """Snapshot a fuzzer's deterministic state as a JSON-encodable dict."""
    state = {
        "version": FORMAT_VERSION,
        "firmware": firmware,
        "fuzzer": type(fuzzer).__name__,
        "seed": fuzzer.seed,
        "budget": budget,
        "execs": fuzzer.execs,
        "crashes": fuzzer.crashes,
        "host_crashes": fuzzer.host_crashes,
        "degraded": fuzzer.degraded,
        "watchdog_trips": fuzzer.watchdog_trips(),
        "rng_state": _rng_state_to_json(fuzzer.rng.getstate()),
        "triage": [p.to_json() for p in fuzzer._triage],
        "triage_crash": [p.to_json() for p in fuzzer._triage_crash],
        "findings": [_finding_to_json(f) for f in fuzzer.findings.values()],
        "quarantined": [r.to_json() for r in fuzzer.quarantined],
    }
    store = getattr(fuzzer, "corpus_store", None)
    if store is not None:
        # corpus-by-reference: every corpus program lives in the store
        # (persisted here if it is not yet), and the checkpoint carries
        # only the ordered digest list — bodies are never inlined twice
        state["corpus_digests"] = [
            store.ensure(program, execs=fuzzer.execs)
            for program in fuzzer.corpus
        ]
    else:
        state["corpus"] = [p.to_json() for p in fuzzer.corpus]
    if fuzzer.fault_plan is not None:
        state["fault_rng_state"] = _rng_state_to_json(
            fuzzer.fault_plan.save_rng_state()
        )
    return state


def restore_engine(fuzzer: FuzzerEngine, state: dict, firmware: str) -> None:
    """Load a checkpoint into a freshly constructed fuzzer.

    The fuzzer must have been built with the same firmware and seed the
    checkpoint was taken from; mismatches raise :class:`FuzzerError`
    rather than silently producing a different campaign.
    """
    if state.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format {state.get('version')!r} not supported "
            f"(engine speaks version {FORMAT_VERSION})"
        )
    if "firmware" not in state or "seed" not in state:
        raise CheckpointError("checkpoint is missing its identity fields")
    if state["firmware"] != firmware:
        raise FuzzerError(
            f"checkpoint is for firmware {state['firmware']!r}, "
            f"not {firmware!r}"
        )
    if state["seed"] != fuzzer.seed:
        raise FuzzerError(
            f"checkpoint was taken with seed {state['seed']}, "
            f"engine has seed {fuzzer.seed}"
        )
    try:
        fuzzer.execs = state["execs"]
        fuzzer.crashes = state["crashes"]
        fuzzer.host_crashes = state["host_crashes"]
        fuzzer.degraded = state["degraded"]
        fuzzer._watchdog_trips_retired = state.get("watchdog_trips", 0)
        fuzzer.rng.setstate(_rng_state_from_json(state["rng_state"]))
        if "corpus_digests" in state:
            _restore_corpus_from_store(fuzzer, state["corpus_digests"])
        else:
            fuzzer.corpus = [Program.from_json(p) for p in state["corpus"]]
        fuzzer._triage = [Program.from_json(p) for p in state["triage"]]
        fuzzer._triage_crash = [
            Program.from_json(p) for p in state.get("triage_crash", [])
        ]
        fuzzer.findings = {}
        for entry in state["findings"]:
            finding = _finding_from_json(entry)
            fuzzer.findings[finding.key] = finding
        fuzzer.quarantined = [
            CrashRecord.from_json(entry) for entry in state["quarantined"]
        ]
        if fuzzer.fault_plan is not None and "fault_rng_state" in state:
            fuzzer.fault_plan.load_rng_state(
                _rng_state_from_json(state["fault_rng_state"])
            )
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        # the engine may be partially mutated at this point; callers
        # recover by constructing a fresh one (see run_campaign)
        raise CheckpointError(
            f"checkpoint payload is structurally broken: {exc!r}"
        ) from exc
    # checkpoints are written at refresh boundaries: the engine starts
    # from a fresh target with an empty session, matching that state
    fuzzer._session.clear()
    fuzzer._execs_since_refresh = 0
    # sharded fleets sync here: after every round's resume, adopt the
    # sibling shards' discoveries (the store was just reloaded above).
    # Plain single-writer resumes must NOT import — an uninterrupted
    # run and a resumed one must stay byte-identical, and the store may
    # hold crash entries that never belonged to the checkpoint corpus.
    if getattr(fuzzer, "shard", None) is not None and \
            getattr(fuzzer, "corpus_store", None) is not None:
        # the watermark makes the import independent of sibling timing:
        # entries a sibling inserted past this engine's own exec count
        # (mid-round writes) stay invisible until the next boundary
        fuzzer.import_store_entries(max_execs=fuzzer.execs)


# ----------------------------------------------------------------------
# campaign results (cross-process transport + byte-identity checks)
# ----------------------------------------------------------------------
def result_to_json(result) -> dict:
    """Serialize a :class:`~repro.fuzz.campaign.CampaignResult`.

    Used by fleet workers to ship results over the supervisor's queue
    and by the determinism tests: two campaign runs are byte-identical
    iff their ``json.dumps(result_to_json(r), sort_keys=True)`` agree.
    """
    return {
        "firmware": result.firmware,
        "fuzzer": result.fuzzer,
        "execs": result.execs,
        "coverage": result.coverage,
        "crashes": result.crashes,
        "seed": result.seed,
        "budget": result.budget,
        "findings": [_finding_to_json(f) for f in result.findings],
        "matched": {
            bug_id: _key_to_json(finding.key)
            for bug_id, finding in result.matched.items()
        },
        "missed": [record.bug_id for record in result.missed],
        "diagnostics": (
            None if result.diagnostics is None
            else result.diagnostics.to_json()
        ),
    }


def result_from_json(data: dict):
    """Rebuild a :class:`~repro.fuzz.campaign.CampaignResult`."""
    from repro.bugs.catalog import record_by_id
    from repro.fuzz.campaign import CampaignResult

    findings = [_finding_from_json(entry) for entry in data["findings"]]
    by_key = {finding.key: finding for finding in findings}
    matched = {}
    for bug_id, key in data["matched"].items():
        try:
            matched[bug_id] = by_key[_key_from_json(key)]
        except KeyError:
            raise CheckpointError(
                f"matched bug {bug_id!r} references a finding key "
                f"absent from the findings list"
            ) from None
    return CampaignResult(
        firmware=data["firmware"],
        fuzzer=data["fuzzer"],
        execs=data["execs"],
        coverage=data["coverage"],
        crashes=data["crashes"],
        findings=findings,
        matched=matched,
        missed=[record_by_id(bug_id) for bug_id in data["missed"]],
        seed=data["seed"],
        budget=data["budget"],
        diagnostics=(
            None if data["diagnostics"] is None
            else CampaignDiagnostics.from_json(data["diagnostics"])
        ),
    )


# ----------------------------------------------------------------------
# file I/O
# ----------------------------------------------------------------------
def write_checkpoint_state(path: str, state: dict) -> None:
    """Atomically write an already-built checkpoint state dict.

    Validates the shape before touching disk so a remote peer cannot
    make a supervisor persist garbage that later masquerades as a
    checkpoint: the fleet's TCP transport ships checkpoint custody
    through this function (see ``docs/robustness.md``).
    """
    if not isinstance(state, dict) or \
            state.get("version") != FORMAT_VERSION:
        found = (state.get("version") if isinstance(state, dict)
                 else type(state).__name__)
        raise CheckpointError(
            f"refusing to persist a non-checkpoint payload "
            f"(version {found!r}, expected {FORMAT_VERSION})",
            path=path,
        )
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(state, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_parent_dir(path)


def fsync_parent_dir(path: str) -> None:
    """fsync the directory holding ``path`` so the rename itself is
    durable — without it a host crash can roll the directory entry back
    to the old (or no) file even though the data blocks were synced.
    Platforms that refuse fsync on a directory fd are tolerated."""
    parent = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def save_checkpoint(
    path: str, fuzzer: FuzzerEngine, firmware: str, budget: int
) -> None:
    """Atomically write a checkpoint file (write-then-rename)."""
    write_checkpoint_state(path, engine_state(fuzzer, firmware, budget))


def load_checkpoint(path: str) -> Optional[dict]:
    """Read a checkpoint file; None when it does not exist.

    A file that exists but cannot be parsed — truncated by a hard kill
    of a pre-atomic-write tool, hand-edited, disk corruption — raises
    :class:`CheckpointError` instead of a raw traceback, so callers can
    uniformly treat the job as "start from scratch".
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            state = json.load(fh)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointError(
            f"not a valid checkpoint (truncated or corrupt): {exc}",
            path=path,
        ) from exc
    except OSError as exc:
        raise CheckpointError(f"unreadable: {exc}", path=path) from exc
    if not isinstance(state, dict):
        raise CheckpointError(
            f"expected a checkpoint object, found {type(state).__name__}",
            path=path,
        )
    return state
