"""Fuzz programs: sequences of calls with resource wiring.

A program is a list of :class:`Call` steps.  Arguments are either
literal integers or resource references (``("res", kind, index)``)
resolved at execution time against values earlier steps produced —
the essential piece of syzkaller's model that makes multi-step bugs
(open → ioctl → close) reachable.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

Arg = Union[int, Tuple[str, str, int]]


class Call:
    """One step: a call number, four args, and an optional resource yield."""

    __slots__ = ("nr", "args", "produces")

    def __init__(self, nr: int, args: Sequence[Arg], produces: Optional[str] = None):
        self.nr = nr
        self.args = list(args) + [0] * (4 - len(args))
        self.produces = produces

    def clone(self) -> "Call":
        return Call(self.nr, list(self.args), self.produces)

    def to_json(self) -> dict:
        """JSON-encodable form (checkpoints, diagnostics records)."""
        return {
            "nr": self.nr,
            "args": [list(a) if isinstance(a, tuple) else a for a in self.args],
            "produces": self.produces,
        }

    @staticmethod
    def from_json(data: dict) -> "Call":
        """Rebuild a call from :meth:`to_json` output."""
        args = [
            (a[0], a[1], a[2]) if isinstance(a, list) else a
            for a in data["args"]
        ]
        return Call(data["nr"], args, data.get("produces"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Call({self.nr}, {self.args}, produces={self.produces!r})"


class Program:
    """An executable fuzz input."""

    def __init__(self, calls: Optional[List[Call]] = None):
        self.calls: List[Call] = calls or []

    def clone(self) -> "Program":
        return Program([call.clone() for call in self.calls])

    def __len__(self) -> int:
        return len(self.calls)

    # ------------------------------------------------------------------
    def resolve(self) -> List[Tuple[int, List[Arg], Optional[str]]]:
        """Iterate steps for execution (args still unresolved)."""
        return [(call.nr, call.args, call.produces) for call in self.calls]

    def serialize(self, names: Optional[Dict[int, str]] = None) -> str:
        """Human-readable listing (reproducer format)."""
        names = names or {}
        lines = []
        for idx, call in enumerate(self.calls):
            rendered = ", ".join(
                f"${ref[1]}{ref[2]}" if isinstance(ref, tuple) else str(ref)
                for ref in call.args
            )
            head = names.get(call.nr, f"call_{call.nr}")
            yields = f" -> ${call.produces}" if call.produces else ""
            lines.append(f"{idx:2d}: {head}({rendered}){yields}")
        return "\n".join(lines)

    def to_json(self) -> list:
        """JSON-encodable form (checkpoints, diagnostics records)."""
        return [call.to_json() for call in self.calls]

    @staticmethod
    def from_json(data: list) -> "Program":
        """Rebuild a program from :meth:`to_json` output."""
        return Program([Call.from_json(entry) for entry in data])

    @staticmethod
    def from_steps(steps: Sequence[Sequence[int]]) -> "Program":
        """Build a literal program from ``(nr, a0, a1, a2, a3)`` tuples."""
        return Program([Call(step[0], list(step[1:])) for step in steps])


class ResourcePool:
    """Values produced during one program execution, keyed by kind."""

    def __init__(self):
        self._values: Dict[str, List[int]] = {}

    def put(self, kind: str, value: int) -> None:
        if value >= 0:
            self._values.setdefault(kind, []).append(value)

    def get(self, kind: str, index: int) -> int:
        values = self._values.get(kind)
        if not values:
            return 0
        return values[index % len(values)]

    def kinds(self) -> List[str]:
        return sorted(self._values)


def resolve_args(args: Sequence[Arg], pool: ResourcePool) -> List[int]:
    """Materialize resource references against the execution pool."""
    out = []
    for arg in args:
        if isinstance(arg, tuple):
            out.append(pool.get(arg[1], arg[2]))
        else:
            out.append(int(arg) & 0xFFFFFFFF)
    return out


# ----------------------------------------------------------------------
# mutation
# ----------------------------------------------------------------------
class Mutator:
    """Program mutation: syzkaller's insert/remove/mutate-arg trio."""

    def __init__(self, rng: random.Random, interesting: Sequence[int]):
        self.rng = rng
        self.interesting = list(interesting)

    def mutate(self, program: Program, generate_call) -> Program:
        """Return a mutated clone; ``generate_call`` supplies new steps."""
        out = program.clone()
        choice = self.rng.random()
        if not out.calls or choice < 0.45:
            index = self.rng.randint(0, len(out.calls))
            out.calls.insert(index, generate_call())
        elif choice < 0.60 and len(out.calls) > 1:
            del out.calls[self.rng.randrange(len(out.calls))]
        else:
            call = self.rng.choice(out.calls)
            slot = self.rng.randrange(4)
            if isinstance(call.args[slot], tuple):
                kind = call.args[slot][1]
                call.args[slot] = ("res", kind, self.rng.randrange(4))
            else:
                call.args[slot] = self._mutate_int(call.args[slot])
        if len(out.calls) > 16:
            del out.calls[16:]
        return out

    def _mutate_int(self, value: int) -> int:
        roll = self.rng.random()
        if roll < 0.5:
            return self.rng.choice(self.interesting)
        if roll < 0.75:
            return value ^ (1 << self.rng.randrange(16))
        return self.rng.randrange(0, 256)


def minimize(program: Program, still_fails) -> Program:
    """Drop-one minimization: remove steps while the oracle still fires."""
    current = program.clone()
    changed = True
    while changed and len(current.calls) > 1:
        changed = False
        for idx in range(len(current.calls) - 1, -1, -1):
            candidate = current.clone()
            del candidate.calls[idx]
            if still_fails(candidate):
                current = candidate
                changed = True
                break
    return current
