"""Deterministic, seed-driven chaos for the fleet wire protocol.

The TCP/JSONL transport (``repro.fuzz.transport``) only earns its place
if worker disconnects, slow links, corrupt frames, and duplicated
deliveries are handled as routinely as the fleet supervisor handles a
SIGKILL.  A :class:`ChaosPlan` models those network hazards the same
way :class:`repro.emulator.faults.FaultPlan` models hostile hardware:
one ``random.Random`` seeded at construction drives every decision, so
a plan replays identically given the same frame sequence — the whole
failure matrix is testable in-process, without a real flaky network.

A plan is attached to one side of a connection and consulted once per
*outbound* frame (:class:`ChaosFrameStream` wraps the sender).  Actions:

``drop``
    The frame is silently discarded — the bytes never hit the wire.
``dup``
    The frame is sent twice back-to-back (at-least-once delivery means
    the receiver must dedup by attempt id, and this proves it).
``corrupt``
    One payload byte is flipped before sending.  The length prefix
    stays truthful, so the receiver keeps framing sync, fails the CRC
    check, and raises a skippable ``TransportError(kind="crc")``.
``truncate``
    Only a prefix of the frame's bytes is sent and the connection is
    then cut — exactly what a mid-frame TCP reset looks like.  The
    receiver hits a framing error and must drop the connection.
``reorder``
    The frame is held back and sent *after* the next frame, swapping
    their wire order.
``disconnect``
    The frame is sent, then the connection is closed — the clean-cut
    worker-death case (the client's reconnect/backoff loop takes over).

A compact text DSL mirrors the fault-plan DSL::

    drop:p=0.1                    drop 10% of frames
    drop:kind=heartbeat,p=1       drop every heartbeat frame
    dup:nth=3                     duplicate every 3rd eligible frame
    corrupt:nth=5,limit=1         flip a byte in the 5th frame, once
    truncate:nth=7                cut the 7th frame mid-bytes
    reorder:p=0.2                 swap 20% of frames with their successor
    disconnect:nth=9              cut the connection after frame 9
    seed=7                        reseed the plan's RNG

Clauses are ``;``-separated; ``kind=`` filters a rule to one frame type
(or, for ``event`` frames, the event kind: ``heartbeat``, ``result``,
...).  Handshake frames (``hello``/``welcome``/``error``) are never
touched: chaos models a bad network *between* correctly speaking peers,
and a plan that ate its own handshake would only test the dialer.
"""

from __future__ import annotations

import random
from typing import List, NamedTuple, Optional

from repro.errors import ReproError

#: actions a rule may take, in documentation order
ACTIONS = ("drop", "dup", "corrupt", "truncate", "reorder", "disconnect")

#: frame types chaos never touches (see module docstring)
PROTECTED_KINDS = frozenset({"hello", "welcome", "error"})


class ChaosPlanError(ReproError):
    """A chaos-plan DSL string failed to parse."""


class ChaosRule(NamedTuple):
    """One clause of a plan: when to apply which mutation."""

    action: str
    kind: Optional[str]  #: frame-kind filter; None matches every frame
    rate: float  #: probability per eligible frame (used when nth == 0)
    nth: int  #: apply to every nth eligible frame instead of by rate
    limit: int  #: max applications (0 = unlimited)


class ChaosPlan:
    """A deterministic schedule of wire-level mutations.

    Mirrors :class:`repro.emulator.faults.FaultPlan`: all randomness
    comes from one seeded RNG, decisions are a pure function of the
    (seed, frame-sequence) pair, and ``parse``/``describe`` round-trip.
    """

    def __init__(self, rules: List[ChaosRule] = (), seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        self.rules: List[ChaosRule] = list(rules)
        #: per-rule eligible-frame counters (drives ``nth``)
        self._seen = [0] * len(self.rules)
        #: per-rule application counters (drives ``limit``)
        self._applied = [0] * len(self.rules)
        # observable tallies (diagnostics; never consulted for decisions)
        self.frames_seen = 0
        self.dropped = 0
        self.duplicated = 0
        self.corrupted = 0
        self.truncated = 0
        self.reordered = 0
        self.disconnects = 0

    # ------------------------------------------------------------------
    def decide(self, frame: dict) -> Optional[str]:
        """The action for one outbound frame; None means deliver as-is.

        First matching rule wins — order your clauses accordingly.
        """
        kind = frame.get("kind") or frame.get("type")
        if kind in PROTECTED_KINDS:
            return None
        self.frames_seen += 1
        for index, rule in enumerate(self.rules):
            if rule.kind is not None and rule.kind != kind:
                continue
            self._seen[index] += 1
            if rule.limit and self._applied[index] >= rule.limit:
                continue
            if rule.nth:
                hit = self._seen[index] % rule.nth == 0
            else:
                hit = self.rng.random() < rule.rate
            if hit:
                self._applied[index] += 1
                self._count(rule.action)
                return rule.action
        return None

    def _count(self, action: str) -> None:
        field = {
            "drop": "dropped",
            "dup": "duplicated",
            "corrupt": "corrupted",
            "truncate": "truncated",
            "reorder": "reordered",
            "disconnect": "disconnects",
        }[action]
        setattr(self, field, getattr(self, field) + 1)

    def stats(self) -> dict:
        """Mutation tallies for diagnostics records."""
        return {
            "frames_seen": self.frames_seen,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
            "truncated": self.truncated,
            "reordered": self.reordered,
            "disconnects": self.disconnects,
        }

    # ------------------------------------------------------------------
    # DSL
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "ChaosPlan":
        """Build a plan from the ``;``-separated clause DSL (module doc)."""
        rules: List[ChaosRule] = []
        for raw in spec.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            head, _, rest = clause.partition(":")
            head = head.strip().lower()
            try:
                if head == "seed" or head.startswith("seed="):
                    seed = int(clause.partition("=")[2], 0)
                    continue
                if head not in ACTIONS:
                    raise ChaosPlanError(f"unknown chaos clause {clause!r}")
                kind = None
                rate = 0.0
                nth = 0
                limit = 0
                for chunk in rest.split(","):
                    chunk = chunk.strip()
                    if not chunk:
                        continue
                    key, sep, val = chunk.partition("=")
                    if not sep:
                        raise ChaosPlanError(
                            f"expected key=value, got {chunk!r}"
                        )
                    key = key.strip().lower()
                    val = val.strip()
                    if key == "p":
                        rate = float(val)
                    elif key == "nth":
                        nth = int(val, 0)
                        if nth < 1:
                            raise ChaosPlanError(
                                f"nth must be >= 1 in {clause!r}"
                            )
                    elif key == "kind":
                        kind = val
                    elif key == "limit":
                        limit = int(val, 0)
                    else:
                        raise ChaosPlanError(
                            f"unknown {head} option {key!r} in {clause!r}"
                        )
                if not rate and not nth:
                    raise ChaosPlanError(
                        f"clause {clause!r} needs p= or nth="
                    )
                rules.append(ChaosRule(head, kind, rate, nth, limit))
            except ValueError as exc:
                raise ChaosPlanError(f"bad value in clause {clause!r}: {exc}")
        return cls(rules, seed=seed)

    def describe(self) -> str:
        """Canonical DSL form: ``parse(describe())`` round-trips."""
        parts = []
        for rule in self.rules:
            opts = []
            if rule.kind is not None:
                opts.append(f"kind={rule.kind}")
            if rule.nth:
                opts.append(f"nth={rule.nth}")
            else:
                opts.append(f"p={rule.rate:g}")
            if rule.limit:
                opts.append(f"limit={rule.limit}")
            parts.append(f"{rule.action}:{','.join(opts)}")
        parts.append(f"seed={self.seed}")
        return ";".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChaosPlan({self.describe()})"


def chaos_plan_for(spec, seed: int = 0) -> Optional[ChaosPlan]:
    """CLI helper: None/empty spec means no chaos; plans pass through."""
    if not spec:
        return None
    if isinstance(spec, ChaosPlan):
        return spec
    return ChaosPlan.parse(spec, seed=seed)


class ChaosFrameStream:
    """Wrap a :class:`repro.fuzz.transport.FrameStream`'s send side.

    Receiving is delegated untouched — a plan mutates only what *this*
    peer transmits, so attaching one plan per side composes cleanly.
    """

    def __init__(self, inner, plan: ChaosPlan):
        self.inner = inner
        self.plan = plan
        #: a reorder-held frame awaiting its successor
        self._held: Optional[dict] = None

    # transparent delegation ------------------------------------------------
    def __getattr__(self, name):
        return getattr(self.inner, name)

    # mutating sender -------------------------------------------------------
    def send(self, frame: dict) -> None:
        from repro.errors import TransportError
        from repro.fuzz.transport import encode_frame

        action = self.plan.decide(frame)
        if action == "drop":
            self._flush_held()
            return
        if action == "reorder":
            # hold this frame; it rides out behind the next one.  A
            # second reorder decision before the first flushed would
            # lose the held frame, so flush first.
            self._flush_held()
            self._held = frame
            return
        if action == "dup":
            self.inner.send(frame)
            self.inner.send(frame)
            self._flush_held()
            return
        if action == "corrupt":
            raw = bytearray(encode_frame(frame))
            # flip one payload byte; the header stays truthful so the
            # receiver keeps framing sync and fails only the CRC
            from repro.fuzz.transport import HEADER_LEN

            index = HEADER_LEN + self.plan.rng.randrange(
                max(1, len(raw) - HEADER_LEN - 1)
            )
            raw[index] ^= 1 << self.plan.rng.randrange(8)
            self.inner.send_bytes(bytes(raw))
            self._flush_held()
            return
        if action == "truncate":
            raw = encode_frame(frame)
            cut = max(1, len(raw) // 2)
            try:
                self.inner.send_bytes(raw[:cut])
            finally:
                self.inner.close()
            raise TransportError(
                "chaos plan truncated the frame mid-bytes and cut the "
                "connection", kind="closed",
            )
        if action == "disconnect":
            try:
                self.inner.send(frame)
            finally:
                self.inner.close()
            raise TransportError(
                "chaos plan cut the connection after the frame",
                kind="closed",
            )
        self.inner.send(frame)
        self._flush_held()

    def _flush_held(self) -> None:
        held, self._held = self._held, None
        if held is not None:
            self.inner.send(held)
