"""Coverage collection.

Two collectors mirror the two fuzzers' mechanisms:

* :class:`KcovCoverage` — consumes the ``COV_TRACE_PC`` hypercalls a
  kcov-enabled kernel build emits (Syzkaller's mechanism).
* :class:`EmulatorCoverage` — consumes CALL events at the emulator
  level; works on any OS, instrumented or not (Tardis's OS-agnostic
  mechanism, usable even on the closed-source VxWorks target).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.emulator.events import CallEvent, EventKind, VmcallEvent
from repro.emulator.hypercalls import Hypercall
from repro.emulator.machine import Machine


class CoverageMap:
    """A cumulative set of coverage points with new-coverage tracking."""

    def __init__(self):
        self.points: Set[int] = set()
        self._epoch_new = 0
        self._epoch_points: Set[int] = set()

    def hit(self, point: int) -> None:
        """Record one coverage point."""
        self._epoch_points.add(point)
        if point not in self.points:
            self.points.add(point)
            self._epoch_new += 1

    def begin_input(self) -> None:
        """Start tracking novelty for one fuzz input."""
        self._epoch_new = 0
        self._epoch_points.clear()

    def new_coverage(self) -> int:
        """Points first seen during the current input."""
        return self._epoch_new

    def input_points(self) -> Set[int]:
        """Every point the current input touched (new or not).

        This is the input's coverage *signature* — what the persistent
        corpus stores per entry and what distillation and rarity
        scheduling consume (see ``docs/corpus.md``).
        """
        return set(self._epoch_points)

    def reset(self, points: Optional[Set[int]] = None) -> None:
        """Rewind to ``points`` (empty by default), in place.

        The fork-server refresh path reuses the live map instead of
        building a new one: the event subscription made at construction
        must survive (the machine persists across restores), so the map
        object can never be replaced — only rewound.  ``points`` is the
        golden capture's point set — a rebuilt map re-collects boot-time
        coverage on every refresh, so a restored one must hold exactly
        those points too or the two modes' final frontiers diverge.
        """
        self.points.clear()
        if points:
            self.points.update(points)
        self._epoch_new = 0
        self._epoch_points.clear()

    def __len__(self) -> int:
        return len(self.points)


class KcovCoverage(CoverageMap):
    """kcov-style coverage from COV_TRACE_PC hypercalls."""

    def __init__(self, machine: Machine):
        super().__init__()
        machine.hooks.add(EventKind.VMCALL, self._on_vmcall)

    def _on_vmcall(self, event: VmcallEvent) -> None:
        if event.number == Hypercall.COV_TRACE_PC and event.args:
            self.hit(event.args[0])


class EmulatorCoverage(CoverageMap):
    """OS-agnostic coverage from emulator-level CALL events."""

    def __init__(self, machine: Machine):
        super().__init__()
        machine.hooks.add(EventKind.CALL, self._on_call)

    def _on_call(self, event: CallEvent) -> None:
        # function entry is the basic-block proxy; fold in one argument
        # nibble so distinct operation shapes count as distinct coverage
        arg = event.args[0] & 0xF if event.args else 0
        self.hit((event.target << 4) | arg)
