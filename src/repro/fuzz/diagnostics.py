"""Campaign diagnostics: quarantined crashes and degradation records.

When a program escapes the guest-fault boundary — a host-level exception
out of the rehosted kernel, the runtime, or the emulator itself — the
engine rolls the machine back, quarantines the offending input into a
:class:`CrashRecord`, and keeps fuzzing.  The records, together with the
campaign's watchdog/fault-plan counters, form a
:class:`CampaignDiagnostics` blob that is serialized next to results so
a wedged 7-day census can be triaged after the fact instead of lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fuzz.program import Program

#: console bytes preserved per crash record
CONSOLE_TAIL = 400


@dataclass
class CrashRecord:
    """One quarantined program and the wreckage it left behind."""

    index: int  #: exec count when the crash happened
    program: Program  #: the offending input
    exc_type: str  #: exception class name
    exception: str  #: repr of the escaping exception
    console_tail: str  #: last guest console bytes before the crash
    counters: Dict[str, float] = field(default_factory=dict)

    def to_json(self) -> dict:
        """JSON-encodable form for checkpoints and CI artifacts."""
        return {
            "index": self.index,
            "program": self.program.to_json(),
            "exc_type": self.exc_type,
            "exception": self.exception,
            "console_tail": self.console_tail,
            "counters": dict(self.counters),
        }

    @staticmethod
    def from_json(data: dict) -> "CrashRecord":
        """Rebuild a record from :meth:`to_json` output."""
        return CrashRecord(
            index=data["index"],
            program=Program.from_json(data["program"]),
            exc_type=data["exc_type"],
            exception=data["exception"],
            console_tail=data["console_tail"],
            counters=dict(data.get("counters", {})),
        )


def capture_crash(engine, program: Program, exc: BaseException) -> CrashRecord:
    """Build a :class:`CrashRecord` from a live (possibly broken) target.

    Every probe is defensive: the target just failed in an arbitrary way,
    so any attribute may be missing or raising.
    """
    counters: Dict[str, float] = {"execs": engine.execs}
    console = ""
    try:
        machine = engine.target.image.ctx.machine
    except Exception:
        machine = None
    if machine is not None:
        try:
            console = machine.console_text()[-CONSOLE_TAIL:]
        except Exception:
            console = "<console unavailable>"
        try:
            counters["guest_cycles"] = machine.guest_cycles
            counters["overhead_cycles"] = machine.overhead_cycles
            counters["insns"] = sum(
                getattr(e, "insn_count", 0) for e in machine.engines
            )
        except Exception:
            pass
        watchdog = getattr(machine, "watchdog", None)
        if watchdog is not None:
            counters["watchdog_trips"] = watchdog.trips
        plan = getattr(machine, "fault_plan", None)
        if plan is not None:
            for key, value in plan.stats().items():
                counters[f"fault_{key}"] = value
    try:
        runtime_stats = engine.target.runtime.stats()
        counters["runtime_events"] = runtime_stats.get("events_handled", 0)
        counters["runtime_reports"] = runtime_stats.get("reports", 0)
    except Exception:
        pass
    return CrashRecord(
        index=engine.execs,
        program=program.clone(),
        exc_type=type(exc).__name__,
        exception=repr(exc),
        console_tail=console,
        counters=counters,
    )


@dataclass
class CampaignDiagnostics:
    """Robustness telemetry for one campaign."""

    firmware: str
    seed: int
    budget: int
    quarantined: List[CrashRecord] = field(default_factory=list)
    host_crashes: int = 0
    degraded: bool = False
    watchdog_trips: int = 0
    fault_stats: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict:
        """JSON-encodable form for the CI artifact."""
        return {
            "firmware": self.firmware,
            "seed": self.seed,
            "budget": self.budget,
            "host_crashes": self.host_crashes,
            "degraded": self.degraded,
            "watchdog_trips": self.watchdog_trips,
            "fault_stats": dict(self.fault_stats),
            "quarantined": [record.to_json() for record in self.quarantined],
        }

    @staticmethod
    def from_json(data: dict) -> "CampaignDiagnostics":
        """Rebuild diagnostics from :meth:`to_json` output."""
        return CampaignDiagnostics(
            firmware=data["firmware"],
            seed=data["seed"],
            budget=data["budget"],
            quarantined=[
                CrashRecord.from_json(entry)
                for entry in data.get("quarantined", [])
            ],
            host_crashes=data.get("host_crashes", 0),
            degraded=data.get("degraded", False),
            watchdog_trips=data.get("watchdog_trips", 0),
            fault_stats=dict(data.get("fault_stats", {})),
        )

    def summary(self) -> str:
        """One-line human summary for CLI output."""
        bits = [f"{self.host_crashes} host crash(es)"]
        if self.watchdog_trips:
            bits.append(f"{self.watchdog_trips} watchdog trip(s)")
        if self.fault_stats.get("alloc_failures"):
            bits.append(f"{self.fault_stats['alloc_failures']} alloc fault(s)")
        if self.degraded:
            bits.append("DEGRADED: crash budget exhausted")
        return ", ".join(bits)
