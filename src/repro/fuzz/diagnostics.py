"""Campaign diagnostics: quarantined crashes and degradation records.

When a program escapes the guest-fault boundary — a host-level exception
out of the rehosted kernel, the runtime, or the emulator itself — the
engine rolls the machine back, quarantines the offending input into a
:class:`CrashRecord`, and keeps fuzzing.  The records, together with the
campaign's watchdog/fault-plan counters, form a
:class:`CampaignDiagnostics` blob that is serialized next to results so
a wedged 7-day census can be triaged after the fact instead of lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fuzz.program import Program

#: console bytes preserved per crash record
CONSOLE_TAIL = 400


@dataclass
class CrashRecord:
    """One quarantined program and the wreckage it left behind."""

    index: int  #: exec count when the crash happened
    program: Program  #: the offending input
    exc_type: str  #: exception class name
    exception: str  #: repr of the escaping exception
    console_tail: str  #: last guest console bytes before the crash
    counters: Dict[str, float] = field(default_factory=dict)

    def to_json(self) -> dict:
        """JSON-encodable form for checkpoints and CI artifacts."""
        return {
            "index": self.index,
            "program": self.program.to_json(),
            "exc_type": self.exc_type,
            "exception": self.exception,
            "console_tail": self.console_tail,
            "counters": dict(self.counters),
        }

    @staticmethod
    def from_json(data: dict) -> "CrashRecord":
        """Rebuild a record from :meth:`to_json` output."""
        return CrashRecord(
            index=data["index"],
            program=Program.from_json(data["program"]),
            exc_type=data["exc_type"],
            exception=data["exception"],
            console_tail=data["console_tail"],
            counters=dict(data.get("counters", {})),
        )


def capture_crash(engine, program: Program, exc: BaseException) -> CrashRecord:
    """Build a :class:`CrashRecord` from a live (possibly broken) target.

    Every probe is defensive: the target just failed in an arbitrary way,
    so any attribute may be missing or raising.
    """
    counters: Dict[str, float] = {"execs": engine.execs}
    console = ""
    try:
        machine = engine.target.image.ctx.machine
    except Exception:
        machine = None
    if machine is not None:
        try:
            console = machine.console_text()[-CONSOLE_TAIL:]
        except Exception:
            console = "<console unavailable>"
        try:
            counters["guest_cycles"] = machine.guest_cycles
            counters["overhead_cycles"] = machine.overhead_cycles
            counters["insns"] = sum(
                getattr(e, "insn_count", 0) for e in machine.engines
            )
        except Exception:
            pass
        watchdog = getattr(machine, "watchdog", None)
        if watchdog is not None:
            counters["watchdog_trips"] = watchdog.trips
        plan = getattr(machine, "fault_plan", None)
        if plan is not None:
            for key, value in plan.stats().items():
                counters[f"fault_{key}"] = value
    try:
        runtime_stats = engine.target.runtime.stats()
        counters["runtime_events"] = runtime_stats.get("events_handled", 0)
        counters["runtime_reports"] = runtime_stats.get("reports", 0)
    except Exception:
        pass
    return CrashRecord(
        index=engine.execs,
        program=program.clone(),
        exc_type=type(exc).__name__,
        exception=repr(exc),
        console_tail=console,
        counters=counters,
    )


@dataclass
class CampaignDiagnostics:
    """Robustness telemetry for one campaign.

    A repeated campaign (:func:`repro.fuzz.campaign.run_campaign_repeated`)
    merges each seed's diagnostics into one record via :meth:`merge`:
    counters sum, quarantine lists concatenate, ``seeds`` lists every
    contributing seed, so no seed's crash records are silently dropped.
    """

    firmware: str
    seed: int
    budget: int
    quarantined: List[CrashRecord] = field(default_factory=list)
    host_crashes: int = 0
    degraded: bool = False
    watchdog_trips: int = 0
    fault_stats: Dict[str, int] = field(default_factory=dict)
    #: set when a corrupt checkpoint was discarded at resume time
    #: (holds the one-line diagnosis; the job restarted from scratch)
    checkpoint_discarded: Optional[str] = None
    #: every seed merged into this record (None for a single-seed run)
    seeds: Optional[List[int]] = None
    #: wall-clock seconds per campaign phase (build/fuzz/reproduce/
    #: checkpoint).  None unless an observer was attached: timings are
    #: nondeterministic, and the sequential-vs-fleet byte-identity
    #: contract covers unobserved runs
    phase_timings: Optional[Dict[str, float]] = None
    #: persistent-corpus session stats (size/inserts/dedup_hits/
    #: imported); None when the campaign ran without a corpus store
    corpus: Optional[Dict[str, int]] = None
    #: corpus entries inherited at the start of each repetition, in
    #: seed order — how much of the previous seeds' corpus each run
    #: started from (only set by ``carry_corpus`` repeated campaigns)
    inherited_corpus: Optional[List[int]] = None

    def merge(self, other: "CampaignDiagnostics") -> "CampaignDiagnostics":
        """Fold another seed's diagnostics into this record (in place)."""
        if self.seeds is None:
            self.seeds = [self.seed]
        self.seeds.append(other.seed)
        self.budget += other.budget
        self.quarantined.extend(other.quarantined)
        self.host_crashes += other.host_crashes
        self.degraded = self.degraded or other.degraded
        self.watchdog_trips += other.watchdog_trips
        for key, value in other.fault_stats.items():
            self.fault_stats[key] = self.fault_stats.get(key, 0) + value
        if self.checkpoint_discarded is None:
            self.checkpoint_discarded = other.checkpoint_discarded
        if other.phase_timings:
            if self.phase_timings is None:
                self.phase_timings = {}
            for phase, seconds in other.phase_timings.items():
                self.phase_timings[phase] = round(
                    self.phase_timings.get(phase, 0.0) + seconds, 6)
        if other.corpus:
            if self.corpus is None:
                self.corpus = {}
            for key, value in other.corpus.items():
                if key == "size":
                    # the store is shared: its final size is the
                    # latest repetition's view, not a sum
                    self.corpus[key] = value
                else:
                    self.corpus[key] = self.corpus.get(key, 0) + value
        if other.inherited_corpus:
            if self.inherited_corpus is None:
                self.inherited_corpus = []
            self.inherited_corpus.extend(other.inherited_corpus)
        return self

    def to_json(self) -> dict:
        """JSON-encodable form for the CI artifact."""
        return {
            "firmware": self.firmware,
            "seed": self.seed,
            "budget": self.budget,
            "host_crashes": self.host_crashes,
            "degraded": self.degraded,
            "watchdog_trips": self.watchdog_trips,
            "fault_stats": dict(self.fault_stats),
            "quarantined": [record.to_json() for record in self.quarantined],
            "checkpoint_discarded": self.checkpoint_discarded,
            "seeds": None if self.seeds is None else list(self.seeds),
            "phase_timings": (None if self.phase_timings is None
                              else dict(self.phase_timings)),
            "corpus": None if self.corpus is None else dict(self.corpus),
            "inherited_corpus": (None if self.inherited_corpus is None
                                 else list(self.inherited_corpus)),
        }

    @staticmethod
    def from_json(data: dict) -> "CampaignDiagnostics":
        """Rebuild diagnostics from :meth:`to_json` output."""
        return CampaignDiagnostics(
            firmware=data["firmware"],
            seed=data["seed"],
            budget=data["budget"],
            quarantined=[
                CrashRecord.from_json(entry)
                for entry in data.get("quarantined", [])
            ],
            host_crashes=data.get("host_crashes", 0),
            degraded=data.get("degraded", False),
            watchdog_trips=data.get("watchdog_trips", 0),
            fault_stats=dict(data.get("fault_stats", {})),
            checkpoint_discarded=data.get("checkpoint_discarded"),
            seeds=(None if data.get("seeds") is None
                   else list(data["seeds"])),
            phase_timings=(None if data.get("phase_timings") is None
                           else dict(data["phase_timings"])),
            corpus=(None if data.get("corpus") is None
                    else dict(data["corpus"])),
            inherited_corpus=(None if data.get("inherited_corpus") is None
                              else list(data["inherited_corpus"])),
        )

    def summary(self) -> str:
        """One-line human summary for CLI output."""
        bits = [f"{self.host_crashes} host crash(es)"]
        if self.watchdog_trips:
            bits.append(f"{self.watchdog_trips} watchdog trip(s)")
        if self.fault_stats.get("alloc_failures"):
            bits.append(f"{self.fault_stats['alloc_failures']} alloc fault(s)")
        if self.checkpoint_discarded:
            bits.append(f"checkpoint discarded ({self.checkpoint_discarded})")
        if self.degraded:
            bits.append("DEGRADED: crash budget exhausted")
        return ", ".join(bits)


@dataclass
class JobDiagnostics:
    """Supervision history for one fleet job across all its attempts."""

    job_id: str
    firmware: str
    seed: int
    attempts: int = 0
    #: one entry per worker death: {attempt, cause, backoff, resumed}
    restarts: List[Dict] = field(default_factory=list)
    heartbeats: int = 0
    #: largest observed gap between consecutive liveness signals (s)
    max_heartbeat_gap: float = 0.0
    #: the retry budget ran out (or the job was unstartable)
    degraded: bool = False
    #: why the job was declared degraded, when it was
    degraded_cause: Optional[str] = None
    #: the completed campaign's own diagnostics (None until done)
    campaign: Optional[CampaignDiagnostics] = None

    def to_json(self) -> dict:
        return {
            "job_id": self.job_id,
            "firmware": self.firmware,
            "seed": self.seed,
            "attempts": self.attempts,
            "restarts": [dict(entry) for entry in self.restarts],
            "heartbeats": self.heartbeats,
            "max_heartbeat_gap": round(self.max_heartbeat_gap, 3),
            "degraded": self.degraded,
            "degraded_cause": self.degraded_cause,
            "campaign": (None if self.campaign is None
                         else self.campaign.to_json()),
        }

    @staticmethod
    def from_json(data: dict) -> "JobDiagnostics":
        return JobDiagnostics(
            job_id=data["job_id"],
            firmware=data["firmware"],
            seed=data["seed"],
            attempts=data.get("attempts", 0),
            restarts=[dict(entry) for entry in data.get("restarts", [])],
            heartbeats=data.get("heartbeats", 0),
            max_heartbeat_gap=data.get("max_heartbeat_gap", 0.0),
            degraded=data.get("degraded", False),
            degraded_cause=data.get("degraded_cause"),
            campaign=(None if data.get("campaign") is None
                      else CampaignDiagnostics.from_json(data["campaign"])),
        )


@dataclass
class FleetDiagnostics:
    """Fleet-level supervision record aggregating every job's history."""

    workers: int
    heartbeat_timeout: float
    max_retries: int
    backoff_base: float
    jobs: List[JobDiagnostics] = field(default_factory=list)
    wall_time: float = 0.0
    events_logged: int = 0
    #: worker-transport counters (reconnects, frames_dropped, resends,
    #: bytes, ...); ``None`` for the default spawn transport, which has
    #: nothing to report
    transport: Optional[dict] = None

    def job(self, job_id: str) -> Optional[JobDiagnostics]:
        """Look up one job's record by id."""
        for record in self.jobs:
            if record.job_id == job_id:
                return record
        return None

    def degraded_jobs(self) -> List[JobDiagnostics]:
        """Jobs that exhausted their retry budget."""
        return [record for record in self.jobs if record.degraded]

    def total_restarts(self) -> int:
        """Worker deaths recovered across the whole fleet."""
        return sum(len(record.restarts) for record in self.jobs)

    def phase_totals(self) -> Optional[Dict[str, float]]:
        """Fleet-wide per-phase wall-clock totals, folded from every
        job's campaign ``phase_timings``; None when no job carried any
        (observability was off)."""
        totals: Dict[str, float] = {}
        for record in self.jobs:
            campaign = record.campaign
            if campaign is None or not campaign.phase_timings:
                continue
            for phase, seconds in campaign.phase_timings.items():
                totals[phase] = round(totals.get(phase, 0.0) + seconds, 6)
        return totals or None

    def to_json(self) -> dict:
        return {
            "workers": self.workers,
            "heartbeat_timeout": self.heartbeat_timeout,
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "wall_time": round(self.wall_time, 3),
            "events_logged": self.events_logged,
            "phase_totals": self.phase_totals(),
            "transport": self.transport,
            "jobs": [record.to_json() for record in self.jobs],
        }

    @staticmethod
    def from_json(data: dict) -> "FleetDiagnostics":
        return FleetDiagnostics(
            workers=data["workers"],
            heartbeat_timeout=data["heartbeat_timeout"],
            max_retries=data["max_retries"],
            backoff_base=data["backoff_base"],
            jobs=[JobDiagnostics.from_json(entry)
                  for entry in data.get("jobs", [])],
            wall_time=data.get("wall_time", 0.0),
            events_logged=data.get("events_logged", 0),
            transport=data.get("transport"),
        )

    def summary(self) -> str:
        """One-line human summary for CLI output."""
        done = sum(1 for record in self.jobs if not record.degraded)
        bits = [f"{done}/{len(self.jobs)} job(s) completed"]
        restarts = self.total_restarts()
        if restarts:
            bits.append(f"{restarts} worker death(s) recovered")
        if self.transport:
            bits.append(
                f"{self.transport.get('remote_attempts', 0)} remote "
                f"attempt(s), {self.transport.get('reconnects', 0)} "
                f"reconnect(s)"
            )
        degraded = self.degraded_jobs()
        if degraded:
            names = ", ".join(record.job_id for record in degraded)
            bits.append(f"DEGRADED: {names}")
        return ", ".join(bits)
