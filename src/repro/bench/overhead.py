"""The Figure-2 overhead experiment.

For each firmware and sanitizer functionality, replay the merged corpus
under: a bare build (denominator), EMBSAN in the firmware's paper mode,
and — on Embedded Linux — the native in-guest sanitizer.  Slowdown is
``total_cycles(deployment) / total_cycles(bare)`` on identical guest
work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.firmware.builder import attach_runtime
from repro.firmware.instrument import InstrumentationMode
from repro.firmware.registry import build_firmware, firmware_spec
from repro.bench.workload import merged_corpus, replay


@dataclass(frozen=True)
class OverheadRow:
    """One bar of Figure 2."""

    firmware: str
    base_os: str
    arch: str
    sanitizer: str  #: "kasan" or "kcsan"
    deployment: str  #: "embsan-c" | "embsan-d" | "native"
    slowdown: float
    guest_cycles: int
    overhead_cycles: float


def _bare_cycles(firmware: str, seed: int) -> Tuple[int, list]:
    image = build_firmware(firmware, mode=InstrumentationMode.NONE,
                           with_bugs=False, boot=False)
    image.boot()
    corpus = merged_corpus(firmware, seed=seed)
    counters = replay(image, corpus)
    return counters["total_cycles"], corpus


def _embsan_cycles(firmware: str, sanitizer: str, seed: int) -> Tuple[float, int, float, str]:
    spec = firmware_spec(firmware)
    image = build_firmware(firmware, mode=spec.inst_mode,
                           with_bugs=False, boot=False)
    attach_runtime(image, sanitizers=(sanitizer,))
    image.boot()
    corpus = merged_corpus(firmware, seed=seed)
    counters = replay(image, corpus)
    mode = "embsan-c" if spec.inst_mode is InstrumentationMode.EMBSAN_C else "embsan-d"
    return (counters["total_cycles"], counters["guest_cycles"],
            counters["overhead_cycles"], mode)


def _native_cycles(firmware: str, sanitizer: str, seed: int):
    image = build_firmware(firmware, mode=InstrumentationMode.NATIVE,
                           native_sanitizers=(sanitizer,),
                           with_bugs=False, boot=False)
    image.boot()
    corpus = merged_corpus(firmware, seed=seed)
    counters = replay(image, corpus)
    return (counters["total_cycles"], counters["guest_cycles"],
            counters["overhead_cycles"])


def measure_firmware(
    firmware: str,
    sanitizers: Sequence[str] = ("kasan",),
    include_native: Optional[bool] = None,
    seed: int = 7,
) -> List[OverheadRow]:
    """Measure every Figure-2 bar for one firmware."""
    spec = firmware_spec(firmware)
    if include_native is None:
        # only Embedded Linux ships native KASAN/KCSAN implementations
        include_native = spec.base_os == "Embedded Linux"
    bare_total, _corpus = _bare_cycles(firmware, seed)
    rows: List[OverheadRow] = []
    for sanitizer in sanitizers:
        total, guest, overhead, mode = _embsan_cycles(firmware, sanitizer, seed)
        rows.append(OverheadRow(
            firmware, spec.base_os, spec.arch, sanitizer, mode,
            slowdown=total / bare_total, guest_cycles=guest,
            overhead_cycles=overhead,
        ))
        if include_native:
            total, guest, overhead = _native_cycles(firmware, sanitizer, seed)
            rows.append(OverheadRow(
                firmware, spec.base_os, spec.arch, sanitizer, "native",
                slowdown=total / bare_total, guest_cycles=guest,
                overhead_cycles=overhead,
            ))
    return rows


def figure2(sanitizers: Sequence[str] = ("kasan", "kcsan"),
            seed: int = 7) -> List[OverheadRow]:
    """The full Figure-2 sweep across every Table-1 firmware."""
    from repro.firmware.registry import all_firmware

    rows: List[OverheadRow] = []
    for spec in all_firmware():
        # the paper evaluates KCSAN functionality on the Linux targets
        wanted = tuple(
            s for s in sanitizers
            if s == "kasan" or spec.base_os == "Embedded Linux"
        )
        rows.extend(measure_firmware(spec.name, sanitizers=wanted, seed=seed))
    return rows


def summarize(rows: Sequence[OverheadRow]) -> Dict[Tuple[str, str], Tuple[float, float]]:
    """(sanitizer, deployment) -> (min, max) slowdown across firmware."""
    spans: Dict[Tuple[str, str], List[float]] = {}
    for row in rows:
        spans.setdefault((row.sanitizer, row.deployment), []).append(row.slowdown)
    return {key: (min(vals), max(vals)) for key, vals in spans.items()}


def format_rows(rows: Sequence[OverheadRow]) -> str:
    """Render the Figure-2 series as an aligned text table."""
    lines = [
        f"{'firmware':24s} {'os':15s} {'san':6s} {'deployment':9s} slowdown",
    ]
    for row in rows:
        lines.append(
            f"{row.firmware:24s} {row.base_os:15s} {row.sanitizer:6s} "
            f"{row.deployment:9s} {row.slowdown:5.2f}x"
        )
    return "\n".join(lines)
