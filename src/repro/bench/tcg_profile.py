"""Wall-clock hot-loop profile for the TCG engine modes.

The Figure-2 cost model reports *modeled* guest-cycle ratios, which are
mode-independent by construction; this module measures the orthogonal
quantity — how many guest instructions per host second each execution
mode actually retires — on a figure-2-style workload: a memory-heavy
inner loop (the fill/scan mix the overhead corpus replays) plus calls
and branches, run bare and with KASAN+KCSAN attached in EMBSAN-D mode.

Used by ``benchmarks/bench_tcg_specialization.py`` to produce the
committed ``BENCH_tcg.json`` artifact.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.emulator.arch import arch_by_name
from repro.emulator.machine import Machine
from repro.isa.assembler import assemble
from repro.sanitizers.runtime.runtime import CommonSanitizerRuntime, RuntimeConfig

#: Entry point of the profile program in flash.
TEXT_BASE = 0x0800_0000
#: Scratch buffer the loop streams through (sram).
DATA_BASE = 0x2000_0000

#: The hot loop: ~1/3 memory traffic, the rest ALU + branches + a call
#: per outer iteration — the instruction mix the merged overhead corpus
#: exhibits (see repro.bench.workload).
HOT_LOOP = """
.org 0x08000000
.global entry
entry:
    movi a0, 0x2000
    shli a0, a0, 16     ; data buffer base
    movi t0, 0          ; outer counter
    lui  t1, %(outer_hi)d
    ori  t1, t1, %(outer_lo)d
outer:
    call body
    addi t0, t0, 1
    blt  t0, t1, outer
    hlt
.global body
body:
    movi t2, 0
    movi t3, 24         ; words per inner pass
inner:
    shli s0, t2, 2
    add  s0, a0, s0
    st32 t2, [s0]       ; stream a word out ...
    ld32 s1, [s0]       ; ... and back in
    add  s2, s1, t2
    mul  s2, s2, t3
    xor  s2, s2, t0
    shri s3, s2, 3
    addi t2, t2, 1
    blt  t2, t3, inner
    ret
"""


def build_workload(iterations: int) -> str:
    """Render the hot-loop source for ``iterations`` outer passes."""
    return HOT_LOOP % {
        "outer_hi": (iterations >> 16) & 0xFFFF,
        "outer_lo": iterations & 0xFFFF,
    }


def _make_machine(engine: str, sanitized: bool, iterations: int):
    machine = Machine(arch_by_name("arm"), name=f"tcg-profile-{engine}")
    program = assemble(build_workload(iterations), base=TEXT_BASE)
    with machine.bus.untraced():
        machine.bus.region_named("flash").write(TEXT_BASE, program.image)
    runtime = None
    if sanitized:
        config = RuntimeConfig(sanitizers=("kasan", "kcsan"), mode="d")
        runtime = CommonSanitizerRuntime(machine, config).attach()
    core = machine.add_cpu(pc=program.symbols["entry"], sp=0x2000_4000,
                           engine=engine)
    if runtime is not None:
        # past the ready point: every access is validated
        machine.mark_ready()
    return machine, core


def profile_mode(engine: str, sanitized: bool, iterations: int = 2000,
                 max_steps: int = 50_000_000) -> Dict[str, float]:
    """Run the hot loop once under ``engine``; returns timing facts."""
    machine, core = _make_machine(engine, sanitized, iterations)
    start = time.perf_counter()
    executed = core.run(max_steps=max_steps)
    elapsed = time.perf_counter() - start
    if not core.state.halted:  # pragma: no cover - budget misconfiguration
        raise RuntimeError(f"profile did not halt within {max_steps} steps")
    out = {
        "engine": engine,
        "sanitized": sanitized,
        "instructions": executed,
        "seconds": elapsed,
        "insn_per_sec": executed / elapsed if elapsed else 0.0,
        "guest_cycles": core.cycles,
    }
    for counter in ("tb_chain_hits", "tb_flush_count", "tb_evictions",
                    "tb_compiled", "jit_deopts", "jit_trace_execs"):
        if hasattr(core, counter):
            out[counter] = getattr(core, counter)
    return out


def profile_all(iterations: int = 2000) -> Dict[str, Dict[str, float]]:
    """Profile both TCG modes, bare and sanitized.

    Returns a dict keyed ``spec_bare`` / ``interp_bare`` / ``spec_kasan_kcsan``
    / ``interp_kasan_kcsan`` plus the derived speedup ratios the acceptance
    criteria reference.
    """
    results = {
        "spec_bare": profile_mode("tcg", False, iterations),
        "interp_bare": profile_mode("tcg-interp", False, iterations),
        "spec_kasan_kcsan": profile_mode("tcg", True, iterations),
        "interp_kasan_kcsan": profile_mode("tcg-interp", True, iterations),
    }
    results["speedup_bare"] = (
        results["spec_bare"]["insn_per_sec"]
        / results["interp_bare"]["insn_per_sec"]
    )
    results["speedup_sanitized"] = (
        results["spec_kasan_kcsan"]["insn_per_sec"]
        / results["interp_kasan_kcsan"]["insn_per_sec"]
    )
    return results


def profile_jit_all(iterations: int = 2000) -> Dict[str, Dict[str, float]]:
    """Profile the jit tier against the specialized baseline.

    Returns a dict keyed ``spec_bare`` / ``jit_bare`` /
    ``spec_kasan_kcsan`` / ``jit_kasan_kcsan`` plus the derived
    ``speedup_bare`` / ``speedup_sanitized`` ratios and the tier
    counters the BENCH_jit document stamps.
    """
    from repro.isa.tcg import TcgEngine

    results = {
        "spec_bare": profile_mode("tcg", False, iterations),
        "jit_bare": profile_mode("jit", False, iterations),
        "spec_kasan_kcsan": profile_mode("tcg", True, iterations),
        "jit_kasan_kcsan": profile_mode("jit", True, iterations),
    }
    results["speedup_bare"] = (
        results["jit_bare"]["insn_per_sec"]
        / results["spec_bare"]["insn_per_sec"]
    )
    results["speedup_sanitized"] = (
        results["jit_kasan_kcsan"]["insn_per_sec"]
        / results["spec_kasan_kcsan"]["insn_per_sec"]
    )
    results["jit_hotness_threshold"] = TcgEngine.DEFAULT_JIT_THRESHOLD
    results["tb_compiled"] = int(
        results["jit_bare"].get("tb_compiled", 0)
        + results["jit_kasan_kcsan"].get("tb_compiled", 0)
    )
    results["jit_deopts"] = int(
        results["jit_bare"].get("jit_deopts", 0)
        + results["jit_kasan_kcsan"].get("jit_deopts", 0)
    )
    return results
