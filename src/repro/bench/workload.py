"""Deterministic benchmark workloads (the "merged corpus" of §4.3).

The paper measures overhead by replaying the corpus merged from the
fuzzing campaigns.  We regenerate that corpus the same way: a short,
deterministic, coverage-guided fuzzing session against a *bug-free,
uninstrumented* build collects the coverage-increasing programs; every
deployment mode then replays exactly those programs, so the slowdown
ratio isolates the sanitizer cost on identical guest work.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import GuestFault
from repro.firmware.image import FirmwareImage
from repro.firmware.instrument import InstrumentationMode
from repro.firmware.registry import build_firmware
from repro.fuzz.coverage import EmulatorCoverage
from repro.fuzz.engine import FuzzerEngine, FuzzTarget
from repro.fuzz.ifspec import interface_for
from repro.fuzz.program import Program, ResourcePool, resolve_args

#: fuzzing budget used to merge the corpus
CORPUS_BUDGET = 600
#: replay at most this many corpus programs
MAX_PROGRAMS = 80

_corpus_cache: Dict[Tuple[str, int], List[Program]] = {}


def merged_corpus(firmware: str, seed: int = 7,
                  budget: int = CORPUS_BUDGET) -> List[Program]:
    """The deterministic merged corpus for one firmware (cached)."""
    key = (firmware, seed)
    cached = _corpus_cache.get(key)
    if cached is not None:
        return cached

    def make():
        image = build_firmware(firmware, mode=InstrumentationMode.NONE,
                               with_bugs=False, boot=False)
        coverage = EmulatorCoverage(image.machine)
        image.boot()
        return image, None, coverage

    target = FuzzTarget(make)
    spec = interface_for(target.image.kernel)
    engine = FuzzerEngine(target, spec, seed=seed)
    engine.run(budget)
    corpus = _core_load(target.image) + \
        [p.clone() for p in engine.corpus[:MAX_PROGRAMS // 4]]
    _corpus_cache[key] = corpus
    return corpus


def _core_load(image: FirmwareImage) -> List[Program]:
    """The steady-state I/O core every merged corpus contains.

    Fuzzing corpora are dominated by plain open/read/write/close and
    allocation traffic; regenerating that core deterministically keeps
    the replay representative even when the fuzzed tail is exotic.
    """
    from repro.fuzz.program import Call
    from repro.os.embedded_linux.kernel import EmbeddedLinuxKernel, SOCK_DEV_BASE
    from repro.os.embedded_linux.syscalls import Syscall as S

    kernel = image.kernel
    programs: List[Program] = []
    if isinstance(kernel, EmbeddedLinuxKernel):
        devices = sorted(d for d in kernel.vfs.devices if d < SOCK_DEV_BASE)[:2]
        for _ in range(6):
            for dev in devices:
                programs.append(Program([
                    Call(S.OPEN, [dev], produces="fd"),
                    Call(S.WRITE, [("res", "fd", 0), 64, 5]),
                    Call(S.READ, [("res", "fd", 0), 64, 0]),
                    Call(S.WRITE, [("res", "fd", 0), 32, 9]),
                    Call(S.CLOSE, [("res", "fd", 0)]),
                ]))
            programs.append(Program([
                Call(S.MMAP, [0x2000], produces="map"),
                Call(S.MMAP, [0x1000], produces="map"),
                Call(S.MUNMAP, [("res", "map", 0)]),
                Call(S.MUNMAP, [("res", "map", 1)]),
            ]))
        return programs
    # RTOS targets: allocation ladders through the task API
    os_name = getattr(kernel, "os_name", "")
    alloc_op, free_op = {
        "freertos": (7, 8), "liteos": (1, 2), "vxworks": (3, 4),
    }.get(os_name, (None, None))
    if alloc_op is None:
        return programs
    for round_idx in range(8):
        calls = []
        for size in (24, 64, 120, 48):
            calls.append(Call(alloc_op, [size + round_idx], produces="mem"))
        for idx in range(4):
            calls.append(Call(free_op, [("res", "mem", idx)]))
        programs.append(Program(calls))
    return programs


def replay(image: FirmwareImage, corpus: List[Program]) -> dict:
    """Replay the corpus; returns the machine's cycle accounting.

    Counters reset after boot so the measurement covers steady-state
    execution only, like the paper's post-boot corpus replay.
    """
    spec = interface_for(image.kernel)
    machine = image.machine
    machine.reset_counters()
    kernel, ctx = image.kernel, image.ctx
    for program in corpus:
        pool = ResourcePool()
        try:
            for nr, args, produces in program.resolve():
                concrete = resolve_args(args, pool)
                if spec.style == "syscall":
                    result = kernel.do_syscall(ctx, nr, *concrete)
                else:
                    result = kernel.invoke(ctx, nr, *concrete[:3])
                if produces and isinstance(result, int):
                    pool.put(produces, result)
        except GuestFault:  # pragma: no cover - benign builds don't fault
            continue
    return {
        "guest_cycles": machine.guest_cycles,
        "overhead_cycles": machine.overhead_cycles,
        "total_cycles": machine.total_cycles,
    }
