"""Calibrated per-event sanitizer costs, in guest-cycle units.

Figure 2 reports slowdown *ratios* on a real testbed; our substrate
counts deterministic guest cycles instead of wall-clock time, so the
per-check constants below are the single calibration point of the whole
reproduction (see DESIGN.md, "Calibration note").

The constants encode the paper's §4.3 profiling findings directly:

* EMBSAN pays **interception** cost — a hypercall exit (cheap, EMBSAN-C)
  or a TCG probe with symbolic argument reconstruction and a host
  context switch (dearer, EMBSAN-D) — but its check routine then runs at
  *native host speed*.
* Native sanitizers pay no interception, but their check routines are
  guest code that runs *translated*, i.e. expanded by the TCG expansion
  factor, which is why EMBSAN-C can beat native KASAN.

KCSAN-functionality checks cost several times a KASAN check (watchpoint
set-up/scan), which produces the paper's ~5-6x band.
"""

from __future__ import annotations

from typing import NamedTuple

#: translation expansion: host ops emitted per guest op (QEMU/TCG-like).
TCG_EXPANSION = 2.4


class CostModel(NamedTuple):
    """Per-event sanitizer costs (guest-cycle units)."""

    # -- KASAN functionality, per scalar access ------------------------
    kasan_c_trap: float = 1.2  #: guest-side hypercall issue (EMBSAN-C)
    kasan_c_check: float = 8.55  #: host-native shadow check (EMBSAN-C)
    kasan_d_intercept: float = 3.3  #: probe dispatch + arg reconstruction
    kasan_d_check: float = 2.7  #: host-native shadow check (EMBSAN-D)
    kasan_native_check: float = 3.4375 * TCG_EXPANSION  #: translated routine

    # -- KASAN functionality, per allocator event ----------------------
    kasan_c_alloc: float = 8.0
    kasan_d_alloc: float = 40.0
    kasan_native_alloc: float = 15.0 * TCG_EXPANSION

    # -- KCSAN functionality, per scalar access ------------------------
    kcsan_c_trap: float = 1.2
    kcsan_c_check: float = 32.8
    kcsan_d_intercept: float = 3.3
    kcsan_d_check: float = 20.7
    kcsan_native_check: float = 13.75 * TCG_EXPANSION

    # -- KMSAN functionality (extension; compile-time only, like the
    #    real KMSAN).  No paper band exists: values sit between the
    #    KASAN and KCSAN check costs, reflecting per-byte shadow updates.
    kmsan_c_trap: float = 1.2
    kmsan_c_check: float = 14.0
    kmsan_c_alloc: float = 10.0

    # -- range (memcpy-family) interceptors ------------------------------
    # per-byte: a range check walks one shadow byte per granule, so its
    # cost scales with the span like the guest's own copy loop does.
    # The relative weights encode where each deployment pays: the
    # hypercall fast path amortizes the KASAN walk; dynamic
    # interception reconstructs per chunk.
    kasan_range_c: float = 0.50
    kasan_range_d: float = 0.90
    kasan_range_native: float = 0.10
    kcsan_range_c: float = 2.20
    kcsan_range_d: float = 3.70
    kcsan_range_native: float = 2.40

    # ------------------------------------------------------------------
    def access_cost(self, sanitizer: str, mode: str) -> float:
        """Total added cycles for one checked scalar access.

        ``sanitizer`` is "kasan" or "kcsan"; ``mode`` is "c", "d" or
        "native".
        """
        if sanitizer == "kasan":
            return {
                "c": self.kasan_c_trap + self.kasan_c_check,
                "d": self.kasan_d_intercept + self.kasan_d_check,
                "native": self.kasan_native_check,
            }[mode]
        if sanitizer == "kcsan":
            return {
                "c": self.kcsan_c_trap + self.kcsan_c_check,
                "d": self.kcsan_d_intercept + self.kcsan_d_check,
                "native": self.kcsan_native_check,
            }[mode]
        raise ValueError(f"unknown sanitizer {sanitizer!r}")

    def alloc_cost(self, mode: str) -> float:
        """Total added cycles for one allocator event (KASAN family)."""
        return {
            "c": self.kasan_c_alloc,
            "d": self.kasan_d_alloc,
            "native": self.kasan_native_alloc,
        }[mode]

    def range_cost(self, size: int, mode: str, sanitizer: str = "kasan") -> float:
        """Added cycles for a checked bulk operation of ``size`` bytes."""
        base = {"c": 2.0, "d": 3.6, "native": 2.5 * TCG_EXPANSION}[mode]
        per_byte = getattr(self, f"{sanitizer}_range_{mode}")
        return base + per_byte * min(size, 4096)


#: the calibrated instance used everywhere unless a bench overrides it.
DEFAULT_COSTS = CostModel()
