"""Benchmark support: the calibrated cost model, workload replay and the
overhead harness behind Figure 2."""

from repro.bench.costmodel import CostModel, DEFAULT_COSTS

__all__ = ["CostModel", "DEFAULT_COSTS"]
