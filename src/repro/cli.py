"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the paper's workflow:

* ``list``     — the Table-1 firmware registry
* ``probe``    — run the Prober on one firmware and print the DSL specs
* ``replay``   — replay a catalog bug's reproducer under a deployment
* ``fuzz``     — run a fuzzing campaign with EMBSAN attached
* ``fuzz-all`` — the full Table-3 sweep, optionally as a supervised
  multi-process fleet (``--workers N``) or a sharded single-firmware
  fleet (``--shard N``) cooperating through a shared corpus store
* ``corpus``   — inspect and maintain persistent corpus stores
  (``ls`` / ``distill`` / ``merge`` / ``export`` / ``import``)
* ``stats``    — render a ``--metrics`` JSON file as a readable table
* ``overhead`` — measure Figure-2 slowdowns for one or all firmware
* ``table2``   — the known-bug detection matrix
* ``serve``    — the always-on fuzzing daemon: a crash-safe WAL-backed
  job queue plus a JSONL control API (see ``docs/serve.md``)
* ``submit`` / ``jobs`` / ``drain`` — thin clients for a running
  ``serve`` daemon

Exit codes: 0 success, 1 replay miss, 2 usage error, 3 degraded — a
campaign exhausted its crash budget, or a fleet job exhausted its
retry budget and was abandoned; 4 interrupted — SIGTERM/SIGINT drained
a sweep cleanly and its checkpoints resume it; 5 rejected — the serve
daemon applied backpressure (retry after the advertised delay).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_list(_args) -> int:
    from repro.firmware.registry import all_firmware

    print(f"{'Firmware':24s} {'Base OS':15s} {'Arch':5s} {'Mode':9s} "
          f"{'Source':7s} Fuzzer")
    for spec in all_firmware():
        print(f"{spec.name:24s} {spec.base_os:15s} {spec.arch:5s} "
              f"{spec.inst_mode.value:9s} {spec.source:7s} {spec.fuzzer}")
    return 0


def _cmd_probe(args) -> int:
    from repro import prepare

    deployment = prepare(args.firmware, sanitizers=tuple(args.sanitizers))
    print(deployment.dsl_text())
    return 0


def _cmd_replay(args) -> int:
    from repro.bugs.catalog import TABLE2_BUGS, TABLE4_BUGS
    from repro.bugs.replay import replay_on_embsan, replay_on_native
    from repro.firmware.instrument import InstrumentationMode
    from repro.firmware.registry import firmware_spec

    catalog = {record.bug_id: record for record in TABLE2_BUGS + TABLE4_BUGS}
    record = catalog.get(args.bug)
    if record is None:
        print(f"unknown bug id {args.bug!r}; known ids: "
              f"{', '.join(sorted(catalog))}", file=sys.stderr)
        return 2
    if args.deployment == "native":
        result = replay_on_native(record)
    else:
        mode = (InstrumentationMode.EMBSAN_C if args.deployment == "embsan-c"
                else InstrumentationMode.EMBSAN_D if args.deployment == "embsan-d"
                else firmware_spec(record.firmware).inst_mode
                if record.firmware else InstrumentationMode.EMBSAN_C)
        result = replay_on_embsan(record, mode)
    print(f"bug {record.bug_id} ({record.location}) under {result.mode}: "
          f"{'DETECTED' if result.detected else 'not detected'}")
    for report in result.reports:
        print()
        print(report)
    return 0 if result.detected else 1


def _make_observer(args):
    """Build an Observer when ``--metrics``/``--trace`` asked for one."""
    if not (getattr(args, "metrics", None) or getattr(args, "trace", None)):
        return None
    from repro.obs import Observer

    return Observer(metrics=bool(args.metrics), trace=bool(args.trace))


def _write_observer(observer, args) -> None:
    """Flush an Observer's sinks to the paths the CLI was given."""
    if observer is None:
        return
    if args.metrics:
        observer.write_metrics(args.metrics)
        print(f"metrics written to {args.metrics}")
    if args.trace:
        observer.write_trace(args.trace)
        print(f"trace written to {args.trace}")


def _cmd_fuzz(args) -> int:
    import json

    from repro.emulator.faults import plan_for
    from repro.fuzz.campaign import run_campaign
    from repro.obs.observer import ensure_parent

    fault_plan = plan_for(args.faults, seed=args.seed) if args.faults else None
    observer = _make_observer(args)
    result = run_campaign(
        args.firmware,
        budget=args.budget,
        seed=args.seed,
        fault_plan=fault_plan,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        crash_budget=args.crash_budget,
        watchdog_insns=args.watchdog_insns,
        watchdog_cycles=args.watchdog_cycles,
        observer=observer,
        corpus_dir=args.corpus_dir,
        seed_schedule=args.seed_schedule,
        exec_mode=args.exec_mode,
        engine=args.engine,
        jit_threshold=args.jit_threshold,
        surface=args.surface,
    )
    print(f"fuzzer: {result.fuzzer}, seed: {result.seed}, "
          f"budget: {result.budget}, execs: {result.execs}, "
          f"coverage: {result.coverage}, crashes: {result.crashes}")
    if fault_plan is not None:
        print(f"fault plan: {fault_plan.describe()}")
    reproducible = [f for f in result.findings if f.reproducible]
    print(f"{len(reproducible)} reproducible unique finding(s):")
    for finding in reproducible:
        print(f"  {finding.report.dedup_key()}")
    if result.matched:
        print(f"catalog rows matched: {sorted(result.matched)}")
    if result.missed:
        print(f"catalog rows missed: {[r.bug_id for r in result.missed]}")
    diagnostics = result.diagnostics
    degraded = False
    if diagnostics is not None:
        if diagnostics.corpus:
            stats = diagnostics.corpus
            print(f"corpus: {stats.get('size', 0)} entr(ies), "
                  f"{stats.get('inserts', 0)} insert(s), "
                  f"{stats.get('dedup_hits', 0)} dedup hit(s), "
                  f"{stats.get('imported', 0)} imported")
        print(f"diagnostics: {diagnostics.summary()}")
        if diagnostics.checkpoint_discarded:
            print(f"checkpoint discarded as corrupt: "
                  f"{diagnostics.checkpoint_discarded}")
        if args.diagnostics:
            with open(ensure_parent(args.diagnostics), "w",
                      encoding="utf-8") as fh:
                json.dump(diagnostics.to_json(), fh, indent=2)
            print(f"diagnostics written to {args.diagnostics}")
        degraded = diagnostics.degraded
    if args.results:
        from repro.fuzz.checkpoint import result_to_json

        with open(ensure_parent(args.results), "w", encoding="utf-8") as fh:
            json.dump(result_to_json(result), fh, sort_keys=True)
        print(f"results written to {args.results}")
    _write_observer(observer, args)
    return 3 if degraded else 0


def _install_drain_handlers(state):
    """SIGTERM/SIGINT -> graceful drain for long sweeps.

    While a fleet supervisor is registered in ``state["sup"]`` the
    signal interrupts it (running attempts are killed, checkpoints
    stay, ``run()`` returns with ``interrupted=True``); otherwise the
    sequential path's ``KeyboardInterrupt`` handling takes over.
    Returns the previous handlers for restoration.
    """
    import signal

    def _graceful(_signum, _frame):
        state["hit"] = True
        sup = state.get("sup")
        if sup is not None:
            sup.interrupt()
        else:
            raise KeyboardInterrupt

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _graceful)
        except ValueError:  # not the main thread (tests)
            pass
    return previous


def _restore_handlers(previous) -> None:
    import signal

    for sig, handler in previous.items():
        signal.signal(sig, handler)


def _cmd_fuzz_all(args) -> int:
    import json

    from repro.fuzz.checkpoint import result_to_json
    from repro.fuzz.supervisor import FleetSupervisor, make_jobs
    from repro.obs.observer import ensure_parent

    observer = _make_observer(args)
    if args.shard:
        return _fuzz_sharded(args, observer)
    jobs = make_jobs(
        budget=args.budget,
        seed=args.seed,
        firmware=args.firmware or None,
        checkpoint_dir=args.checkpoint_dir,
        faults=args.faults,
        crash_budget=args.crash_budget,
        exec_mode=args.exec_mode,
        engine=args.engine,
        jit_threshold=args.jit_threshold,
        surface=args.surface,
    )
    fleet = None
    interrupted = False
    unfinished = []
    drain_state = {"sup": None, "hit": False}
    previous_handlers = _install_drain_handlers(drain_state)
    try:
        if args.workers <= 1:
            # sequential reference path: same jobs, no worker processes —
            # the fleet's determinism contract is that --workers N output
            # is byte-identical to this
            from repro.emulator.faults import plan_for
            from repro.fuzz.campaign import run_campaign

            results = []
            try:
                for job in jobs:
                    kwargs = {}
                    if job.faults:
                        kwargs["fault_plan"] = plan_for(job.faults,
                                                        seed=job.seed)
                    if job.crash_budget is not None:
                        kwargs["crash_budget"] = job.crash_budget
                    if job.exec_mode != "journal":
                        kwargs["exec_mode"] = job.exec_mode
                    if job.engine != "tcg":
                        kwargs["engine"] = job.engine
                    if job.jit_threshold is not None:
                        kwargs["jit_threshold"] = job.jit_threshold
                    if job.surface != "syscall":
                        kwargs["surface"] = job.surface
                    results.append(run_campaign(
                        job.firmware, budget=job.budget, seed=job.seed,
                        checkpoint_path=job.checkpoint_path,
                        checkpoint_every=job.checkpoint_every,
                        observer=observer, **kwargs))
            except KeyboardInterrupt:
                # the drain contract: the last full checkpoint of the
                # in-flight campaign is already on disk; a rerun with
                # the same flags resumes it mid-budget
                interrupted = True
            unfinished = [job.job_id for job in jobs[len(results):]]
            results = results + [None] * len(unfinished)
        else:
            transport = None
            if args.listen:
                from repro.fuzz.transport import TcpJsonlTransport

                host, _, port = args.listen.rpartition(":")
                transport = TcpJsonlTransport(
                    host or "127.0.0.1", int(port), token=args.token,
                    spawn_fallback=not args.no_spawn_fallback,
                )
                print(f"listening for remote workers on {transport.address}")
                if args.wait_remote:
                    if not transport.wait_for_workers(
                            args.wait_remote,
                            timeout=args.wait_remote_timeout):
                        print(f"only some of the {args.wait_remote} remote "
                              f"worker(s) arrived within "
                              f"{args.wait_remote_timeout}s", file=sys.stderr)
                        transport.close()
                        return 2
            try:
                supervisor = FleetSupervisor(
                    jobs,
                    workers=args.workers,
                    heartbeat_timeout=args.heartbeat_timeout,
                    max_retries=args.max_retries,
                    backoff_base=args.backoff,
                    events_path=args.events_log,
                    observer=observer,
                    transport=transport,
                )
                drain_state["sup"] = supervisor
                if drain_state["hit"]:  # signal raced the registration
                    supervisor.interrupt()
                fleet = supervisor.run()
            finally:
                drain_state["sup"] = None
                if transport is not None:
                    transport.close()
            results = fleet.results
            interrupted = fleet.interrupted
            unfinished = fleet.unfinished
    finally:
        _restore_handlers(previous_handlers)

    degraded = False
    print(f"{'Firmware':24s} {'Execs':>6s} {'Crashes':>8s} {'Found':>6s}")
    for job, result in zip(jobs, results):
        if result is None:
            if interrupted and job.job_id in unfinished:
                print(f"{job.firmware:24s} {'-':>6s} {'-':>8s} {'-':>6s}  "
                      f"INTERRUPTED (checkpoint resumes it)")
                continue
            degraded = True
            print(f"{job.firmware:24s} {'-':>6s} {'-':>8s} {'-':>6s}  "
                  f"DEGRADED (abandoned after retries)")
            continue
        total = result.found_count() + len(result.missed)
        print(f"{result.firmware:24s} {result.execs:6d} "
              f"{result.crashes:8d} {result.found_count():3d}/{total:d}")
        if result.diagnostics is not None:
            if result.diagnostics.checkpoint_discarded:
                print(f"  checkpoint discarded as corrupt: "
                      f"{result.diagnostics.checkpoint_discarded}")
            degraded = degraded or result.diagnostics.degraded
    if fleet is not None:
        print(f"fleet: {fleet.diagnostics.summary()}")
        if args.events_log:
            print(f"events written to {args.events_log}")
    if args.diagnostics and fleet is not None:
        with open(ensure_parent(args.diagnostics), "w",
                  encoding="utf-8") as fh:
            json.dump(fleet.diagnostics.to_json(), fh, indent=2)
        print(f"fleet diagnostics written to {args.diagnostics}")
    if args.results:
        payload = [
            None if result is None else result_to_json(result)
            for result in results
        ]
        with open(ensure_parent(args.results), "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
        print(f"results written to {args.results}")
    _write_observer(observer, args)
    if interrupted:
        print(f"interrupted: {len(unfinished)} campaign(s) unfinished; "
              f"re-run with the same flags to resume from checkpoints")
        return 4
    return 3 if degraded else 0


def _fuzz_sharded(args, observer) -> int:
    """``fuzz-all --shard N``: one firmware, N cooperating shards."""
    import json

    from repro.fuzz.checkpoint import result_to_json
    from repro.fuzz.supervisor import run_sharded_fleet
    from repro.obs.observer import ensure_parent

    if not args.firmware or len(args.firmware) != 1:
        print("--shard fuzzes ONE firmware with N cooperating workers; "
              "pass exactly one --firmware NAME", file=sys.stderr)
        return 2
    sharded = run_sharded_fleet(
        args.firmware[0],
        budget=args.budget,
        shards=args.shard,
        workers=args.workers,
        seed=args.seed,
        sync_every=args.sync_every,
        corpus_dir=args.corpus_dir,
        checkpoint_dir=args.checkpoint_dir,
        faults=args.faults,
        crash_budget=args.crash_budget,
        exec_mode=args.exec_mode,
        engine=args.engine,
        jit_threshold=args.jit_threshold,
        surface=args.surface,
        observer=observer,
        events_path=args.events_log,
        fleet_options=dict(
            heartbeat_timeout=args.heartbeat_timeout,
            max_retries=args.max_retries,
            backoff_base=args.backoff,
        ),
    )
    print(f"{'Shard':>5s} {'Execs':>6s} {'Crashes':>8s} {'Found':>6s}")
    for index, result in enumerate(sharded.shard_results):
        if result is None:
            print(f"{index:5d} {'-':>6s} {'-':>8s} {'-':>6s}  "
                  f"DEGRADED (abandoned after retries)")
            continue
        total = result.found_count() + len(result.missed)
        print(f"{index:5d} {result.execs:6d} {result.crashes:8d} "
              f"{result.found_count():3d}/{total:d}")
    merged = sharded.result
    if merged is not None:
        total = merged.found_count() + len(merged.missed)
        syncs = sum(1 for e in sharded.events
                    if e["event"] == "corpus_synced")
        print(f"merged: {merged.execs} execs over {sharded.shards} "
              f"shard(s), {sharded.rounds} round(s), {syncs} corpus "
              f"sync(s), found {merged.found_count()}/{total}")
        if merged.matched:
            print(f"catalog rows matched: {sorted(merged.matched)}")
    if args.events_log:
        print(f"events written to {args.events_log}")
    if args.diagnostics:
        with open(ensure_parent(args.diagnostics), "w",
                  encoding="utf-8") as fh:
            json.dump(sharded.diagnostics.to_json(), fh, indent=2)
        print(f"fleet diagnostics written to {args.diagnostics}")
    if args.results:
        payload = {
            "merged": None if merged is None else result_to_json(merged),
            "shards": [
                None if result is None else result_to_json(result)
                for result in sharded.shard_results
            ],
        }
        with open(ensure_parent(args.results), "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
        print(f"results written to {args.results}")
    _write_observer(observer, args)
    return 3 if sharded.degraded or merged is None else 0


def _cmd_worker(args) -> int:
    """``repro worker --connect HOST:PORT``: serve a remote fleet."""
    from repro.errors import TransportError
    from repro.fuzz.transport import run_worker

    host, _, port = args.connect.rpartition(":")
    if not port.isdigit():
        print(f"--connect wants HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    try:
        stats = run_worker(
            host or "127.0.0.1",
            int(port),
            token=args.token,
            name=args.name,
            max_jobs=args.max_jobs,
            max_reconnects=args.max_reconnects,
            reconnect_base=args.reconnect_base,
            reconnect_max=args.reconnect_max,
            seed=args.seed,
            chaos=args.chaos,
            log=lambda line: print(f"worker: {line}", flush=True),
        )
    except TransportError as exc:
        # version/auth rejections are permanent: retrying would hammer
        # a server that already said no
        print(f"worker: {exc}", file=sys.stderr)
        return 2
    print(f"worker: served {stats.jobs_run} job(s), "
          f"{stats.jobs_failed} failed, {stats.reconnects} reconnect(s), "
          f"{stats.resends} resend(s), "
          f"{stats.checkpoints_synced} checkpoint sync(s)")
    return 1 if stats.jobs_failed else 0


def _cmd_serve(args) -> int:
    """``repro serve``: run the always-on fuzzing daemon."""
    import signal

    from repro.errors import FuzzerError
    from repro.fuzz.serve import FuzzService, parse_address

    try:
        host, port = parse_address(args.listen)
    except FuzzerError as exc:
        print(f"--listen: {exc}", file=sys.stderr)
        return 2
    observer = _make_observer(args)
    service = FuzzService(
        args.state_dir,
        host=host,
        port=port,
        token=args.token,
        max_running=args.max_running,
        max_pending=args.max_pending,
        max_attempts=args.max_attempts,
        retry_after=args.retry_after,
        snapshot_every=args.snapshot_every,
        workers_per_job=args.workers_per_job,
        heartbeat_timeout=args.heartbeat_timeout,
        max_retries=args.max_retries,
        backoff_base=args.backoff,
        observer=observer,
        log=lambda line: print(f"serve: {line}", flush=True),
    )

    def _drain(signum, _frame):
        service.drain(cause=signal.Signals(signum).name)

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig, _drain)
        except ValueError:  # not the main thread (tests)
            pass
    service.start()
    service.serve_forever()
    _write_observer(observer, args)
    return 0


def _serve_client(args):
    from repro.fuzz.serve import ServeClient, parse_address

    host, port = parse_address(args.connect)
    return ServeClient(host, port, token=args.token)


def _cmd_submit(args) -> int:
    """``repro submit``: enqueue a campaign on a serve daemon."""
    import json

    from repro.errors import FuzzerError, TransportError
    from repro.obs.observer import ensure_parent

    spec = {"firmware": args.firmware, "budget": args.budget,
            "seed": args.seed}
    for key in ("faults", "crash_budget", "watchdog_insns",
                "watchdog_cycles"):
        value = getattr(args, key)
        if value is not None:
            spec[key] = value
    if args.exec_mode != "journal":
        spec["exec_mode"] = args.exec_mode
    if args.engine != "tcg":
        spec["engine"] = args.engine
    if args.jit_threshold is not None:
        spec["jit_threshold"] = args.jit_threshold
    if args.surface != "syscall":
        spec["surface"] = args.surface
    if args.checkpoint_every:
        spec["checkpoint_every"] = args.checkpoint_every
    try:
        with _serve_client(args) as client:
            reply = client.submit(spec, dedup_key=args.dedup_key)
            if reply.get("type") == "rejected":
                print(f"rejected ({reply['reason']}): retry after "
                      f"{reply['retry_after']:g}s", file=sys.stderr)
                return 5
            if reply.get("type") != "submitted":
                print(f"submit failed: {reply.get('reason', reply)}",
                      file=sys.stderr)
                return 2
            job_id = reply["job"]
            print(f"job {job_id} "
                  f"{'deduplicated' if reply['deduped'] else 'submitted'} "
                  f"({reply['state']})")
            if not args.wait:
                return 0
            final = client.wait(job_id, timeout=args.wait_timeout)
    except (FuzzerError, TransportError, OSError) as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 2
    print(f"job {job_id} finished: {final['state']}")
    if final["state"] != "done":
        if final.get("error"):
            print(f"  {final['error']}", file=sys.stderr)
        return 3
    result = final["result"]
    print(f"  execs: {result['execs']}, coverage: {result['coverage']}, "
          f"crashes: {result['crashes']}, "
          f"findings: {len(final['findings'])}")
    for record in final["findings"]:
        bug = record["bug_id"] or "unmatched"
        print(f"  {bug}: {record['tool']} {record['bug_type']} "
              f"at {record['location']}")
    if args.results:
        with open(ensure_parent(args.results), "w", encoding="utf-8") as fh:
            json.dump(result, fh, sort_keys=True)
        print(f"results written to {args.results}")
    if args.findings:
        with open(ensure_parent(args.findings), "w",
                  encoding="utf-8") as fh:
            json.dump(final["findings"], fh, sort_keys=True)
        print(f"findings written to {args.findings}")
    return 0


def _cmd_jobs(args) -> int:
    """``repro jobs``: list or watch a serve daemon's job table."""
    from repro.errors import FuzzerError, TransportError

    try:
        with _serve_client(args) as client:
            if args.watch:
                client.watch(
                    args.job,
                    on_event=lambda ev: print(
                        f"{ev.get('seq', '-'):>6} {ev.get('job') or '-':12s} "
                        f"{ev['event']}", flush=True),
                    timeout=args.watch_timeout,
                )
                return 0
            reply = client.status(args.job)
            if reply.get("type") == "error":
                print(f"jobs: {reply['reason']}", file=sys.stderr)
                return 2
            rows = [reply["job"]] if args.job else reply["jobs"]
            print(f"{'Job':12s} {'Firmware':24s} {'State':12s} "
                  f"{'Att':>3s} Requeues")
            for row in rows:
                print(f"{row['job_id']:12s} "
                      f"{row['firmware'] or '?':24s} "
                      f"{row['state']:12s} {row['attempts']:3d} "
                      f"{len(row['requeues'])}")
            if not args.job:
                counts = ", ".join(
                    f"{n} {state}"
                    for state, n in sorted(reply["counts"].items()))
                drain = " (draining)" if reply["draining"] else ""
                print(f"{len(rows)} job(s): {counts or 'none'}{drain}")
    except (FuzzerError, TransportError, OSError) as exc:
        print(f"jobs: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_drain(args) -> int:
    """``repro drain``: gracefully drain a serve daemon."""
    from repro.errors import FuzzerError, TransportError

    try:
        with _serve_client(args) as client:
            reply = client.drain()
    except (FuzzerError, TransportError, OSError) as exc:
        print(f"drain: {exc}", file=sys.stderr)
        return 2
    if reply.get("type") != "draining":
        print(f"drain refused: {reply}", file=sys.stderr)
        return 2
    print("draining: daemon stops admitting, requeues running jobs, "
          "flushes its WAL and exits")
    return 0


def _cmd_corpus(args) -> int:
    """The ``corpus`` maintenance subcommands."""
    from repro.corpus import CorpusStore, distill_store, merge_stores
    from repro.errors import CorpusError

    try:
        if args.corpus_command == "ls":
            store = CorpusStore(args.dir)
            by_kind = {}
            for digest in store.digests():
                entry = store.entries[digest]
                by_kind[entry.kind] = by_kind.get(entry.kind, 0) + 1
                if args.long:
                    print(f"{digest[:16]} {entry.kind:5s} "
                          f"execs={entry.execs:<6d} "
                          f"signature={len(entry.signature)} point(s)")
            kinds = ", ".join(f"{count} {kind}"
                              for kind, count in sorted(by_kind.items()))
            print(f"{len(store)} entr(ies) ({kinds or 'empty'}) "
                  f"for firmware {store.firmware!r}")
        elif args.corpus_command == "distill":
            store = CorpusStore(args.dir)
            before = len(store)
            distilled = distill_store(store, out_root=args.out)
            where = args.out or args.dir
            print(f"distilled {before} -> {len(distilled)} entr(ies) "
                  f"into {where}")
        elif args.corpus_command == "merge":
            dest = merge_stores(args.dest, args.sources)
            print(f"merged {len(args.sources)} store(s) -> "
                  f"{len(dest)} entr(ies) in {args.dest}")
        elif args.corpus_command == "export":
            store = CorpusStore(args.dir)
            count = store.export_bundle(args.bundle)
            print(f"exported {count} entr(ies) to {args.bundle}")
        elif args.corpus_command == "import":
            store = CorpusStore(args.dir)
            count = store.import_bundle(args.bundle)
            print(f"imported {count} new entr(ies) from {args.bundle} "
                  f"({len(store)} total)")
    except CorpusError as exc:
        print(f"corpus error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_stats(args) -> int:
    import json

    from repro.obs import format_metrics
    from repro.obs.metrics import SCHEMA

    try:
        with open(args.metrics_file, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read metrics file {args.metrics_file!r}: {exc}",
              file=sys.stderr)
        return 2
    if data.get("schema") != SCHEMA:
        print(f"{args.metrics_file!r} is not a {SCHEMA} document "
              f"(schema: {data.get('schema')!r})", file=sys.stderr)
        return 2
    print(format_metrics(data))
    return 0


def _cmd_overhead(args) -> int:
    from repro.bench.overhead import figure2, format_rows, measure_firmware

    if args.firmware:
        rows = measure_firmware(args.firmware,
                                sanitizers=tuple(args.sanitizers))
    else:
        rows = figure2(sanitizers=tuple(args.sanitizers))
    print(format_rows(rows))
    return 0


def _cmd_table2(_args) -> int:
    from repro.bugs.catalog import TABLE2_BUGS
    from repro.bugs.replay import replay_on_embsan, replay_on_native
    from repro.firmware.instrument import InstrumentationMode

    print(f"{'bug':26s} {'kernel':10s} {'C':4s} {'D':4s} KASAN")
    for record in TABLE2_BUGS:
        c = replay_on_embsan(record, InstrumentationMode.EMBSAN_C).detected
        d = replay_on_embsan(record, InstrumentationMode.EMBSAN_D).detected
        k = replay_on_native(record).detected
        print(f"{record.location:26s} {record.kernel_version:10s} "
              f"{'Yes' if c else 'No':4s} {'Yes' if d else 'No':4s} "
              f"{'Yes' if k else 'No'}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EMBSAN reproduction: sanitize embedded OS firmware "
                    "at the emulator boundary",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the Table-1 firmware registry")

    probe = sub.add_parser("probe", help="probe a firmware, print DSL specs")
    probe.add_argument("firmware")
    probe.add_argument("--sanitizers", nargs="+", default=["kasan"])

    replay = sub.add_parser("replay", help="replay a catalog bug")
    replay.add_argument("bug", help="bug id, e.g. t2_01 or t4_tp_01")
    replay.add_argument("--deployment", default="paper",
                        choices=["paper", "embsan-c", "embsan-d", "native"])

    fuzz = sub.add_parser("fuzz", help="run a fuzzing campaign")
    fuzz.add_argument("firmware")
    fuzz.add_argument("--budget", type=int, default=2000)
    fuzz.add_argument("--seed", type=int, default=1)
    fuzz.add_argument("--faults", default=None, metavar="SPEC",
                      help="fault plan DSL, e.g. "
                           "'alloc:every=50;bitflip:0x20000000-0x20001000:"
                           "p=0.001;irq:drop=0.05'")
    fuzz.add_argument("--checkpoint", default=None, metavar="PATH",
                      help="checkpoint file; resumes if it exists")
    fuzz.add_argument("--checkpoint-every", type=int, default=0,
                      help="execs between checkpoints (0 = default cadence)")
    fuzz.add_argument("--crash-budget", type=int, default=None,
                      help="host crashes tolerated before degradation")
    fuzz.add_argument("--watchdog-insns", type=int, default=None,
                      help="per-program instruction budget before GuestHang")
    fuzz.add_argument("--watchdog-cycles", type=float, default=None,
                      help="per-program cycle budget before GuestHang")
    fuzz.add_argument("--corpus-dir", default=None, metavar="DIR",
                      help="persistent corpus store: existing entries seed "
                           "the campaign, discoveries persist back")
    fuzz.add_argument("--engine", default="tcg",
                      choices=["tcg", "tcg-interp", "jit"],
                      help="ISA execution tier: specialized TCG "
                           "(default), the reference interpreter, or "
                           "the tiered JIT (see docs/jit.md)")
    fuzz.add_argument("--jit-threshold", type=int, default=None,
                      metavar="N",
                      help="block executions before a hot trace is "
                           "compiled (engine=jit only)")
    fuzz.add_argument("--exec-mode", default="journal",
                      choices=["journal", "forkserver"],
                      help="target reset strategy: per-program journal + "
                           "rebuild-per-refresh, or a golden fork-server "
                           "snapshot with dirty-page delta restores "
                           "(same census, higher execs/s)")
    fuzz.add_argument("--seed-schedule", default="uniform",
                      choices=["uniform", "rarity"],
                      help="corpus seed selection; 'rarity' weights "
                           "programs by how rare their coverage is")
    fuzz.add_argument("--surface", default="syscall",
                      choices=["syscall", "driver"],
                      help="fuzz surface: the syscall/task API (default) "
                           "or the driver-op surface of a build with "
                           "modeled peripherals (docs/peripherals.md)")
    fuzz.add_argument("--diagnostics", default=None, metavar="PATH",
                      help="write campaign diagnostics JSON here")
    fuzz.add_argument("--results", default=None, metavar="PATH",
                      help="write the campaign result JSON here")
    fuzz.add_argument("--metrics", default=None, metavar="PATH",
                      help="write the campaign metrics JSON here "
                           "(render with 'repro stats PATH')")
    fuzz.add_argument("--trace", default=None, metavar="PATH",
                      help="write a Perfetto-loadable Chrome trace here")

    fuzz_all = sub.add_parser(
        "fuzz-all",
        help="run every firmware's campaign, optionally as a worker fleet",
    )
    fuzz_all.add_argument("--workers", type=int, default=1,
                          help="worker processes (1 = in-process sequential)")
    fuzz_all.add_argument("--budget", type=int, default=2000)
    fuzz_all.add_argument("--seed", type=int, default=1)
    fuzz_all.add_argument("--firmware", action="append", default=None,
                          metavar="NAME",
                          help="restrict the sweep (repeatable); "
                               "default is the whole Table-1 catalog")
    fuzz_all.add_argument("--faults", default=None, metavar="SPEC",
                          help="fault plan DSL, compiled per-firmware")
    fuzz_all.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                          help="per-firmware checkpoint files; fleet "
                               "workers resume from these after a crash")
    fuzz_all.add_argument("--engine", default="tcg",
                          choices=["tcg", "tcg-interp", "jit"],
                          help="ISA execution tier (see `fuzz`)")
    fuzz_all.add_argument("--jit-threshold", type=int, default=None,
                          metavar="N",
                          help="hot-trace compile threshold "
                               "(engine=jit only)")
    fuzz_all.add_argument("--exec-mode", default="journal",
                          choices=["journal", "forkserver"],
                          help="target reset strategy (see `fuzz`)")
    fuzz_all.add_argument("--surface", default="syscall",
                          choices=["syscall", "driver"],
                          help="fuzz surface (see `fuzz`); 'driver' "
                               "sweeps only firmware modeling peripherals")
    fuzz_all.add_argument("--crash-budget", type=int, default=None,
                          help="host crashes tolerated before degradation")
    fuzz_all.add_argument("--shard", type=int, default=0, metavar="N",
                          help="fuzz ONE firmware (exactly one --firmware) "
                               "with N cooperating shards syncing through "
                               "a shared corpus store")
    fuzz_all.add_argument("--sync-every", type=int, default=0,
                          metavar="EXECS",
                          help="per-shard execs between corpus syncs "
                               "(0 = one round, sync only at the end)")
    fuzz_all.add_argument("--corpus-dir", default=None, metavar="DIR",
                          help="shared persistent corpus store for "
                               "--shard mode (temporary if omitted)")
    fuzz_all.add_argument("--heartbeat-timeout", type=float, default=30.0,
                          help="seconds of worker silence before it is "
                               "declared hung and killed")
    fuzz_all.add_argument("--max-retries", type=int, default=3,
                          help="restarts per job before it is abandoned")
    fuzz_all.add_argument("--backoff", type=float, default=0.5,
                          help="first retry delay; doubles per retry")
    fuzz_all.add_argument("--events-log", default=None, metavar="PATH",
                          help="append structured fleet events as JSONL")
    fuzz_all.add_argument("--diagnostics", default=None, metavar="PATH",
                          help="write FleetDiagnostics JSON here")
    fuzz_all.add_argument("--results", default=None, metavar="PATH",
                          help="write per-firmware campaign results JSON "
                               "(the byte-identity artifact)")
    fuzz_all.add_argument("--metrics", default=None, metavar="PATH",
                          help="write fleet-merged metrics JSON here")
    fuzz_all.add_argument("--trace", default=None, metavar="PATH",
                          help="write a Perfetto-loadable Chrome trace "
                               "merging supervisor and worker timelines")
    fuzz_all.add_argument("--listen", default=None, metavar="HOST:PORT",
                          help="accept remote `repro worker --connect` "
                               "peers on this address and dispatch fleet "
                               "jobs to them (port 0 picks a free port); "
                               "local spawn workers remain the fallback")
    fuzz_all.add_argument("--token", default=None,
                          help="shared secret remote workers must present "
                               "in their hello frame")
    fuzz_all.add_argument("--wait-remote", type=int, default=0, metavar="N",
                          help="block until N remote workers are connected "
                               "before starting the fleet")
    fuzz_all.add_argument("--wait-remote-timeout", type=float, default=60.0,
                          help="seconds to wait for --wait-remote peers "
                               "before giving up")
    fuzz_all.add_argument("--no-spawn-fallback", action="store_true",
                          help="with --listen: never fall back to local "
                               "spawn workers; jobs wait for a remote")

    worker = sub.add_parser(
        "worker",
        help="serve fleet jobs from a fuzz-all --listen supervisor",
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="supervisor address to dial")
    worker.add_argument("--token", default=None,
                        help="shared secret for the hello handshake")
    worker.add_argument("--name", default=None,
                        help="stable worker name (reconnects under the "
                             "same name resume the same fleet identity)")
    worker.add_argument("--max-jobs", type=int, default=None,
                        help="exit after completing this many jobs")
    worker.add_argument("--max-reconnects", type=int, default=None,
                        help="give up after this many failed re-dials "
                             "(default: keep trying forever)")
    worker.add_argument("--reconnect-base", type=float, default=0.5,
                        help="first reconnect delay in seconds; doubles "
                             "per consecutive failure")
    worker.add_argument("--reconnect-max", type=float, default=15.0,
                        help="ceiling on the reconnect backoff delay")
    worker.add_argument("--seed", type=int, default=0,
                        help="seeds reconnect jitter (and any chaos plan)")
    worker.add_argument("--chaos", default=None, metavar="SPEC",
                        help="chaos plan DSL applied to this worker's "
                             "outbound frames, e.g. "
                             "'drop:kind=heartbeat,p=1;disconnect:nth=9'")

    serve = sub.add_parser(
        "serve",
        help="run the always-on fuzzing daemon (crash-safe job queue + "
             "JSONL control API; see docs/serve.md)",
    )
    serve.add_argument("--state-dir", required=True, metavar="DIR",
                       help="durable state: WAL, snapshots, checkpoints")
    serve.add_argument("--listen", default="127.0.0.1:7400",
                       metavar="HOST:PORT",
                       help="control API address (port 0 picks a free one)")
    serve.add_argument("--token", default=None,
                       help="shared secret clients must present")
    serve.add_argument("--max-running", type=int, default=2,
                       help="jobs run concurrently")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="live (non-terminal) jobs admitted before "
                            "submissions are rejected with retry_after")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="lease attempts per job before quarantine")
    serve.add_argument("--retry-after", type=float, default=2.0,
                       help="seconds clients are told to back off")
    serve.add_argument("--snapshot-every", type=int, default=256,
                       help="WAL records between compacted snapshots")
    serve.add_argument("--workers-per-job", type=int, default=1,
                       help="fleet workers per running job")
    serve.add_argument("--heartbeat-timeout", type=float, default=30.0,
                       help="seconds of worker silence before restart")
    serve.add_argument("--max-retries", type=int, default=3,
                       help="supervisor restarts per job attempt")
    serve.add_argument("--backoff", type=float, default=0.5,
                       help="first supervisor retry delay")
    serve.add_argument("--metrics", default=None, metavar="PATH",
                       help="write serve.* metrics JSON on drain")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Chrome trace on drain")

    submit = sub.add_parser(
        "submit", help="submit a campaign job to a serve daemon"
    )
    submit.add_argument("firmware")
    submit.add_argument("--connect", required=True, metavar="HOST:PORT")
    submit.add_argument("--token", default=None)
    submit.add_argument("--budget", type=int, default=2000)
    submit.add_argument("--seed", type=int, default=1)
    submit.add_argument("--faults", default=None, metavar="SPEC")
    submit.add_argument("--crash-budget", type=int, default=None)
    submit.add_argument("--watchdog-insns", type=int, default=None)
    submit.add_argument("--watchdog-cycles", type=float, default=None)
    submit.add_argument("--exec-mode", default="journal",
                        choices=["journal", "forkserver"])
    submit.add_argument("--engine", default="tcg",
                        choices=["tcg", "tcg-interp", "jit"])
    submit.add_argument("--jit-threshold", type=int, default=None,
                        metavar="N")
    submit.add_argument("--surface", default="syscall",
                        choices=["syscall", "driver"])
    submit.add_argument("--checkpoint-every", type=int, default=0,
                        help="execs between checkpoints (0 = default "
                             "cadence); results are deterministic per "
                             "(seed, cadence) pair")
    submit.add_argument("--dedup-key", default=None,
                        help="idempotency key: resubmitting the same key "
                             "returns the original job, never a duplicate")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job is terminal and print "
                             "its results")
    submit.add_argument("--wait-timeout", type=float, default=600.0)
    submit.add_argument("--results", default=None, metavar="PATH",
                        help="with --wait: write the campaign result JSON "
                             "(byte-identical to `repro fuzz --results` "
                             "at the same seed and cadence)")
    submit.add_argument("--findings", default=None, metavar="PATH",
                        help="with --wait: write the normalized findings "
                             "records JSON")

    jobs_cmd = sub.add_parser(
        "jobs", help="list jobs on a serve daemon (or stream events)"
    )
    jobs_cmd.add_argument("--connect", required=True, metavar="HOST:PORT")
    jobs_cmd.add_argument("--token", default=None)
    jobs_cmd.add_argument("--job", default=None, metavar="ID",
                          help="show one job instead of the table")
    jobs_cmd.add_argument("--watch", action="store_true",
                          help="stream job events until the watched job "
                               "is terminal (or the daemon drains)")
    jobs_cmd.add_argument("--watch-timeout", type=float, default=300.0)

    drain_cmd = sub.add_parser(
        "drain", help="gracefully drain a serve daemon"
    )
    drain_cmd.add_argument("--connect", required=True, metavar="HOST:PORT")
    drain_cmd.add_argument("--token", default=None)

    corpus = sub.add_parser(
        "corpus", help="inspect and maintain persistent corpus stores"
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)
    corpus_ls = corpus_sub.add_parser("ls", help="summarize a store")
    corpus_ls.add_argument("dir", help="corpus store directory")
    corpus_ls.add_argument("--long", action="store_true",
                           help="one line per entry")
    corpus_distill = corpus_sub.add_parser(
        "distill",
        help="greedy coverage minset (keeps every crash reproducer)",
    )
    corpus_distill.add_argument("dir", help="corpus store directory")
    corpus_distill.add_argument("--out", default=None, metavar="DIR",
                                help="write the minset to a fresh store "
                                     "instead of pruning in place")
    corpus_merge = corpus_sub.add_parser(
        "merge", help="union several stores into one"
    )
    corpus_merge.add_argument("dest", help="destination store directory")
    corpus_merge.add_argument("sources", nargs="+",
                              help="source store directories")
    corpus_export = corpus_sub.add_parser(
        "export", help="write a store as one portable JSON bundle"
    )
    corpus_export.add_argument("dir", help="corpus store directory")
    corpus_export.add_argument("bundle", help="bundle file to write")
    corpus_import = corpus_sub.add_parser(
        "import", help="load an exported bundle into a store"
    )
    corpus_import.add_argument("dir", help="corpus store directory")
    corpus_import.add_argument("bundle", help="bundle file to read")

    stats = sub.add_parser(
        "stats", help="render a --metrics JSON file as a readable table"
    )
    stats.add_argument("metrics_file", help="path written by --metrics")

    overhead = sub.add_parser("overhead", help="measure Figure-2 slowdowns")
    overhead.add_argument("firmware", nargs="?", default=None)
    overhead.add_argument("--sanitizers", nargs="+", default=["kasan"])

    sub.add_parser("table2", help="the known-bug detection matrix")
    return parser


_COMMANDS = {
    "list": _cmd_list,
    "probe": _cmd_probe,
    "replay": _cmd_replay,
    "fuzz": _cmd_fuzz,
    "fuzz-all": _cmd_fuzz_all,
    "worker": _cmd_worker,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "drain": _cmd_drain,
    "corpus": _cmd_corpus,
    "stats": _cmd_stats,
    "overhead": _cmd_overhead,
    "table2": _cmd_table2,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
