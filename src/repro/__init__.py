"""EMBSAN reproduction: sanitizing embedded operating systems at the
emulator boundary.

Reproduces Liu et al., *"Effectively Sanitizing Embedded Operating
Systems"* (DAC 2024): dynamic instrumentation of sanitizer facilities
plus decoupled on-host runtime libraries, evaluated across Embedded
Linux, FreeRTOS, LiteOS and VxWorks firmware on ARM/MIPS/x86 machine
models.

Quick start::

    from repro import prepare

    deployment = prepare("OpenWRT-bcm63xx", sanitizers=("kasan",))
    image, runtime = deployment.launch()
    ...drive the firmware...
    for report in runtime.sink.unique.values():
        print(report)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.embsan import Deployment, prepare
from repro.firmware.registry import all_firmware, build_firmware, firmware_spec

__version__ = "1.0.0"

__all__ = [
    "Deployment",
    "all_firmware",
    "build_firmware",
    "firmware_spec",
    "prepare",
    "__version__",
]
