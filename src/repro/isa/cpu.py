"""EVM32 interpreter CPU.

A straightforward decode-dispatch interpreter.  It is the reference
execution engine; :mod:`repro.isa.tcg` provides the translation-block
engine with sanitizer probe injection that the Common Sanitizer Runtime
actually patches (mirroring how EMBSAN modifies QEMU/TCG templates).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import GuestFault, GuestHang, InvalidOpcode
from repro.isa.insn import (
    INSN_SIZE,
    Instruction,
    NUM_REGS,
    Op,
    apply_load_sign,
    decode,
    sign32,
    u32,
)
from repro.mem.bus import MemoryBus

#: Hypercall handler signature: (cpu, number) -> optional return value.
HypercallHandler = Callable[["Cpu", int], Optional[int]]
#: Call probe signature: (pc, target, args, lr).
CallProbe = Callable[[int, int, List[int], int], None]
#: Return probe signature: (pc, return_value).
RetProbe = Callable[[int, int], None]


class CpuState:
    """Architectural state: 16 registers, pc, halt flag, current task id."""

    __slots__ = ("regs", "pc", "halted", "task")

    def __init__(self, pc: int = 0, sp: int = 0):
        self.regs: List[int] = [0] * NUM_REGS
        self.regs[14] = sp
        self.pc = pc
        self.halted = False
        self.task = 0

    def read(self, idx: int) -> int:
        """Read a register; r0 always reads 0."""
        return 0 if idx == 0 else self.regs[idx]

    def write(self, idx: int, value: int) -> None:
        """Write a register; writes to r0 are discarded."""
        if idx != 0:
            self.regs[idx] = u32(value)


class Cpu:
    """Interpreter-based EVM32 core attached to a memory bus."""

    def __init__(
        self,
        bus: MemoryBus,
        pc: int = 0,
        sp: int = 0,
        hypercall: Optional[HypercallHandler] = None,
    ):
        self.bus = bus
        self.state = CpuState(pc=pc, sp=sp)
        self.hypercall = hypercall
        self.cycles = 0
        self.insn_count = 0
        self.call_probes: List[CallProbe] = []
        self.ret_probes: List[RetProbe] = []
        #: optional hang guard, consulted once per retired instruction
        self.watchdog = None
        #: optional per-instruction trace hook (pc, insn) for the Prober.
        self.trace: Optional[Callable[[int, Instruction], None]] = None

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute one instruction; returns False once halted."""
        state = self.state
        if state.halted:
            return False
        pc = state.pc
        try:
            blob = self.bus.fetch(pc, INSN_SIZE)
            insn = decode(blob)
        except GuestFault:
            state.halted = True
            raise
        if self.trace is not None:
            self.trace(pc, insn)
        self._execute(pc, insn)
        self.insn_count += 1
        return not state.halted

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run until HLT or ``max_steps``; returns instructions executed."""
        executed = 0
        watchdog = self.watchdog
        while executed < max_steps and self.step():
            executed += 1
            if watchdog is not None:
                try:
                    watchdog.consume(1, self.state.pc, self.state.task)
                except GuestHang:
                    self.state.halted = True
                    raise
        return executed

    # ------------------------------------------------------------------
    def _execute(self, pc: int, insn: Instruction) -> None:
        state = self.state
        op = insn.op
        next_pc = pc + INSN_SIZE
        rs1 = state.read(insn.rs1)
        rs2 = state.read(insn.rs2)
        self.cycles += 1

        if op is Op.NOP:
            pass
        elif op is Op.HLT:
            state.halted = True
        elif op is Op.BRK:
            state.halted = True
            raise InvalidOpcode(f"BRK trap at {pc:#010x}", addr=pc)
        elif op is Op.VMCALL:
            self.cycles += 1
            if self.hypercall is None:
                raise InvalidOpcode(f"VMCALL with no handler at {pc:#010x}", addr=pc)
            result = self.hypercall(self, insn.imm)
            if result is not None:
                state.write(1, result)
        # --- ALU register-register -----------------------------------
        elif op is Op.ADD:
            state.write(insn.rd, rs1 + rs2)
        elif op is Op.SUB:
            state.write(insn.rd, rs1 - rs2)
        elif op is Op.MUL:
            state.write(insn.rd, rs1 * rs2)
        elif op is Op.DIVU:
            state.write(insn.rd, 0xFFFFFFFF if rs2 == 0 else rs1 // rs2)
        elif op is Op.REMU:
            state.write(insn.rd, rs1 if rs2 == 0 else rs1 % rs2)
        elif op is Op.AND:
            state.write(insn.rd, rs1 & rs2)
        elif op is Op.OR:
            state.write(insn.rd, rs1 | rs2)
        elif op is Op.XOR:
            state.write(insn.rd, rs1 ^ rs2)
        elif op is Op.SHL:
            state.write(insn.rd, rs1 << (rs2 & 31))
        elif op is Op.SHR:
            state.write(insn.rd, rs1 >> (rs2 & 31))
        elif op is Op.SRA:
            state.write(insn.rd, sign32(rs1) >> (rs2 & 31))
        elif op is Op.SLT:
            state.write(insn.rd, 1 if sign32(rs1) < sign32(rs2) else 0)
        elif op is Op.SLTU:
            state.write(insn.rd, 1 if rs1 < rs2 else 0)
        # --- ALU immediate --------------------------------------------
        elif op is Op.ADDI:
            state.write(insn.rd, rs1 + insn.imm)
        elif op is Op.ANDI:
            state.write(insn.rd, rs1 & insn.imm)
        elif op is Op.ORI:
            state.write(insn.rd, rs1 | insn.imm)
        elif op is Op.XORI:
            state.write(insn.rd, rs1 ^ insn.imm)
        elif op is Op.SHLI:
            state.write(insn.rd, rs1 << (insn.imm & 31))
        elif op is Op.SHRI:
            state.write(insn.rd, rs1 >> (insn.imm & 31))
        elif op is Op.MOVI:
            state.write(insn.rd, insn.imm)
        elif op is Op.LUI:
            state.write(insn.rd, insn.imm << 16)
        elif op is Op.MOV:
            state.write(insn.rd, rs1)
        # --- memory -----------------------------------------------------
        elif op is Op.LD8:
            state.write(insn.rd, self._load(rs1 + insn.imm, 1, pc))
        elif op is Op.LD16:
            state.write(insn.rd, self._load(rs1 + insn.imm, 2, pc))
        elif op is Op.LD32:
            state.write(insn.rd, self._load(rs1 + insn.imm, 4, pc))
        elif op is Op.LD8S:
            value = self._load(rs1 + insn.imm, 1, pc)
            state.write(insn.rd, apply_load_sign(op, value))
        elif op is Op.LD16S:
            value = self._load(rs1 + insn.imm, 2, pc)
            state.write(insn.rd, apply_load_sign(op, value))
        elif op is Op.LDA32:
            state.write(insn.rd, self._load(rs1 + insn.imm, 4, pc, atomic=True))
        elif op is Op.ST8:
            self._store(rs1 + insn.imm, 1, rs2, pc)
        elif op is Op.ST16:
            self._store(rs1 + insn.imm, 2, rs2, pc)
        elif op is Op.ST32:
            self._store(rs1 + insn.imm, 4, rs2, pc)
        elif op is Op.STA32:
            self._store(rs1 + insn.imm, 4, rs2, pc, atomic=True)
        # --- control flow ----------------------------------------------
        elif op is Op.JMP:
            next_pc = u32(insn.imm)
        elif op is Op.JR:
            next_pc = rs1
        elif op is Op.BEQ:
            next_pc = u32(insn.imm) if rs1 == rs2 else next_pc
        elif op is Op.BNE:
            next_pc = u32(insn.imm) if rs1 != rs2 else next_pc
        elif op is Op.BLT:
            next_pc = u32(insn.imm) if sign32(rs1) < sign32(rs2) else next_pc
        elif op is Op.BLTU:
            next_pc = u32(insn.imm) if rs1 < rs2 else next_pc
        elif op is Op.BGE:
            next_pc = u32(insn.imm) if sign32(rs1) >= sign32(rs2) else next_pc
        elif op is Op.BGEU:
            next_pc = u32(insn.imm) if rs1 >= rs2 else next_pc
        elif op is Op.CALL:
            state.write(15, next_pc)
            self._notify_call(pc, u32(insn.imm), next_pc)
            next_pc = u32(insn.imm)
        elif op is Op.CALLR:
            state.write(15, next_pc)
            self._notify_call(pc, rs1, next_pc)
            next_pc = rs1
        elif op is Op.RET:
            next_pc = state.read(15)
            for probe in self.ret_probes:
                probe(pc, state.read(1))
        else:  # pragma: no cover - decode() rejects unknown opcodes
            raise InvalidOpcode(f"unhandled opcode {op!r} at {pc:#010x}", addr=pc)

        state.pc = next_pc

    # ------------------------------------------------------------------
    def _load(self, addr: int, size: int, pc: int, atomic: bool = False) -> int:
        self.cycles += 1
        return self.bus.load(u32(addr), size, pc=pc, task=self.state.task, atomic=atomic)

    def _store(
        self, addr: int, size: int, value: int, pc: int, atomic: bool = False
    ) -> None:
        self.cycles += 1
        self.bus.store(u32(addr), size, value, pc=pc, task=self.state.task, atomic=atomic)

    def _notify_call(self, pc: int, target: int, lr: int) -> None:
        if self.call_probes:
            args = [self.state.read(i) for i in range(1, 5)]
            for probe in self.call_probes:
                probe(pc, target, args, lr)
