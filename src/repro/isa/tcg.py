"""Translation-block execution engine with sanitizer probe injection.

This mirrors the mechanism EMBSAN uses on QEMU/TCG (§3.3): instead of
introspecting the virtual machine from outside, the *Common Sanitizer
Runtime* modifies the translation templates themselves.  When a sanitizer
registers a load/store probe, every translated memory instruction gains an
inline call to the probe delegate (``load_intercept``-style) with the
required arguments reconstructed symbolically (address register + offset,
access size, pc, task id).  Re-registering probes flushes the TB cache so
new templates take effect — exactly like a QEMU ``tb_flush``.

Guest code executed here performs its memory traffic *untraced* on the
bus: the injected probes are the single notification channel, so an
attached runtime never sees the same access twice.

Two execution modes share the block cache and probe machinery:

* **specialized** (default) — ``translate()`` compiles *every* instruction
  into a closure with its operands, immediates and probe set pre-bound, so
  ``_exec_block`` is a tight loop over pre-built thunks with no opcode
  comparisons or dict lookups on the hot path.  ``run()`` additionally
  chains blocks: a block whose terminator has static successors (jump,
  call, conditional branch, fall-through) links directly to the successor
  ``TranslationBlock``, skipping the cache lookup entirely.  Links carry
  the translation generation and die on ``flush_tbs()``; scalar guest
  stores into translated code flush and exit the current block, so
  self-modifying code re-translates before its next instruction executes.
  Bulk writes into translated code (``write_bytes``/``fill``/``copy``/DMA)
  flush via a bus write watcher and take effect at the next block
  boundary.
* **interpreter** — the seed engine's behaviour: memory instructions are
  specialized only when probed; everything else re-dispatches through a
  per-opcode interpreter each execution.  Kept behind the ``specialize``
  flag so benchmarks can measure exactly what specialization buys.

Both modes charge identical guest cycles and instruction counts for the
same program, so the calibrated Figure-2 cost model is mode-independent.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import GuestHang, InvalidOpcode
from repro.isa.cpu import CpuState, HypercallHandler
from repro.isa.insn import (
    INSN_SIZE,
    Instruction,
    MEM_OPS,
    Op,
    apply_load_sign,
    decode,
    sign32,
    u32,
)
from repro.mem.access import Access, AccessKind
from repro.mem.bus import MemoryBus

#: Probe delegate signature: receives a fully reconstructed Access.
MemProbe = Callable[[Access], None]
#: (pc, target, args, lr) on CALL/CALLR.
CallProbe = Callable[[int, int, List[int], int], None]
#: (pc, return_value) on RET.
RetProbe = Callable[[int, int], None]

#: Maximum instructions per translation block.
MAX_BLOCK_LEN = 64

#: Default bound on cached translation blocks; long campaigns evict the
#: least-recently-executed block (cache hits and chain hits both touch)
#: instead of growing unboundedly.
TB_CACHE_CAPACITY = 2048

#: Successor links kept per block; static terminators need at most two
#: (taken + fall-through), the cap only guards degenerate exits.
_MAX_LINKS = 4

_M = 0xFFFFFFFF
_DATA = AccessKind.DATA

#: Terminators whose successors are static, hence chainable.
_CHAINABLE = frozenset(
    {Op.JMP, Op.CALL, Op.BEQ, Op.BNE, Op.BLT, Op.BLTU, Op.BGE, Op.BGEU}
)


class TranslationBlock:
    """One translated basic block: entry pc, length, and executable ops."""

    __slots__ = ("pc", "insns", "ops", "host_ops", "cum_cycles", "pre_charge",
                 "end_pc", "links", "generation")

    def __init__(self, pc: int, insns: List[Instruction], ops: List,
                 host_ops: int, cum_cycles: Optional[Tuple[int, ...]] = None,
                 pre_charge: Optional[Tuple[int, ...]] = None,
                 end_pc: int = 0, links: Optional[Dict] = None,
                 generation: int = 0):
        self.pc = pc
        self.insns = insns
        self.ops = ops
        #: number of host-level operations the templates expand to; the
        #: cost model uses this as the translation expansion measure.
        self.host_ops = host_ops
        #: prefix sums of per-instruction guest cycles (specialized mode):
        #: ``cum_cycles[i]`` is the charge after executing ``i`` thunks.
        self.cum_cycles = cum_cycles
        #: cycles the interpreter would have charged for instruction ``i``
        #: *before* reaching its first raise point; keeps trap-path cycle
        #: accounting identical across engine modes.
        self.pre_charge = pre_charge
        #: pc after the last instruction (fall-through target).
        self.end_pc = end_pc
        #: successor-pc -> TranslationBlock for chainable terminators;
        #: None when the terminator is dynamic (JR/CALLR/RET) or halting.
        self.links = links
        #: translation generation; ``run()`` refuses chained links whose
        #: generation predates the last ``flush_tbs()``.
        self.generation = generation

    def __len__(self) -> int:
        return len(self.insns)


class TcgEngine:
    """Basic-block translating executor for EVM32 guest code."""

    #: class-wide default for the ``specialize`` flag; tests flip this to
    #: run whole firmware builds under the interpreter templates.
    DEFAULT_SPECIALIZE = True

    def __init__(
        self,
        bus: MemoryBus,
        pc: int = 0,
        sp: int = 0,
        hypercall: Optional[HypercallHandler] = None,
        specialize: Optional[bool] = None,
        tb_cache_capacity: int = TB_CACHE_CAPACITY,
    ):
        self.bus = bus
        self.state = CpuState(pc=pc, sp=sp)
        self.hypercall = hypercall
        self.cycles = 0
        self.insn_count = 0
        self.host_ops = 0
        self.tb_cache: Dict[int, TranslationBlock] = {}
        self.tb_flush_count = 0
        self.tb_generation = 0
        self.tb_evictions = 0
        self.tb_chain_hits = 0
        self.tb_translations = 0
        self.tb_invalidations = 0
        self.tb_cache_capacity = tb_cache_capacity
        #: optional :class:`repro.obs.trace.Tracer`; when set, each
        #: cache-miss translation records a span.  Only the miss path
        #: tests it, so cached execution never pays for tracing.
        self.tracer = None
        self._mem_probes: tuple = ()
        self.call_probes: List[CallProbe] = []
        self.ret_probes: List[RetProbe] = []
        #: optional hang guard, consulted once per executed block
        self.watchdog = None
        self.specialize = (
            self.DEFAULT_SPECIALIZE if specialize is None else specialize
        )
        # span of guest addresses covered by live translations; scalar
        # stores landing inside it are self-modifying code and flush.
        self._code_lo = 1 << 62
        self._code_hi = -1
        # bulk writes (write_bytes/fill/copy/DMA) bypass the scalar-store
        # templates, so the bus reports them here for the same check
        bus.add_write_watcher(self._on_bulk_write)

    # ------------------------------------------------------------------
    # probe management (the Runtime's template-modification entry point)
    # ------------------------------------------------------------------
    def add_mem_probe(self, probe: MemProbe) -> None:
        """Inject a memory probe into all future translation templates."""
        self._mem_probes = self._mem_probes + (probe,)
        self.flush_tbs()

    def remove_mem_probe(self, probe: MemProbe) -> None:
        """Remove a probe and regenerate templates without it.

        A probe that was never registered is a no-op: the templates
        already lack it, so there is nothing to flush.
        """
        if not any(p is probe for p in self._mem_probes):
            return
        self._mem_probes = tuple(p for p in self._mem_probes if p is not probe)
        self.flush_tbs()

    def flush_tbs(self) -> None:
        """Discard every cached translation block and kill chained links."""
        self.tb_cache.clear()
        self.tb_flush_count += 1
        self.tb_generation += 1
        self._code_lo = 1 << 62
        self._code_hi = -1

    def _on_bulk_write(self, addr: int, size: int) -> None:
        """Bus bulk-write watcher: flush when the write hits translated code."""
        if addr < self._code_hi and addr + size > self._code_lo:
            self.flush_tbs()

    def invalidate_range(self, lo: int, hi: int) -> int:
        """Drop only the translations overlapping ``[lo, hi)``.

        The surgical alternative to :meth:`flush_tbs` for memory rewinds
        (journal rollback, dirty-page delta restore) whose written span
        is known: blocks outside the span — the overwhelming majority —
        keep their translations *and* their chain links, because the
        generation counter is left untouched.  Dropped blocks get the
        eviction treatment (dead generation) so stale links into them
        miss.  Returns the number of blocks invalidated.
        """
        if hi <= lo or hi <= self._code_lo or lo >= self._code_hi:
            return 0
        doomed = [
            pc
            for pc, block in self.tb_cache.items()
            if block.pc < hi and block.end_pc > lo
        ]
        for pc in doomed:
            block = self.tb_cache.pop(pc)
            block.generation = -1
        self.tb_invalidations += len(doomed)
        return len(doomed)

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------
    def translate(self, pc: int) -> TranslationBlock:
        """Translate (or fetch from cache) the block starting at ``pc``."""
        cache = self.tb_cache
        cached = cache.get(pc)
        if cached is not None:
            # LRU touch: recently-run blocks move to the young end
            del cache[pc]
            cache[pc] = cached
            return cached
        self.tb_translations += 1
        tracer = self.tracer
        trace_start = tracer.now() if tracer is not None else 0.0
        insns: List[Instruction] = []
        addr = pc
        while len(insns) < MAX_BLOCK_LEN:
            blob = self.bus.fetch(addr, INSN_SIZE)
            insn = decode(blob)
            insns.append(insn)
            if insn.is_terminator():
                break
            addr += INSN_SIZE
        end_pc = pc + len(insns) * INSN_SIZE
        if self.specialize:
            block = self._build_spec_block(pc, insns, end_pc)
        else:
            ops, host_ops = self._build_ops(pc, insns)
            block = TranslationBlock(pc, insns, ops, host_ops,
                                     end_pc=end_pc,
                                     generation=self.tb_generation)
        # both template styles extend the live-code span: SMC detection
        # (bulk-write flush, range invalidation) must stay sound in
        # interpreter-template mode too
        if pc < self._code_lo:
            self._code_lo = pc
        if end_pc > self._code_hi:
            self._code_hi = end_pc
        cache[pc] = block
        if len(cache) > self.tb_cache_capacity:
            evicted = cache.pop(next(iter(cache)))
            # sever incoming chain links: a dead generation makes every
            # link to this block miss, so capacity bounds live
            # translations, not just the cache dict
            evicted.generation = -1
            self.tb_evictions += 1
        if tracer is not None:
            tracer.complete(
                "tb:translate", trace_start, cat="tcg",
                args={"pc": pc, "insns": len(insns),
                      "host_ops": block.host_ops},
            )
        return block

    # ------------------------------------------------------------------
    # interpreter-mode templates (the seed engine's behaviour)
    # ------------------------------------------------------------------
    def _build_ops(self, pc: int, insns: List[Instruction]):
        """Specialize only probed memory templates for the probe set."""
        ops = []
        host_ops = 0
        probes = self._mem_probes
        for idx, insn in enumerate(insns):
            insn_pc = pc + idx * INSN_SIZE
            if insn.op in MEM_OPS and probes:
                size, is_write, atomic = MEM_OPS[insn.op]
                ops.append(
                    self._probed_mem_op(insn, insn_pc, size, is_write, atomic, probes)
                )
                # base op + address calc + one host call per probe
                host_ops += 2 + len(probes)
            else:
                ops.append((insn_pc, insn))
                host_ops += 2 if insn.op in MEM_OPS else 1
        return ops, host_ops

    def _probed_mem_op(self, insn, insn_pc, size, is_write, atomic, probes):
        """Build a closure performing probe-notify then the raw access."""
        bus = self.bus
        state = self.state
        rs1, rs2, rd, imm, op = insn.rs1, insn.rs2, insn.rd, insn.imm, insn.op

        def run() -> None:
            addr = u32(state.read(rs1) + imm)
            access = Access(
                addr, size, is_write, pc=insn_pc, task=state.task, atomic=atomic
            )
            for probe in probes:
                probe(access)
            with bus.untraced():
                if is_write:
                    bus.store(addr, size, state.read(rs2))
                else:
                    value = bus.load(addr, size)
                    state.write(rd, apply_load_sign(op, value))

        return run

    # ------------------------------------------------------------------
    # specialized-mode templates: one closure per instruction
    # ------------------------------------------------------------------
    def _build_spec_block(self, pc: int, insns: List[Instruction],
                          end_pc: int) -> TranslationBlock:
        ops: List[Callable] = []
        cycles: List[int] = []
        pre: List[int] = []
        host_ops = 0
        probes = self._mem_probes
        for idx, insn in enumerate(insns):
            insn_pc = pc + idx * INSN_SIZE
            thunk, cyc, hops = self._compile_insn(insn, insn_pc, probes)
            ops.append(thunk)
            cycles.append(cyc)
            # interpreter-mode probed templates charge nothing before the
            # probe call can raise; every other template charges its full
            # cycle cost before its first raise point
            pre.append(0 if (probes and insn.op in MEM_OPS) else cyc)
            host_ops += hops
        cum = [0]
        for cyc in cycles:
            cum.append(cum[-1] + cyc)
        links: Optional[Dict] = None
        if insns[-1].op in _CHAINABLE or not insns[-1].is_terminator():
            links = {}
        return TranslationBlock(pc, insns, ops, host_ops,
                                cum_cycles=tuple(cum), pre_charge=tuple(pre),
                                end_pc=end_pc, links=links,
                                generation=self.tb_generation)

    def _compile_insn(self, insn: Instruction, insn_pc: int,
                      probes: tuple):
        """Compile one instruction to a thunk with everything pre-bound.

        The thunk returns ``None`` to fall through or the next pc to
        transfer control (ending the block).  Returns ``(thunk, cycles,
        host_ops)`` where the cycle charge matches the interpreter path
        exactly (1 per instruction, +1 for memory traffic or a hypercall).

        Closures bind ``state.regs`` directly: the register file list is
        created once per :class:`CpuState` and never reassigned, and
        ``regs[0]`` is never written, so reading it is always 0.
        """
        eng = self
        state = self.state
        regs = state.regs
        bus = self.bus
        op = insn.op
        rd, rs1, rs2, imm = insn.rd, insn.rs1, insn.rs2, insn.imm
        next_pc = (insn_pc + INSN_SIZE) & _M

        # --- memory ----------------------------------------------------
        if op in MEM_OPS:
            size, is_write, atomic = MEM_OPS[op]
            if probes:
                thunk = self._compile_probed_mem(
                    insn, insn_pc, next_pc, size, is_write, atomic, probes
                )
                return thunk, 2, 2 + len(probes)
            if is_write:
                bus_store = bus.store

                def thunk():
                    state.pc = insn_pc
                    addr = (regs[rs1] + imm) & _M
                    bus_store(addr, size, regs[rs2], insn_pc, state.task,
                              atomic)
                    if addr < eng._code_hi and addr + size > eng._code_lo:
                        # self-modifying code: drop every translation and
                        # leave the block so the store takes effect before
                        # the next instruction executes
                        eng.flush_tbs()
                        return next_pc
                    return None

                return thunk, 2, 2
            bus_load = bus.load
            if op is Op.LD8S or op is Op.LD16S:
                bound, adjust = (0x80, 0x100) if op is Op.LD8S else (0x8000, 0x10000)

                def thunk():
                    state.pc = insn_pc
                    value = bus_load((regs[rs1] + imm) & _M, size, insn_pc,
                                     state.task, atomic)
                    if value >= bound:
                        value -= adjust
                    if rd:
                        regs[rd] = value & _M

                return thunk, 2, 2

            def thunk():
                state.pc = insn_pc
                value = bus_load((regs[rs1] + imm) & _M, size, insn_pc,
                                 state.task, atomic)
                if rd:
                    regs[rd] = value

            return thunk, 2, 2

        # --- control / misc -------------------------------------------
        if op is Op.NOP or (rd == 0 and op in _WRITES_RD):
            # register writes to r0 are architectural no-ops; the cycle
            # still accrues, the work is specialized away entirely
            return _nop_thunk, 1, 1
        if op is Op.HLT:

            def thunk():
                state.halted = True
                return next_pc

            return thunk, 1, 1
        if op is Op.BRK:

            def thunk():
                state.pc = insn_pc
                state.halted = True
                raise InvalidOpcode(f"BRK trap at {insn_pc:#010x}", addr=insn_pc)

            return thunk, 1, 1
        if op is Op.VMCALL:

            def thunk():
                state.pc = insn_pc
                handler = eng.hypercall
                if handler is None:
                    raise InvalidOpcode(
                        f"VMCALL with no handler at {insn_pc:#010x}",
                        addr=insn_pc,
                    )
                result = handler(eng, imm)
                if result is not None:
                    regs[1] = result & _M
                if state.halted:
                    return next_pc
                return None

            return thunk, 2, 1

        # --- ALU register-register ------------------------------------
        if op is Op.ADD:
            def thunk(): regs[rd] = (regs[rs1] + regs[rs2]) & _M
        elif op is Op.SUB:
            def thunk(): regs[rd] = (regs[rs1] - regs[rs2]) & _M
        elif op is Op.MUL:
            def thunk(): regs[rd] = (regs[rs1] * regs[rs2]) & _M
        elif op is Op.DIVU:
            def thunk():
                b = regs[rs2]
                regs[rd] = _M if b == 0 else regs[rs1] // b
        elif op is Op.REMU:
            def thunk():
                b = regs[rs2]
                regs[rd] = regs[rs1] if b == 0 else regs[rs1] % b
        elif op is Op.AND:
            def thunk(): regs[rd] = regs[rs1] & regs[rs2]
        elif op is Op.OR:
            def thunk(): regs[rd] = regs[rs1] | regs[rs2]
        elif op is Op.XOR:
            def thunk(): regs[rd] = regs[rs1] ^ regs[rs2]
        elif op is Op.SHL:
            def thunk(): regs[rd] = (regs[rs1] << (regs[rs2] & 31)) & _M
        elif op is Op.SHR:
            def thunk(): regs[rd] = regs[rs1] >> (regs[rs2] & 31)
        elif op is Op.SRA:
            def thunk(): regs[rd] = (sign32(regs[rs1]) >> (regs[rs2] & 31)) & _M
        elif op is Op.SLT:
            def thunk(): regs[rd] = 1 if sign32(regs[rs1]) < sign32(regs[rs2]) else 0
        elif op is Op.SLTU:
            def thunk(): regs[rd] = 1 if regs[rs1] < regs[rs2] else 0
        # --- ALU immediate --------------------------------------------
        elif op is Op.ADDI:
            def thunk(): regs[rd] = (regs[rs1] + imm) & _M
        elif op is Op.ANDI:
            def thunk(): regs[rd] = (regs[rs1] & imm) & _M
        elif op is Op.ORI:
            def thunk(): regs[rd] = (regs[rs1] | imm) & _M
        elif op is Op.XORI:
            def thunk(): regs[rd] = (regs[rs1] ^ imm) & _M
        elif op is Op.SHLI:
            shift = imm & 31

            def thunk(): regs[rd] = (regs[rs1] << shift) & _M
        elif op is Op.SHRI:
            shift = imm & 31

            def thunk(): regs[rd] = regs[rs1] >> shift
        elif op is Op.MOVI:
            value = imm & _M

            def thunk(): regs[rd] = value
        elif op is Op.LUI:
            value = (imm << 16) & _M

            def thunk(): regs[rd] = value
        elif op is Op.MOV:
            def thunk(): regs[rd] = regs[rs1]
        # --- control flow ---------------------------------------------
        elif op is Op.JMP:
            target = imm & _M

            def thunk(): return target
        elif op is Op.JR:
            def thunk(): return regs[rs1]
        elif op in (Op.BEQ, Op.BNE, Op.BLT, Op.BLTU, Op.BGE, Op.BGEU):
            thunk = _compile_branch(regs, op, rs1, rs2, imm & _M, next_pc)
        elif op is Op.CALL or op is Op.CALLR:
            static_target = imm & _M if op is Op.CALL else None

            def thunk():
                target = static_target if static_target is not None else regs[rs1]
                regs[15] = next_pc
                if eng.call_probes:
                    args = [regs[1], regs[2], regs[3], regs[4]]
                    for probe in eng.call_probes:
                        probe(insn_pc, target, args, next_pc)
                return target
        elif op is Op.RET:

            def thunk():
                rp = eng.ret_probes
                if rp:
                    rv = regs[1]
                    for probe in rp:
                        probe(insn_pc, rv)
                return regs[15]
        else:  # pragma: no cover - decode() rejects unknown opcodes
            raise InvalidOpcode(f"unhandled opcode {op!r}", addr=insn_pc)

        return thunk, 1, 1

    def _compile_probed_mem(self, insn, insn_pc, next_pc, size, is_write,
                            atomic, probes):
        """Specialized probed memory template: notify probes, then access
        the bus silently (the probes are the single notification channel).
        """
        eng = self
        state = self.state
        regs = state.regs
        bus = self.bus
        rs1, rs2, rd, imm, op = insn.rs1, insn.rs2, insn.rd, insn.imm, insn.op
        single = probes[0] if len(probes) == 1 else None
        if is_write:
            store_silent = bus.store_silent

            def thunk():
                state.pc = insn_pc
                addr = (regs[rs1] + imm) & _M
                access = Access(addr, size, True, insn_pc, state.task, _DATA,
                                atomic)
                if single is not None:
                    single(access)
                else:
                    for probe in probes:
                        probe(access)
                store_silent(addr, size, regs[rs2])
                if addr < eng._code_hi and addr + size > eng._code_lo:
                    eng.flush_tbs()
                    return next_pc
                return None

            return thunk
        load_silent = bus.load_silent
        signed = op is Op.LD8S or op is Op.LD16S
        bound, adjust = (0x80, 0x100) if op is Op.LD8S else (0x8000, 0x10000)

        def thunk():
            state.pc = insn_pc
            addr = (regs[rs1] + imm) & _M
            access = Access(addr, size, False, insn_pc, state.task, _DATA,
                            atomic)
            if single is not None:
                single(access)
            else:
                for probe in probes:
                    probe(access)
            value = load_silent(addr, size)
            if signed and value >= bound:
                value -= adjust
            if rd:
                regs[rd] = value & _M

        return thunk

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, max_steps: int = 1_000_000) -> int:
        """Run translated blocks until HLT or the step budget; returns steps.

        Consecutive blocks chain: when the previous block's terminator has
        static successors, the successor ``TranslationBlock`` is linked in
        and reused directly on later passes (generation-checked), so
        straight-line and loop-heavy firmware stops round-tripping through
        ``translate()`` and the TB cache.
        """
        executed = 0
        state = self.state
        exec_block = self._exec_block
        translate = self.translate
        watchdog = self.watchdog
        prev: Optional[TranslationBlock] = None
        while not state.halted and executed < max_steps:
            pc = state.pc
            block = None
            if prev is not None:
                links = prev.links
                if links is not None:
                    block = links.get(pc)
                    if block is not None:
                        if block.generation == self.tb_generation:
                            self.tb_chain_hits += 1
                            # LRU touch: chain hits bypass translate(), so
                            # the hottest blocks must be aged here or the
                            # cache would evict them first under pressure
                            cache = self.tb_cache
                            if cache.get(pc) is block:
                                del cache[pc]
                                cache[pc] = block
                        else:
                            del links[pc]
                            block = None
            if block is None:
                block = translate(pc)
                if (prev is not None and prev.links is not None
                        and len(prev.links) < _MAX_LINKS):
                    prev.links[pc] = block
            done = exec_block(block)
            executed += done
            if watchdog is not None:
                # Per-block granularity: a trip overshoots by at most one
                # block (< MAX_BLOCK_LEN instructions).  Applies to both
                # the specialized and interp templates, which share this
                # loop.  On a trip the engine halts so the hang surfaces
                # once, not on every subsequent run() call.
                try:
                    watchdog.consume(done, state.pc, state.task)
                except GuestHang:
                    state.halted = True
                    raise
            prev = block
        return executed

    def stats(self) -> Dict[str, int]:
        """Engine counters (harvested by the observability layer)."""
        return {
            "insns": self.insn_count,
            "cycles": self.cycles,
            "host_ops": self.host_ops,
            "tb_translations": self.tb_translations,
            "tb_flushes": self.tb_flush_count,
            "tb_evictions": self.tb_evictions,
            "tb_invalidations": self.tb_invalidations,
            "tb_chain_hits": self.tb_chain_hits,
            "tb_cache_blocks": len(self.tb_cache),
        }

    def step_block(self) -> int:
        """Execute exactly one translation block; returns instructions run."""
        if self.state.halted:
            return 0
        return self._exec_block(self.translate(self.state.pc))

    def _exec_block(self, block: TranslationBlock) -> int:
        if block.cum_cycles is not None:
            return self._exec_block_spec(block)
        return self._exec_block_interp(block)

    def _exec_block_spec(self, block: TranslationBlock) -> int:
        """Tight thunk loop: no opcode tests, no dict lookups."""
        state = self.state
        done = 0
        target = None
        try:
            for fn in block.ops:
                target = fn()
                done += 1
                if target is not None:
                    break
        except BaseException:
            # charge retired instructions plus whatever the interpreter
            # would have charged for the trapping one before it raised
            self.cycles += block.cum_cycles[done] + block.pre_charge[done]
            self.insn_count += done
            self.host_ops += block.host_ops
            raise
        state.pc = block.end_pc if target is None else target
        self.cycles += block.cum_cycles[done]
        self.insn_count += done
        self.host_ops += block.host_ops
        return done

    def _exec_block_interp(self, block: TranslationBlock) -> int:
        state = self.state
        executed = 0
        self.host_ops += block.host_ops
        for entry in block.ops:
            if callable(entry):
                entry()
                self.cycles += 2
                state.pc += INSN_SIZE  # probed mem ops never branch
                executed += 1
                self.insn_count += 1
                continue
            insn_pc, insn = entry
            state.pc = insn_pc
            next_pc = self._interp(insn_pc, insn)
            executed += 1
            self.insn_count += 1
            state.pc = next_pc
            if state.halted or next_pc != insn_pc + INSN_SIZE:
                # a branch (or trap) redirected control flow; leave the block
                return executed
        return executed

    # ------------------------------------------------------------------
    def _interp(self, pc: int, insn: Instruction) -> int:
        """Interpret a single (unprobed) instruction; returns the next pc."""
        state = self.state
        op = insn.op
        rs1 = state.read(insn.rs1)
        rs2 = state.read(insn.rs2)
        self.cycles += 1

        next_pc = pc + INSN_SIZE
        if op is Op.NOP:
            return next_pc
        if op is Op.HLT:
            state.halted = True
            return next_pc
        if op is Op.BRK:
            state.halted = True
            raise InvalidOpcode(f"BRK trap at {pc:#010x}", addr=pc)
        if op is Op.VMCALL:
            self.cycles += 1
            if self.hypercall is None:
                raise InvalidOpcode(f"VMCALL with no handler at {pc:#010x}", addr=pc)
            result = self.hypercall(self, insn.imm)
            if result is not None:
                state.write(1, result)
            return next_pc
        if op in MEM_OPS:
            size, is_write, atomic = MEM_OPS[op]
            addr = u32(rs1 + insn.imm)
            self.cycles += 1
            if is_write:
                self.bus.store(addr, size, rs2, pc=pc, task=state.task, atomic=atomic)
            else:
                value = self.bus.load(addr, size, pc=pc, task=state.task, atomic=atomic)
                state.write(insn.rd, apply_load_sign(op, value))
            return next_pc

        if op is Op.ADD:
            state.write(insn.rd, rs1 + rs2)
        elif op is Op.SUB:
            state.write(insn.rd, rs1 - rs2)
        elif op is Op.MUL:
            state.write(insn.rd, rs1 * rs2)
        elif op is Op.DIVU:
            state.write(insn.rd, 0xFFFFFFFF if rs2 == 0 else rs1 // rs2)
        elif op is Op.REMU:
            state.write(insn.rd, rs1 if rs2 == 0 else rs1 % rs2)
        elif op is Op.AND:
            state.write(insn.rd, rs1 & rs2)
        elif op is Op.OR:
            state.write(insn.rd, rs1 | rs2)
        elif op is Op.XOR:
            state.write(insn.rd, rs1 ^ rs2)
        elif op is Op.SHL:
            state.write(insn.rd, rs1 << (rs2 & 31))
        elif op is Op.SHR:
            state.write(insn.rd, rs1 >> (rs2 & 31))
        elif op is Op.SRA:
            state.write(insn.rd, sign32(rs1) >> (rs2 & 31))
        elif op is Op.SLT:
            state.write(insn.rd, 1 if sign32(rs1) < sign32(rs2) else 0)
        elif op is Op.SLTU:
            state.write(insn.rd, 1 if rs1 < rs2 else 0)
        elif op is Op.ADDI:
            state.write(insn.rd, rs1 + insn.imm)
        elif op is Op.ANDI:
            state.write(insn.rd, rs1 & insn.imm)
        elif op is Op.ORI:
            state.write(insn.rd, rs1 | insn.imm)
        elif op is Op.XORI:
            state.write(insn.rd, rs1 ^ insn.imm)
        elif op is Op.SHLI:
            state.write(insn.rd, rs1 << (insn.imm & 31))
        elif op is Op.SHRI:
            state.write(insn.rd, rs1 >> (insn.imm & 31))
        elif op is Op.MOVI:
            state.write(insn.rd, insn.imm)
        elif op is Op.LUI:
            state.write(insn.rd, insn.imm << 16)
        elif op is Op.MOV:
            state.write(insn.rd, rs1)
        elif op is Op.JMP:
            return u32(insn.imm)
        elif op is Op.JR:
            return rs1
        elif op in (Op.BEQ, Op.BNE, Op.BLT, Op.BLTU, Op.BGE, Op.BGEU):
            taken = {
                Op.BEQ: rs1 == rs2,
                Op.BNE: rs1 != rs2,
                Op.BLT: sign32(rs1) < sign32(rs2),
                Op.BLTU: rs1 < rs2,
                Op.BGE: sign32(rs1) >= sign32(rs2),
                Op.BGEU: rs1 >= rs2,
            }[op]
            if taken:
                return u32(insn.imm)
        elif op is Op.CALL:
            state.write(15, next_pc)
            self._notify_call(pc, u32(insn.imm), next_pc)
            return u32(insn.imm)
        elif op is Op.CALLR:
            state.write(15, next_pc)
            self._notify_call(pc, rs1, next_pc)
            return rs1
        elif op is Op.RET:
            for probe in self.ret_probes:
                probe(pc, state.read(1))
            return state.read(15)
        else:  # pragma: no cover
            raise InvalidOpcode(f"unhandled opcode {op!r}", addr=pc)
        return next_pc

    def _notify_call(self, pc: int, target: int, lr: int) -> None:
        if self.call_probes:
            args = [self.state.read(i) for i in range(1, 5)]
            for probe in self.call_probes:
                probe(pc, target, args, lr)


def _nop_thunk() -> None:
    """Shared thunk for NOP and r0-destination writes."""
    return None


def _compile_branch(regs, op: Op, rs1: int, rs2: int, taken: int, fall: int):
    """Build a conditional-branch thunk with the predicate pre-bound."""
    if op is Op.BEQ:
        def thunk(): return taken if regs[rs1] == regs[rs2] else fall
    elif op is Op.BNE:
        def thunk(): return taken if regs[rs1] != regs[rs2] else fall
    elif op is Op.BLT:
        def thunk():
            return taken if sign32(regs[rs1]) < sign32(regs[rs2]) else fall
    elif op is Op.BLTU:
        def thunk(): return taken if regs[rs1] < regs[rs2] else fall
    elif op is Op.BGE:
        def thunk():
            return taken if sign32(regs[rs1]) >= sign32(regs[rs2]) else fall
    else:
        def thunk(): return taken if regs[rs1] >= regs[rs2] else fall
    return thunk


#: opcodes whose only architectural effect is a register write; with
#: rd == r0 they specialize to a shared no-op thunk.
_WRITES_RD = frozenset(
    {Op.ADD, Op.SUB, Op.MUL, Op.DIVU, Op.REMU, Op.AND, Op.OR, Op.XOR,
     Op.SHL, Op.SHR, Op.SRA, Op.SLT, Op.SLTU, Op.ADDI, Op.ANDI, Op.ORI,
     Op.XORI, Op.SHLI, Op.SHRI, Op.MOVI, Op.LUI, Op.MOV}
)
