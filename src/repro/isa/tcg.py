"""Translation-block execution engine with sanitizer probe injection.

This mirrors the mechanism EMBSAN uses on QEMU/TCG (§3.3): instead of
introspecting the virtual machine from outside, the *Common Sanitizer
Runtime* modifies the translation templates themselves.  When a sanitizer
registers a load/store probe, every translated memory instruction gains an
inline call to the probe delegate (``load_intercept``-style) with the
required arguments reconstructed symbolically (address register + offset,
access size, pc, task id).  Re-registering probes flushes the TB cache so
new templates take effect — exactly like a QEMU ``tb_flush``.

Guest code executed here performs its memory traffic *untraced* on the
bus: the injected probes are the single notification channel, so an
attached runtime never sees the same access twice.

Three execution tiers share the block cache and probe machinery:

* **specialized** (default) — ``translate()`` compiles *every* instruction
  into a closure with its operands, immediates and probe set pre-bound, so
  ``_exec_block`` is a tight loop over pre-built thunks with no opcode
  comparisons or dict lookups on the hot path.  ``run()`` additionally
  chains blocks: a block whose terminator has static successors (jump,
  call, conditional branch, fall-through) links directly to the successor
  ``TranslationBlock``, skipping the cache lookup entirely.  Links carry
  the translation generation and die on ``flush_tbs()``; scalar guest
  stores into translated code flush and exit the current block, so
  self-modifying code re-translates before its next instruction executes.
  Bulk writes into translated code (``write_bytes``/``fill``/``copy``/DMA)
  flush via a bus write watcher and take effect at the next block
  boundary.
* **interpreter** — the seed engine's behaviour: memory instructions are
  specialized only when probed; everything else re-dispatches through a
  per-opcode interpreter each execution.  Kept behind the ``specialize``
  flag so benchmarks can measure exactly what specialization buys.
* **jit** (opt-in via ``jit=True``) — per-TB execution counters; when a
  specialized block crosses the hotness threshold, the whole chained
  superblock reachable from it is compiled to a single Python function:
  registers become locals, immediates become literals, loads/stores and
  sanitizer probes call the same pre-bound ``MemoryBus``/probe fast
  paths the thunks use, and cycle/instruction/host-op accounting plus
  watchdog charging happen per constituent block, so observable state is
  bit-identical to the thunk tier.  Deopt mirrors TB chaining exactly:
  ``flush_tbs()`` (SMC, probe changes, bulk/DMA writes, snapshot
  restore) and ``invalidate_range()`` (journal rollback, fork-server
  dirty-span restore) kill overlapping traces through a shared liveness
  cell that compiled code re-checks at every block boundary.

All tiers charge identical guest cycles and instruction counts for the
same program, so the calibrated Figure-2 cost model is mode-independent.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import GuestHang, InvalidOpcode
from repro.isa.cpu import CpuState, HypercallHandler
from repro.isa.insn import (
    INSN_SIZE,
    Instruction,
    MEM_OPS,
    Op,
    apply_load_sign,
    decode,
    sign32,
    u32,
)
from repro.mem.access import Access, AccessKind
from repro.mem.bus import MemoryBus
from repro.mem.regions import Perm

#: Probe delegate signature: receives a fully reconstructed Access.
MemProbe = Callable[[Access], None]
#: (pc, target, args, lr) on CALL/CALLR.
CallProbe = Callable[[int, int, List[int], int], None]
#: (pc, return_value) on RET.
RetProbe = Callable[[int, int], None]

#: Maximum instructions per translation block.
MAX_BLOCK_LEN = 64

#: Default bound on cached translation blocks; long campaigns evict the
#: least-recently-executed block (cache hits and chain hits both touch)
#: instead of growing unboundedly.
TB_CACHE_CAPACITY = 2048

#: Successor links kept per block; static terminators need at most two
#: (taken + fall-through), the cap only guards degenerate exits.
_MAX_LINKS = 4

#: Maximum translation blocks stitched into one compiled JIT trace.
MAX_TRACE_BLOCKS = 8

_M = 0xFFFFFFFF
_DATA = AccessKind.DATA

#: Terminators whose successors are static, hence chainable.
_CHAINABLE = frozenset(
    {Op.JMP, Op.CALL, Op.BEQ, Op.BNE, Op.BLT, Op.BLTU, Op.BGE, Op.BGEU}
)


class TranslationBlock:
    """One translated basic block: entry pc, length, and executable ops."""

    __slots__ = ("pc", "insns", "ops", "host_ops", "cum_cycles", "pre_charge",
                 "end_pc", "links", "generation", "exec_count", "jit_fn")

    def __init__(self, pc: int, insns: List[Instruction], ops: List,
                 host_ops: int, cum_cycles: Optional[Tuple[int, ...]] = None,
                 pre_charge: Optional[Tuple[int, ...]] = None,
                 end_pc: int = 0, links: Optional[Dict] = None,
                 generation: int = 0):
        self.pc = pc
        self.insns = insns
        self.ops = ops
        #: number of host-level operations the templates expand to; the
        #: cost model uses this as the translation expansion measure.
        self.host_ops = host_ops
        #: prefix sums of per-instruction guest cycles (specialized mode):
        #: ``cum_cycles[i]`` is the charge after executing ``i`` thunks.
        self.cum_cycles = cum_cycles
        #: cycles the interpreter would have charged for instruction ``i``
        #: *before* reaching its first raise point; keeps trap-path cycle
        #: accounting identical across engine modes.
        self.pre_charge = pre_charge
        #: pc after the last instruction (fall-through target).
        self.end_pc = end_pc
        #: successor-pc -> TranslationBlock for chainable terminators;
        #: None when the terminator is dynamic (JR/CALLR/RET) or halting.
        self.links = links
        #: translation generation; ``run()`` refuses chained links whose
        #: generation predates the last ``flush_tbs()``.
        self.generation = generation
        #: executions observed while the JIT tier is enabled; crossing the
        #: hotness threshold triggers trace compilation with this block as
        #: the entry.
        self.exec_count = 0
        #: compiled trace executor entered when ``run()`` resolves this
        #: block; None until hot (or after deopt).
        self.jit_fn = None

    def __len__(self) -> int:
        return len(self.insns)


class _JitTrace:
    """One compiled trace: entry block, executor, and covered code span."""

    __slots__ = ("entry", "fn", "lo", "hi", "alive")

    def __init__(self, entry: TranslationBlock, fn, lo: int, hi: int,
                 alive: List[bool]):
        self.entry = entry
        self.fn = fn
        self.lo = lo
        self.hi = hi
        #: shared liveness cell baked into the compiled code, checked at
        #: every block boundary; invalidation flips it so an in-flight
        #: trace side-exits instead of executing stale translations.
        self.alive = alive


class TcgEngine:
    """Basic-block translating executor for EVM32 guest code."""

    #: class-wide default for the ``specialize`` flag; tests flip this to
    #: run whole firmware builds under the interpreter templates.
    DEFAULT_SPECIALIZE = True

    #: class-wide default for the ``jit`` flag; tests flip this to run
    #: whole firmware builds under the compiled-trace tier.
    DEFAULT_JIT = False

    #: executions of a block before its trace is compiled.  Low enough
    #: that short fuzz programs reach the compiled tier, high enough that
    #: one-shot boot code never pays for compilation.
    DEFAULT_JIT_THRESHOLD = 16

    def __init__(
        self,
        bus: MemoryBus,
        pc: int = 0,
        sp: int = 0,
        hypercall: Optional[HypercallHandler] = None,
        specialize: Optional[bool] = None,
        tb_cache_capacity: int = TB_CACHE_CAPACITY,
        jit: Optional[bool] = None,
        jit_threshold: Optional[int] = None,
    ):
        self.bus = bus
        self.state = CpuState(pc=pc, sp=sp)
        self.hypercall = hypercall
        self.cycles = 0
        self.insn_count = 0
        self.host_ops = 0
        self.tb_cache: Dict[int, TranslationBlock] = {}
        self.tb_flush_count = 0
        self.tb_generation = 0
        self.tb_evictions = 0
        self.tb_chain_hits = 0
        self.tb_translations = 0
        self.tb_invalidations = 0
        self.tb_cache_capacity = tb_cache_capacity
        #: optional :class:`repro.obs.trace.Tracer`; when set, each
        #: cache-miss translation records a span.  Only the miss path
        #: tests it, so cached execution never pays for tracing.
        self.tracer = None
        self._mem_probes: tuple = ()
        self.call_probes: List[CallProbe] = []
        self.ret_probes: List[RetProbe] = []
        #: optional hang guard, consulted once per executed block
        self.watchdog = None
        self.specialize = (
            self.DEFAULT_SPECIALIZE if specialize is None else specialize
        )
        self.jit = self.DEFAULT_JIT if jit is None else jit
        self.jit_threshold = (
            self.DEFAULT_JIT_THRESHOLD if jit_threshold is None
            else jit_threshold
        )
        self.tb_compiled = 0
        self.jit_deopts = 0
        self.jit_trace_execs = 0
        #: entry pc -> live :class:`_JitTrace`; flush/invalidation removes
        #: entries, re-translation of an evicted entry block re-attaches.
        self._jit_traces: Dict[int, _JitTrace] = {}
        #: optional zero-arg callable set by the machine layer: True while
        #: skipping bus-observer notification for a scalar access is
        #: unobservable (the machine's fan-out observer has no MEM_ACCESS
        #: subscribers).  None means the engine only trusts a bus with no
        #: observers at all.  Compiled traces consult this (through
        #: :meth:`_jit_mem_flags`) to inline region reads/writes.
        self.mem_fast_check: Optional[Callable[[], bool]] = None
        # span of guest addresses covered by live translations; scalar
        # stores landing inside it are self-modifying code and flush.
        self._code_lo = 1 << 62
        self._code_hi = -1
        # bulk writes (write_bytes/fill/copy/DMA) bypass the scalar-store
        # templates, so the bus reports them here for the same check
        bus.add_write_watcher(self._on_bulk_write)

    # ------------------------------------------------------------------
    # probe management (the Runtime's template-modification entry point)
    # ------------------------------------------------------------------
    def add_mem_probe(self, probe: MemProbe) -> None:
        """Inject a memory probe into all future translation templates."""
        self._mem_probes = self._mem_probes + (probe,)
        self.flush_tbs()

    def remove_mem_probe(self, probe: MemProbe) -> None:
        """Remove a probe and regenerate templates without it.

        A probe that was never registered is a no-op: the templates
        already lack it, so there is nothing to flush.
        """
        if not any(p is probe for p in self._mem_probes):
            return
        self._mem_probes = tuple(p for p in self._mem_probes if p is not probe)
        self.flush_tbs()

    def flush_tbs(self) -> None:
        """Discard every cached translation block and kill chained links."""
        self.tb_cache.clear()
        self.tb_flush_count += 1
        self.tb_generation += 1
        self._code_lo = 1 << 62
        self._code_hi = -1
        if self._jit_traces:
            self.jit_deopts += len(self._jit_traces)
            for trace in self._jit_traces.values():
                trace.alive[0] = False
                trace.entry.jit_fn = None
            self._jit_traces.clear()

    def _on_bulk_write(self, addr: int, size: int) -> None:
        """Bus bulk-write watcher: flush when the write hits translated code."""
        if addr < self._code_hi and addr + size > self._code_lo:
            self.flush_tbs()

    def invalidate_range(self, lo: int, hi: int) -> int:
        """Drop only the translations overlapping ``[lo, hi)``.

        The surgical alternative to :meth:`flush_tbs` for memory rewinds
        (journal rollback, dirty-page delta restore) whose written span
        is known: blocks outside the span — the overwhelming majority —
        keep their translations *and* their chain links, because the
        generation counter is left untouched.  Dropped blocks get the
        eviction treatment (dead generation) so stale links into them
        miss.  Returns the number of blocks invalidated.
        """
        if hi <= lo or hi <= self._code_lo or lo >= self._code_hi:
            return 0
        doomed = [
            pc
            for pc, block in self.tb_cache.items()
            if block.pc < hi and block.end_pc > lo
        ]
        for pc in doomed:
            block = self.tb_cache.pop(pc)
            block.generation = -1
        self.tb_invalidations += len(doomed)
        if self._jit_traces:
            # a trace spanning the range may be entered through a block
            # that itself survives, so trace kill is by covered span, not
            # by membership in ``doomed``
            dead = [
                entry_pc
                for entry_pc, trace in self._jit_traces.items()
                if trace.lo < hi and trace.hi > lo
            ]
            for entry_pc in dead:
                trace = self._jit_traces.pop(entry_pc)
                trace.alive[0] = False
                trace.entry.jit_fn = None
            self.jit_deopts += len(dead)
        return len(doomed)

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------
    def translate(self, pc: int) -> TranslationBlock:
        """Translate (or fetch from cache) the block starting at ``pc``."""
        cache = self.tb_cache
        cached = cache.get(pc)
        if cached is not None:
            # LRU touch: recently-run blocks move to the young end
            del cache[pc]
            cache[pc] = cached
            return cached
        self.tb_translations += 1
        tracer = self.tracer
        trace_start = tracer.now() if tracer is not None else 0.0
        insns: List[Instruction] = []
        addr = pc
        while len(insns) < MAX_BLOCK_LEN:
            blob = self.bus.fetch(addr, INSN_SIZE)
            insn = decode(blob)
            insns.append(insn)
            if insn.is_terminator():
                break
            addr += INSN_SIZE
        end_pc = pc + len(insns) * INSN_SIZE
        if self.specialize:
            block = self._build_spec_block(pc, insns, end_pc)
        else:
            ops, host_ops = self._build_ops(pc, insns)
            block = TranslationBlock(pc, insns, ops, host_ops,
                                     end_pc=end_pc,
                                     generation=self.tb_generation)
        # both template styles extend the live-code span: SMC detection
        # (bulk-write flush, range invalidation) must stay sound in
        # interpreter-template mode too
        if pc < self._code_lo:
            self._code_lo = pc
        if end_pc > self._code_hi:
            self._code_hi = end_pc
        trace = self._jit_traces.get(pc)
        if trace is not None and trace.alive[0]:
            # the entry block was evicted but its trace survived (traces
            # die by flush/invalidation, not cache pressure): re-attach
            # instead of re-warming from zero
            block.jit_fn = trace.fn
            trace.entry = block
        cache[pc] = block
        if len(cache) > self.tb_cache_capacity:
            evicted = cache.pop(next(iter(cache)))
            # sever incoming chain links: a dead generation makes every
            # link to this block miss, so capacity bounds live
            # translations, not just the cache dict
            evicted.generation = -1
            self.tb_evictions += 1
        if tracer is not None:
            tracer.complete(
                "tb:translate", trace_start, cat="tcg",
                args={"pc": pc, "insns": len(insns),
                      "host_ops": block.host_ops},
            )
        return block

    # ------------------------------------------------------------------
    # interpreter-mode templates (the seed engine's behaviour)
    # ------------------------------------------------------------------
    def _build_ops(self, pc: int, insns: List[Instruction]):
        """Specialize only probed memory templates for the probe set."""
        ops = []
        host_ops = 0
        probes = self._mem_probes
        for idx, insn in enumerate(insns):
            insn_pc = pc + idx * INSN_SIZE
            if insn.op in MEM_OPS and probes:
                size, is_write, atomic = MEM_OPS[insn.op]
                ops.append(
                    self._probed_mem_op(insn, insn_pc, size, is_write, atomic, probes)
                )
                # base op + address calc + one host call per probe
                host_ops += 2 + len(probes)
            else:
                ops.append((insn_pc, insn))
                host_ops += 2 if insn.op in MEM_OPS else 1
        return ops, host_ops

    def _probed_mem_op(self, insn, insn_pc, size, is_write, atomic, probes):
        """Build a closure performing probe-notify then the raw access."""
        bus = self.bus
        state = self.state
        rs1, rs2, rd, imm, op = insn.rs1, insn.rs2, insn.rd, insn.imm, insn.op

        def run() -> None:
            addr = u32(state.read(rs1) + imm)
            access = Access(
                addr, size, is_write, pc=insn_pc, task=state.task, atomic=atomic
            )
            for probe in probes:
                probe(access)
            with bus.untraced():
                if is_write:
                    bus.store(addr, size, state.read(rs2))
                else:
                    value = bus.load(addr, size)
                    state.write(rd, apply_load_sign(op, value))

        return run

    # ------------------------------------------------------------------
    # specialized-mode templates: one closure per instruction
    # ------------------------------------------------------------------
    def _build_spec_block(self, pc: int, insns: List[Instruction],
                          end_pc: int) -> TranslationBlock:
        ops: List[Callable] = []
        cycles: List[int] = []
        pre: List[int] = []
        host_ops = 0
        probes = self._mem_probes
        for idx, insn in enumerate(insns):
            insn_pc = pc + idx * INSN_SIZE
            thunk, cyc, hops = self._compile_insn(insn, insn_pc, probes)
            ops.append(thunk)
            cycles.append(cyc)
            # interpreter-mode probed templates charge nothing before the
            # probe call can raise; every other template charges its full
            # cycle cost before its first raise point
            pre.append(0 if (probes and insn.op in MEM_OPS) else cyc)
            host_ops += hops
        cum = [0]
        for cyc in cycles:
            cum.append(cum[-1] + cyc)
        links: Optional[Dict] = None
        if insns[-1].op in _CHAINABLE or not insns[-1].is_terminator():
            links = {}
        return TranslationBlock(pc, insns, ops, host_ops,
                                cum_cycles=tuple(cum), pre_charge=tuple(pre),
                                end_pc=end_pc, links=links,
                                generation=self.tb_generation)

    def _compile_insn(self, insn: Instruction, insn_pc: int,
                      probes: tuple):
        """Compile one instruction to a thunk with everything pre-bound.

        The thunk returns ``None`` to fall through or the next pc to
        transfer control (ending the block).  Returns ``(thunk, cycles,
        host_ops)`` where the cycle charge matches the interpreter path
        exactly (1 per instruction, +1 for memory traffic or a hypercall).

        Closures bind ``state.regs`` directly: the register file list is
        created once per :class:`CpuState` and never reassigned, and
        ``regs[0]`` is never written, so reading it is always 0.
        """
        eng = self
        state = self.state
        regs = state.regs
        bus = self.bus
        op = insn.op
        rd, rs1, rs2, imm = insn.rd, insn.rs1, insn.rs2, insn.imm
        next_pc = (insn_pc + INSN_SIZE) & _M

        # --- memory ----------------------------------------------------
        if op in MEM_OPS:
            size, is_write, atomic = MEM_OPS[op]
            if probes:
                thunk = self._compile_probed_mem(
                    insn, insn_pc, next_pc, size, is_write, atomic, probes
                )
                return thunk, 2, 2 + len(probes)
            if is_write:
                bus_store = bus.store

                def thunk():
                    state.pc = insn_pc
                    addr = (regs[rs1] + imm) & _M
                    bus_store(addr, size, regs[rs2], insn_pc, state.task,
                              atomic)
                    if addr < eng._code_hi and addr + size > eng._code_lo:
                        # self-modifying code: drop every translation and
                        # leave the block so the store takes effect before
                        # the next instruction executes
                        eng.flush_tbs()
                        return next_pc
                    return None

                return thunk, 2, 2
            bus_load = bus.load
            if op is Op.LD8S or op is Op.LD16S:
                bound, adjust = (0x80, 0x100) if op is Op.LD8S else (0x8000, 0x10000)

                def thunk():
                    state.pc = insn_pc
                    value = bus_load((regs[rs1] + imm) & _M, size, insn_pc,
                                     state.task, atomic)
                    if value >= bound:
                        value -= adjust
                    if rd:
                        regs[rd] = value & _M

                return thunk, 2, 2

            def thunk():
                state.pc = insn_pc
                value = bus_load((regs[rs1] + imm) & _M, size, insn_pc,
                                 state.task, atomic)
                if rd:
                    regs[rd] = value

            return thunk, 2, 2

        # --- control / misc -------------------------------------------
        if op is Op.NOP or (rd == 0 and op in _WRITES_RD):
            # register writes to r0 are architectural no-ops; the cycle
            # still accrues, the work is specialized away entirely
            return _nop_thunk, 1, 1
        if op is Op.HLT:

            def thunk():
                state.halted = True
                return next_pc

            return thunk, 1, 1
        if op is Op.BRK:

            def thunk():
                state.pc = insn_pc
                state.halted = True
                raise InvalidOpcode(f"BRK trap at {insn_pc:#010x}", addr=insn_pc)

            return thunk, 1, 1
        if op is Op.VMCALL:

            def thunk():
                state.pc = insn_pc
                handler = eng.hypercall
                if handler is None:
                    raise InvalidOpcode(
                        f"VMCALL with no handler at {insn_pc:#010x}",
                        addr=insn_pc,
                    )
                result = handler(eng, imm)
                if result is not None:
                    regs[1] = result & _M
                if state.halted:
                    return next_pc
                return None

            return thunk, 2, 1

        # --- ALU register-register ------------------------------------
        if op is Op.ADD:
            def thunk(): regs[rd] = (regs[rs1] + regs[rs2]) & _M
        elif op is Op.SUB:
            def thunk(): regs[rd] = (regs[rs1] - regs[rs2]) & _M
        elif op is Op.MUL:
            def thunk(): regs[rd] = (regs[rs1] * regs[rs2]) & _M
        elif op is Op.DIVU:
            def thunk():
                b = regs[rs2]
                regs[rd] = _M if b == 0 else regs[rs1] // b
        elif op is Op.REMU:
            def thunk():
                b = regs[rs2]
                regs[rd] = regs[rs1] if b == 0 else regs[rs1] % b
        elif op is Op.AND:
            def thunk(): regs[rd] = regs[rs1] & regs[rs2]
        elif op is Op.OR:
            def thunk(): regs[rd] = regs[rs1] | regs[rs2]
        elif op is Op.XOR:
            def thunk(): regs[rd] = regs[rs1] ^ regs[rs2]
        elif op is Op.SHL:
            def thunk(): regs[rd] = (regs[rs1] << (regs[rs2] & 31)) & _M
        elif op is Op.SHR:
            def thunk(): regs[rd] = regs[rs1] >> (regs[rs2] & 31)
        elif op is Op.SRA:
            def thunk(): regs[rd] = (sign32(regs[rs1]) >> (regs[rs2] & 31)) & _M
        elif op is Op.SLT:
            def thunk(): regs[rd] = 1 if sign32(regs[rs1]) < sign32(regs[rs2]) else 0
        elif op is Op.SLTU:
            def thunk(): regs[rd] = 1 if regs[rs1] < regs[rs2] else 0
        # --- ALU immediate --------------------------------------------
        elif op is Op.ADDI:
            def thunk(): regs[rd] = (regs[rs1] + imm) & _M
        elif op is Op.ANDI:
            def thunk(): regs[rd] = (regs[rs1] & imm) & _M
        elif op is Op.ORI:
            def thunk(): regs[rd] = (regs[rs1] | imm) & _M
        elif op is Op.XORI:
            def thunk(): regs[rd] = (regs[rs1] ^ imm) & _M
        elif op is Op.SHLI:
            shift = imm & 31

            def thunk(): regs[rd] = (regs[rs1] << shift) & _M
        elif op is Op.SHRI:
            shift = imm & 31

            def thunk(): regs[rd] = regs[rs1] >> shift
        elif op is Op.MOVI:
            value = imm & _M

            def thunk(): regs[rd] = value
        elif op is Op.LUI:
            value = (imm << 16) & _M

            def thunk(): regs[rd] = value
        elif op is Op.MOV:
            def thunk(): regs[rd] = regs[rs1]
        # --- control flow ---------------------------------------------
        elif op is Op.JMP:
            target = imm & _M

            def thunk(): return target
        elif op is Op.JR:
            def thunk(): return regs[rs1]
        elif op in (Op.BEQ, Op.BNE, Op.BLT, Op.BLTU, Op.BGE, Op.BGEU):
            thunk = _compile_branch(regs, op, rs1, rs2, imm & _M, next_pc)
        elif op is Op.CALL or op is Op.CALLR:
            static_target = imm & _M if op is Op.CALL else None

            def thunk():
                target = static_target if static_target is not None else regs[rs1]
                regs[15] = next_pc
                if eng.call_probes:
                    args = [regs[1], regs[2], regs[3], regs[4]]
                    for probe in eng.call_probes:
                        probe(insn_pc, target, args, next_pc)
                return target
        elif op is Op.RET:

            def thunk():
                rp = eng.ret_probes
                if rp:
                    rv = regs[1]
                    for probe in rp:
                        probe(insn_pc, rv)
                return regs[15]
        else:  # pragma: no cover - decode() rejects unknown opcodes
            raise InvalidOpcode(f"unhandled opcode {op!r}", addr=insn_pc)

        return thunk, 1, 1

    def _compile_probed_mem(self, insn, insn_pc, next_pc, size, is_write,
                            atomic, probes):
        """Specialized probed memory template: notify probes, then access
        the bus silently (the probes are the single notification channel).
        """
        eng = self
        state = self.state
        regs = state.regs
        bus = self.bus
        rs1, rs2, rd, imm, op = insn.rs1, insn.rs2, insn.rd, insn.imm, insn.op
        single = probes[0] if len(probes) == 1 else None
        if is_write:
            store_silent = bus.store_silent

            def thunk():
                state.pc = insn_pc
                addr = (regs[rs1] + imm) & _M
                access = Access(addr, size, True, insn_pc, state.task, _DATA,
                                atomic)
                if single is not None:
                    single(access)
                else:
                    for probe in probes:
                        probe(access)
                store_silent(addr, size, regs[rs2])
                if addr < eng._code_hi and addr + size > eng._code_lo:
                    eng.flush_tbs()
                    return next_pc
                return None

            return thunk
        load_silent = bus.load_silent
        signed = op is Op.LD8S or op is Op.LD16S
        bound, adjust = (0x80, 0x100) if op is Op.LD8S else (0x8000, 0x10000)

        def thunk():
            state.pc = insn_pc
            addr = (regs[rs1] + imm) & _M
            access = Access(addr, size, False, insn_pc, state.task, _DATA,
                            atomic)
            if single is not None:
                single(access)
            else:
                for probe in probes:
                    probe(access)
            value = load_silent(addr, size)
            if signed and value >= bound:
                value -= adjust
            if rd:
                regs[rd] = value & _M

        return thunk

    # ------------------------------------------------------------------
    # jit tier: compile hot chained superblocks to Python source
    # ------------------------------------------------------------------
    def _collect_trace(self, entry: TranslationBlock) -> List[TranslationBlock]:
        """Gather the chained superblock reachable from ``entry``.

        Walks the warm chain links breadth-first (plus the fall-through
        continuation of CALL/CALLR blocks, whose RET-terminated callees
        carry no links), keeping only current-generation specialized
        blocks, capped at :data:`MAX_TRACE_BLOCKS`.
        """
        gen = self.tb_generation
        blocks = [entry]
        seen = {entry.pc}
        index = 0
        while index < len(blocks) and len(blocks) < MAX_TRACE_BLOCKS:
            block = blocks[index]
            index += 1
            succs: List[TranslationBlock] = []
            if block.links:
                succs.extend(block.links.values())
            last = block.insns[-1].op
            if last is Op.CALL or last is Op.CALLR:
                cont = self.tb_cache.get(block.end_pc)
                if cont is not None:
                    succs.append(cont)
            for succ in succs:
                if len(blocks) >= MAX_TRACE_BLOCKS:
                    break
                if (succ.pc in seen or succ.generation != gen
                        or succ.cum_cycles is None):
                    continue
                seen.add(succ.pc)
                blocks.append(succ)
        return blocks

    def _jit_mem_flags(self) -> Tuple[bool, bool, bool, bool]:
        """May compiled traces bypass the bus for scalar accesses?

        Returns ``(loads, stores, silent_loads, silent_stores)``.  A fast
        scalar access inlines the region read/write, so it is only legal
        while every skipped layer is provably inert: observed (unprobed)
        templates additionally need quiescent observers — either absent,
        or declared unobservable by the machine layer — while the probed
        templates' silent twins never notify anyone and only need the
        fault plan (loads) or journal/dirty recording (stores) to be
        absent.  Recomputed at trace entry and after every hypercall
        (the only points where host code can change any of these
        mid-trace).
        """
        bus = self.bus
        check = self.mem_fast_check
        quiet = not bus._silent_depth and (
            not bus._observers if check is None else check()
        )
        no_fault = bus.fault_plan is None
        no_wlog = bus._journal is None and bus._dirty is None
        return quiet and no_fault, quiet and no_wlog, no_fault, no_wlog

    def _jit_refill(self, mc: list, addr: int, for_write: bool) -> None:
        """Point a per-site memory cache at the region covering ``addr``.

        Called from a trace's slow path after the bus access succeeded.
        Device regions (MMIO dispatch) and permission mismatches leave
        the cache invalid (``[1, 0, ...]``) so the site stays on the bus
        path.  Restore strategies mutate ``region.data`` in place, never
        reassign it, so a cached buffer reference stays coherent for the
        trace's lifetime.
        """
        region = self.bus.region_at(addr)
        if (region is None or region.kind == "device"
                or not region.perm & (Perm.W if for_write else Perm.R)):
            mc[0] = 1
            mc[1] = 0
            return
        mc[0] = region.base
        mc[1] = region.end
        mc[2] = region.data

    def _compile_trace(self, entry: TranslationBlock):
        """Emit, compile and install the trace entered at ``entry``."""
        tracer = self.tracer
        trace_start = tracer.now() if tracer is not None else 0.0
        blocks = self._collect_trace(entry)
        alive = [True]
        src, binds = self._emit_trace(blocks, alive)
        code = compile(src, f"<jit-trace@{entry.pc:#x}>", "exec")
        ns: Dict = {}
        exec(code, ns)
        fn = ns["_jit_make"](binds)
        trace = _JitTrace(entry, fn,
                          min(b.pc for b in blocks),
                          max(b.end_pc for b in blocks), alive)
        self._jit_traces[entry.pc] = trace
        entry.jit_fn = fn
        self.tb_compiled += 1
        if tracer is not None:
            tracer.complete(
                "jit:compile", trace_start, cat="tcg",
                args={"pc": entry.pc, "blocks": len(blocks),
                      "insns": sum(len(b.insns) for b in blocks)},
            )
        return fn

    def _emit_trace(self, blocks: List[TranslationBlock], alive: List[bool]):
        """Generate Python source for ``blocks`` as one executor function.

        The function takes the remaining step budget (``limit``) and
        returns instructions executed.  Guest registers live in locals
        ``r1``..``r15``; every external call site (bus access, probe,
        hypercall, watchdog) sees the register file written back first,
        so observable state at any raise point is bit-identical to the
        thunk tier.  ``fi`` indexes the compile-time ``_FACCT`` table of
        ``(insns, cycles, host_ops)`` exception charges, mirroring
        ``cum_cycles``/``pre_charge`` accounting exactly.

        Contract baked into the emitted code: memory/call/ret probes may
        read but never write the register file (all in-tree probes only
        emit events or inspect the Access); a probe that must mutate
        registers requires the interpreter tier.
        """
        probes = self._mem_probes
        gen = self.tb_generation
        facct: List[Tuple[int, int, int]] = [(0, 0, 0)]
        used, written = _scan_regs(blocks)
        wb = [f"regs[{r}] = r{r}" for r in sorted(written)]
        rl = [f"r{r} = regs[{r}]" for r in sorted(used)]
        arms: List[str] = []
        mem_caches: List[str] = []

        for block_index, block in enumerate(blocks):
            head = "if" if block_index == 0 else "elif"
            arms.append(f"                {head} pc == {block.pc}:")
            cum = block.cum_cycles
            hb = block.host_ops
            n = len(block.insns)

            def e(line: str, depth: int = 0) -> None:
                arms.append(" " * (20 + 4 * depth) + line)

            def site(k: int, pre: int) -> int:
                facct.append((k, cum[k] + pre, hb))
                return len(facct) - 1

            def emit_wd(nb: int, depth: int) -> None:
                # boundary watchdog charge: flush accumulators so a trip
                # (or anything the guest raises later) charges exactly
                # the retired blocks, then consume like run() does
                e("if wd is not None:", depth)
                e("state.pc = pc", depth + 1)
                e("eng.cycles += cyc", depth + 1)
                e("eng.insn_count += ni", depth + 1)
                e("eng.host_ops += hops", depth + 1)
                e("cyc = 0", depth + 1)
                e("ni = 0", depth + 1)
                e("hops = 0", depth + 1)
                e("fi = 0", depth + 1)
                e("try:", depth + 1)
                e(f"wd.consume({nb}, pc, state.task)", depth + 2)
                e("except _GH:", depth + 1)
                e("state.halted = True", depth + 2)
                e("raise", depth + 2)

            def exit_partial(done: int, next_lit: int, depth: int) -> None:
                # mid-block trace exit (SMC flush / VMCALL halt): retire
                # ``done`` instructions exactly like a thunk returning
                # early, then leave the compiled trace entirely
                e(f"cyc += {cum[done]}", depth)
                e(f"ni += {done}", depth)
                e(f"hops += {hb}", depth)
                e(f"tot += {done}", depth)
                e(f"pc = {next_lit}", depth)
                emit_wd(done, depth)
                e("break", depth)

            target_expr: Optional[str] = None
            raises_unconditionally = False
            for k, insn in enumerate(block.insns):
                insn_pc = block.pc + k * INSN_SIZE
                next_pc = (insn_pc + INSN_SIZE) & _M
                op = insn.op
                a = f"r{insn.rs1}" if insn.rs1 else "0"
                b = f"r{insn.rs2}" if insn.rs2 else "0"
                if op in MEM_OPS:
                    size, is_write, atomic = MEM_OPS[op]
                    signed = op is Op.LD8S or op is Op.LD16S
                    bound, adjust = ((0x80, 0x100) if op is Op.LD8S
                                     else (0x8000, 0x10000))
                    mc = f"_mc{len(mem_caches)}"
                    mem_caches.append(mc)
                    # the per-site inline cache: [region.base, region.end,
                    # region.data]; the guard proves the whole scalar
                    # access lands inside one cached non-device region
                    guard = (f"_c[0] <= _a and _a + {size} <= _c[1]")
                    if is_write and size < 4:
                        val = f"({b} & {(1 << (8 * size)) - 1})"
                    else:
                        val = f"({b})"
                    if probes:
                        e(f"state.pc = {insn_pc}")
                        e(f"fi = {site(k, 0)}")
                        e(f"_a = ({a} + {insn.imm}) & 4294967295")
                        e(f"_ac = _AC(_a, {size}, {is_write}, {insn_pc}, "
                          f"state.task, _DK, {atomic})")
                        if len(probes) == 1:
                            e("_mp0(_ac)")
                        else:
                            e("for _p in _mp:")
                            e("_p(_ac)", 1)
                        e(f"_c = {mc}")
                        if is_write:
                            e(f"if _ss and {guard}:")
                            e(f"_c[2][_a - _c[0] : _a - _c[0] + {size}] = "
                              f"{val}.to_bytes({size}, \"little\")", 1)
                            e("else:")
                            e(f"_sts(_a, {size}, {b})", 1)
                            e("if _ss:", 1)
                            e("eng._jit_refill(_c, _a, True)", 2)
                            e(f"if _a < eng._code_hi and "
                              f"_a + {size} > eng._code_lo:")
                            e("eng.flush_tbs()", 1)
                            exit_partial(k + 1, next_pc, 1)
                        else:
                            e(f"if _sl and {guard}:")
                            e(f"_v = int.from_bytes(_c[2][_a - _c[0] : "
                              f"_a - _c[0] + {size}], \"little\")", 1)
                            e("else:")
                            e(f"_v = _lds(_a, {size})", 1)
                            e("if _sl:", 1)
                            e("eng._jit_refill(_c, _a, False)", 2)
                            if signed:
                                e(f"if _v >= {bound}:")
                                e(f"_v -= {adjust}", 1)
                            if insn.rd:
                                e(f"r{insn.rd} = _v & 4294967295")
                    elif is_write:
                        e(f"_a = ({a} + {insn.imm}) & 4294967295")
                        e(f"_c = {mc}")
                        e(f"if _fs and {guard}:")
                        e(f"_c[2][_a - _c[0] : _a - _c[0] + {size}] = "
                          f"{val}.to_bytes({size}, \"little\")", 1)
                        e("else:")
                        e(f"state.pc = {insn_pc}", 1)
                        e(f"fi = {site(k, 2)}", 1)
                        e(f"_st(_a, {size}, {b}, {insn_pc}, "
                          f"state.task, {atomic})", 1)
                        e("if _fs:", 1)
                        e("eng._jit_refill(_c, _a, True)", 2)
                        e(f"if _a < eng._code_hi and "
                          f"_a + {size} > eng._code_lo:")
                        e("eng.flush_tbs()", 1)
                        exit_partial(k + 1, next_pc, 1)
                    else:
                        e(f"_a = ({a} + {insn.imm}) & 4294967295")
                        e(f"_c = {mc}")
                        e(f"if _fl and {guard}:")
                        e(f"_v = int.from_bytes(_c[2][_a - _c[0] : "
                          f"_a - _c[0] + {size}], \"little\")", 1)
                        e("else:")
                        e(f"state.pc = {insn_pc}", 1)
                        e(f"fi = {site(k, 2)}", 1)
                        e(f"_v = _ld(_a, {size}, {insn_pc}, "
                          f"state.task, {atomic})", 1)
                        e("if _fl:", 1)
                        e("eng._jit_refill(_c, _a, False)", 2)
                        if signed:
                            e(f"if _v >= {bound}:")
                            e(f"_v -= {adjust}", 1)
                            if insn.rd:
                                e(f"r{insn.rd} = _v & 4294967295")
                        elif insn.rd:
                            e(f"r{insn.rd} = _v")
                elif op is Op.NOP or (op in _WRITES_RD and insn.rd == 0):
                    pass
                elif op is Op.HLT:
                    e("state.halted = True")
                    target_expr = str(next_pc)
                elif op is Op.BRK:
                    e(f"state.pc = {insn_pc}")
                    e("state.halted = True")
                    e(f"fi = {site(k, 1)}")
                    msg = f"BRK trap at {insn_pc:#010x}"
                    e(f"raise _IO({msg!r}, addr={insn_pc})")
                    raises_unconditionally = True
                elif op is Op.VMCALL:
                    e(f"state.pc = {insn_pc}")
                    e(f"fi = {site(k, 2)}")
                    e("_h = eng.hypercall")
                    e("if _h is None:")
                    msg = f"VMCALL with no handler at {insn_pc:#010x}"
                    e(f"raise _IO({msg!r}, addr={insn_pc})", 1)
                    for stmt in wb:
                        e(stmt)
                    # the handler (and any IRQ it delivers) may mutate the
                    # register file: reload locals afterwards — and on a
                    # raise, before the outer handler's writeback would
                    # clobber the mutation with stale locals
                    e("try:")
                    e(f"_r = _h(eng, {insn.imm})", 1)
                    e("except BaseException:")
                    for stmt in rl:
                        e(stmt, 1)
                    e("raise", 1)
                    for stmt in rl:
                        e(stmt)
                    e("_fl, _fs, _sl, _ss = eng._jit_mem_flags()")
                    e("if _r is not None:")
                    e("r1 = _r & 4294967295", 1)
                    e("if state.halted:")
                    exit_partial(k + 1, next_pc, 1)
                elif op is Op.JMP:
                    target_expr = str(insn.imm & _M)
                elif op is Op.JR:
                    target_expr = a
                elif op in _JIT_BR:
                    cond = _JIT_BR[op].format(a=a, b=b)
                    target_expr = f"{insn.imm & _M} if {cond} else {next_pc}"
                elif op is Op.CALL or op is Op.CALLR:
                    if op is Op.CALLR:
                        e(f"_t = {a}")
                        tgt = "_t"
                    else:
                        tgt = str(insn.imm & _M)
                    e(f"r15 = {next_pc}")
                    e("_cp = eng.call_probes")
                    e("if _cp:")
                    for stmt in wb:
                        e(stmt, 1)
                    e(f"fi = {site(k, 1)}", 1)
                    e("_args = [r1, r2, r3, r4]", 1)
                    e("for _p in _cp:", 1)
                    e(f"_p({insn_pc}, {tgt}, _args, {next_pc})", 2)
                    target_expr = tgt
                elif op is Op.RET:
                    e("_rp = eng.ret_probes")
                    e("if _rp:")
                    for stmt in wb:
                        e(stmt, 1)
                    e(f"fi = {site(k, 1)}", 1)
                    e("for _p in _rp:", 1)
                    e(f"_p({insn_pc}, r1)", 2)
                    target_expr = "r15"
                elif op in _JIT_ALU:
                    e(f"r{insn.rd} = " + _JIT_ALU[op].format(a=a, b=b))
                elif op in _JIT_ALU_IMM:
                    e(f"r{insn.rd} = "
                      + _JIT_ALU_IMM[op].format(a=a, imm=insn.imm))
                elif op is Op.SHLI:
                    e(f"r{insn.rd} = ({a} << {insn.imm & 31}) & 4294967295")
                elif op is Op.SHRI:
                    e(f"r{insn.rd} = {a} >> {insn.imm & 31}")
                elif op is Op.MOVI:
                    e(f"r{insn.rd} = {insn.imm & _M}")
                elif op is Op.LUI:
                    e(f"r{insn.rd} = {(insn.imm << 16) & _M}")
                elif op is Op.MOV:
                    e(f"r{insn.rd} = {a}")
                else:  # pragma: no cover - decode() rejects unknown opcodes
                    raise InvalidOpcode(f"unhandled opcode {op!r}",
                                        addr=insn_pc)
            if raises_unconditionally:
                continue
            if target_expr is None:
                # fall-through: block was cut at MAX_BLOCK_LEN (or ends in
                # a non-branching template); matches state.pc = end_pc
                target_expr = str(block.end_pc)
            e(f"pc = {target_expr}")
            e(f"cyc += {cum[n]}")
            e(f"ni += {n}")
            e(f"hops += {hb}")
            e(f"tot += {n}")
            emit_wd(n, 0)
            e(f"if tot >= limit or state.halted "
              f"or eng.tb_generation != {gen} or not _ALIVE[0]:")
            e("break", 1)

        binds: Dict[str, object] = {
            "eng": self,
            "state": self.state,
            "regs": self.state.regs,
            "_ld": self.bus.load,
            "_st": self.bus.store,
            "_lds": self.bus.load_silent,
            "_sts": self.bus.store_silent,
            "_AC": Access,
            "_DK": _DATA,
            "_IO": InvalidOpcode,
            "_GH": GuestHang,
            "_ALIVE": alive,
            "_FACCT": tuple(facct),
        }
        if probes:
            binds["_mp"] = probes
            if len(probes) == 1:
                binds["_mp0"] = probes[0]
        for name in mem_caches:
            # invalid until the site's first slow-path access refills it
            binds[name] = [1, 0, None]
        header = ", ".join(
            ["limit"] + [f"{k}=__c[{k!r}]" for k in sorted(binds)]
        )
        src_lines = [
            "def _jit_make(__c):",
            f"    def _trace({header}):",
            "        wd = eng.watchdog",
            "        _fl, _fs, _sl, _ss = eng._jit_mem_flags()",
            *[f"        {stmt}" for stmt in rl],
            "        cyc = 0",
            "        ni = 0",
            "        hops = 0",
            "        tot = 0",
            "        fi = 0",
            f"        pc = {blocks[0].pc}",
            "        try:",
            "            while True:",
            *arms,
            "                else:",
            "                    break",
            "        except BaseException:",
            *[f"            {stmt}" for stmt in wb],
            "            _d, _c, _h = _FACCT[fi]",
            "            eng.cycles += cyc + _c",
            "            eng.insn_count += ni + _d",
            "            eng.host_ops += hops + _h",
            "            raise",
            *[f"        {stmt}" for stmt in wb],
            "        state.pc = pc",
            "        eng.cycles += cyc",
            "        eng.insn_count += ni",
            "        eng.host_ops += hops",
            "        return tot",
            "    return _trace",
            "",
        ]
        return "\n".join(src_lines), binds

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, max_steps: int = 1_000_000) -> int:
        """Run translated blocks until HLT or the step budget; returns steps.

        Consecutive blocks chain: when the previous block's terminator has
        static successors, the successor ``TranslationBlock`` is linked in
        and reused directly on later passes (generation-checked), so
        straight-line and loop-heavy firmware stops round-tripping through
        ``translate()`` and the TB cache.
        """
        executed = 0
        state = self.state
        exec_block = self._exec_block
        translate = self.translate
        watchdog = self.watchdog
        jit = self.jit
        threshold = self.jit_threshold
        prev: Optional[TranslationBlock] = None
        while not state.halted and executed < max_steps:
            pc = state.pc
            block = None
            if prev is not None:
                links = prev.links
                if links is not None:
                    block = links.get(pc)
                    if block is not None:
                        if block.generation == self.tb_generation:
                            self.tb_chain_hits += 1
                            # LRU touch: chain hits bypass translate(), so
                            # the hottest blocks must be aged here or the
                            # cache would evict them first under pressure
                            cache = self.tb_cache
                            if cache.get(pc) is block:
                                del cache[pc]
                                cache[pc] = block
                        else:
                            del links[pc]
                            block = None
            if block is None:
                block = translate(pc)
                if (prev is not None and prev.links is not None
                        and len(prev.links) < _MAX_LINKS):
                    prev.links[pc] = block
            if jit:
                fn = block.jit_fn
                if fn is None:
                    count = block.exec_count + 1
                    block.exec_count = count
                    if count == threshold and block.cum_cycles is not None:
                        fn = self._compile_trace(block)
                if fn is not None:
                    # the compiled trace charges cycles/insns/host_ops and
                    # consumes watchdog budget per constituent block
                    # internally, so this loop's per-block bookkeeping is
                    # skipped for the whole trace execution
                    self.jit_trace_execs += 1
                    executed += fn(max_steps - executed)
                    prev = None
                    continue
            done = exec_block(block)
            executed += done
            if watchdog is not None:
                # Per-block granularity: a trip overshoots by at most one
                # block (< MAX_BLOCK_LEN instructions).  Applies to both
                # the specialized and interp templates, which share this
                # loop.  On a trip the engine halts so the hang surfaces
                # once, not on every subsequent run() call.
                try:
                    watchdog.consume(done, state.pc, state.task)
                except GuestHang:
                    state.halted = True
                    raise
            prev = block
        return executed

    def stats(self) -> Dict[str, int]:
        """Engine counters (harvested by the observability layer)."""
        return {
            "insns": self.insn_count,
            "cycles": self.cycles,
            "host_ops": self.host_ops,
            "tb_translations": self.tb_translations,
            "tb_flushes": self.tb_flush_count,
            "tb_evictions": self.tb_evictions,
            "tb_invalidations": self.tb_invalidations,
            "tb_chain_hits": self.tb_chain_hits,
            "tb_cache_blocks": len(self.tb_cache),
            "tb_compiled": self.tb_compiled,
            "jit_deopts": self.jit_deopts,
            "jit_trace_execs": self.jit_trace_execs,
        }

    def step_block(self) -> int:
        """Execute exactly one translation block; returns instructions run."""
        if self.state.halted:
            return 0
        return self._exec_block(self.translate(self.state.pc))

    def _exec_block(self, block: TranslationBlock) -> int:
        if block.cum_cycles is not None:
            return self._exec_block_spec(block)
        return self._exec_block_interp(block)

    def _exec_block_spec(self, block: TranslationBlock) -> int:
        """Tight thunk loop: no opcode tests, no dict lookups."""
        state = self.state
        done = 0
        target = None
        try:
            for fn in block.ops:
                target = fn()
                done += 1
                if target is not None:
                    break
        except BaseException:
            # charge retired instructions plus whatever the interpreter
            # would have charged for the trapping one before it raised
            self.cycles += block.cum_cycles[done] + block.pre_charge[done]
            self.insn_count += done
            self.host_ops += block.host_ops
            raise
        state.pc = block.end_pc if target is None else target
        self.cycles += block.cum_cycles[done]
        self.insn_count += done
        self.host_ops += block.host_ops
        return done

    def _exec_block_interp(self, block: TranslationBlock) -> int:
        state = self.state
        executed = 0
        self.host_ops += block.host_ops
        for entry in block.ops:
            if callable(entry):
                entry()
                self.cycles += 2
                state.pc += INSN_SIZE  # probed mem ops never branch
                executed += 1
                self.insn_count += 1
                continue
            insn_pc, insn = entry
            state.pc = insn_pc
            next_pc = self._interp(insn_pc, insn)
            executed += 1
            self.insn_count += 1
            state.pc = next_pc
            if state.halted or next_pc != insn_pc + INSN_SIZE:
                # a branch (or trap) redirected control flow; leave the block
                return executed
        return executed

    # ------------------------------------------------------------------
    def _interp(self, pc: int, insn: Instruction) -> int:
        """Interpret a single (unprobed) instruction; returns the next pc."""
        state = self.state
        op = insn.op
        rs1 = state.read(insn.rs1)
        rs2 = state.read(insn.rs2)
        self.cycles += 1

        next_pc = pc + INSN_SIZE
        if op is Op.NOP:
            return next_pc
        if op is Op.HLT:
            state.halted = True
            return next_pc
        if op is Op.BRK:
            state.halted = True
            raise InvalidOpcode(f"BRK trap at {pc:#010x}", addr=pc)
        if op is Op.VMCALL:
            self.cycles += 1
            if self.hypercall is None:
                raise InvalidOpcode(f"VMCALL with no handler at {pc:#010x}", addr=pc)
            result = self.hypercall(self, insn.imm)
            if result is not None:
                state.write(1, result)
            return next_pc
        if op in MEM_OPS:
            size, is_write, atomic = MEM_OPS[op]
            addr = u32(rs1 + insn.imm)
            self.cycles += 1
            if is_write:
                self.bus.store(addr, size, rs2, pc=pc, task=state.task, atomic=atomic)
            else:
                value = self.bus.load(addr, size, pc=pc, task=state.task, atomic=atomic)
                state.write(insn.rd, apply_load_sign(op, value))
            return next_pc

        if op is Op.ADD:
            state.write(insn.rd, rs1 + rs2)
        elif op is Op.SUB:
            state.write(insn.rd, rs1 - rs2)
        elif op is Op.MUL:
            state.write(insn.rd, rs1 * rs2)
        elif op is Op.DIVU:
            state.write(insn.rd, 0xFFFFFFFF if rs2 == 0 else rs1 // rs2)
        elif op is Op.REMU:
            state.write(insn.rd, rs1 if rs2 == 0 else rs1 % rs2)
        elif op is Op.AND:
            state.write(insn.rd, rs1 & rs2)
        elif op is Op.OR:
            state.write(insn.rd, rs1 | rs2)
        elif op is Op.XOR:
            state.write(insn.rd, rs1 ^ rs2)
        elif op is Op.SHL:
            state.write(insn.rd, rs1 << (rs2 & 31))
        elif op is Op.SHR:
            state.write(insn.rd, rs1 >> (rs2 & 31))
        elif op is Op.SRA:
            state.write(insn.rd, sign32(rs1) >> (rs2 & 31))
        elif op is Op.SLT:
            state.write(insn.rd, 1 if sign32(rs1) < sign32(rs2) else 0)
        elif op is Op.SLTU:
            state.write(insn.rd, 1 if rs1 < rs2 else 0)
        elif op is Op.ADDI:
            state.write(insn.rd, rs1 + insn.imm)
        elif op is Op.ANDI:
            state.write(insn.rd, rs1 & insn.imm)
        elif op is Op.ORI:
            state.write(insn.rd, rs1 | insn.imm)
        elif op is Op.XORI:
            state.write(insn.rd, rs1 ^ insn.imm)
        elif op is Op.SHLI:
            state.write(insn.rd, rs1 << (insn.imm & 31))
        elif op is Op.SHRI:
            state.write(insn.rd, rs1 >> (insn.imm & 31))
        elif op is Op.MOVI:
            state.write(insn.rd, insn.imm)
        elif op is Op.LUI:
            state.write(insn.rd, insn.imm << 16)
        elif op is Op.MOV:
            state.write(insn.rd, rs1)
        elif op is Op.JMP:
            return u32(insn.imm)
        elif op is Op.JR:
            return rs1
        elif op in (Op.BEQ, Op.BNE, Op.BLT, Op.BLTU, Op.BGE, Op.BGEU):
            taken = {
                Op.BEQ: rs1 == rs2,
                Op.BNE: rs1 != rs2,
                Op.BLT: sign32(rs1) < sign32(rs2),
                Op.BLTU: rs1 < rs2,
                Op.BGE: sign32(rs1) >= sign32(rs2),
                Op.BGEU: rs1 >= rs2,
            }[op]
            if taken:
                return u32(insn.imm)
        elif op is Op.CALL:
            state.write(15, next_pc)
            self._notify_call(pc, u32(insn.imm), next_pc)
            return u32(insn.imm)
        elif op is Op.CALLR:
            state.write(15, next_pc)
            self._notify_call(pc, rs1, next_pc)
            return rs1
        elif op is Op.RET:
            for probe in self.ret_probes:
                probe(pc, state.read(1))
            return state.read(15)
        else:  # pragma: no cover
            raise InvalidOpcode(f"unhandled opcode {op!r}", addr=pc)
        return next_pc

    def _notify_call(self, pc: int, target: int, lr: int) -> None:
        if self.call_probes:
            args = [self.state.read(i) for i in range(1, 5)]
            for probe in self.call_probes:
                probe(pc, target, args, lr)


def _nop_thunk() -> None:
    """Shared thunk for NOP and r0-destination writes."""
    return None


def _compile_branch(regs, op: Op, rs1: int, rs2: int, taken: int, fall: int):
    """Build a conditional-branch thunk with the predicate pre-bound."""
    if op is Op.BEQ:
        def thunk(): return taken if regs[rs1] == regs[rs2] else fall
    elif op is Op.BNE:
        def thunk(): return taken if regs[rs1] != regs[rs2] else fall
    elif op is Op.BLT:
        def thunk():
            return taken if sign32(regs[rs1]) < sign32(regs[rs2]) else fall
    elif op is Op.BLTU:
        def thunk(): return taken if regs[rs1] < regs[rs2] else fall
    elif op is Op.BGE:
        def thunk():
            return taken if sign32(regs[rs1]) >= sign32(regs[rs2]) else fall
    else:
        def thunk(): return taken if regs[rs1] >= regs[rs2] else fall
    return thunk


#: opcodes whose only architectural effect is a register write; with
#: rd == r0 they specialize to a shared no-op thunk.
_WRITES_RD = frozenset(
    {Op.ADD, Op.SUB, Op.MUL, Op.DIVU, Op.REMU, Op.AND, Op.OR, Op.XOR,
     Op.SHL, Op.SHR, Op.SRA, Op.SLT, Op.SLTU, Op.ADDI, Op.ANDI, Op.ORI,
     Op.XORI, Op.SHLI, Op.SHRI, Op.MOVI, Op.LUI, Op.MOV}
)

# ----------------------------------------------------------------------
# jit emission tables
#
# Signed comparisons use the xor-bias trick: for 32-bit unsigned x,
# ``x ^ 0x80000000`` maps signed order onto unsigned order, so
# ``sign32(a) < sign32(b)`` == ``(a ^ 2**31) < (b ^ 2**31)`` without a
# function call; ``(x ^ 2**31) - 2**31`` *is* sign32(x) for SRA.
# ----------------------------------------------------------------------

#: branch predicate source, formatted with register-read expressions.
_JIT_BR = {
    Op.BEQ: "{a} == {b}",
    Op.BNE: "{a} != {b}",
    Op.BLT: "({a} ^ 2147483648) < ({b} ^ 2147483648)",
    Op.BLTU: "{a} < {b}",
    Op.BGE: "({a} ^ 2147483648) >= ({b} ^ 2147483648)",
    Op.BGEU: "{a} >= {b}",
}

#: register-register ALU expression source (mirrors the spec thunks).
_JIT_ALU = {
    Op.ADD: "({a} + {b}) & 4294967295",
    Op.SUB: "({a} - {b}) & 4294967295",
    Op.MUL: "({a} * {b}) & 4294967295",
    Op.DIVU: "4294967295 if {b} == 0 else {a} // {b}",
    Op.REMU: "{a} if {b} == 0 else {a} % {b}",
    Op.AND: "{a} & {b}",
    Op.OR: "{a} | {b}",
    Op.XOR: "{a} ^ {b}",
    Op.SHL: "({a} << ({b} & 31)) & 4294967295",
    Op.SHR: "{a} >> ({b} & 31)",
    Op.SRA: "((({a} ^ 2147483648) - 2147483648) >> ({b} & 31)) & 4294967295",
    Op.SLT: "1 if ({a} ^ 2147483648) < ({b} ^ 2147483648) else 0",
    Op.SLTU: "1 if {a} < {b} else 0",
}

#: register-immediate ALU expression source.
_JIT_ALU_IMM = {
    Op.ADDI: "({a} + {imm}) & 4294967295",
    Op.ANDI: "({a} & {imm}) & 4294967295",
    Op.ORI: "({a} | {imm}) & 4294967295",
    Op.XORI: "({a} ^ {imm}) & 4294967295",
}


def _scan_regs(blocks: List[TranslationBlock]):
    """Which guest registers a trace reads (``used``) and writes
    (``written``); locals are materialized for ``used`` and written back
    to the register file for ``written`` at every external call site.
    """
    used: set = set()
    written: set = set()
    for block in blocks:
        for insn in block.insns:
            op = insn.op
            if op in MEM_OPS:
                _size, is_write, _atomic = MEM_OPS[op]
                used.add(insn.rs1)
                if is_write:
                    used.add(insn.rs2)
                elif insn.rd:
                    written.add(insn.rd)
            elif op is Op.VMCALL:
                written.add(1)
            elif op is Op.CALL or op is Op.CALLR:
                used.update((1, 2, 3, 4))
                written.add(15)
                if op is Op.CALLR:
                    used.add(insn.rs1)
            elif op is Op.RET:
                used.update((1, 15))
            elif op is Op.JR:
                used.add(insn.rs1)
            elif op in _JIT_BR:
                used.add(insn.rs1)
                used.add(insn.rs2)
            elif op in _WRITES_RD and insn.rd:
                written.add(insn.rd)
                used.add(insn.rs1)
                used.add(insn.rs2)
    used |= written
    used.discard(0)
    written.discard(0)
    return used, written
