"""Translation-block execution engine with sanitizer probe injection.

This mirrors the mechanism EMBSAN uses on QEMU/TCG (§3.3): instead of
introspecting the virtual machine from outside, the *Common Sanitizer
Runtime* modifies the translation templates themselves.  When a sanitizer
registers a load/store probe, every translated memory instruction gains an
inline call to the probe delegate (``load_intercept``-style) with the
required arguments reconstructed symbolically (address register + offset,
access size, pc, task id).  Re-registering probes flushes the TB cache so
new templates take effect — exactly like a QEMU ``tb_flush``.

Guest code executed here performs its memory traffic *untraced* on the
bus: the injected probes are the single notification channel, so an
attached runtime never sees the same access twice.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import GuestFault, InvalidOpcode
from repro.isa.cpu import CpuState, HypercallHandler
from repro.isa.insn import (
    INSN_SIZE,
    Instruction,
    MEM_OPS,
    Op,
    decode,
    sign32,
    u32,
)
from repro.mem.access import Access
from repro.mem.bus import MemoryBus

#: Probe delegate signature: receives a fully reconstructed Access.
MemProbe = Callable[[Access], None]
#: (pc, target, args, lr) on CALL/CALLR.
CallProbe = Callable[[int, int, List[int], int], None]
#: (pc, return_value) on RET.
RetProbe = Callable[[int, int], None]

#: Maximum instructions per translation block.
MAX_BLOCK_LEN = 64


class TranslationBlock:
    """One translated basic block: entry pc, length, and executable ops."""

    __slots__ = ("pc", "insns", "ops", "host_ops")

    def __init__(self, pc: int, insns: List[Instruction], ops: List, host_ops: int):
        self.pc = pc
        self.insns = insns
        self.ops = ops
        #: number of host-level operations the templates expand to; the
        #: cost model uses this as the translation expansion measure.
        self.host_ops = host_ops

    def __len__(self) -> int:
        return len(self.insns)


class TcgEngine:
    """Basic-block translating executor for EVM32 guest code."""

    def __init__(
        self,
        bus: MemoryBus,
        pc: int = 0,
        sp: int = 0,
        hypercall: Optional[HypercallHandler] = None,
    ):
        self.bus = bus
        self.state = CpuState(pc=pc, sp=sp)
        self.hypercall = hypercall
        self.cycles = 0
        self.insn_count = 0
        self.host_ops = 0
        self.tb_cache: Dict[int, TranslationBlock] = {}
        self.tb_flush_count = 0
        self._mem_probes: tuple = ()
        self.call_probes: List[CallProbe] = []
        self.ret_probes: List[RetProbe] = []

    # ------------------------------------------------------------------
    # probe management (the Runtime's template-modification entry point)
    # ------------------------------------------------------------------
    def add_mem_probe(self, probe: MemProbe) -> None:
        """Inject a memory probe into all future translation templates."""
        self._mem_probes = self._mem_probes + (probe,)
        self.flush_tbs()

    def remove_mem_probe(self, probe: MemProbe) -> None:
        """Remove a probe and regenerate templates without it."""
        self._mem_probes = tuple(p for p in self._mem_probes if p is not probe)
        self.flush_tbs()

    def flush_tbs(self) -> None:
        """Discard every cached translation block."""
        self.tb_cache.clear()
        self.tb_flush_count += 1

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------
    def translate(self, pc: int) -> TranslationBlock:
        """Translate (or fetch from cache) the block starting at ``pc``."""
        cached = self.tb_cache.get(pc)
        if cached is not None:
            return cached
        insns: List[Instruction] = []
        addr = pc
        while len(insns) < MAX_BLOCK_LEN:
            blob = self.bus.fetch(addr, INSN_SIZE)
            insn = decode(blob)
            insns.append(insn)
            if insn.is_terminator():
                break
            addr += INSN_SIZE
        ops, host_ops = self._build_ops(pc, insns)
        block = TranslationBlock(pc, insns, ops, host_ops)
        self.tb_cache[pc] = block
        return block

    def _build_ops(self, pc: int, insns: List[Instruction]):
        """Specialize templates for the current probe set."""
        ops = []
        host_ops = 0
        probes = self._mem_probes
        for idx, insn in enumerate(insns):
            insn_pc = pc + idx * INSN_SIZE
            if insn.op in MEM_OPS and probes:
                size, is_write, atomic = MEM_OPS[insn.op]
                ops.append(
                    self._probed_mem_op(insn, insn_pc, size, is_write, atomic, probes)
                )
                # base op + address calc + one host call per probe
                host_ops += 2 + len(probes)
            else:
                ops.append((insn_pc, insn))
                host_ops += 2 if insn.op in MEM_OPS else 1
        return ops, host_ops

    def _probed_mem_op(self, insn, insn_pc, size, is_write, atomic, probes):
        """Build a closure performing probe-notify then the raw access."""
        bus = self.bus
        state = self.state
        rs1, rs2, rd, imm, op = insn.rs1, insn.rs2, insn.rd, insn.imm, insn.op

        def run() -> None:
            addr = u32(state.read(rs1) + imm)
            access = Access(
                addr, size, is_write, pc=insn_pc, task=state.task, atomic=atomic
            )
            for probe in probes:
                probe(access)
            with bus.untraced():
                if is_write:
                    bus.store(addr, size, state.read(rs2))
                else:
                    value = bus.load(addr, size)
                    if op is Op.LD8S and value >= 0x80:
                        value -= 0x100
                    elif op is Op.LD16S and value >= 0x8000:
                        value -= 0x10000
                    state.write(rd, value)

        return run

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, max_steps: int = 1_000_000) -> int:
        """Run translated blocks until HLT or the step budget; returns steps."""
        executed = 0
        state = self.state
        while not state.halted and executed < max_steps:
            block = self.translate(state.pc)
            executed += self._exec_block(block)
        return executed

    def step_block(self) -> int:
        """Execute exactly one translation block; returns instructions run."""
        if self.state.halted:
            return 0
        return self._exec_block(self.translate(self.state.pc))

    def _exec_block(self, block: TranslationBlock) -> int:
        state = self.state
        executed = 0
        self.host_ops += block.host_ops
        for entry in block.ops:
            if callable(entry):
                entry()
                self.cycles += 2
                state.pc += INSN_SIZE  # probed mem ops never branch
                executed += 1
                self.insn_count += 1
                continue
            insn_pc, insn = entry
            state.pc = insn_pc
            next_pc = self._interp(insn_pc, insn)
            executed += 1
            self.insn_count += 1
            state.pc = next_pc
            if state.halted or next_pc != insn_pc + INSN_SIZE:
                # a branch (or trap) redirected control flow; leave the block
                return executed
        return executed

    # ------------------------------------------------------------------
    def _interp(self, pc: int, insn: Instruction) -> int:
        """Interpret a single (unprobed) instruction; returns the next pc."""
        state = self.state
        op = insn.op
        rs1 = state.read(insn.rs1)
        rs2 = state.read(insn.rs2)
        self.cycles += 1

        next_pc = pc + INSN_SIZE
        if op is Op.NOP:
            return next_pc
        if op is Op.HLT:
            state.halted = True
            return next_pc
        if op is Op.BRK:
            state.halted = True
            raise InvalidOpcode(f"BRK trap at {pc:#010x}", addr=pc)
        if op is Op.VMCALL:
            self.cycles += 1
            if self.hypercall is None:
                raise InvalidOpcode(f"VMCALL with no handler at {pc:#010x}", addr=pc)
            result = self.hypercall(self, insn.imm)
            if result is not None:
                state.write(1, result)
            return next_pc
        if op in MEM_OPS:
            size, is_write, atomic = MEM_OPS[op]
            addr = u32(rs1 + insn.imm)
            self.cycles += 1
            if is_write:
                self.bus.store(addr, size, rs2, pc=pc, task=state.task, atomic=atomic)
            else:
                value = self.bus.load(addr, size, pc=pc, task=state.task, atomic=atomic)
                if op is Op.LD8S and value >= 0x80:
                    value -= 0x100
                elif op is Op.LD16S and value >= 0x8000:
                    value -= 0x10000
                state.write(insn.rd, value)
            return next_pc

        if op is Op.ADD:
            state.write(insn.rd, rs1 + rs2)
        elif op is Op.SUB:
            state.write(insn.rd, rs1 - rs2)
        elif op is Op.MUL:
            state.write(insn.rd, rs1 * rs2)
        elif op is Op.DIVU:
            state.write(insn.rd, 0xFFFFFFFF if rs2 == 0 else rs1 // rs2)
        elif op is Op.REMU:
            state.write(insn.rd, rs1 if rs2 == 0 else rs1 % rs2)
        elif op is Op.AND:
            state.write(insn.rd, rs1 & rs2)
        elif op is Op.OR:
            state.write(insn.rd, rs1 | rs2)
        elif op is Op.XOR:
            state.write(insn.rd, rs1 ^ rs2)
        elif op is Op.SHL:
            state.write(insn.rd, rs1 << (rs2 & 31))
        elif op is Op.SHR:
            state.write(insn.rd, rs1 >> (rs2 & 31))
        elif op is Op.SRA:
            state.write(insn.rd, sign32(rs1) >> (rs2 & 31))
        elif op is Op.SLT:
            state.write(insn.rd, 1 if sign32(rs1) < sign32(rs2) else 0)
        elif op is Op.SLTU:
            state.write(insn.rd, 1 if rs1 < rs2 else 0)
        elif op is Op.ADDI:
            state.write(insn.rd, rs1 + insn.imm)
        elif op is Op.ANDI:
            state.write(insn.rd, rs1 & insn.imm)
        elif op is Op.ORI:
            state.write(insn.rd, rs1 | insn.imm)
        elif op is Op.XORI:
            state.write(insn.rd, rs1 ^ insn.imm)
        elif op is Op.SHLI:
            state.write(insn.rd, rs1 << (insn.imm & 31))
        elif op is Op.SHRI:
            state.write(insn.rd, rs1 >> (insn.imm & 31))
        elif op is Op.MOVI:
            state.write(insn.rd, insn.imm)
        elif op is Op.LUI:
            state.write(insn.rd, insn.imm << 16)
        elif op is Op.MOV:
            state.write(insn.rd, rs1)
        elif op is Op.JMP:
            return u32(insn.imm)
        elif op is Op.JR:
            return rs1
        elif op in (Op.BEQ, Op.BNE, Op.BLT, Op.BLTU, Op.BGE, Op.BGEU):
            taken = {
                Op.BEQ: rs1 == rs2,
                Op.BNE: rs1 != rs2,
                Op.BLT: sign32(rs1) < sign32(rs2),
                Op.BLTU: rs1 < rs2,
                Op.BGE: sign32(rs1) >= sign32(rs2),
                Op.BGEU: rs1 >= rs2,
            }[op]
            if taken:
                return u32(insn.imm)
        elif op is Op.CALL:
            state.write(15, next_pc)
            self._notify_call(pc, u32(insn.imm), next_pc)
            return u32(insn.imm)
        elif op is Op.CALLR:
            state.write(15, next_pc)
            self._notify_call(pc, rs1, next_pc)
            return rs1
        elif op is Op.RET:
            for probe in self.ret_probes:
                probe(pc, state.read(1))
            return state.read(15)
        else:  # pragma: no cover
            raise InvalidOpcode(f"unhandled opcode {op!r}", addr=pc)
        return next_pc

    def _notify_call(self, pc: int, target: int, lr: int) -> None:
        if self.call_probes:
            args = [self.state.read(i) for i in range(1, 5)]
            for probe in self.call_probes:
                probe(pc, target, args, lr)
