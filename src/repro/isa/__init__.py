"""EVM32: a small 32-bit RISC ISA used by binary-only guest code.

The EMBSAN paper sanitizes firmware under QEMU/TCG.  Rehosted kernels in
this reproduction run as bus-level guest routines (see :mod:`repro.guest`),
but closed-source firmware — the category-3 targets of the Prober, such as
the TP-Link VxWorks services — ship as opaque EVM32 binaries and execute on
this ISA, either on the plain interpreter (:mod:`repro.isa.cpu`) or the
translation-block engine with probe injection (:mod:`repro.isa.tcg`).
"""

from repro.isa.insn import Op, Instruction, Reg, INSN_SIZE, encode, decode
from repro.isa.assembler import Assembler, AssemblyResult, assemble
from repro.isa.disasm import disassemble, disassemble_block
from repro.isa.cpu import Cpu, CpuState

__all__ = [
    "Assembler",
    "AssemblyResult",
    "Cpu",
    "CpuState",
    "INSN_SIZE",
    "Instruction",
    "Op",
    "Reg",
    "assemble",
    "decode",
    "disassemble",
    "disassemble_block",
    "encode",
]
