"""EVM32 instruction definitions and binary encoding.

Every instruction occupies exactly :data:`INSN_SIZE` bytes:

====== ======= =====================================
offset width   field
====== ======= =====================================
0      1 byte  opcode (:class:`Op` value)
1      1 byte  rd   — destination register index
2      1 byte  rs1  — first source register index
3      1 byte  rs2  — second source register index
4      4 bytes imm  — signed 32-bit immediate (LE)
====== ======= =====================================

The fixed width keeps decode trivial and makes basic-block discovery in
the TCG engine and the Prober's binary scans exact.

ABI (used by the assembler's ``call`` convention and the hypercall layer):
``r0`` reads as zero, ``r1``–``r4`` carry arguments and ``r1`` the return
value, ``r14`` is the stack pointer, ``r15`` the link register.
"""

from __future__ import annotations

import enum
from typing import NamedTuple

from repro.errors import InvalidOpcode

#: Size in bytes of every encoded EVM32 instruction.
INSN_SIZE = 8

#: Number of general-purpose registers.
NUM_REGS = 16

_U32 = 0xFFFFFFFF


class Reg(enum.IntEnum):
    """Register names; ZERO is hardwired to 0, SP/LR follow the ABI."""

    ZERO = 0
    A0 = 1
    A1 = 2
    A2 = 3
    A3 = 4
    T0 = 5
    T1 = 6
    T2 = 7
    T3 = 8
    S0 = 9
    S1 = 10
    S2 = 11
    S3 = 12
    GP = 13
    SP = 14
    LR = 15


class Op(enum.IntEnum):
    """EVM32 opcodes."""

    # control / misc
    NOP = 0x00
    HLT = 0x01
    BRK = 0x02
    VMCALL = 0x03  # hypercall: number in imm, args in r1..r4

    # ALU register-register
    ADD = 0x10
    SUB = 0x11
    MUL = 0x12
    DIVU = 0x13
    REMU = 0x14
    AND = 0x15
    OR = 0x16
    XOR = 0x17
    SHL = 0x18
    SHR = 0x19
    SRA = 0x1A
    SLT = 0x1B  # rd = (rs1 <s rs2)
    SLTU = 0x1C  # rd = (rs1 <u rs2)

    # ALU register-immediate
    ADDI = 0x20
    ANDI = 0x21
    ORI = 0x22
    XORI = 0x23
    SHLI = 0x24
    SHRI = 0x25
    MOVI = 0x26  # rd = imm
    LUI = 0x27  # rd = imm << 16
    MOV = 0x28  # rd = rs1

    # memory: address = rs1 + imm
    LD8 = 0x30
    LD16 = 0x31
    LD32 = 0x32
    LD8S = 0x33
    LD16S = 0x34
    ST8 = 0x38
    ST16 = 0x39
    ST32 = 0x3A
    LDA32 = 0x3B  # atomic load  (KCSAN: marked access)
    STA32 = 0x3C  # atomic store (KCSAN: marked access)

    # control flow: target is absolute imm unless register form
    JMP = 0x40
    JR = 0x41  # jump to rs1
    BEQ = 0x42
    BNE = 0x43
    BLT = 0x44
    BLTU = 0x45
    BGE = 0x46
    BGEU = 0x47
    CALL = 0x48  # lr = pc + 8; pc = imm
    CALLR = 0x49  # lr = pc + 8; pc = rs1
    RET = 0x4A  # pc = lr


#: Opcodes that terminate a basic block in the TCG engine.
BLOCK_TERMINATORS = frozenset(
    {
        Op.HLT,
        Op.BRK,
        Op.JMP,
        Op.JR,
        Op.BEQ,
        Op.BNE,
        Op.BLT,
        Op.BLTU,
        Op.BGE,
        Op.BGEU,
        Op.CALL,
        Op.CALLR,
        Op.RET,
    }
)

#: Opcodes that read or write data memory, keyed to (size, is_write, atomic).
MEM_OPS = {
    Op.LD8: (1, False, False),
    Op.LD16: (2, False, False),
    Op.LD32: (4, False, False),
    Op.LD8S: (1, False, False),
    Op.LD16S: (2, False, False),
    Op.ST8: (1, True, False),
    Op.ST16: (2, True, False),
    Op.ST32: (4, True, False),
    Op.LDA32: (4, False, True),
    Op.STA32: (4, True, True),
}

_VALID_OPCODES = {op.value for op in Op}


class Instruction(NamedTuple):
    """A decoded EVM32 instruction."""

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def is_mem(self) -> bool:
        """True for data-memory opcodes."""
        return self.op in MEM_OPS

    def is_terminator(self) -> bool:
        """True when this instruction ends a basic block."""
        return self.op in BLOCK_TERMINATORS


def encode(insn: Instruction) -> bytes:
    """Encode an instruction into its 8-byte binary form."""
    imm = insn.imm & _U32
    return bytes(
        (
            insn.op.value,
            insn.rd & 0xFF,
            insn.rs1 & 0xFF,
            insn.rs2 & 0xFF,
            imm & 0xFF,
            (imm >> 8) & 0xFF,
            (imm >> 16) & 0xFF,
            (imm >> 24) & 0xFF,
        )
    )


def decode(blob: bytes, offset: int = 0) -> Instruction:
    """Decode one instruction from ``blob`` at ``offset``.

    Raises :class:`InvalidOpcode` on an unknown opcode byte, mirroring an
    undefined-instruction fault in hardware.
    """
    if len(blob) - offset < INSN_SIZE:
        raise InvalidOpcode(
            f"truncated instruction: {len(blob) - offset} bytes at {offset}"
        )
    opcode = blob[offset]
    if opcode not in _VALID_OPCODES:
        raise InvalidOpcode(f"invalid opcode byte {opcode:#04x}")
    imm = int.from_bytes(blob[offset + 4 : offset + 8], "little")
    if imm >= 1 << 31:
        imm -= 1 << 32
    return Instruction(
        Op(opcode), blob[offset + 1], blob[offset + 2], blob[offset + 3], imm
    )


def apply_load_sign(op: Op, value: int) -> int:
    """Sign-extend a loaded ``value`` for the signed load opcodes.

    LD8S/LD16S load 1/2 bytes and sign-extend into the 32-bit register;
    every other load returns the raw zero-extended value.  Shared by the
    interpreter CPU and both TCG template flavours so the extension rule
    lives in exactly one place.
    """
    if op is Op.LD8S and value >= 0x80:
        return value - 0x100
    if op is Op.LD16S and value >= 0x8000:
        return value - 0x10000
    return value


def sign32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed integer."""
    value &= _U32
    return value - (1 << 32) if value >= 1 << 31 else value


def u32(value: int) -> int:
    """Truncate ``value`` to an unsigned 32-bit integer."""
    return value & _U32
