"""A two-pass assembler for EVM32.

Grammar (one statement per line, ``;`` or ``#`` starts a comment)::

    label:                     ; define a label at the current address
    .org  0x8000               ; set the location counter
    .word 1, 2, label          ; emit 32-bit little-endian words
    .byte 1, 2, 3              ; emit raw bytes
    .ascii "text"              ; emit string bytes (no terminator)
    .asciz "text"              ; emit string bytes + NUL
    .space 64 [, fill]         ; reserve bytes
    .global name               ; export a symbol (kept in the symbol table
                               ;  even for stripped builds' internal maps)
    add   rd, rs1, rs2         ; register ALU ops
    addi  rd, rs1, imm         ; immediate ALU ops
    movi  rd, imm              ; imm may be a label or 'label+4'
    ld32  rd, [rs1 + imm]      ; loads
    st32  rs2, [rs1 + imm]     ; stores (value register first)
    beq   rs1, rs2, target     ; branches (absolute target label/imm)
    call  target               ; vmcall n

Register names accept ``r0``–``r15`` and the ABI aliases from
:class:`repro.isa.insn.Reg` (``a0``, ``sp``, ``lr``, ...).
"""

from __future__ import annotations

import re
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.errors import AssemblerError
from repro.isa.insn import INSN_SIZE, Instruction, Op, Reg, encode

_REG_ALIASES = {name.lower(): reg.value for name, reg in Reg.__members__.items()}
_REG_ALIASES.update({f"r{i}": i for i in range(16)})

# operand layout per mnemonic: which fields the operands map to
_RRR = ("rd", "rs1", "rs2")
_RRI = ("rd", "rs1", "imm")
_RI = ("rd", "imm")
_RR = ("rd", "rs1")
_BRANCH = ("rs1", "rs2", "imm")

_FORMATS: Dict[str, Tuple[Op, Tuple[str, ...]]] = {
    "nop": (Op.NOP, ()),
    "hlt": (Op.HLT, ()),
    "brk": (Op.BRK, ()),
    "vmcall": (Op.VMCALL, ("imm",)),
    "add": (Op.ADD, _RRR),
    "sub": (Op.SUB, _RRR),
    "mul": (Op.MUL, _RRR),
    "divu": (Op.DIVU, _RRR),
    "remu": (Op.REMU, _RRR),
    "and": (Op.AND, _RRR),
    "or": (Op.OR, _RRR),
    "xor": (Op.XOR, _RRR),
    "shl": (Op.SHL, _RRR),
    "shr": (Op.SHR, _RRR),
    "sra": (Op.SRA, _RRR),
    "slt": (Op.SLT, _RRR),
    "sltu": (Op.SLTU, _RRR),
    "addi": (Op.ADDI, _RRI),
    "andi": (Op.ANDI, _RRI),
    "ori": (Op.ORI, _RRI),
    "xori": (Op.XORI, _RRI),
    "shli": (Op.SHLI, _RRI),
    "shri": (Op.SHRI, _RRI),
    "movi": (Op.MOVI, _RI),
    "lui": (Op.LUI, _RI),
    "mov": (Op.MOV, _RR),
    "jmp": (Op.JMP, ("imm",)),
    "jr": (Op.JR, ("rs1",)),
    "beq": (Op.BEQ, _BRANCH),
    "bne": (Op.BNE, _BRANCH),
    "blt": (Op.BLT, _BRANCH),
    "bltu": (Op.BLTU, _BRANCH),
    "bge": (Op.BGE, _BRANCH),
    "bgeu": (Op.BGEU, _BRANCH),
    "call": (Op.CALL, ("imm",)),
    "callr": (Op.CALLR, ("rs1",)),
    "ret": (Op.RET, ()),
}

_LOADS = {"ld8": Op.LD8, "ld16": Op.LD16, "ld32": Op.LD32,
          "ld8s": Op.LD8S, "ld16s": Op.LD16S, "lda32": Op.LDA32}
_STORES = {"st8": Op.ST8, "st16": Op.ST16, "st32": Op.ST32, "sta32": Op.STA32}

_MEM_RE = re.compile(r"^\[\s*(\w+)\s*(?:([+-])\s*(\w+))?\s*\]$")
_LABEL_EXPR_RE = re.compile(r"^([A-Za-z_.][\w.]*)\s*([+-])\s*(\w+)$")


class AssemblyResult(NamedTuple):
    """Output of one assembly run."""

    #: Raw image bytes, starting at :attr:`base`.
    image: bytes
    #: Load address of the first image byte.
    base: int
    #: Exported label -> absolute address.
    symbols: Dict[str, int]
    #: All labels (including non-global), for debug/disassembly use.
    all_labels: Dict[str, int]


class _Fixup(NamedTuple):
    offset: int  # byte offset of the instruction in the image
    line: int
    expr: str


class Assembler:
    """Two-pass EVM32 assembler; see the module docstring for the grammar."""

    def __init__(self, base: int = 0):
        self.base = base

    # ------------------------------------------------------------------
    def assemble(self, source: str) -> AssemblyResult:
        """Assemble ``source`` and return the image + symbol tables."""
        lines = source.splitlines()
        labels, globals_ = self._pass_one(lines)
        image, word_fixups = self._pass_two(lines, labels)
        symbols = {name: labels[name] for name in globals_ if name in labels}
        missing = [name for name in globals_ if name not in labels]
        if missing:
            raise AssemblerError(f".global names never defined: {missing}")
        return AssemblyResult(bytes(image), self.base, symbols, dict(labels))

    # ------------------------------------------------------------------
    def _pass_one(self, lines: List[str]) -> Tuple[Dict[str, int], List[str]]:
        labels: Dict[str, int] = {}
        globals_: List[str] = []
        pc = self.base
        for lineno, raw in enumerate(lines, start=1):
            stmt = _strip(raw)
            if not stmt:
                continue
            stmt, label = _take_label(stmt)
            if label is not None:
                if label in labels:
                    raise AssemblerError(f"duplicate label {label!r}", lineno)
                labels[label] = pc
            if not stmt:
                continue
            mnemonic, rest = _split_mnemonic(stmt)
            if mnemonic == ".org":
                pc = _parse_int(rest, lineno)
            elif mnemonic == ".global":
                globals_.append(rest.strip())
            elif mnemonic == ".word":
                pc += 4 * len(_split_operands(rest))
            elif mnemonic == ".byte":
                pc += len(_split_operands(rest))
            elif mnemonic in (".ascii", ".asciz"):
                text = _parse_string(rest, lineno)
                pc += len(text) + (1 if mnemonic == ".asciz" else 0)
            elif mnemonic == ".space":
                ops = _split_operands(rest)
                pc += _parse_int(ops[0], lineno)
            elif mnemonic.startswith("."):
                raise AssemblerError(f"unknown directive {mnemonic!r}", lineno)
            else:
                pc += INSN_SIZE
        return labels, globals_

    # ------------------------------------------------------------------
    def _pass_two(
        self, lines: List[str], labels: Dict[str, int]
    ) -> Tuple[bytearray, List[_Fixup]]:
        image = bytearray()
        pc = self.base

        def pad_to(target: int, lineno: int) -> None:
            nonlocal pc
            if target < pc:
                raise AssemblerError(
                    f".org {target:#x} moves backwards past {pc:#x}", lineno
                )
            image.extend(b"\x00" * (target - pc))
            pc = target

        for lineno, raw in enumerate(lines, start=1):
            stmt = _strip(raw)
            if not stmt:
                continue
            stmt, _label = _take_label(stmt)
            if not stmt:
                continue
            mnemonic, rest = _split_mnemonic(stmt)
            if mnemonic == ".org":
                pad_to(_parse_int(rest, lineno), lineno)
            elif mnemonic == ".global":
                pass
            elif mnemonic == ".word":
                for op in _split_operands(rest):
                    value = self._eval(op, labels, lineno)
                    image.extend((value & 0xFFFFFFFF).to_bytes(4, "little"))
                    pc += 4
            elif mnemonic == ".byte":
                for op in _split_operands(rest):
                    image.append(self._eval(op, labels, lineno) & 0xFF)
                    pc += 1
            elif mnemonic in (".ascii", ".asciz"):
                text = _parse_string(rest, lineno)
                image.extend(text)
                pc += len(text)
                if mnemonic == ".asciz":
                    image.append(0)
                    pc += 1
            elif mnemonic == ".space":
                ops = _split_operands(rest)
                count = _parse_int(ops[0], lineno)
                fill = self._eval(ops[1], labels, lineno) if len(ops) > 1 else 0
                image.extend(bytes([fill & 0xFF]) * count)
                pc += count
            else:
                insn = self._encode_insn(mnemonic, rest, labels, lineno)
                image.extend(encode(insn))
                pc += INSN_SIZE
        return image, []

    # ------------------------------------------------------------------
    def _encode_insn(
        self, mnemonic: str, rest: str, labels: Dict[str, int], lineno: int
    ) -> Instruction:
        operands = _split_operands(rest)
        if mnemonic in _LOADS:
            if len(operands) != 2:
                raise AssemblerError(f"{mnemonic} needs rd, [rs1+imm]", lineno)
            rd = _parse_reg(operands[0], lineno)
            rs1, imm = self._parse_mem(operands[1], labels, lineno)
            return Instruction(_LOADS[mnemonic], rd=rd, rs1=rs1, imm=imm)
        if mnemonic in _STORES:
            if len(operands) != 2:
                raise AssemblerError(f"{mnemonic} needs rs2, [rs1+imm]", lineno)
            rs2 = _parse_reg(operands[0], lineno)
            rs1, imm = self._parse_mem(operands[1], labels, lineno)
            return Instruction(_STORES[mnemonic], rs1=rs1, rs2=rs2, imm=imm)
        if mnemonic not in _FORMATS:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", lineno)
        op, fields = _FORMATS[mnemonic]
        if len(operands) != len(fields):
            raise AssemblerError(
                f"{mnemonic} expects {len(fields)} operands, got {len(operands)}",
                lineno,
            )
        kwargs = {"rd": 0, "rs1": 0, "rs2": 0, "imm": 0}
        for field, text in zip(fields, operands):
            if field == "imm":
                kwargs["imm"] = self._eval(text, labels, lineno)
            else:
                kwargs[field] = _parse_reg(text, lineno)
        return Instruction(op, **kwargs)

    def _parse_mem(
        self, text: str, labels: Dict[str, int], lineno: int
    ) -> Tuple[int, int]:
        match = _MEM_RE.match(text.strip())
        if not match:
            raise AssemblerError(f"bad memory operand {text!r}", lineno)
        base, sign, disp = match.groups()
        rs1 = _parse_reg(base, lineno)
        imm = 0
        if disp is not None:
            imm = self._eval(disp, labels, lineno)
            if sign == "-":
                imm = -imm
        return rs1, imm

    def _eval(self, text: str, labels: Dict[str, int], lineno: int) -> int:
        """Evaluate an immediate: integer literal, label, or label±literal."""
        text = text.strip()
        try:
            return _parse_int(text, lineno)
        except AssemblerError:
            pass
        match = _LABEL_EXPR_RE.match(text)
        if match:
            name, sign, lit = match.groups()
            if name not in labels:
                raise AssemblerError(f"undefined label {name!r}", lineno)
            delta = _parse_int(lit, lineno)
            return labels[name] + (delta if sign == "+" else -delta)
        if text in labels:
            return labels[text]
        raise AssemblerError(f"cannot evaluate immediate {text!r}", lineno)


def assemble(source: str, base: int = 0) -> AssemblyResult:
    """Assemble EVM32 ``source`` loaded at ``base``."""
    return Assembler(base=base).assemble(source)


# ----------------------------------------------------------------------
# lexical helpers
# ----------------------------------------------------------------------
def _strip(line: str) -> str:
    for marker in (";", "#"):
        # don't cut inside string literals
        in_str = False
        for idx, char in enumerate(line):
            if char == '"':
                in_str = not in_str
            elif char == marker and not in_str:
                line = line[:idx]
                break
    return line.strip()


def _take_label(stmt: str) -> Tuple[str, Optional[str]]:
    match = re.match(r"^([A-Za-z_.][\w.]*)\s*:\s*(.*)$", stmt)
    if match:
        return match.group(2).strip(), match.group(1)
    return stmt, None


def _split_mnemonic(stmt: str) -> Tuple[str, str]:
    parts = stmt.split(None, 1)
    return parts[0].lower(), parts[1] if len(parts) > 1 else ""


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    out, depth, current = [], 0, []
    for char in rest:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            out.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    out.append("".join(current).strip())
    return [op for op in out if op]


def _parse_reg(text: str, lineno: int) -> int:
    key = text.strip().lower()
    if key not in _REG_ALIASES:
        raise AssemblerError(f"unknown register {text!r}", lineno)
    return _REG_ALIASES[key]


def _parse_int(text: str, lineno: int) -> int:
    text = text.strip()
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"bad integer literal {text!r}", lineno) from None


def _parse_string(rest: str, lineno: int) -> bytes:
    rest = rest.strip()
    if len(rest) < 2 or rest[0] != '"' or rest[-1] != '"':
        raise AssemblerError(f"bad string literal {rest!r}", lineno)
    body = rest[1:-1]
    return body.encode("utf-8").decode("unicode_escape").encode("latin-1")
