"""EVM32 disassembler.

Used by sanitizer reports (to show the faulting instruction), by the
Prober's category-3 binary scans, and by debugging tools.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import InvalidOpcode
from repro.isa.insn import INSN_SIZE, Instruction, MEM_OPS, Op, decode

_REG_NAMES = [f"r{i}" for i in range(16)]
_REG_NAMES[14] = "sp"
_REG_NAMES[15] = "lr"

_LOAD_NAMES = {Op.LD8: "ld8", Op.LD16: "ld16", Op.LD32: "ld32",
               Op.LD8S: "ld8s", Op.LD16S: "ld16s", Op.LDA32: "lda32"}
_STORE_NAMES = {Op.ST8: "st8", Op.ST16: "st16", Op.ST32: "st32",
                Op.STA32: "sta32"}


def _reg(idx: int) -> str:
    return _REG_NAMES[idx & 0xF]


def _mem_operand(insn: Instruction) -> str:
    if insn.imm == 0:
        return f"[{_reg(insn.rs1)}]"
    sign = "+" if insn.imm >= 0 else "-"
    return f"[{_reg(insn.rs1)} {sign} {abs(insn.imm)}]"


def format_insn(insn: Instruction, symbols: Optional[Dict[int, str]] = None) -> str:
    """Render one instruction as assembler-compatible text."""
    symbols = symbols or {}

    def target(imm: int) -> str:
        return symbols.get(imm, f"{imm:#x}")

    op = insn.op
    if op in (Op.NOP, Op.HLT, Op.BRK, Op.RET):
        return op.name.lower()
    if op is Op.VMCALL:
        return f"vmcall {insn.imm:#x}"
    if op in _LOAD_NAMES:
        return f"{_LOAD_NAMES[op]} {_reg(insn.rd)}, {_mem_operand(insn)}"
    if op in _STORE_NAMES:
        return f"{_STORE_NAMES[op]} {_reg(insn.rs2)}, {_mem_operand(insn)}"
    if op is Op.JMP:
        return f"jmp {target(insn.imm)}"
    if op is Op.CALL:
        return f"call {target(insn.imm)}"
    if op is Op.JR:
        return f"jr {_reg(insn.rs1)}"
    if op is Op.CALLR:
        return f"callr {_reg(insn.rs1)}"
    if op in (Op.BEQ, Op.BNE, Op.BLT, Op.BLTU, Op.BGE, Op.BGEU):
        return (
            f"{op.name.lower()} {_reg(insn.rs1)}, {_reg(insn.rs2)}, "
            f"{target(insn.imm)}"
        )
    if op in (Op.MOVI, Op.LUI):
        return f"{op.name.lower()} {_reg(insn.rd)}, {insn.imm:#x}"
    if op is Op.MOV:
        return f"mov {_reg(insn.rd)}, {_reg(insn.rs1)}"
    if op in (Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SHLI, Op.SHRI):
        return (
            f"{op.name.lower()} {_reg(insn.rd)}, {_reg(insn.rs1)}, {insn.imm}"
        )
    # three-register ALU
    return (
        f"{op.name.lower()} {_reg(insn.rd)}, {_reg(insn.rs1)}, {_reg(insn.rs2)}"
    )


def disassemble(
    blob: bytes, base: int = 0, symbols: Optional[Dict[int, str]] = None
) -> Iterator[Tuple[int, Instruction, str]]:
    """Yield ``(addr, insn, text)`` for each decodable instruction.

    Undecodable slots are skipped one :data:`INSN_SIZE` stride at a time so
    data pools embedded in text do not abort the scan (the Prober relies on
    this when sweeping stripped binaries).
    """
    offset = 0
    while offset + INSN_SIZE <= len(blob):
        addr = base + offset
        try:
            insn = decode(blob, offset)
        except InvalidOpcode:
            offset += INSN_SIZE
            continue
        yield addr, insn, format_insn(insn, symbols)
        offset += INSN_SIZE


def disassemble_block(
    blob: bytes, base: int = 0, symbols: Optional[Dict[int, str]] = None
) -> List[str]:
    """Render a listing with addresses, one line per instruction."""
    return [
        f"{addr:#010x}:  {text}"
        for addr, _insn, text in disassemble(blob, base, symbols)
    ]


def memory_footprint(blob: bytes) -> Tuple[int, int]:
    """Count (memory-access instructions, total instructions) in a blob.

    The cost model uses this ratio when estimating translation expansion
    for natively-instrumented guest code.
    """
    mem = total = 0
    for _addr, insn, _text in disassemble(blob):
        total += 1
        if insn.op in MEM_OPS:
            mem += 1
    return mem, total
