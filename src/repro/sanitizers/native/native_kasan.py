"""Native (in-guest) KASAN baseline."""

from __future__ import annotations

from typing import Callable, Optional

from repro.bench.costmodel import CostModel, DEFAULT_COSTS
from repro.emulator.machine import Machine
from repro.guest.context import GuestContext, SanHooks
from repro.mem.access import Access, AccessKind
from repro.sanitizers.runtime.kasan import KasanEngine
from repro.sanitizers.runtime.reports import ReportSink
from repro.sanitizers.runtime.shadow import ShadowMemory


class NativeKasan(SanHooks):
    """KASAN compiled into the kernel, with shadow kept in guest terms.

    The engine logic is shared with the Common Sanitizer Runtime; what
    differs is where the cost lands — every check executes as translated
    guest code, charged via :meth:`Machine.charge_overhead` with the
    native (expansion-multiplied) constants.
    """

    def __init__(
        self,
        machine: Machine,
        costs: CostModel = DEFAULT_COSTS,
        panic_on_report: bool = False,
        symbolizer: Optional[Callable[[int], str]] = None,
    ):
        self.machine = machine
        self.costs = costs
        self.shadow = ShadowMemory(machine.bus)
        self.sink = ReportSink(panic_on_report=panic_on_report, symbolizer=symbolizer)
        self.engine = KasanEngine(self.shadow, self.sink)
        self.enabled = True

    # -- scalar accesses ------------------------------------------------
    def on_load(self, ctx: GuestContext, addr: int, size: int,
                atomic: bool = False) -> None:
        if not self.enabled:
            return
        self.machine.charge_overhead(self.costs.kasan_native_check)
        self.engine.check(
            Access(addr, size, False, ctx.current_pc(), self.machine.current_task)
        )

    def on_store(self, ctx: GuestContext, addr: int, size: int,
                 atomic: bool = False) -> None:
        if not self.enabled:
            return
        self.machine.charge_overhead(self.costs.kasan_native_check)
        self.engine.check(
            Access(addr, size, True, ctx.current_pc(), self.machine.current_task)
        )

    def on_range(self, ctx: GuestContext, addr: int, size: int,
                 is_write: bool) -> None:
        if not self.enabled:
            return
        self.machine.charge_overhead(
            self.costs.range_cost(size, "native", "kasan")
        )
        self.engine.check(
            Access(addr, size, is_write, ctx.current_pc(),
                   self.machine.current_task, kind=AccessKind.RANGE)
        )

    # -- allocator hooks ---------------------------------------------------
    def on_alloc(self, ctx: GuestContext, addr: int, size: int, cache: int) -> None:
        self.machine.charge_overhead(self.costs.kasan_native_alloc)
        self.engine.on_alloc(addr, size, cache, ctx.caller_pc(),
                             self.machine.current_task)

    def on_free(self, ctx: GuestContext, addr: int) -> None:
        self.machine.charge_overhead(self.costs.kasan_native_alloc)
        self.engine.on_free(addr, ctx.caller_pc(), self.machine.current_task)

    def on_slab_page(self, ctx: GuestContext, addr: int, size: int) -> None:
        self.machine.charge_overhead(self.costs.kasan_native_alloc)
        self.engine.on_slab_page(addr, size)

    # -- compile-time object registration ----------------------------------
    def on_global(self, ctx: GuestContext, addr: int, size: int,
                  redzone: int) -> None:
        self.engine.register_global(addr, size, redzone)

    def on_stack_var(self, ctx: GuestContext, addr: int, size: int) -> None:
        self.machine.charge_overhead(self.costs.kasan_native_alloc / 2)
        self.engine.stack_var(addr, size)

    def on_stack_leave(self, ctx: GuestContext, base: int, size: int) -> None:
        self.engine.stack_clear(base, size)

    # ------------------------------------------------------------------
    @property
    def reports(self) -> ReportSink:
        """The baseline's report sink."""
        return self.sink
