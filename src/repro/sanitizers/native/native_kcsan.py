"""Native (in-guest) KCSAN baseline."""

from __future__ import annotations

from typing import Callable, Optional

from repro.bench.costmodel import CostModel, DEFAULT_COSTS
from repro.emulator.machine import Machine
from repro.guest.context import GuestContext, SanHooks
from repro.mem.access import Access
from repro.sanitizers.runtime.kcsan import KcsanEngine
from repro.sanitizers.runtime.reports import ReportSink


class NativeKcsan(SanHooks):
    """KCSAN compiled into the kernel; watchpoint logic runs translated."""

    def __init__(
        self,
        machine: Machine,
        costs: CostModel = DEFAULT_COSTS,
        panic_on_report: bool = False,
        symbolizer: Optional[Callable[[int], str]] = None,
    ):
        self.machine = machine
        self.costs = costs
        self.sink = ReportSink(panic_on_report=panic_on_report, symbolizer=symbolizer)
        self.engine = KcsanEngine(self.sink)
        self.enabled = True

    def on_load(self, ctx: GuestContext, addr: int, size: int,
                atomic: bool = False) -> None:
        if not self.enabled:
            return
        self.machine.charge_overhead(self.costs.kcsan_native_check)
        self.engine.check(
            Access(addr, size, False, ctx.current_pc(),
                   self.machine.current_task, atomic=atomic)
        )

    def on_store(self, ctx: GuestContext, addr: int, size: int,
                 atomic: bool = False) -> None:
        if not self.enabled:
            return
        self.machine.charge_overhead(self.costs.kcsan_native_check)
        self.engine.check(
            Access(addr, size, True, ctx.current_pc(),
                   self.machine.current_task, atomic=atomic)
        )

    def on_range(self, ctx: GuestContext, addr: int, size: int,
                 is_write: bool) -> None:
        if not self.enabled:
            return
        from repro.mem.access import AccessKind

        self.machine.charge_overhead(
            self.costs.range_cost(size, "native", "kcsan")
        )
        self.engine.check(
            Access(addr, size, is_write, ctx.current_pc(),
                   self.machine.current_task, kind=AccessKind.RANGE)
        )

    @property
    def reports(self) -> ReportSink:
        """The baseline's report sink."""
        return self.sink
