"""Native in-guest sanitizer baselines (KASAN / KCSAN).

These model the OS's own sanitizers compiled into the firmware: the
same check logic as the Common Sanitizer Runtime's engines, but fed by
build-time hooks inside the guest and costed as *translated guest code*
(every check routine pays the TCG expansion factor).  They are the
comparison bars of Figure 2 and the reference oracle of Table 2.
"""

from repro.sanitizers.native.native_kasan import NativeKasan
from repro.sanitizers.native.native_kcsan import NativeKcsan

__all__ = ["NativeKasan", "NativeKcsan"]
