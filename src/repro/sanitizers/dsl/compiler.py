"""Compile SanSpec documents into runtime configuration.

``merge_sanitizers`` implements the §3.1 union rules; ``compile_*``
turn a merged sanitizer spec + a Prober platform spec into the
:class:`~repro.sanitizers.runtime.runtime.RuntimeConfig` the Common
Sanitizer Runtime consumes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import DslError
from repro.sanitizers.dsl.ast import (
    InterceptNode,
    MergedSpec,
    PlatformSpec,
    SanitizerSpec,
)
from repro.sanitizers.runtime.runtime import (
    AllocFnSpec,
    ReadySpec,
    RuntimeConfig,
)

#: events the runtime knows how to hook, with their canonical arg order
KNOWN_EVENTS = {
    "load": ("addr", "size", "marked"),
    "store": ("addr", "size", "marked"),
    "range-read": ("addr", "size"),
    "range-write": ("addr", "size"),
    "alloc": ("addr", "size", "cache"),
    "free": ("addr",),
    "slab-page": ("addr", "size"),
    "global-register": ("addr", "size", "redzone"),
    "stack-var": ("addr", "size"),
    "stack-leave": ("addr", "size"),
    "mark-init": ("addr", "size"),
}


def merge_sanitizers(specs: Sequence[SanitizerSpec]) -> MergedSpec:
    """Union several sanitizer specs per the paper's §3.1 rules.

    The interception-point set is the union of the individual sets; for
    each point the argument list is the union of argument names (kept
    in canonical order); each argument is annotated with the sanitizers
    that consume it.
    """
    events: Dict[str, List[str]] = {}
    consumers: Dict[Tuple[str, str], List[str]] = {}
    for spec in specs:
        for node in spec.intercepts:
            if node.event not in KNOWN_EVENTS:
                raise DslError(f"unknown interception event {node.event!r}")
            canonical = KNOWN_EVENTS[node.event]
            merged = events.setdefault(node.event, [])
            for arg in node.args:
                if arg not in merged:
                    merged.append(arg)
                consumers.setdefault((node.event, arg), []).append(spec.name)
            # keep canonical ordering for overlapping argument data
            merged.sort(key=lambda a: canonical.index(a)
                        if a in canonical else len(canonical))
    intercepts = tuple(
        InterceptNode(
            event,
            tuple(args),
            tuple(
                (arg, ",".join(consumers[(event, arg)]))
                for arg in args
            ),
        )
        for event, args in sorted(events.items())
    )
    requires: Dict[str, int] = {}
    for spec in specs:
        for resource, parameter in spec.requires:
            requires[resource] = max(requires.get(resource, 0), parameter)
    return MergedSpec(
        tuple(spec.name for spec in specs),
        intercepts,
        tuple(sorted(requires.items())),
    )


def compile_platform(platform: PlatformSpec) -> Tuple[Tuple[AllocFnSpec, ...], ReadySpec]:
    """Lower a platform spec's runtime-relevant parts."""
    alloc_fns = tuple(
        AllocFnSpec(
            addr=node.addr, kind=node.kind, name=node.name,
            size_arg=node.size_arg, size_kind=node.size_kind,
            addr_arg=node.addr_arg,
        )
        for node in platform.alloc_fns
    )
    ready = ReadySpec(
        kind=platform.ready.kind,
        banner=platform.ready.banner.encode(),
    )
    return alloc_fns, ready


def compile_runtime_config(
    merged: MergedSpec,
    platform: PlatformSpec,
    panic_on_report: bool = False,
) -> RuntimeConfig:
    """Build the Common Sanitizer Runtime configuration.

    Category-1 platforms (compile-time instrumentation available) take
    the hypercall fast path ("c"); categories 2 and 3 use dynamic
    interception ("d").
    """
    mode = "c" if platform.category == 1 else "d"
    alloc_fns, ready = compile_platform(platform)
    config = RuntimeConfig(
        sanitizers=tuple(merged.sanitizers),
        mode=mode,
        alloc_fns=alloc_fns,
        ready=ready,
        panic_on_report=panic_on_report,
    )
    config.validate()
    return config
