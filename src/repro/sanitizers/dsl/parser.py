"""S-expression lexer/parser for SanSpec documents.

Grammar::

    document := sexpr*
    sexpr    := atom | '(' sexpr* ')'
    atom     := integer (decimal or 0x-hex) | string ("...") | symbol

Comments run from ``;`` to end of line.  The parser produces nested
Python lists with ints, strs (for strings) and :class:`Symbol` atoms;
:mod:`repro.sanitizers.dsl.ast` lifts them into typed nodes.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.errors import DslError


class Symbol(str):
    """A bare (unquoted) DSL identifier."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Symbol({str.__repr__(self)})"


Sexpr = Union[int, str, Symbol, list]


def tokenize(text: str) -> List[Tuple[str, int]]:
    """Split DSL text into (token, line) pairs."""
    tokens: List[Tuple[str, int]] = []
    line = 1
    idx = 0
    length = len(text)
    while idx < length:
        char = text[idx]
        if char == "\n":
            line += 1
            idx += 1
        elif char in " \t\r":
            idx += 1
        elif char == ";":
            while idx < length and text[idx] != "\n":
                idx += 1
        elif char in "()":
            tokens.append((char, line))
            idx += 1
        elif char == '"':
            end = idx + 1
            while end < length and text[end] != '"':
                if text[end] == "\\":
                    end += 1
                end += 1
            if end >= length:
                raise DslError("unterminated string", line)
            tokens.append((text[idx : end + 1], line))
            idx = end + 1
        else:
            end = idx
            while end < length and text[end] not in ' \t\r\n();"':
                end += 1
            tokens.append((text[idx:end], line))
            idx = end
    return tokens


def _unescape(body: str) -> str:
    out = []
    idx = 0
    while idx < len(body):
        char = body[idx]
        if char == "\\" and idx + 1 < len(body):
            out.append(body[idx + 1])
            idx += 2
        else:
            out.append(char)
            idx += 1
    return "".join(out)


def _atom(token: str, line: int) -> Sexpr:
    if token.startswith('"'):
        return _unescape(token[1:-1])
    try:
        return int(token, 0)
    except ValueError:
        pass
    if token.startswith("-"):
        try:
            return int(token)
        except ValueError:
            pass
    return Symbol(token)


def parse_sexprs(text: str) -> List[Sexpr]:
    """Parse a document into a list of top-level S-expressions."""
    tokens = tokenize(text)
    stack: List[list] = [[]]
    open_lines: List[int] = []
    for token, line in tokens:
        if token == "(":
            stack.append([])
            open_lines.append(line)
        elif token == ")":
            if len(stack) == 1:
                raise DslError("unbalanced ')'", line)
            done = stack.pop()
            open_lines.pop()
            stack[-1].append(done)
        else:
            stack[-1].append(_atom(token, line))
    if len(stack) != 1:
        raise DslError("unbalanced '('", open_lines[-1])
    return stack[0]


def parse_document(text: str):
    """Parse and lift a full document into typed spec nodes."""
    from repro.sanitizers.dsl.ast import lift

    return [lift(sexpr) for sexpr in parse_sexprs(text)]


def write_sexpr(sexpr: Sexpr, indent: int = 0) -> str:
    """Render one S-expression back to text (round-trip safe)."""
    if isinstance(sexpr, list):
        inner = " ".join(write_sexpr(item) for item in sexpr)
        return f"({inner})"
    if isinstance(sexpr, Symbol):
        return str(sexpr)
    if isinstance(sexpr, str):
        escaped = sexpr.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(sexpr, bool):  # pragma: no cover - defensive
        return "1" if sexpr else "0"
    if isinstance(sexpr, int):
        return hex(sexpr) if abs(sexpr) >= 0x1000 else str(sexpr)
    raise DslError(f"cannot serialize {type(sexpr).__name__}")
