"""Typed nodes for SanSpec documents, with lifting and emission.

Node classes mirror the DSL's top-level forms::

    (sanitizer "kasan"
      (intercept load (args addr size))
      (requires shadow-memory (granule 8)))

    (merged-spec (sanitizers "kasan" "kcsan")
      (intercept load (args addr size marked)
                 (annotate addr "kasan,kcsan")))

    (platform "OpenWRT-bcm63xx"
      (arch "mips")
      (memory-map (region "dram" 0x80000000 0x4000000 "dram") ...)
      (alloc-fn 0x8000200 "kmalloc" (size-arg 0 "bytes"))
      (free-fn 0x8000400 "kfree" (addr-arg 0))
      (ready (banner "... ready."))
      (init-routine (alloc 0x80001000 64 0) (global 0x20000000 26 32)))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import DslError
from repro.sanitizers.dsl.parser import Symbol, write_sexpr


@dataclass(frozen=True)
class InterceptNode:
    """One interception point: an event name and its argument names."""

    event: str
    args: Tuple[str, ...]
    #: arg name -> comma-joined source sanitizers (merged specs only)
    annotations: Tuple[Tuple[str, str], ...] = ()

    def to_sexpr(self):
        out = [Symbol("intercept"), Symbol(self.event),
               [Symbol("args")] + [Symbol(a) for a in self.args]]
        for arg, sources in self.annotations:
            out.append([Symbol("annotate"), Symbol(arg), sources])
        return out


@dataclass(frozen=True)
class SanitizerSpec:
    """One sanitizer's distilled interface."""

    name: str
    intercepts: Tuple[InterceptNode, ...]
    #: external resources the runtime must provide: name -> parameter
    requires: Tuple[Tuple[str, int], ...] = ()

    def events(self) -> Dict[str, Tuple[str, ...]]:
        """event -> argument names."""
        return {node.event: node.args for node in self.intercepts}

    def to_sexpr(self):
        out = [Symbol("sanitizer"), self.name]
        out += [node.to_sexpr() for node in self.intercepts]
        for resource, parameter in self.requires:
            out.append([Symbol("requires"), Symbol(resource), parameter])
        return out

    def to_text(self) -> str:
        return write_sexpr(self.to_sexpr())


@dataclass(frozen=True)
class MergedSpec:
    """The union specification of several sanitizers (§3.1)."""

    sanitizers: Tuple[str, ...]
    intercepts: Tuple[InterceptNode, ...]
    requires: Tuple[Tuple[str, int], ...] = ()

    def events(self) -> Dict[str, Tuple[str, ...]]:
        """event -> merged argument names."""
        return {node.event: node.args for node in self.intercepts}

    def to_sexpr(self):
        out = [Symbol("merged-spec"),
               [Symbol("sanitizers")] + list(self.sanitizers)]
        out += [node.to_sexpr() for node in self.intercepts]
        for resource, parameter in self.requires:
            out.append([Symbol("requires"), Symbol(resource), parameter])
        return out

    def to_text(self) -> str:
        return write_sexpr(self.to_sexpr())


@dataclass(frozen=True)
class RegionNode:
    """One memory-map entry the Prober reconstructed."""

    name: str
    base: int
    size: int
    kind: str

    def to_sexpr(self):
        return [Symbol("region"), self.name, self.base, self.size, self.kind]


@dataclass(frozen=True)
class AllocFnNode:
    """One allocator entry point the Prober identified."""

    addr: int
    kind: str  #: "alloc" or "free"
    name: str = ""
    size_arg: int = 0
    size_kind: str = "bytes"
    addr_arg: int = 0

    def to_sexpr(self):
        if self.kind == "alloc":
            return [Symbol("alloc-fn"), self.addr, self.name,
                    [Symbol("size-arg"), self.size_arg, self.size_kind]]
        return [Symbol("free-fn"), self.addr, self.name,
                [Symbol("addr-arg"), self.addr_arg]]


@dataclass(frozen=True)
class ReadyNode:
    """How the firmware's ready-to-run state is recognized."""

    kind: str  #: "hypercall" or "banner"
    banner: str = ""

    def to_sexpr(self):
        if self.kind == "hypercall":
            return [Symbol("ready"), [Symbol("hypercall")]]
        return [Symbol("ready"), [Symbol("banner"), self.banner]]


#: one recorded initialization action: (op, args)
InitOp = Tuple[str, tuple]


@dataclass
class PlatformSpec:
    """The Prober's output for one firmware."""

    name: str
    arch: str
    category: int  #: 1 (instrumented), 2 (open), 3 (closed binary)
    regions: List[RegionNode] = field(default_factory=list)
    alloc_fns: List[AllocFnNode] = field(default_factory=list)
    ready: ReadyNode = ReadyNode("hypercall")
    init_routine: List[InitOp] = field(default_factory=list)
    blobs: List[Tuple[str, int, int]] = field(default_factory=list)

    def to_sexpr(self):
        out = [Symbol("platform"), self.name,
               [Symbol("arch"), self.arch],
               [Symbol("category"), self.category],
               [Symbol("memory-map")] + [r.to_sexpr() for r in self.regions]]
        out += [fn.to_sexpr() for fn in self.alloc_fns]
        out.append(self.ready.to_sexpr())
        routine = [Symbol("init-routine")]
        for op, args in self.init_routine:
            routine.append([Symbol(op)] + list(args))
        out.append(routine)
        for name, base, size in self.blobs:
            out.append([Symbol("blob"), name, base, size])
        return out

    def to_text(self) -> str:
        return write_sexpr(self.to_sexpr())


# ----------------------------------------------------------------------
# lifting parsed sexprs into nodes
# ----------------------------------------------------------------------
def lift(sexpr):
    """Lift one top-level S-expression into a typed spec node."""
    if not isinstance(sexpr, list) or not sexpr:
        raise DslError(f"expected a form, got {sexpr!r}")
    head = sexpr[0]
    if head == Symbol("sanitizer"):
        return _lift_sanitizer(sexpr)
    if head == Symbol("merged-spec"):
        return _lift_merged(sexpr)
    if head == Symbol("platform"):
        return _lift_platform(sexpr)
    raise DslError(f"unknown top-level form {head!r}")


def _lift_intercept(form) -> InterceptNode:
    event = str(form[1])
    args: Tuple[str, ...] = ()
    annotations = []
    for clause in form[2:]:
        if clause and clause[0] == Symbol("args"):
            args = tuple(str(a) for a in clause[1:])
        elif clause and clause[0] == Symbol("annotate"):
            annotations.append((str(clause[1]), str(clause[2])))
    return InterceptNode(event, args, tuple(annotations))


def _lift_sanitizer(sexpr) -> SanitizerSpec:
    name = str(sexpr[1])
    intercepts, requires = [], []
    for clause in sexpr[2:]:
        if clause[0] == Symbol("intercept"):
            intercepts.append(_lift_intercept(clause))
        elif clause[0] == Symbol("requires"):
            requires.append((str(clause[1]), int(clause[2])))
    return SanitizerSpec(name, tuple(intercepts), tuple(requires))


def _lift_merged(sexpr) -> MergedSpec:
    names: Tuple[str, ...] = ()
    intercepts, requires = [], []
    for clause in sexpr[1:]:
        if clause[0] == Symbol("sanitizers"):
            names = tuple(str(n) for n in clause[1:])
        elif clause[0] == Symbol("intercept"):
            intercepts.append(_lift_intercept(clause))
        elif clause[0] == Symbol("requires"):
            requires.append((str(clause[1]), int(clause[2])))
    return MergedSpec(names, tuple(intercepts), tuple(requires))


def _lift_platform(sexpr) -> PlatformSpec:
    spec = PlatformSpec(name=str(sexpr[1]), arch="", category=2)
    for clause in sexpr[2:]:
        head = clause[0]
        if head == Symbol("arch"):
            spec.arch = str(clause[1])
        elif head == Symbol("category"):
            spec.category = int(clause[1])
        elif head == Symbol("memory-map"):
            spec.regions = [
                RegionNode(str(r[1]), int(r[2]), int(r[3]), str(r[4]))
                for r in clause[1:]
            ]
        elif head == Symbol("alloc-fn"):
            sub = clause[3]
            spec.alloc_fns.append(AllocFnNode(
                int(clause[1]), "alloc", str(clause[2]),
                size_arg=int(sub[1]), size_kind=str(sub[2]),
            ))
        elif head == Symbol("free-fn"):
            sub = clause[3]
            spec.alloc_fns.append(AllocFnNode(
                int(clause[1]), "free", str(clause[2]),
                addr_arg=int(sub[1]),
            ))
        elif head == Symbol("ready"):
            inner = clause[1]
            if inner[0] == Symbol("hypercall"):
                spec.ready = ReadyNode("hypercall")
            else:
                spec.ready = ReadyNode("banner", str(inner[1]))
        elif head == Symbol("init-routine"):
            spec.init_routine = [
                (str(op[0]), tuple(int(v) for v in op[1:]))
                for op in clause[1:]
            ]
        elif head == Symbol("blob"):
            spec.blobs.append((str(clause[1]), int(clause[2]), int(clause[3])))
        else:
            raise DslError(f"unknown platform clause {head!r}")
    return spec
