"""SanSpec: EMBSAN's in-house domain-specific language.

The Distiller emits *sanitizer specifications* (interception APIs and
their argument lists), the Prober emits *platform specifications*
(memory map, allocator entry points, ready detection, initialization
routine), and the Common Sanitizer Runtime compiles both into its
runtime configuration.  Documents are S-expressions; see the grammar in
:mod:`repro.sanitizers.dsl.parser`.
"""

from repro.sanitizers.dsl.ast import (
    AllocFnNode,
    InitOp,
    InterceptNode,
    MergedSpec,
    PlatformSpec,
    ReadyNode,
    RegionNode,
    SanitizerSpec,
)
from repro.sanitizers.dsl.parser import parse_document, parse_sexprs
from repro.sanitizers.dsl.compiler import (
    compile_platform,
    compile_runtime_config,
    merge_sanitizers,
)

__all__ = [
    "AllocFnNode",
    "InitOp",
    "InterceptNode",
    "MergedSpec",
    "PlatformSpec",
    "ReadyNode",
    "RegionNode",
    "SanitizerSpec",
    "compile_platform",
    "compile_runtime_config",
    "merge_sanitizers",
    "parse_document",
    "parse_sexprs",
]
