"""EMBSAN's three components plus baselines.

* :mod:`repro.sanitizers.distiller` — the Sanitizer Common Function
  Distiller (§3.1): parses reference sanitizer headers/sources into the
  SanSpec DSL and merges multiple sanitizers into one specification.
* :mod:`repro.sanitizers.prober` — the Embedded Platform Configuration
  Prober (§3.2): dry-runs firmware to produce platform specs and
  initialization routines, with one strategy per firmware category.
* :mod:`repro.sanitizers.runtime` — the Common Sanitizer Runtime (§3.3):
  compiles the DSL, patches emulator probes/hypercall routes, keeps the
  unified shadow memory and performs KASAN/KCSAN validation on the host.
* :mod:`repro.sanitizers.native` — in-guest KASAN/KCSAN baselines whose
  check routines execute as translated guest code (the comparison bars
  of Figure 2).
"""
