"""Freed-object quarantine records.

The engine-side quarantine remembers *who freed what* so use-after-free
reports can cite the allocation and free sites even long after the
object died.  (Reuse-deferral — the allocator-side quarantine — lives in
the slab allocator and is only enabled by instrumented builds, matching
how Linux's KASAN quarantine is part of the slab itself.)
"""

from __future__ import annotations

from collections import OrderedDict
from typing import NamedTuple, Optional


class FreedObject(NamedTuple):
    """Provenance of one freed allocation."""

    addr: int
    size: int
    alloc_pc: int
    free_pc: int
    task: int


class QuarantineLog:
    """Bounded MRU map of freed objects keyed by base address."""

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._entries: "OrderedDict[int, FreedObject]" = OrderedDict()
        self.evictions = 0
        self.pushes = 0

    def push(self, entry: FreedObject) -> None:
        """Record a free, evicting the oldest record when full."""
        self.pushes += 1
        self._entries.pop(entry.addr, None)
        self._entries[entry.addr] = entry
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def pop(self, addr: int) -> Optional[FreedObject]:
        """Remove and return the record at ``addr`` (on realloc)."""
        return self._entries.pop(addr, None)

    def find(self, addr: int) -> Optional[FreedObject]:
        """Find the freed object whose span contains ``addr``."""
        entry = self._entries.get(addr)
        if entry is not None:
            return entry
        for candidate in reversed(self._entries.values()):
            if candidate.addr <= addr < candidate.addr + candidate.size:
                return candidate
        return None

    def recently_freed(self, addr: int) -> bool:
        """True when ``addr`` is the base of a recorded freed object."""
        return addr in self._entries

    def save_state(self) -> "OrderedDict[int, FreedObject]":
        """Copy the log contents (Snapshot provider protocol)."""
        return OrderedDict(self._entries)

    def load_state(self, saved: "OrderedDict[int, FreedObject]") -> None:
        """Restore contents captured by :meth:`save_state`."""
        self._entries = OrderedDict(saved)

    def __len__(self) -> int:
        return len(self._entries)
