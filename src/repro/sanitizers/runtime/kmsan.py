"""KMSAN-functionality engine: uninitialized-memory tracking.

The paper's §5 argues that "adapting new sanitizer functionalities to
EMBSAN is simple, requiring developers to write runtime code accordingly
and designate which instructions to instrument and what interfaces
should be called".  This module is that exercise, done: a third
sanitizer functionality (modeled on the Kernel Memory Sanitizer the
paper cites as related work) that plugs into the same event stream —
loads, stores, ranges, allocator events — with zero changes to the
interception machinery.

Semantics (byte precise, tracked per live heap object):

* a fresh allocation is wholly uninitialized (``kzalloc``-style zeroing
  shows up as the memset that follows and initializes it);
* stores initialize the bytes they cover;
* loads of any uninitialized byte report ``uninit-read``;
* freeing drops the object's tracking.

Tracking only live heap objects keeps the shadow proportional to the
live heap, the same trick the unified shadow memory plays for KASAN.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.mem.access import Access, AccessKind
from repro.sanitizers.runtime.reports import BugType, ReportSink, SanitizerReport

#: allocator cache ids whose objects are NOT tracked (whole pages:
#: the kernel treats page-level buffers as externally initialized)
_UNTRACKED_CACHES = frozenset({0xFFFF})


class KmsanEngine:
    """Uninitialized-memory tracking over allocator-carved objects."""

    tool = "kmsan"

    def __init__(self, sink: ReportSink):
        self.sink = sink
        #: object base -> bytearray of per-byte init flags
        self._objects: Dict[int, bytearray] = {}
        #: sorted-ish index is unnecessary: lookups walk a small dict
        self.suppress_depth = 0
        self.checks = 0

    # ------------------------------------------------------------------
    # allocator state transitions
    # ------------------------------------------------------------------
    def on_alloc(self, addr: int, size: int, cache: int, pc: int = 0,
                 task: int = 0) -> None:
        """A fresh object: every byte starts uninitialized."""
        if addr == 0 or size <= 0 or cache in _UNTRACKED_CACHES:
            return
        self._objects[addr] = bytearray(size)

    def on_free(self, addr: int, pc: int = 0, task: int = 0) -> None:
        """Tracking ends with the object's life (KASAN owns UAF)."""
        self._objects.pop(addr, None)

    # ------------------------------------------------------------------
    # access validation
    # ------------------------------------------------------------------
    def _find(self, addr: int, size: int):
        for base, flags in self._objects.items():
            if base <= addr and addr + size <= base + len(flags):
                return base, flags
        return None

    def check(self, access: Access) -> Optional[SanitizerReport]:
        """Feed one access: stores initialize, loads are validated."""
        if self.suppress_depth:
            return None
        # DMA counts: a device reading an uninitialized heap buffer
        # leaks its contents just like a CPU load, and a device write
        # (ring write-back, rx payload) initializes the span it covers
        if access.kind not in (AccessKind.DATA, AccessKind.RANGE,
                               AccessKind.DMA):
            return None
        hit = self._find(access.addr, access.size)
        if hit is None:
            return None
        base, flags = hit
        start = access.addr - base
        self.checks += 1
        if access.is_write:
            for idx in range(start, start + access.size):
                flags[idx] = 1
            return None
        bad = next(
            (idx for idx in range(start, start + access.size)
             if not flags[idx]),
            None,
        )
        if bad is None:
            return None
        return self.sink.emit(SanitizerReport(
            self.tool, BugType.UNINIT_READ, base + bad, access.size,
            False, access.pc, access.task,
            detail=f"byte {bad} of the object at {base:#010x} was never written",
        ))

    def mark_initialized(self, addr: int, size: int) -> None:
        """Externally initialized span (copy_from_user family)."""
        hit = self._find(addr, max(size, 1))
        if hit is None:
            return
        base, flags = hit
        start = addr - base
        for idx in range(start, min(start + size, len(flags))):
            flags[idx] = 1

    def tracked_objects(self) -> int:
        """Number of live tracked objects (diagnostic)."""
        return len(self._objects)
