"""KCSAN-functionality engine: data-race detection.

Models the kernel concurrency sanitizer's watchpoint scheme on a
deterministic cooperative scheduler: every scalar data access opens a
soft watchpoint for a bounded window of subsequent events; a second
access to the same granule from a *different task* races when at least
one side writes and not both sides are marked (atomic).  This mirrors
KCSAN's report rule (``KCSAN_ACCESS_ATOMIC`` suppression included)
while replacing wall-clock watchpoint delays with an event-count
window, which the cooperative interleaving makes exact.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro.mem.access import Access, AccessKind
from repro.sanitizers.runtime.reports import BugType, ReportSink, SanitizerReport

#: how many subsequent events a watchpoint stays armed for
DEFAULT_WINDOW = 256
#: watchpoints remembered per granule
PER_GRANULE = 4
_GRANULE_SHIFT = 3


class _Watch(NamedTuple):
    seq: int
    task: int
    is_write: bool
    atomic: bool
    pc: int
    addr: int
    size: int


class KcsanEngine:
    """Watchpoint-based data-race detection."""

    tool = "kcsan"

    def __init__(self, sink: ReportSink, window: int = DEFAULT_WINDOW):
        self.sink = sink
        self.window = window
        self._seq = 0
        self._watches: Dict[int, List[_Watch]] = {}
        self.suppress_depth = 0
        self.checks = 0
        self.races_seen = 0

    # ------------------------------------------------------------------
    def check(self, access: Access) -> Optional[SanitizerReport]:
        """Feed one access; returns a data-race report when one fires.

        The runtime's inline shadow fast path never filters KCSAN traffic
        — races live on perfectly addressable memory — so this sees every
        DATA access regardless of the KASAN granule test's outcome.
        """
        if self.suppress_depth:
            return None
        if access.kind not in (AccessKind.DATA, AccessKind.RANGE):
            return None
        if access.task == 0:
            return None  # boot-time accesses cannot race
        self.checks += 1
        self._seq += 1
        seq = self._seq
        granule = access.addr >> _GRANULE_SHIFT
        report = None
        end_granule = (access.addr + access.size - 1) >> _GRANULE_SHIFT
        end_granule = min(end_granule, granule + 63)  # bound range walks
        for g in range(granule, end_granule + 1):
            hit = self._match(g, access, seq)
            if hit is not None and report is None:
                report = hit
        self._record(granule, access, seq)
        return report

    def _match(self, granule: int, access: Access, seq: int):
        watches = self._watches.get(granule)
        if not watches:
            return None
        for watch in reversed(watches):
            if seq - watch.seq > self.window:
                continue
            if watch.task == access.task:
                continue
            if not (watch.is_write or access.is_write):
                continue
            if watch.atomic and access.atomic:
                continue
            if not _overlap(watch, access):
                continue
            self.races_seen += 1
            return self.sink.emit(
                SanitizerReport(
                    self.tool, BugType.DATA_RACE, access.addr, access.size,
                    access.is_write, access.pc, access.task,
                    second_pc=watch.pc,
                    detail=(
                        f"race between task {access.task} and task "
                        f"{watch.task} on {access.addr:#010x}"
                    ),
                )
            )
        return None

    def _record(self, granule: int, access: Access, seq: int) -> None:
        watches = self._watches.setdefault(granule, [])
        watches.append(
            _Watch(seq, access.task, access.is_write, access.atomic,
                   access.pc, access.addr, access.size)
        )
        if len(watches) > PER_GRANULE:
            del watches[0]

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all armed watchpoints (used between fuzz inputs)."""
        self._watches.clear()


def _overlap(watch: _Watch, access: Access) -> bool:
    return (
        watch.addr < access.addr + access.size
        and access.addr < watch.addr + watch.size
    )
