"""Sanitizer reports and the report sink.

Report text follows the KASAN/KCSAN dmesg shape so downstream tooling
(dedup, reproducer triage, the fuzzers' crash oracles) can treat EMBSAN
output like native sanitizer output — the soundness-replay experiment
(§4.2) relies on the two being comparable.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional

from repro.errors import SanitizerViolation


class BugType(enum.Enum):
    """Bug classes reported by the engines."""

    SLAB_OOB = "slab-out-of-bounds"
    GLOBAL_OOB = "global-out-of-bounds"
    STACK_OOB = "stack-out-of-bounds"
    UAF = "use-after-free"
    DOUBLE_FREE = "double-free"
    INVALID_FREE = "invalid-free"
    WILD_ACCESS = "wild-memory-access"
    NULL_DEREF = "null-ptr-deref"
    DATA_RACE = "data-race"
    UNINIT_READ = "uninit-value"  #: KMSAN-functionality extension
    HANG = "guest-hang"  #: watchdog-detected wedge (crash oracle, not a sanitizer)

    @property
    def census_class(self) -> str:
        """The coarse Table-3 class: OOB / UAF / Double Free / Race."""
        if self in (BugType.SLAB_OOB, BugType.GLOBAL_OOB, BugType.STACK_OOB,
                    BugType.WILD_ACCESS, BugType.NULL_DEREF):
            return "OOB Access"
        if self is BugType.UAF:
            return "UAF"
        if self in (BugType.DOUBLE_FREE, BugType.INVALID_FREE):
            return "Double Free"
        if self is BugType.UNINIT_READ:
            return "Uninit Value"
        if self is BugType.HANG:
            return "Hang"
        return "Race"


class SanitizerReport:
    """One sanitizer finding."""

    def __init__(
        self,
        tool: str,
        bug_type: BugType,
        addr: int,
        size: int,
        is_write: bool,
        pc: int,
        task: int,
        location: str = "",
        detail: str = "",
        alloc_pc: int = 0,
        free_pc: int = 0,
        second_pc: int = 0,
        shadow_dump: str = "",
    ):
        self.tool = tool
        self.bug_type = bug_type
        self.addr = addr
        self.size = size
        self.is_write = is_write
        self.pc = pc
        self.task = task
        self.location = location
        self.detail = detail
        self.alloc_pc = alloc_pc
        self.free_pc = free_pc
        self.second_pc = second_pc
        self.shadow_dump = shadow_dump

    def dedup_key(self) -> tuple:
        """Reports with the same key are one bug (syzkaller-style dedup).

        Data races key on the racing word instead of the reporting
        location: the same race observed from either side (syscall path
        vs kthread) is one bug, while two distinct races through the
        same function (neighbouring counters) stay distinct.
        """
        if self.bug_type is BugType.DATA_RACE:
            return (self.tool, self.bug_type.value, self.addr & ~0x3)
        return (self.tool, self.bug_type.value, self.location)

    def __str__(self) -> str:
        rw = "write" if self.is_write else "read"
        head = (
            f"BUG: {self.tool.upper()}: {self.bug_type.value} in "
            f"{self.location or hex(self.pc)}\n"
            f"{rw} of size {self.size} at addr {self.addr:#010x} "
            f"by task {self.task} pc {self.pc:#010x}"
        )
        lines = [head]
        if self.alloc_pc:
            lines.append(f"allocated at pc {self.alloc_pc:#010x}")
        if self.free_pc:
            lines.append(f"freed at pc {self.free_pc:#010x}")
        if self.second_pc:
            lines.append(f"racing access at pc {self.second_pc:#010x}")
        if self.detail:
            lines.append(self.detail)
        if self.shadow_dump:
            lines.append(self.shadow_dump)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SanitizerReport {self.tool}:{self.bug_type.value} @ {self.location}>"


class ReportSink:
    """Collects reports, deduplicates, optionally panics on first report."""

    def __init__(
        self,
        panic_on_report: bool = False,
        symbolizer: Optional[Callable[[int], str]] = None,
    ):
        self.reports: List[SanitizerReport] = []
        self.unique: Dict[tuple, SanitizerReport] = {}
        self.panic_on_report = panic_on_report
        self.symbolizer = symbolizer
        #: observers notified on every (pre-dedup) report
        self.listeners: List[Callable[[SanitizerReport], None]] = []

    def emit(self, report: SanitizerReport) -> SanitizerReport:
        """Record a report; returns it (possibly after symbolization)."""
        if not report.location and self.symbolizer is not None:
            report.location = self.symbolizer(report.pc)
        self.reports.append(report)
        self.unique.setdefault(report.dedup_key(), report)
        for listener in self.listeners:
            listener(report)
        if self.panic_on_report:
            raise SanitizerViolation(report)
        return report

    # ------------------------------------------------------------------
    def count(self) -> int:
        """Total reports including duplicates."""
        return len(self.reports)

    def unique_count(self) -> int:
        """Distinct bugs after dedup."""
        return len(self.unique)

    def by_type(self) -> Dict[str, int]:
        """Unique-bug census keyed by bug-type value."""
        out: Dict[str, int] = {}
        for report in self.unique.values():
            out[report.bug_type.value] = out.get(report.bug_type.value, 0) + 1
        return out

    def locations(self) -> List[str]:
        """Locations of unique reports, sorted."""
        return sorted(report.location for report in self.unique.values())

    def has(self, bug_type: BugType, location_substr: str = "") -> bool:
        """True when a unique report matches type (and location substring)."""
        return any(
            report.bug_type is bug_type
            and (location_substr in report.location)
            for report in self.unique.values()
        )

    def clear(self) -> None:
        """Drop all collected reports."""
        self.reports.clear()
        self.unique.clear()
