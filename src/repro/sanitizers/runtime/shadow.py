"""Unified shadow memory.

One byte of shadow describes one 8-byte granule of guest memory, using
KASAN's encoding: ``0`` means fully addressable, ``1..7`` means only the
first N bytes of the granule are addressable, and values >= 0x80 are
poison codes identifying *why* the granule is off limits.

"Unified" (§3.3) means a single shadow map serves every sanitizer
functionality in the runtime: KASAN consumes the poison codes, KCSAN
uses addressability to skip uninteresting traffic, and the quarantine
bookkeeping reuses the FREE code.  The map is host-side: the guest
never sees it, which is the core trick that lets EMBSAN sanitize
firmware whose platform could not host shadow memory at all.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from repro.mem.bus import MemoryBus
from repro.mem.regions import MmioRegion

#: Bytes of guest memory per shadow byte.
GRANULE = 8


class ShadowCode(enum.IntEnum):
    """Poison codes (>= 0x80) stored in shadow bytes."""

    ADDRESSABLE = 0x00
    FREED = 0xFF  #: object freed (KASAN use-after-free)
    REDZONE_HEAP = 0xFA  #: pad after a slab object
    REDZONE_GLOBAL = 0xF9  #: pad after an instrumented global
    REDZONE_STACK = 0xF2  #: pad around an instrumented stack variable
    PAGE_FREE = 0xFE  #: whole page returned to the buddy allocator
    UNALLOCATED = 0xFC  #: slab page space never handed out


#: shadow-byte pages tracked for delta restore (4 KiB of shadow bytes
#: covers 32 KiB of guest memory at GRANULE=8)
_SHADOW_PAGE_SHIFT = 12
_SHADOW_PAGE_SIZE = 1 << _SHADOW_PAGE_SHIFT


class _RegionShadow:
    """Shadow bytes for one guest memory region."""

    __slots__ = ("base", "size", "bytes", "dirty")

    def __init__(self, base: int, size: int, fill: int):
        self.base = base
        self.size = size
        granules = (size + GRANULE - 1) // GRANULE
        # calloc-backed zero fill avoids touching every page up front
        self.bytes = (bytearray(granules) if fill == 0
                      else bytearray([fill]) * granules)
        #: shadow pages written since the last clear (delta restore)
        self.dirty: set = set()

    def mark_dirty(self, first_granule: int, last_granule: int) -> None:
        """Record the shadow pages covering ``[first, last]`` granules."""
        first_page = first_granule >> _SHADOW_PAGE_SHIFT
        last_page = last_granule >> _SHADOW_PAGE_SHIFT
        if first_page == last_page:
            self.dirty.add(first_page)
        else:
            self.dirty.update(range(first_page, last_page + 1))


class ShadowMemory:
    """Host-side shadow map over a machine's RAM regions.

    Device (MMIO) regions deliberately get no shadow: KASAN never maps
    shadow for device apertures, and the runtime skips checks there.
    """

    def __init__(self, bus: MemoryBus):
        self._shadows: List[_RegionShadow] = []
        self._bases: List[int] = []
        for region in bus.regions:
            if isinstance(region, MmioRegion) or region.kind == "device":
                continue
            shadow = _RegionShadow(region.base, region.size, 0)
            self._shadows.append(shadow)
            self._bases.append(region.base)
        self._shadows.sort(key=lambda s: s.base)
        self._bases.sort()
        self.poison_ops = 0
        self.check_ops = 0
        #: clean accesses proven addressable by :meth:`clear_for` alone
        #: (the inline fast path), a subset of ``check_ops``
        self.fastpath_hits = 0

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def save_state(self) -> List[bytes]:
        """Copy every region's shadow bytes (Snapshot provider protocol)."""
        return [bytes(shadow.bytes) for shadow in self._shadows]

    def load_state(self, saved: List[bytes]) -> None:
        """Restore shadow bytes captured by :meth:`save_state` in place."""
        for shadow, data in zip(self._shadows, saved):
            shadow.bytes[:] = data
            shadow.dirty.clear()

    def load_state_delta(self, saved: List[bytes]) -> int:
        """Restore only the shadow pages poisoned since the capture.

        ``saved`` must be the blob :meth:`save_state` returned for the
        state being restored to (the fork server's golden state): dirty
        page tracking began at that same point, so copying back just the
        dirty pages reproduces the full image.  Returns pages copied.
        """
        pages = 0
        for shadow, data in zip(self._shadows, saved):
            table = shadow.bytes
            limit = len(table)
            for page in shadow.dirty:
                lo = page << _SHADOW_PAGE_SHIFT
                if lo >= limit:
                    continue
                hi = min(lo + _SHADOW_PAGE_SIZE, limit)
                table[lo:hi] = data[lo:hi]
                pages += 1
            shadow.dirty.clear()
        return pages

    def clear_dirty(self) -> None:
        """Reset dirty-page accounting (at golden capture time)."""
        for shadow in self._shadows:
            shadow.dirty.clear()

    # ------------------------------------------------------------------
    def _find(self, addr: int) -> Optional[_RegionShadow]:
        # linear scan: machines map < 8 RAM regions
        for shadow in self._shadows:
            if shadow.base <= addr < shadow.base + shadow.size:
                return shadow
        return None

    # ------------------------------------------------------------------
    # state transitions
    # ------------------------------------------------------------------
    def poison(self, start: int, size: int, code: ShadowCode) -> None:
        """Mark ``[start, start+size)`` poisoned with ``code``.

        Partial granules at the edges stay addressable up to the object
        boundary (KASAN's first-N-bytes encoding), so only the fully
        covered granules take the poison code; a leading partial granule
        records how many of its bytes remain valid.
        """
        if size <= 0:
            return
        shadow = self._find(start)
        if shadow is None:
            return
        self.poison_ops += 1
        end = min(start + size, shadow.base + shadow.size)
        first = (start - shadow.base) // GRANULE
        valid_prefix = start % GRANULE
        if valid_prefix:
            # the object sharing this granule keeps its first bytes
            shadow.bytes[first] = valid_prefix
            first += 1
        last = (end - shadow.base + GRANULE - 1) // GRANULE
        for idx in range(first, last):
            shadow.bytes[idx] = int(code)
        shadow.mark_dirty(first - (1 if valid_prefix else 0), max(last - 1, first))

    def unpoison(self, start: int, size: int) -> None:
        """Mark ``[start, start+size)`` addressable (partial tail encoded)."""
        if size <= 0:
            return
        shadow = self._find(start)
        if shadow is None:
            return
        self.poison_ops += 1
        end = min(start + size, shadow.base + shadow.size)
        first = (start - shadow.base) // GRANULE
        full_last = (end - shadow.base) // GRANULE
        for idx in range(first, full_last):
            shadow.bytes[idx] = 0
        tail = end % GRANULE
        if tail and full_last < len(shadow.bytes):
            shadow.bytes[full_last] = tail
        shadow.mark_dirty(first, max(full_last, first))

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    def check(self, addr: int, size: int) -> Optional[Tuple[int, int]]:
        """Validate an access; returns ``(bad_addr, code)`` or None.

        A device-region or out-of-shadow access returns None — the bus
        permission model, not the sanitizer, polices those.
        """
        if size <= 0:
            return None
        shadow = self._find(addr)
        if shadow is None:
            return None
        self.check_ops += 1
        end = addr + size
        idx = (addr - shadow.base) // GRANULE
        granule_start = shadow.base + idx * GRANULE
        table = shadow.bytes
        limit = len(table)
        while granule_start < end and idx < limit:
            value = table[idx]
            if value:
                if value >= 0x80:
                    bad = max(addr, granule_start)
                    return bad, value
                # partial granule: first `value` bytes valid
                access_end_in_granule = min(end, granule_start + GRANULE)
                if access_end_in_granule - granule_start > value:
                    # classify by the poison that follows the object, the
                    # way KASAN inspects the next shadow byte
                    if idx + 1 < limit and table[idx + 1] >= 0x80:
                        code = table[idx + 1]
                    else:
                        code = int(ShadowCode.REDZONE_HEAP)
                    return granule_start + value, code
            idx += 1
            granule_start += GRANULE
        return None

    def clear_for(self, addr: int, size: int) -> bool:
        """Fast path: True when every granule the access touches is 0.

        The inline counterpart of :meth:`check` used by the runtime's
        combined probe: an all-addressable answer needs no poison-code
        classification, no partial-granule arithmetic and no report
        machinery, which covers the overwhelming majority of traffic.  A
        False return says nothing about *why* — the caller falls back to
        the full :meth:`check` walk, which also re-validates partial
        granules the fast path conservatively rejects.

        Counter parity with :meth:`check`: a clean access counts one
        ``check_ops`` here; a dirty access counts nothing (the full check
        the caller then runs contributes the one count); an unshadowed
        access counts nothing on either path.
        """
        if size <= 0:
            return True
        shadow = self._find(addr)
        if shadow is None:
            # device/out-of-shadow traffic: the bus polices it, not us
            return True
        base = shadow.base
        table = shadow.bytes
        first = (addr - base) >> 3
        last = (addr + size - 1 - base) >> 3
        if first == last:
            # addr is inside the region, so ``first`` always indexes the
            # table; a multi-granule slice clamps at the region end just
            # like check()'s ``idx < limit`` walk
            if table[first]:
                return False
        elif any(table[first:last + 1]):
            return False
        self.check_ops += 1
        self.fastpath_hits += 1
        return True

    def code_at(self, addr: int) -> int:
        """Raw shadow byte covering ``addr`` (0 when unshadowed)."""
        shadow = self._find(addr)
        if shadow is None:
            return 0
        return shadow.bytes[(addr - shadow.base) // GRANULE]

    # ------------------------------------------------------------------
    def poisoned_bytes(self) -> int:
        """Granule count currently carrying any poison code (diagnostic)."""
        return sum(
            1
            for shadow in self._shadows
            for value in shadow.bytes
            if value >= 0x80
        )

    def stats(self) -> Dict[str, int]:
        """Operation counters used by overhead analysis."""
        return {
            "poison_ops": self.poison_ops,
            "check_ops": self.check_ops,
            "fastpath_hits": self.fastpath_hits,
        }

    def dump_around(self, addr: int, rows: int = 2) -> str:
        """Render the shadow bytes around ``addr``, dmesg-KASAN style.

        16 shadow bytes (128 guest bytes) per row, the row holding
        ``addr`` marked with ``^`` under the offending granule.
        """
        shadow = self._find(addr)
        if shadow is None:
            return ""
        granule = (addr - shadow.base) // GRANULE
        row_of = granule // 16
        lines = ["Memory state around the buggy address:"]
        for row in range(row_of - rows, row_of + rows + 1):
            first = row * 16
            if first < 0 or first >= len(shadow.bytes):
                continue
            cells = shadow.bytes[first:first + 16]
            rendered = " ".join(f"{value:02x}" for value in cells)
            marker = ">" if row == row_of else " "
            lines.append(
                f"{marker}{shadow.base + first * GRANULE:#010x}: {rendered}"
            )
            if row == row_of:
                column = granule - first
                lines.append(" " * 12 + "   " * column + " ^^")
        return "\n".join(lines)
