"""The Common Sanitizer Runtime and its engines."""

from repro.sanitizers.runtime.shadow import ShadowMemory, ShadowCode
from repro.sanitizers.runtime.reports import SanitizerReport, ReportSink
from repro.sanitizers.runtime.kasan import KasanEngine
from repro.sanitizers.runtime.kcsan import KcsanEngine
from repro.sanitizers.runtime.runtime import CommonSanitizerRuntime

__all__ = [
    "CommonSanitizerRuntime",
    "KasanEngine",
    "KcsanEngine",
    "ReportSink",
    "SanitizerReport",
    "ShadowCode",
    "ShadowMemory",
]
